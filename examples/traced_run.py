#!/usr/bin/env python
"""Observability walkthrough: trace a distributed run end to end.

The :mod:`repro.obs` layer records everything against *simulated* time
(the per-rank SimMPI clocks), so traces are deterministic: the same
seeded run always exports byte-identical JSONL.  This walkthrough:

1. runs the ne=4 distributed primitive-equation model (4 ranks, overlap
   mode) under a :class:`~repro.obs.Tracer` and exports the flight
   recorder as a Chrome trace — load ``traced_run.trace.json`` at
   https://ui.perfetto.dev to see per-rank pack/send/overlap/unpack
   spans and MPI waits overlapping in time;
2. prints the recorder's pure-python text summary;
3. collects every statistics source (SimMPI, DMA engine, LDM allocator,
   backend perf counters) into one :class:`~repro.obs.MetricsRegistry`
   namespace and renders it;
4. executes the paper's kernels on the Athread backend under the same
   tracer and prints the roofline attribution report: per kernel,
   memory- or compute-bound, and the fraction of the roofline bound the
   simulated execution achieved (paper Sections 7.1 and 8.1.1).

Run:  python examples/traced_run.py
"""

import numpy as np

from repro.backends import AthreadBackend, table1_workloads
from repro.config import ModelConfig
from repro.homme.distributed import DistributedPrimitiveEquations
from repro.homme.element import ElementGeometry, ElementState
from repro.mesh import CubedSphereMesh
from repro.obs import (
    MetricsRegistry,
    Tracer,
    collect_perf_counters,
    collect_simmpi,
    roofline_report,
)
from repro.sunway import CoreGroup

TRACE_PATH = "traced_run.trace.json"
JSONL_PATH = "traced_run.events.jsonl"


def traced_distributed_run(tracer: Tracer) -> DistributedPrimitiveEquations:
    print("1. Distributed primitive equations, ne=4, 4 ranks, overlap mode")
    cfg = ModelConfig(ne=4, nlev=4, qsize=1)
    mesh = CubedSphereMesh(4)
    state = ElementState.isothermal_rest(ElementGeometry(mesh), cfg)
    model = DistributedPrimitiveEquations(
        cfg, mesh, state, nranks=4, dt=600.0, mode="overlap", tracer=tracer
    )
    model.run_steps(3)  # spans a vertical remap (rsplit = 3)
    tracer.recorder.write_chrome_trace(TRACE_PATH)
    tracer.recorder.write_jsonl(JSONL_PATH)
    print(f"   simulated step time (max rank): {model.max_rank_time():.4e} s")
    print(f"   Chrome trace -> {TRACE_PATH}  (open in https://ui.perfetto.dev)")
    print(f"   canonical JSONL -> {JSONL_PATH}")
    return model


def show_summary(tracer: Tracer) -> None:
    print("\n2. Flight-recorder text summary")
    print(tracer.recorder.text_summary())


def show_metrics(tracer: Tracer, model: DistributedPrimitiveEquations) -> None:
    print("\n3. Unified metrics registry")
    reg = MetricsRegistry("traced_run")
    collect_simmpi(reg, model.mpi)
    # Exercise one CPE cluster so the registry also shows the hardware
    # counters (perf.*, dma.*, ldm.*) next to the network tallies.
    cg = CoreGroup()
    for cpe in cg.cpes:
        cpe.vector.add(np.ones(4), np.ones(4))
    collect_perf_counters(reg, cg.collect())
    print(reg.render())


def show_roofline(tracer: Tracer) -> None:
    print("\n4. Roofline attribution of the paper's kernels (Athread)")
    backend = AthreadBackend()
    backend.tracer = tracer
    for wl in table1_workloads().values():
        backend.execute(wl)
    print(roofline_report(tracer.recorder))


if __name__ == "__main__":
    tracer = Tracer("traced_run")
    model = traced_distributed_run(tracer)
    show_summary(tracer)
    show_metrics(tracer, model)
    show_roofline(tracer)
