#!/usr/bin/env python
"""The refactoring toolchain on the paper's own example kernel.

Walks euler_step (the paper's Algorithms 1 and 2) through the two-stage
workflow: the loop transformation tool picks the OpenACC mapping and
exposes the copyin-per-tracer pathology; the footprint tool tiles the
working set into the 64 KB LDM; the roofline projection flags the
kernel for the Athread rewrite; and the backends price both versions.

Run:  python examples/refactor_pipeline.py
"""

from repro.backends import table1_workloads
from repro.core import RefactorPipeline
from repro.core.ir import euler_step_nest, pressure_scan_nest
from repro.utils.tables import render_table


def show_decision(name: str, decision) -> None:
    print(f"--- {name} ---")
    acc = decision.openacc_mapping
    print(f"OpenACC mapping: collapse{tuple(acc.collapsed)} "
          f"-> {acc.parallel_trips} parallel iterations")
    rows = [[arr, n] for arr, n in acc.copyin_per_iteration.items()]
    print(render_table(["array", "copyins per outer iteration"], rows))
    fp = decision.footprint
    print(f"working set: {fp.total_bytes / 1024:.1f} KB untiled -> "
          f"{fp.tiled_bytes / 1024:.1f} KB at tile factor {fp.tile_factor} "
          f"(fits 64 KB LDM: {fp.fits})")
    print(f"LDM-resident arrays: {fp.resident}")
    proj = decision.projection
    print(f"roofline projection: {proj['projection_seconds']:.2f} s "
          f"({proj['bound']}-bound); measured OpenACC {proj['measured_seconds']:.2f} s "
          f"-> headroom {proj['headroom']:.1f}x, rewrite={decision.rewrite}")
    if decision.rewrite:
        print(f"Athread prediction: {decision.athread_seconds:.2f} s "
              f"({decision.speedup:.1f}x over OpenACC)")
        plan = decision.tiling_plan
        print(f"tiling plan buffers: {sorted(plan.buffers)} "
              f"({plan.total_bytes / 1024:.1f} KB)")
    print()


if __name__ == "__main__":
    pipeline = RefactorPipeline()
    wls = table1_workloads()
    d1 = pipeline.process(
        euler_step_nest(nelem=64, qsize=4, nlev=128),
        wls["euler_step"],
        tile_var="k",
        stream=("qdp",),
    )
    show_decision("euler_step (Algorithms 1 -> 2)", d1)
    d2 = pipeline.process(
        pressure_scan_nest(nelem=64, nlev=128),
        wls["compute_and_apply_rhs"],
        tile_var=None,
    )
    show_decision("compute_and_apply_rhs vertical scan (Figure 2)", d2)
