#!/usr/bin/env python
"""Chaos-test the self-healing parallel engine, bit-for-bit.

Runs one seeded chaos scenario from :mod:`repro.parallel.chaos` — a
worker SIGKILL, a stalled heartbeat, a result delayed past the batch
timeout, or a bit flipped in a result block — against the ne2
distributed shallow-water model, and shows:

1. the faulty run completes **bitwise identical** to the fault-free
   serial run (the recovery paths — respawn, task redistribution,
   result re-execution — preserve the driver's fixed-rank-order
   combine);
2. *how* it survived: the engine's ``parallel.recovery.*`` tallies
   (respawns, redistributed tasks, corrupt results caught) and its
   degrade history, which stays empty — worker faults no longer cost
   the pool — plus the :class:`repro.obs.health.HealthMonitor` verdict
   over the same state (a recovered fault reads ``warn``, never
   ``critical``);
3. optionally the same scenario through the pipelined
   (``submit``/``PendingRun``) dispatch mode.

Run:  python examples/self_healing_run.py [--chaos SCENARIO]
                                          [--workers N] [--steps N]
                                          [--seed N] [--pipeline]
                                          [--report OUT.json]

``--chaos all`` (the default) runs every scenario.  With ``--report``,
a JSON summary of every scenario report is written for downstream
tooling — the CI chaos-smoke job uploads it as an artifact.
"""

import argparse
import json

from repro.parallel import SCENARIOS, available_cores, run_scenario
from repro.resilience import FaultInjector


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--chaos", default="all", metavar="SCENARIO",
                    choices=["all", *SCENARIOS],
                    help=f"scenario to inject: {', '.join(SCENARIOS)}, "
                         "or 'all' (default)")
    ap.add_argument("--workers", type=int, default=2,
                    help="worker processes for the chaotic run (default 2)")
    ap.add_argument("--steps", type=int, default=2, help="RK3 steps to run")
    ap.add_argument("--seed", type=int, default=0,
                    help="chaos schedule seed (same seed -> same faults)")
    ap.add_argument("--pipeline", action="store_true",
                    help="inject into the pipelined dispatch mode instead")
    ap.add_argument("--report", metavar="OUT.json", default=None,
                    help="write the JSON scenario reports here")
    ns = ap.parse_args()

    names = list(SCENARIOS) if ns.chaos == "all" else [ns.chaos]
    mode = "pipelined" if ns.pipeline else "plain-parallel"
    print(f"ne2 shallow water, 4 simulated ranks, {ns.steps} steps, "
          f"{ns.workers} workers ({mode}); machine has "
          f"{available_cores()} core(s)")

    reports, all_ok = [], True
    for name in names:
        faults = FaultInjector(seed=ns.seed)
        rep = run_scenario(
            name, workers=ns.workers, steps=ns.steps, seed=ns.seed,
            pipeline=ns.pipeline, faults=faults,
        )
        reports.append(rep)
        recovered = {k: v for k, v in rep["recovery"].items() if v}
        verdict = "bitwise identical" if rep["bitwise_identical"] else \
            "TRAJECTORY DIVERGED"
        degraded = rep["recovery"]["pool_degrades"]
        all_ok &= rep["bitwise_identical"] and degraded == 0
        print(f"  {name:<16} {verdict}; pool "
              f"{'alive' if rep['pool_active_at_end'] else 'DEGRADED'}; "
              f"recovery {recovered or '{}'}")
        hv = rep["health"]
        print(f"  {'':<16} health: {hv['verdict']}"
              + "".join(f"; [{f['severity']}] {f['rule']}"
                        for f in hv["findings"]))
        if rep["fault_events"]:
            print(f"  {'':<16} observed: {rep['fault_events']}")

    print(f"{len(reports)} scenario(s): "
          + ("all recovered bitwise" if all_ok else "FAILURES above"))

    if ns.report:
        with open(ns.report, "w") as f:
            json.dump({"mode": mode, "cores": available_cores(),
                       "scenarios": reports}, f, indent=2)
        print(f"[report] -> {ns.report}")

    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
