#!/usr/bin/env python
"""Section 10, made runnable: what the redesign buys on the next machine.

The paper closes by arguing that the Sunway redesign methodology is
what the Exascale transition will demand.  This example projects the
calibrated CAM-SE models onto a plausible successor (compute x12,
bandwidth x4, LDM x4) and quantifies the two warnings:

1. the roofline ridge moves right — traffic minimization matters more;
2. strong-scaled climate configurations hit the serial/communication
   wall: even an infinitely fast chip buys a bounded speedup.

Run:  python examples/exascale_projection.py
"""

from repro.perf.exascale import (
    exascale_spec,
    project,
    speed_wall_analysis,
)
from repro.sunway.spec import DEFAULT_SPEC
from repro.utils.tables import render_table


def main() -> None:
    s = exascale_spec()
    print("Successor chip (per core group):")
    print(f"  peak compute : {DEFAULT_SPEC.cg_peak_flops / 1e9:7.0f} -> "
          f"{s.cg_peak_flops / 1e9:7.0f} GF/s")
    print(f"  bandwidth    : {DEFAULT_SPEC.cg_memory_bandwidth / 1e9:7.1f} -> "
          f"{s.cg_memory_bandwidth / 1e9:7.1f} GB/s")
    ridge0 = DEFAULT_SPEC.cg_peak_flops / DEFAULT_SPEC.cg_memory_bandwidth
    ridge1 = s.cg_peak_flops / s.cg_memory_bandwidth
    print(f"  roofline ridge: {ridge0:.0f} -> {ridge1:.0f} flops/byte "
          f"(traffic minimization matters {ridge1 / ridge0:.1f}x more)\n")

    rows = []
    for ne, nproc in ((256, 8192), (256, 131072), (1024, 8192), (1024, 131072)):
        p = project(ne, nproc)
        rows.append(
            [f"ne{ne}", nproc,
             f"{p.today_pflops:.3f}", f"{p.exa_pflops:.3f}",
             f"{p.today_sypd:.3f}", f"{p.exa_sypd:.3f}",
             f"{p.sypd_gain:.2f}x"]
        )
    print(render_table(
        ["mesh", "ranks", "PFlops now", "PFlops exa",
         "SYPD now", "SYPD exa", "SYPD gain"],
        rows, title="HOMME projected onto the successor machine",
    ))

    wall = speed_wall_analysis()
    print()
    print("The simulation-speed wall (ne1024, 131,072 ranks):")
    print(f"  step time now           : {wall['step_seconds'] * 1e3:.1f} ms")
    print(f"  compute fraction        : {wall['compute_fraction'] * 100:.0f}%")
    print(f"  irreducible (serial+net): {wall['irreducible_seconds'] * 1e3:.1f} ms")
    print(f"  speedup with an INFINITE chip: "
          f"{wall['max_speedup_infinite_chip']:.1f}x — the wall the paper's")
    print("  'redesign, not just port' argument is about.")


if __name__ == "__main__":
    main()
