#!/usr/bin/env python
"""Real multi-core execution of a distributed run, bit-for-bit.

Runs the ne8 distributed shallow-water model twice — in-process serial
and through the ``repro.parallel`` worker pool — and shows:

1. the trajectories are **bitwise identical** (the engine's structural
   determinism rule: workers compute per-rank partials, every combine
   happens on the driver in fixed rank order);
2. the simulated clocks agree exactly (SimMPI stays the timing model —
   real cores change wall time only);
3. the wall-clock effect, plus the engine's own per-worker counters.

Run:  python examples/parallel_run.py [--workers N] [--validate]
                                      [--steps N] [--pipeline]
                                      [--trace OUT.json] [--profile]
                                      [--report OUT.json]

``--pipeline`` adds a third run with ``pipeline=True``: each rank's
elements split into boundary and inner batches, with the driver's
combine work overlapped against worker compute (DESIGN.md Section 11)
— same bits, same simulated clocks, less wall time.

``--trace`` turns on cross-process telemetry (DESIGN.md §13) and
writes one merged Chrome/Perfetto timeline: per-worker process tracks
with the workers' own compute spans, heartbeat-age and queue-depth
counter tracks, and supervisor instants.  ``--profile`` additionally
runs the in-worker sampling profiler and prints the top frames.

With ``--report``, a JSON summary (timings, per-worker stats, the
bitwise verdict, the health report) is written for downstream tooling
— the CI smoke job uploads it as an artifact.
"""

import argparse
import json
import time

import numpy as np

from repro.homme.distributed import DistributedShallowWater
from repro.mesh import CubedSphereMesh
from repro.obs import (
    PROFILE_HZ,
    MetricsRegistry,
    Tracer,
    collect_parallel_engine,
    render_profile,
)
from repro.parallel import available_cores


def timed_run(mesh, nranks, workers, validate, steps, pipeline=False,
              trace=False, profile=False):
    tracer = Tracer("parallel_run") if (trace or profile) else None
    engine_kwargs = {"profile_hz": PROFILE_HZ} if profile else None
    with DistributedShallowWater(mesh, nranks=nranks, workers=workers,
                                 validate=validate, pipeline=pipeline,
                                 tracer=tracer,
                                 engine_kwargs=engine_kwargs) as m:
        t0 = time.perf_counter()
        m.run_steps(steps)
        wall = time.perf_counter() - t0
        health = m.health()
        out = {
            "state": m.gather_state(),
            "wall_s": wall,
            "simulated_s": m.max_rank_time(),
            "engine": m.engine.describe(),
            "health": health.to_json(),
            "metrics": collect_parallel_engine(
                MetricsRegistry("parallel"), m.engine).snapshot(),
            "profile": (dict(m.engine.profile_frames),
                        m.engine.profile_samples),
        }
    # Export after close(): the engine flushes profile counter tracks
    # into the recorder on shutdown.
    if tracer is not None:
        out["chrome"] = tracer.recorder.chrome_trace()
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int, default=min(4, available_cores()),
                    help="worker processes for the parallel run (default: "
                         "min(4, available cores))")
    ap.add_argument("--validate", action="store_true",
                    help="recompute every dispatched batch serially and "
                         "fail on any byte difference")
    ap.add_argument("--steps", type=int, default=5, help="RK3 steps to run")
    ap.add_argument("--pipeline", action="store_true",
                    help="also run the pipelined mode (overlapped driver "
                         "combines) and compare it bitwise")
    ap.add_argument("--trace", metavar="OUT.json", default=None,
                    help="enable cross-process telemetry and write the "
                         "merged Chrome/Perfetto trace here")
    ap.add_argument("--profile", action="store_true",
                    help="run the in-worker sampling profiler "
                         f"({PROFILE_HZ:g} Hz) and print the top frames")
    ap.add_argument("--report", metavar="OUT.json", default=None,
                    help="write a JSON summary here")
    ns = ap.parse_args()

    mesh = CubedSphereMesh(ne=8)
    nranks = 4
    print(f"ne8 shallow water, {nranks} simulated ranks, {ns.steps} steps; "
          f"machine has {available_cores()} core(s)")

    trace = ns.trace is not None
    serial = timed_run(mesh, nranks, workers=0, validate=False, steps=ns.steps)
    par = timed_run(mesh, nranks, workers=ns.workers, validate=ns.validate,
                    steps=ns.steps, trace=trace, profile=ns.profile)
    pipe = None
    if ns.pipeline:
        pipe = timed_run(mesh, nranks, workers=ns.workers,
                         validate=ns.validate, steps=ns.steps, pipeline=True,
                         trace=trace, profile=ns.profile)

    same_h = np.array_equal(serial["state"].h, par["state"].h)
    same_v = np.array_equal(serial["state"].v, par["state"].v)
    same_clock = serial["simulated_s"] == par["simulated_s"]
    pool = par["engine"]
    if pool["active"]:
        print(f"pool: {pool['workers']} workers, "
              f"{pool['tasks_parallel']} tasks dispatched"
              + (f", {pool['validations']} batches validated"
                 if ns.validate else ""))
        for w in pool["per_worker"]:
            print(f"  worker/{w['worker']}: {w['tasks']} tasks, "
                  f"{w['busy_seconds'] * 1e3:.1f} ms busy, "
                  f"{w['bytes_in'] / 1e6:.1f} MB in")
    else:
        print(f"pool fell back to serial: {pool['fallback_reason']}")
    print(f"bitwise identical: h={same_h} v={same_v}; "
          f"simulated clocks equal: {same_clock}")
    print(f"wall: serial {serial['wall_s']:.3f}s, "
          f"parallel {par['wall_s']:.3f}s "
          f"(x{serial['wall_s'] / par['wall_s']:.2f})")

    hv = par["health"]
    print(f"health: {hv['verdict'].upper()}"
          + "".join(f"\n  [{f['severity']}] {f['rule']}: {f['message']}"
                    for f in hv["findings"]))

    if ns.profile:
        frames, samples = par["profile"]
        print(f"worker profile ({samples} samples):")
        print(render_profile(frames, samples, top=8))

    pipe_ok = True
    if pipe is not None:
        pipe_ok = (np.array_equal(serial["state"].h, pipe["state"].h)
                   and np.array_equal(serial["state"].v, pipe["state"].v)
                   and serial["simulated_s"] == pipe["simulated_s"])
        pl = pipe["engine"]["pipeline"]
        print(f"pipelined: bitwise identical: {pipe_ok}; "
              f"wall {pipe['wall_s']:.3f}s "
              f"(x{serial['wall_s'] / pipe['wall_s']:.2f} vs serial, "
              f"x{par['wall_s'] / pipe['wall_s']:.2f} vs parallel); "
              f"{pl['batches']} overlapped batches, "
              f"overlap fraction {pl['overlap_fraction']:.2f}")

    if ns.report:
        summary = {
            "workers": ns.workers,
            "validate": ns.validate,
            "steps": ns.steps,
            "cores": available_cores(),
            "bitwise_identical": bool(same_h and same_v),
            "simulated_clocks_equal": bool(same_clock),
            "serial_wall_s": serial["wall_s"],
            "parallel_wall_s": par["wall_s"],
            "pool": {k: v for k, v in pool.items() if k != "per_worker"},
            "per_worker": pool["per_worker"],
            "health": par["health"],
            "metrics": par["metrics"],
        }
        if pipe is not None:
            summary["pipelined"] = {
                "bitwise_identical": bool(pipe_ok),
                "wall_s": pipe["wall_s"],
                "pipeline": pipe["engine"]["pipeline"],
                "health": pipe["health"],
                "metrics": pipe["metrics"],
            }
        with open(ns.report, "w") as f:
            json.dump(summary, f, indent=2)
        print(f"[report] -> {ns.report}")

    if ns.trace:
        traces = [("parallel", par["chrome"])]
        if pipe is not None:
            traces.append(("pipelined", pipe["chrome"]))
        if len(traces) == 1:
            merged = traces[0][1]
        else:
            from repro.obs.__main__ import _merge_traces
            merged = _merge_traces(traces)
        with open(ns.trace, "w") as f:
            json.dump(merged, f)
        print(f"[trace] {len(merged['traceEvents'])} events -> {ns.trace} "
              "(open in https://ui.perfetto.dev)")

    return 0 if (same_h and same_v and same_clock and pipe_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
