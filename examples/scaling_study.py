#!/usr/bin/env python
"""Scaling study: regenerate the paper's Figures 6-8 from the models.

Sweeps the whole-CAM SYPD curves (Figure 6), the HOMME strong-scaling
curves (Figure 7), and the weak-scaling series (Figure 8), printing the
same rows the paper plots.

Run:  python examples/scaling_study.py [--trace out.json]

The figures come from the calibrated performance model (no simulated
ranks to trace), so ``--trace`` additionally runs a small distributed
primitive-equation integration under the observability tracer and
exports it as a Chrome trace-event file: per-rank euler/hypervis/remap
phases, halo pack/send/overlap/unpack, and MPI waits, loadable at
https://ui.perfetto.dev.

``--measured`` switches from the calibrated performance model to
*measured shard runs*: the distributed primitive-equation model is
actually stepped at every rank count in ``--nranks-list``, and the
Table-4-style strong-scaling rows (simulated step time, SYPD, speedup,
parallel efficiency) come from its SimMPI clocks — once per combine
algorithm, so the hop-weighted hierarchical combine tree is directly
comparable against the flat recursive-doubling estimate.

``--check-bitwise W`` additionally re-runs each sweep point with the
per-rank compute fanned across ``W`` real worker processes (sharded
contexts, shard-affinity dispatch) and asserts the gathered trajectory
is bitwise identical to the in-process serial run, printing each
worker's context footprint.  Exits non-zero on any mismatch.

CI runs:  python examples/scaling_study.py --measured --ne 4 \\
              --nranks-list 2,4 --check-bitwise 2
"""

import argparse
import json
import sys

from repro.experiments.figure6_sypd import run_figure6
from repro.experiments.figure7_strong import run_figure7
from repro.experiments.figure8_weak import run_figure8


def traced_run(path: str) -> None:
    """Trace a small distributed run alongside the model-based figures."""
    from repro.config import ModelConfig
    from repro.homme.distributed import DistributedPrimitiveEquations
    from repro.homme.element import ElementGeometry, ElementState
    from repro.mesh import CubedSphereMesh
    from repro.obs import Tracer

    tracer = Tracer("scaling_study")
    cfg = ModelConfig(ne=4, nlev=4, qsize=1)
    mesh = CubedSphereMesh(4)
    state = ElementState.isothermal_rest(ElementGeometry(mesh), cfg)
    model = DistributedPrimitiveEquations(
        cfg, mesh, state, nranks=4, dt=600.0, mode="overlap", tracer=tracer
    )
    model.run_steps(2)
    tracer.recorder.write_chrome_trace(path)
    print(f"[trace] ne=4, 4 ranks, 2 steps -> {path} "
          f"({len(tracer.recorder)} events); open in https://ui.perfetto.dev")


def _build_model(ns, nranks: int, combine: str, workers: int = 0):
    from repro.config import ModelConfig
    from repro.homme.distributed import DistributedPrimitiveEquations
    from repro.homme.element import ElementGeometry, ElementState
    from repro.mesh import CubedSphereMesh

    cfg = ModelConfig(ne=ns.ne, nlev=ns.nlev, qsize=ns.qsize)
    mesh = CubedSphereMesh(ns.ne)
    state = ElementState.isothermal_rest(ElementGeometry(mesh), cfg)
    return DistributedPrimitiveEquations(
        cfg, mesh, state, nranks=nranks, dt=ns.dt,
        combine=combine, workers=workers,
    )


def _bitwise_check(ns, nranks: int, combine: str, serial_state) -> bool:
    """Re-run the sweep point with a real worker pool; compare bitwise."""
    import numpy as np

    model = _build_model(ns, nranks, combine, workers=ns.check_bitwise)
    try:
        model.run_steps(ns.steps)
        par_state = model.gather_state()
        ok = all(
            np.array_equal(getattr(serial_state, f), getattr(par_state, f))
            for f in ("v", "T", "dp3d", "qdp")
        )
        per_slot = model.engine.context_bytes_by_slot()
        peak = model.engine.peak_context_bytes()
        total = model.engine.total_context_bytes()
    finally:
        model.close()
    pool = "pool" if model.engine.active or per_slot else "serial-fallback"
    slots = ", ".join(f"w{s}={b}" for s, b in sorted(per_slot.items()))
    print(f"    bitwise vs {ns.check_bitwise}-worker sharded run "
          f"[{pool}]: {'OK' if ok else 'MISMATCH'}"
          f"  context bytes: peak={peak} total={total}"
          + (f"  ({slots})" if slots else ""))
    return ok


def measured_sweep(ns) -> int:
    """Strong-scaling sweep from measured shard runs (Table-4 style)."""
    from repro.homme.distributed import charge_calibrated_compute

    combines = (("flat", "hierarchical") if ns.combine == "both"
                else (ns.combine,))
    nranks_list = [int(x) for x in ns.nranks_list.split(",")]
    rows = []
    failures = 0
    print("#" * 72)
    print(f"# Measured strong scaling: prim ne={ns.ne} nlev={ns.nlev} "
          f"qsize={ns.qsize}, {ns.steps} step(s), dt={ns.dt:g}s")
    print("#" * 72)
    header = (f"{'combine':<13} {'nranks':>6} {'t_step(ms)':>12} "
              f"{'SYPD':>10} {'speedup':>9} {'eff':>7} {'hier.ar':>8}")
    print(header)
    print("-" * len(header))
    base: dict[str, float] = {}
    for combine in combines:
        for nranks in nranks_list:
            model = _build_model(ns, nranks, combine)
            try:
                model.run_steps(ns.steps)
                charge_calibrated_compute(model, ns.steps)
                t_machine = model.max_rank_time()
                serial_state = model.gather_state()
                hier = model.mpi.hierarchical_allreduces
            finally:
                model.close()
            t_step = t_machine / ns.steps
            # Simulated years per (simulated-machine) day: the model
            # advances steps*dt seconds of atmosphere per t_machine
            # seconds of machine time.
            sypd = ns.steps * ns.dt / (365.0 * t_machine)
            if combine not in base:
                base[combine] = t_step
            speedup = base[combine] / t_step
            eff = speedup * nranks_list[0] / nranks
            rows.append({
                "combine": combine, "nranks": nranks,
                "t_step_s": t_step, "sypd": sypd,
                "speedup": speedup, "efficiency": eff,
                "hierarchical_allreduces": hier,
            })
            print(f"{combine:<13} {nranks:>6} {t_step * 1e3:>12.4f} "
                  f"{sypd:>10.1f} {speedup:>9.2f} {eff:>7.2f} {hier:>8}")
            if ns.check_bitwise:
                if not _bitwise_check(ns, nranks, combine, serial_state):
                    failures += 1
    if ns.out:
        with open(ns.out, "w", encoding="utf-8") as fh:
            json.dump({"ne": ns.ne, "nlev": ns.nlev, "qsize": ns.qsize,
                       "steps": ns.steps, "dt": ns.dt, "rows": rows}, fh,
                      indent=2)
        print(f"\n[out] {len(rows)} rows -> {ns.out}")
    if failures:
        print(f"\nFAILED: {failures} sweep point(s) were not bitwise "
              "identical between serial and sharded runs")
    return 1 if failures else 0


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", metavar="OUT.json", default=None,
                    help="also trace a small distributed run; write here")
    ap.add_argument("--measured", action="store_true",
                    help="strong-scaling sweep from measured shard runs "
                         "instead of the calibrated figures")
    ap.add_argument("--ne", type=int, default=4)
    ap.add_argument("--nlev", type=int, default=8)
    ap.add_argument("--qsize", type=int, default=4)
    ap.add_argument("--steps", type=int, default=1)
    ap.add_argument("--dt", type=float, default=300.0)
    ap.add_argument("--nranks-list", default="1,2,4,8",
                    help="comma-separated rank counts to sweep")
    ap.add_argument("--combine", choices=("flat", "hierarchical", "both"),
                    default="both")
    ap.add_argument("--check-bitwise", type=int, metavar="W", default=0,
                    help="re-run each point with W worker processes and "
                         "assert the gathered trajectory matches bitwise")
    ap.add_argument("--out", metavar="OUT.json", default=None,
                    help="write the sweep rows as JSON")
    ns = ap.parse_args()
    if ns.measured:
        sys.exit(measured_sweep(ns))
    print("#" * 72)
    print("# Figure 6: whole-CAM simulation speed")
    print("#" * 72)
    run_figure6()
    print()
    print("#" * 72)
    print("# Figure 7: HOMME strong scaling")
    print("#" * 72)
    run_figure7()
    print()
    print("#" * 72)
    print("# Figure 8: weak scaling to 10,075,000 cores")
    print("#" * 72)
    run_figure8()
    if ns.trace:
        print()
        traced_run(ns.trace)
