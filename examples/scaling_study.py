#!/usr/bin/env python
"""Scaling study: regenerate the paper's Figures 6-8 from the models.

Sweeps the whole-CAM SYPD curves (Figure 6), the HOMME strong-scaling
curves (Figure 7), and the weak-scaling series (Figure 8), printing the
same rows the paper plots.

Run:  python examples/scaling_study.py [--trace out.json]

The figures come from the calibrated performance model (no simulated
ranks to trace), so ``--trace`` additionally runs a small distributed
primitive-equation integration under the observability tracer and
exports it as a Chrome trace-event file: per-rank euler/hypervis/remap
phases, halo pack/send/overlap/unpack, and MPI waits, loadable at
https://ui.perfetto.dev.
"""

import argparse

from repro.experiments.figure6_sypd import run_figure6
from repro.experiments.figure7_strong import run_figure7
from repro.experiments.figure8_weak import run_figure8


def traced_run(path: str) -> None:
    """Trace a small distributed run alongside the model-based figures."""
    from repro.config import ModelConfig
    from repro.homme.distributed import DistributedPrimitiveEquations
    from repro.homme.element import ElementGeometry, ElementState
    from repro.mesh import CubedSphereMesh
    from repro.obs import Tracer

    tracer = Tracer("scaling_study")
    cfg = ModelConfig(ne=4, nlev=4, qsize=1)
    mesh = CubedSphereMesh(4)
    state = ElementState.isothermal_rest(ElementGeometry(mesh), cfg)
    model = DistributedPrimitiveEquations(
        cfg, mesh, state, nranks=4, dt=600.0, mode="overlap", tracer=tracer
    )
    model.run_steps(2)
    tracer.recorder.write_chrome_trace(path)
    print(f"[trace] ne=4, 4 ranks, 2 steps -> {path} "
          f"({len(tracer.recorder)} events); open in https://ui.perfetto.dev")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", metavar="OUT.json", default=None,
                    help="also trace a small distributed run; write here")
    ns = ap.parse_args()
    print("#" * 72)
    print("# Figure 6: whole-CAM simulation speed")
    print("#" * 72)
    run_figure6()
    print()
    print("#" * 72)
    print("# Figure 7: HOMME strong scaling")
    print("#" * 72)
    run_figure7()
    print()
    print("#" * 72)
    print("# Figure 8: weak scaling to 10,075,000 cores")
    print("#" * 72)
    run_figure8()
    if ns.trace:
        print()
        traced_run(ns.trace)
