#!/usr/bin/env python
"""Scaling study: regenerate the paper's Figures 6-8 from the models.

Sweeps the whole-CAM SYPD curves (Figure 6), the HOMME strong-scaling
curves (Figure 7), and the weak-scaling series (Figure 8), printing the
same rows the paper plots.

Run:  python examples/scaling_study.py
"""

from repro.experiments.figure6_sypd import run_figure6
from repro.experiments.figure7_strong import run_figure7
from repro.experiments.figure8_weak import run_figure8


if __name__ == "__main__":
    print("#" * 72)
    print("# Figure 6: whole-CAM simulation speed")
    print("#" * 72)
    run_figure6()
    print()
    print("#" * 72)
    print("# Figure 7: HOMME strong scaling")
    print("#" * 72)
    run_figure7()
    print()
    print("#" * 72)
    print("# Figure 8: weak scaling to 10,075,000 cores")
    print("#" * 72)
    run_figure8()
