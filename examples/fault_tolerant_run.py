#!/usr/bin/env python
"""Fault-tolerant integration: surviving a hostile full machine.

The paper's headline runs — 10.6 M cores integrating Katrina at 750 m
for days — only complete because the software outlives the machine's
bad moods: a laggard node here, a lost message there, the occasional
bit flipped in a DMA transfer.  This walkthrough injects all three into
a Katrina-style distributed primitive-equations run and shows the
resilience subsystem healing each one:

1. a **dropped halo message** is retransmitted with exponential backoff
   from the sender's posted copy (SimMPI keeps it precisely for this);
2. a **laggard rank** (4x slowdown) stretches the simulated wall clock
   but never touches the numerics;
3. a **sign-flipped dp3d value** (silent data corruption) is caught by
   the post-step validator, the run rolls back to the last CRC32-clean
   checkpoint and re-executes the lost steps.

The proof of correctness is at the end: the faulty run's final state is
*bitwise identical* to a fault-free reference.

Run:  python examples/fault_tolerant_run.py
"""

import tempfile

import numpy as np

from repro.config import ModelConfig
from repro.homme.distributed import DistributedPrimitiveEquations
from repro.homme.element import ElementGeometry, ElementState
from repro.mesh import CubedSphereMesh
from repro.resilience import (
    BitFlip,
    Checkpointer,
    FaultInjector,
    ResilientRunner,
    StateValidator,
)

NSTEPS = 4
DT = 600.0


def build_model(faults=None):
    """A small vortex-perturbed primitive-equations setup (Katrina in
    miniature: a warm perturbation on an isothermal atmosphere)."""
    cfg = ModelConfig(ne=4, nlev=4, qsize=1)
    mesh = CubedSphereMesh(4)
    geom = ElementGeometry(mesh)
    state = ElementState.isothermal_rest(geom, cfg)
    rng = np.random.default_rng(2005)  # Katrina's year
    state.T = geom.dss(state.T + rng.standard_normal(state.T.shape))
    state.qdp[:, 0] = 1e-3 * state.dp3d
    return DistributedPrimitiveEquations(
        cfg, mesh, state, nranks=4, dt=DT, faults=faults
    )


def main() -> None:
    print("Reference: fault-free distributed run")
    ref = build_model()
    ref.run_steps(NSTEPS)
    g_ref = ref.gather_state()
    t_ref = ref.max_rank_time()
    print(f"  {NSTEPS} steps, simulated wall time {t_ref * 1e3:.3f} ms\n")

    print("Faulty run: one drop, one laggard, one DMA-style bit flip")
    faults = FaultInjector(
        seed=7,
        drop_messages=[5],            # 6th halo message vanishes in flight
        laggards={1: 4.0},            # rank 1 sits on a slow node
        bitflips=[BitFlip(step=3, field_name="dp3d", rank=2, word=11, bit=63)],
    )
    model = build_model(faults=faults)
    with tempfile.TemporaryDirectory() as ckpt_dir:
        runner = ResilientRunner(
            model,
            Checkpointer(ckpt_dir, cadence=2),
            validator=StateValidator(),
            faults=faults,
        )
        report = runner.run(NSTEPS)

    for line in report.log:
        print(f"  [event] {line}")
    print(f"  faults fired: {report.fault_summary}")
    print(f"  retransmissions: {model.mpi.retransmissions}")
    print(f"  rollbacks: {report.rollbacks}, re-executed steps: {report.resteps}")
    print(f"  checkpoints written: {report.checkpoints}\n")

    t_faulty = model.max_rank_time()
    g = model.gather_state()
    bitwise = all(
        np.array_equal(getattr(g, f), getattr(g_ref, f))
        for f in ("v", "T", "dp3d", "qdp")
    )
    print("Outcome")
    print(f"  final state bitwise identical to fault-free run: {bitwise}")
    print(f"  simulated wall time {t_faulty * 1e3:.3f} ms "
          f"({t_faulty / t_ref:.1f}x the clean run — the price of the "
          "laggard, the timeout windows, and the rollback)")
    print()
    print("The machine misbehaved; the trajectory did not.")


if __name__ == "__main__":
    main()
