#!/usr/bin/env python
"""Held--Suarez climatology with history output (the Figure 4 protocol).

Spins up the dry dynamical core under HS94 forcing, accumulates a
surface-temperature climatology, writes daily history records with the
I/O subsystem, and prints the zonal-mean structure (warm tropics, cold
poles — the pattern Figure 4 compares across platforms).

Run:  python examples/heldsuarez_climatology.py            (~3 minutes)
      python examples/heldsuarez_climatology.py --quick    (~40 seconds)
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import ModelConfig
from repro.homme.timestep import PrimitiveEquationModel
from repro.io import HistoryReader, HistoryWriter
from repro.physics import PhysicsSuite
from repro.utils.tables import render_table


def main(quick: bool = False) -> None:
    spin, mean = (1.0, 2.0) if quick else (3.0, 6.0)
    cfg = ModelConfig(ne=4, nlev=8, qsize=0)
    suite = PhysicsSuite(("held_suarez",))
    model = PrimitiveEquationModel(cfg, forcing=suite, dt=1200.0)
    rng = np.random.default_rng(7)
    model.state.T = model.geom.dss(
        model.state.T + 0.5 * rng.standard_normal(model.state.T.shape)
    )

    print(f"Spinning up {spin:.0f} days under HS94 forcing ...")
    model.run_days(spin)

    hist_path = Path(tempfile.gettempdir()) / "heldsuarez_history.camh"
    writer = HistoryWriter(hist_path)
    steps_per_day = int(round(86400.0 / model.dt))
    acc = np.zeros_like(model.state.T[:, -1])
    print(f"Averaging over {mean:.0f} days, writing daily history ...")
    for day in range(int(mean)):
        for _ in range(steps_per_day):
            model.step()
            acc += model.state.T[:, -1]
        writer.write("TS", model.t / 86400.0, model.state.T[:, -1])
    clim = acc / (int(mean) * steps_per_day)

    # Zonal-mean structure.
    lat = model.geom.lat
    bands = np.linspace(-np.pi / 2, np.pi / 2, 10)
    rows = []
    for lo, hi in zip(bands[:-1], bands[1:]):
        sel = (lat >= lo) & (lat < hi)
        if np.any(sel):
            rows.append(
                [f"{np.rad2deg(lo):+.0f}..{np.rad2deg(hi):+.0f}",
                 f"{clim[sel].mean():.1f}"]
            )
    print()
    print(render_table(
        ["latitude band", "mean surface T [K]"],
        rows, title="Held-Suarez climatological surface temperature",
    ))

    reader = HistoryReader(hist_path)
    recs = reader.records()
    print(f"\nHistory file: {hist_path} ({len(recs)} daily records)")
    print(f"Last record: TS at day {recs[-1].time:.1f}, "
          f"global mean {recs[-1].data.mean():.2f} K")
    tropics = clim[np.abs(lat) < 0.3].mean()
    poles = clim[np.abs(lat) > 1.2].mean()
    print(f"\nEquator-pole contrast: {tropics - poles:.1f} K "
          f"(HS94 relaxes toward 60 K aloft)")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
