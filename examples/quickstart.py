#!/usr/bin/env python
"""Quickstart: the three layers of the library in five minutes.

1. Run the real spectral-element dynamical core on a small cubed
   sphere and watch conservation hold.
2. Execute a Table-1 kernel workload on all four execution backends
   (the paper's central comparison).
3. Price a full-machine run with the scaling model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.backends import ALL_BACKENDS, table1_workloads
from repro.config import ModelConfig
from repro.homme.timestep import PrimitiveEquationModel
from repro.perf.scaling import HommePerfModel
from repro.utils.tables import render_table


def dynamics_demo() -> None:
    print("=" * 70)
    print("1. The HOMME dynamical core (real numerics, ne4, 8 levels)")
    print("=" * 70)
    cfg = ModelConfig(ne=4, nlev=8, qsize=1)
    model = PrimitiveEquationModel(cfg, dt=600.0)
    rng = np.random.default_rng(0)
    model.state.T = model.geom.dss(
        model.state.T + rng.standard_normal(model.state.T.shape)
    )
    model.state.qdp[:, 0] = 1e-3 * model.state.dp3d
    d0 = model.diagnostics()
    model.run_steps(12)
    d1 = model.diagnostics()
    rows = [
        ["dry air mass [kg]", f"{d0['mass']:.6e}", f"{d1['mass']:.6e}"],
        ["total energy [J]", f"{d0['energy']:.6e}", f"{d1['energy']:.6e}"],
        ["max wind [m/s]", f"{d0['max_wind']:.3f}", f"{d1['max_wind']:.3f}"],
        ["surface pressure range [Pa]",
         f"{d0['ps_max'] - d0['ps_min']:.1f}", f"{d1['ps_max'] - d1['ps_min']:.1f}"],
    ]
    print(render_table(["quantity", "initial", "after 12 steps"], rows))
    print(f"\nmass drift: {abs(d1['mass'] - d0['mass']) / d0['mass']:.2e} (machine precision)\n")


def backends_demo() -> None:
    print("=" * 70)
    print("2. One kernel, four execution models (euler_step, Table 1)")
    print("=" * 70)
    wl = table1_workloads()["euler_step"]
    rows = []
    for name, cls in ALL_BACKENDS.items():
        rep = cls().execute(wl)
        rows.append(
            [name, f"{rep.seconds:.2f}", f"{rep.gflops:.1f}",
             f"{rep.bytes_moved / 1e9:.1f}", rep.notes.get("bound", "-")]
        )
    print(render_table(
        ["backend", "seconds", "GF/s", "GB moved", "bound"], rows))
    print("\nNote the OpenACC column's 10x traffic (per-tracer copyin, paper")
    print("Algorithm 1) versus Athread's LDM-resident reuse (Algorithm 2).\n")


def scaling_demo() -> None:
    print("=" * 70)
    print("3. Pricing the paper's full-machine run (ne4096, 155,000 ranks)")
    print("=" * 70)
    m = HommePerfModel(4096, 155_000)
    print(f"  elements/process : {m.elems_per_proc}")
    print(f"  step time        : {m.step_seconds * 1e3:.1f} ms")
    print(f"  sustained        : {m.pflops:.2f} PFlops "
          f"(paper: 3.3 PFlops on 10,075,000 cores)")
    print(f"  SYPD (dynamics)  : {m.sypd():.3f}")


if __name__ == "__main__":
    dynamics_demo()
    backends_demo()
    scaling_demo()
