#!/usr/bin/env python
"""Algorithms 1 and 2, executed on the simulated SW26010 hardware.

The paper's pivotal code comparison (Section 7.3): the OpenACC port of
euler_step copyins its arrays inside the tracer loop (Algorithm 1),
while the Athread rewrite keeps them LDM-resident with double-buffered
DMA (Algorithm 2), cutting measured data transfer to ~10%.

This script runs BOTH versions functionally — real bytes through the
scratchpad allocator and DMA engine, real flops through the vector
unit — verifies the results are bit-identical, and prints the traffic
ledger.

Run:  python examples/athread_walkthrough.py
"""

from repro.backends.functional_exec import (
    AthreadStyleExecution,
    MiniWorkload,
    OpenACCStyleExecution,
    _reference_update,
)
from repro.utils.tables import render_table

import numpy as np


def main() -> None:
    # The paper's configuration: 25 tracers, the kernel's ~5 loop nests.
    wl = MiniWorkload.random(qsize=25, nlev=16, points=16)
    passes = 5

    acc = OpenACCStyleExecution(passes=passes)
    ath = AthreadStyleExecution(passes=passes)
    out_acc = acc.run(wl)
    out_ath = ath.run(wl)
    ref = _reference_update(wl, passes=passes)

    print("Numerics:")
    print(f"  OpenACC matches reference : {np.allclose(out_acc, ref)}")
    print(f"  Athread matches reference : {np.allclose(out_ath, ref)}")
    print(f"  bit-identical results     : {np.array_equal(out_acc, out_ath)}")
    print()

    rows = [
        ["OpenACC (Algorithm 1)", f"{acc.dma_bytes / 1024:.0f}",
         acc.cpe.dma.transfer_count, f"{acc.cpe.vector.flops}"],
        ["Athread (Algorithm 2)", f"{ath.dma_bytes / 1024:.0f}",
         ath.cpe.dma.transfer_count, f"{ath.cpe.vector.flops}"],
    ]
    print(render_table(
        ["discipline", "DMA KB", "DMA descriptors", "vector flops"],
        rows, title="Traffic ledger (25 tracers x 5 loop nests)",
    ))
    ratio = ath.dma_bytes / acc.dma_bytes
    print(f"\nAthread/OpenACC traffic ratio: {ratio:.3f}")
    print('Paper, Section 7.3: "total data transfer size has been decreased')
    print('to 10% compared with the OpenACC solution".')


if __name__ == "__main__":
    main()
