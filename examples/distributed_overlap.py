#!/usr/bin/env python
"""The bndry_exchangev redesign: functional proof + paper-scale effect.

Part 1 integrates the distributed shallow-water model (every DSS a
real halo exchange over SimMPI) under both disciplines and proves the
numerics are bit-identical — the redesign changes *when* data moves,
never *what* is computed.

Part 2 evaluates the calibrated step-time model at the paper's scales,
where halo messages carry 128 levels x ~46 fields and the MPE-side
pack/unpack is substantial: the overlap + direct-unpack redesign buys
up to ~20% of the step, approaching the paper's "23% in the best
cases" (Section 7.6).

Run:  python examples/distributed_overlap.py [--trace out.json]

With ``--trace``, the Part 1 overlap run is re-executed under the
observability tracer (:mod:`repro.obs`) and exported as a Chrome
trace-event file — load it at https://ui.perfetto.dev to see the
pack/send/overlap/unpack phases per simulated rank.
"""

import argparse

import numpy as np

from repro.homme.distributed import DistributedShallowWater
from repro.mesh import CubedSphereMesh
from repro.obs import Tracer
from repro.perf.scaling import HommePerfModel
from repro.utils.tables import render_table


def functional_proof() -> None:
    print("Part 1: functional equivalence on a real distributed integration")
    mesh = CubedSphereMesh(ne=8)
    states = {}
    for mode in ("classic", "overlap"):
        m = DistributedShallowWater(mesh, nranks=16, mode=mode)
        m.run_steps(5)
        states[mode] = m.gather_state()
    same_h = np.array_equal(states["classic"].h, states["overlap"].h)
    same_v = np.array_equal(states["classic"].v, states["overlap"].v)
    print(f"  5 RK3 steps on 16 ranks: h bit-identical={same_h}, "
          f"v bit-identical={same_v}\n")


def traced_run(path: str) -> None:
    """Re-run the overlap integration traced; export a Chrome trace."""
    tracer = Tracer("distributed_overlap")
    m = DistributedShallowWater(
        CubedSphereMesh(ne=4), nranks=4, mode="overlap", tracer=tracer
    )
    m.run_steps(2)
    tracer.recorder.write_chrome_trace(path)
    print(f"[trace] ne=4, 4 ranks, 2 steps -> {path} "
          f"({len(tracer.recorder)} events); open in https://ui.perfetto.dev")


def paper_scale_effect() -> None:
    print("Part 2: the redesign at the paper's scales (step-time model)")
    rows = []
    for ne, nproc in ((256, 16384), (256, 65536), (256, 131072), (1024, 131072)):
        on = HommePerfModel(ne, nproc, overlap=True)
        off = HommePerfModel(ne, nproc, overlap=False)
        gain = 1.0 - on.step_seconds / off.step_seconds
        rows.append(
            [f"ne{ne}", nproc, on.elems_per_proc,
             f"{off.step_seconds * 1e3:.2f}", f"{on.step_seconds * 1e3:.2f}",
             f"{gain * 100:.1f}%"]
        )
    print(render_table(
        ["mesh", "ranks", "elems/rank", "classic step [ms]",
         "redesigned step [ms]", "saving"],
        rows,
        title="Overlap + direct unpack vs classic bndry_exchangev",
    ))
    print()
    print('Paper, Section 7.6: the overlap "reduces the run time of HOMME by')
    print('23% in the best cases"; direct unpack removes the redundant')
    print("pack-buffer memcpy on top.")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", metavar="OUT.json", default=None,
                    help="write a Chrome trace of the overlap run here")
    ns = ap.parse_args()
    functional_proof()
    paper_scale_effect()
    if ns.trace:
        print()
        traced_run(ns.trace)
