#!/usr/bin/env python
"""The Hurricane Katrina experiment (paper Section 9, Figure 9).

Plants a gradient-wind-balanced warm-core vortex at Katrina's genesis
position, runs coarse (ne30-class) and fine (ne120-class) members of
the full dycore + Reed--Jablonowski physics on a reduced-radius sphere,
tracks both storms, and prints the simulated series next to the NHC
best track.

Run:  python examples/katrina_lifecycle.py          (~5-10 minutes)
      python examples/katrina_lifecycle.py --quick  (~2 minutes)
"""

import sys

from repro.homme.rhs import PTOP
from repro.katrina import KatrinaExperiment
from repro.katrina.besttrack import KATRINA_BEST_TRACK
from repro.utils.tables import render_table
from repro.utils.viz import ascii_map


def main(quick: bool = False) -> None:
    hours = 3.0 if quick else 8.0
    exp = KatrinaExperiment(coarse_ne=4, fine_ne=12, hours=hours)

    # Show the planted storm before running (the Figure 9b structure).
    model, tracker = exp._build_member(exp.fine_ne)
    ps = model.state.ps(PTOP)
    print(ascii_map(
        model.mesh, -ps, nlat=20, nlon=64,
        title="Initial surface-pressure depression (darker = higher ps)",
        marker=(exp.params.center_lat_deg, exp.params.center_lon_deg),
    ))
    print()
    print(f"Running twin members for {hours:.0f} simulated hours "
          f"(reduced-radius sphere, X={exp.x:.0f}) ...")
    results = exp.run()

    rows = []
    for key in ("coarse", "fine"):
        r = results[key]
        rows.append(
            [r.label, f"{r.effective_resolution_km:.0f} km",
             f"{r.initial_msw:.1f}", f"{r.peak_msw:.1f}", f"{r.late_msw:.1f}",
             f"{r.final_min_ps:.1f}", "yes" if r.retained else "NO"]
        )
    print()
    print(render_table(
        ["member", "eff. res", "init MSW", "peak MSW", "late MSW",
         "min ps [hPa]", "storm retained"],
        rows, title="Resolution sensitivity (the paper's Figure 9a vs 9b)",
    ))

    print()
    fine = results["fine"]
    rows = [
        [f"{fx.hours:.0f}", f"{fx.lat:.2f}", f"{fx.lon:.2f}",
         f"{fx.msw_ms:.1f}", f"{fx.min_ps_hpa:.1f}"]
        for fx in fine.tracker.fixes
    ]
    print(render_table(
        ["hour", "lat", "lon", "MSW [m/s]", "min ps [hPa]"],
        rows, title="Fine-member track and intensity (Figure 9c/9d analogue)",
    ))

    print()
    obs = [
        [f"{p.hours:.0f}", f"{p.lat:.1f}", f"{p.lon:.1f}",
         f"{p.max_wind_ms:.1f}", f"{p.min_pressure_hpa:.0f}"]
        for p in KATRINA_BEST_TRACK[::4]
    ]
    print(render_table(
        ["hour", "lat", "lon", "MSW [m/s]", "min ps [hPa]"],
        obs, title="NHC best track of Katrina (every 24 h)",
    ))


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
