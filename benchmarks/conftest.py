"""Shared fixtures for the benchmark harness."""

import pytest


@pytest.fixture(scope="session")
def record_comparison():
    """Collect comparison tables across benchmarks and print a digest."""
    tables = []

    def _record(table):
        tables.append(table)
        return table

    yield _record
    if tables:
        print("\n\n===== paper-vs-measured digest =====")
        for t in tables:
            print()
            print(t.render())
