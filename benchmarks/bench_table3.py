"""Benchmark: regenerate Table 3 (NGGPS comparison vs FV3/MPAS)."""

from repro.experiments.table3_nggps import run_table3


def test_table3_regeneration(benchmark, record_comparison):
    table = benchmark(run_table3, verbose=False)
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"NGGPS ratio structure violated: {failed}"
