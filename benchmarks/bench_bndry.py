"""Ablation bench: the bndry_exchangev redesign (paper Section 7.6).

Quantifies the two design decisions on real partition halo graphs:

1. computation/communication overlap — "reduces the run time of HOMME
   by 23% in the best cases";
2. direct unpack vs pack-buffer staging — "reduce the run time of the
   dynamical core ... by another 30%" of the memory-copy time.
"""

import numpy as np
import pytest

from repro.homme.bndry import HaloExchanger
from repro.mesh import CubedSphereMesh, SFCPartition
from repro.network import SimMPI
from repro.perf.scaling import HommePerfModel


@pytest.fixture(scope="module")
def functional_setup():
    mesh = CubedSphereMesh(ne=8)
    part = SFCPartition(8, 16)
    hx = HaloExchanger(mesh, part)
    rng = np.random.default_rng(0)
    field = rng.standard_normal((mesh.nelem, 4, 4, 16))
    return mesh, hx, field


def _exchange(hx, field, mode):
    mpi = SimMPI(16)
    # Realistic compute attribution: boundary-heavy partition at ne8/16.
    outs, rep = hx.exchange(
        hx.scatter(field), mpi, mode=mode,
        boundary_compute=[2e-4] * 16, inner_compute=[6e-4] * 16,
    )
    return rep


def test_functional_overlap_beats_classic(benchmark, functional_setup):
    mesh, hx, field = functional_setup
    rep_overlap = benchmark(_exchange, hx, field, "overlap")
    rep_classic = _exchange(hx, field, "classic")
    assert rep_overlap.max_time < rep_classic.max_time
    # Direct unpack halves the staging copies.
    assert rep_overlap.memcpy_seconds == pytest.approx(
        rep_classic.memcpy_seconds / 2
    )


def test_model_scale_overlap_gain(benchmark):
    """At the paper's scale the overlap redesign buys ~10-25% of the
    step (23% 'in the best cases')."""

    def gains():
        out = []
        for ne, nproc in ((256, 65536), (256, 131072), (1024, 131072)):
            on = HommePerfModel(ne, nproc, overlap=True).step_seconds
            off = HommePerfModel(ne, nproc, overlap=False).step_seconds
            out.append((off - on) / off)
        return out

    result = benchmark(gains)
    assert max(result) > 0.03
    assert all(g >= 0 for g in result)
