"""Benchmark: regenerate Figure 6 (whole-CAM SYPD sweeps)."""

from repro.experiments.figure6_sypd import run_figure6


def test_figure6_regeneration(benchmark, record_comparison):
    table = benchmark(run_figure6, verbose=False)
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"SYPD anchors/bands violated: {failed}"
