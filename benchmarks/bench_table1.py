"""Benchmark: regenerate Table 1 (kernel timings per platform).

Run with ``pytest benchmarks/bench_table1.py --benchmark-only``.
The benchmarked callable is the full table regeneration; the assertions
check every simulated cell against the paper.
"""

import pytest

from repro.experiments.table1_kernels import PAPER_TABLE1, run_table1


def test_table1_regeneration(benchmark, record_comparison):
    table = benchmark(run_table1, verbose=False)
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"cells off by >25%: {failed}"


def test_table1_row_count(benchmark):
    table = benchmark(run_table1, verbose=False)
    # 6 kernels x 3 published columns.
    assert len(table.records) == len(PAPER_TABLE1) * 3
