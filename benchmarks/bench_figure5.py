"""Benchmark: regenerate Figure 5 (kernel speedups over platforms)."""

from repro.experiments.figure5_speedups import run_figure5


def test_figure5_regeneration(benchmark, record_comparison):
    table = benchmark(run_figure5, verbose=False)
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"speedup claims violated: {failed}"
