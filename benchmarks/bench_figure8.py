"""Benchmark: regenerate Figure 8 (weak scaling to the full machine)."""

from repro.experiments.figure8_weak import run_figure8


def test_figure8_regeneration(benchmark, record_comparison):
    table = benchmark.pedantic(run_figure8, kwargs={"verbose": False},
                               iterations=1, rounds=1)
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"weak-scaling shape violated: {failed}"
