"""Benchmark: regenerate Figure 9 (Katrina resolution sensitivity).

Runs the real twin experiment (coarse + fine members with the full
dycore and RJ physics on the reduced-radius sphere); the heaviest
benchmark in the harness.
"""

from repro.experiments.figure9_katrina import run_figure9


def test_figure9_regeneration(benchmark, record_comparison):
    table = benchmark.pedantic(
        run_figure9,
        kwargs={"verbose": False, "hours": 4.0},
        iterations=1,
        rounds=1,
    )
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"Katrina resolution sensitivity failed: {failed}"
