"""Benchmark: regenerate Figure 4 (two-platform climatology validation).

The benchmarked quantity is a real (short) pair of Held--Suarez runs,
so this bench also exercises the functional dycore end-to-end.
"""

from repro.experiments.figure4_validation import run_figure4


def test_figure4_regeneration(benchmark, record_comparison):
    table = benchmark.pedantic(
        run_figure4,
        kwargs={"verbose": False, "spinup_days": 1.0, "mean_days": 2.0},
        iterations=1,
        rounds=1,
    )
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"climatology validation failed: {failed}"
