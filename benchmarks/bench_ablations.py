"""Ablation benches for the design choices DESIGN.md calls out.

3. LDM reuse (Athread) vs per-iteration copyin (OpenACC) DMA traffic;
4. register-communication scan vs serial vertical accumulation;
5. shuffle+regcomm transposition vs strided DMA;
6. layer decomposition: the 8x16 split's parallelism gain.
"""

import numpy as np
import pytest

from repro.backends import AthreadBackend, OpenACCBackend, table1_workloads
from repro.backends.scan import regcomm_scan, scan_speedup, serial_scan_cycles
from repro.backends.transpose import (
    strided_dma_transpose_cycles,
    transpose_distributed,
)
from repro.sunway.regcomm import CPEMeshComm


def test_ablation_dma_reuse_traffic(benchmark):
    """Athread LDM reuse cuts euler_step DMA traffic to 10%."""

    def traffic_ratio():
        wl = table1_workloads()["euler_step"]
        acc = OpenACCBackend().execute(wl)
        ath = AthreadBackend().execute(wl)
        return ath.bytes_moved / acc.bytes_moved

    ratio = benchmark(traffic_ratio)
    assert ratio == pytest.approx(0.1, rel=0.02)


def test_ablation_regcomm_scan(benchmark):
    """The three-stage scan vs one CPE walking the column."""

    def run_scan():
        a = np.random.default_rng(0).uniform(0.5, 1.5, size=(128, 8))
        p, cycles = regcomm_scan(a)
        return p, cycles

    p, chain_cycles = benchmark(run_scan)
    assert np.allclose(p[-1], p[0] + np.sum(np.diff(p, axis=0), axis=0))
    # Critical-path speedup ~2.9x at 128 levels over 8 rows.
    assert scan_speedup(128) > 2.5
    assert serial_scan_cycles(128) > chain_cycles


def test_ablation_shuffle_transpose(benchmark):
    """Register transposition vs strided DMA round trip."""

    def run():
        m = np.random.default_rng(1).standard_normal((32, 32))
        out, cycles = transpose_distributed(m, CPEMeshComm())
        return out, cycles

    out, reg_cycles = benchmark(run)
    dma_cycles = strided_dma_transpose_cycles(32)
    assert dma_cycles / reg_cycles > 5.0


def test_ablation_layer_decomposition(benchmark):
    """The 8x16 layer split exposes 8x more parallel units per element
    than element-only decomposition, with only the scan chain as cost."""

    def parallelism():
        levels, rows = 128, 8
        units_element_only = 1          # one element = one work unit
        units_layer_split = rows        # 8 groups of 16 levels
        scan_overhead = (rows - 1) * 11  # register hops
        work = levels * 6.0             # serial cycles per column
        t_serial = work
        t_split = work / rows * 2 + scan_overhead
        return units_layer_split / units_element_only, t_serial / t_split

    units, speedup = benchmark(parallelism)
    assert units == 8
    assert speedup > 2.5


def test_ablation_kernel_fusion(benchmark):
    """Paper Section 10: 'using fused memory operation to achieve better
    bandwidth' — fusing the two hyperviscosity sweeps keeps the
    intermediate Laplacians LDM-resident and saves ~20-25% of the pair."""
    from repro.backends.workloads import fused_hypervis_workload
    from repro.config import ModelConfig

    def run():
        cfg = ModelConfig(ne=256, nlev=128, qsize=4)
        wls = table1_workloads()
        b = AthreadBackend()
        sep = (
            b.execute(wls["hypervis_dp1"]).seconds
            + b.execute(wls["hypervis_dp2"]).seconds
        )
        fused = b.execute(fused_hypervis_workload(cfg, 64)).seconds
        return 1.0 - fused / sep

    saving = benchmark(run)
    assert 0.10 < saving < 0.40
