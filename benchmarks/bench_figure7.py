"""Benchmark: regenerate Figure 7 (HOMME strong scaling)."""

from repro.experiments.figure7_strong import run_figure7


def test_figure7_regeneration(benchmark, record_comparison):
    table = benchmark.pedantic(run_figure7, kwargs={"verbose": False},
                               iterations=1, rounds=1)
    record_comparison(table)
    failed = [r.quantity for r in table.records if not r.passed]
    assert table.all_passed, f"strong-scaling shape violated: {failed}"
