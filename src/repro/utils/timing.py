"""Simulated-time clock and wall-clock timing helpers.

The hardware simulators charge costs to a :class:`SimClock` rather than
reading the host's wall clock, so simulated results are deterministic and
independent of the machine running the reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class SimClock:
    """A monotonically advancing simulated clock.

    Costs are charged in seconds via :meth:`advance`.  Components that
    overlap in simulated time (e.g. communication hidden behind
    computation) use :meth:`advance_to` with an absolute target so that
    the clock reflects the *maximum* of overlapping activities rather
    than their sum.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time [s]."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` if ``t`` is later."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self) -> None:
        """Reset simulated time to zero."""
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6e}s)"


@dataclass
class Timer:
    """Accumulating named wall-clock timer (the paper's 'Measurement: Timers').

    Used by the benchmark harness to time the *functional* numpy kernels;
    the simulated machine timings come from :class:`SimClock` instead.
    """

    name: str
    total: float = 0.0
    count: int = 0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        dt = time.perf_counter() - self._start
        self._start = None
        self.total += dt
        self.count += 1
        return dt

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean time per timed region [s]."""
        return self.total / self.count if self.count else 0.0
