"""Structured run logging.

Experiments record (key, value) events into a :class:`RunLog`; drivers
print them and tests assert on them.  This replaces ad-hoc prints so the
experiment output is machine-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class LogEvent:
    """One structured event: a named measurement with arbitrary metadata."""

    key: str
    value: Any
    meta: dict[str, Any] = field(default_factory=dict)


class RunLog:
    """An append-only log of structured events for one experiment run."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self._events: list[LogEvent] = []

    def record(self, key: str, value: Any, **meta: Any) -> None:
        """Append an event."""
        self._events.append(LogEvent(key, value, dict(meta)))

    def values(self, key: str) -> list[Any]:
        """All recorded values for ``key`` in order."""
        return [e.value for e in self._events if e.key == key]

    def last(self, key: str, default: Any = None) -> Any:
        """Most recent value for ``key``."""
        vals = self.values(key)
        return vals[-1] if vals else default

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def summary(self) -> str:
        """Human-readable one-line-per-event summary."""
        lines = [f"RunLog {self.name!r} ({len(self._events)} events)"]
        for e in self._events:
            meta = f"  {e.meta}" if e.meta else ""
            lines.append(f"  {e.key} = {e.value}{meta}")
        return "\n".join(lines)
