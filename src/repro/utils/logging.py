"""Structured run logging.

Experiments record (key, value) events into a :class:`RunLog`; drivers
print them and tests assert on them.  This replaces ad-hoc prints so the
experiment output is machine-checkable.

Events share the observability layer's model (:mod:`repro.obs`): each
carries a *simulated-time* timestamp ``t`` (never wall clock, so logs
are deterministic) and a sequence number, and the whole log exports as
JSONL — one canonical JSON object per event — which is what
``repro.experiments.runner`` writes per experiment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator


def jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and other oddballs to JSON types."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return item()  # numpy scalar
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()  # numpy array
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class LogEvent:
    """One structured event: a named measurement with arbitrary metadata.

    ``t`` is the simulated time the event describes (0.0 when the
    measurement has no time axis); ``seq`` is the append order.
    """

    key: str
    value: Any
    meta: dict[str, Any] = field(default_factory=dict)
    t: float = 0.0
    seq: int = 0


class RunLog:
    """An append-only log of structured events for one experiment run."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self._events: list[LogEvent] = []

    def record(self, key: str, value: Any, *, t: float = 0.0, **meta: Any) -> None:
        """Append an event stamped with simulated time ``t``."""
        self._events.append(
            LogEvent(key, value, dict(meta), float(t), len(self._events))
        )

    def values(self, key: str) -> list[Any]:
        """All recorded values for ``key`` in order."""
        return [e.value for e in self._events if e.key == key]

    def last(self, key: str, default: Any = None) -> Any:
        """Most recent value for ``key``."""
        vals = self.values(key)
        return vals[-1] if vals else default

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def summary(self) -> str:
        """Human-readable one-line-per-event summary."""
        lines = [f"RunLog {self.name!r} ({len(self._events)} events)"]
        for e in self._events:
            meta = f"  {e.meta}" if e.meta else ""
            lines.append(f"  {e.key} = {e.value}{meta}")
        return "\n".join(lines)

    # -- JSONL export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One canonical JSON object per event (sorted keys, stable)."""
        lines = []
        for e in self._events:
            row = {
                "log": self.name,
                "seq": e.seq,
                "t": e.t,
                "key": e.key,
                "value": jsonable(e.value),
                "meta": jsonable(e.meta),
            }
            lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        """Stream the JSONL export to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
