"""ASCII visualization of cubed-sphere fields for the examples.

Renders an (nelem, np, np) field as a latitude-longitude character map
— enough to *see* the Katrina vortex, the Held--Suarez jets, or the
Rossby--Haurwitz wave in a terminal without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

from ..mesh.cubed_sphere import CubedSphereMesh

#: Dark-to-bright ramp.
RAMP = " .:-=+*#%@"


def latlon_grid(
    mesh: CubedSphereMesh,
    field: np.ndarray,
    nlat: int = 24,
    nlon: int = 60,
) -> np.ndarray:
    """Bin GLL point values onto a regular lat-lon grid (nearest mean)."""
    if field.shape != mesh.lat.shape:
        raise ValueError(f"field shape {field.shape} != mesh {mesh.lat.shape}")
    lat_i = np.clip(
        ((mesh.lat + np.pi / 2) / np.pi * nlat).astype(int), 0, nlat - 1
    )
    lon_i = np.clip((mesh.lon / (2 * np.pi) * nlon).astype(int), 0, nlon - 1)
    acc = np.zeros((nlat, nlon))
    cnt = np.zeros((nlat, nlon))
    np.add.at(acc, (lat_i.reshape(-1), lon_i.reshape(-1)), field.reshape(-1))
    np.add.at(cnt, (lat_i.reshape(-1), lon_i.reshape(-1)), 1)
    with np.errstate(invalid="ignore"):
        grid = acc / cnt
    # Fill empty bins from the zonal mean.
    for i in range(nlat):
        row = grid[i]
        if np.isnan(row).any():
            fill = np.nanmean(row) if not np.isnan(row).all() else 0.0
            row[np.isnan(row)] = fill
    return grid


def ascii_map(
    mesh: CubedSphereMesh,
    field: np.ndarray,
    nlat: int = 24,
    nlon: int = 60,
    title: str | None = None,
    marker: tuple[float, float] | None = None,
) -> str:
    """Render a field as an ASCII map (north at the top).

    ``marker`` is an optional (lat_deg, lon_deg) position drawn as 'X'
    (the storm-center fix in the Katrina example).
    """
    grid = latlon_grid(mesh, field, nlat, nlon)
    lo, hi = float(grid.min()), float(grid.max())
    span = hi - lo if hi > lo else 1.0
    chars = [
        [RAMP[int((v - lo) / span * (len(RAMP) - 1))] for v in row]
        for row in grid
    ]
    if marker is not None:
        mlat, mlon = marker
        i = int(np.clip((np.deg2rad(mlat) + np.pi / 2) / np.pi * nlat, 0, nlat - 1))
        j = int(np.clip(np.deg2rad(mlon % 360.0) / (2 * np.pi) * nlon, 0, nlon - 1))
        chars[i][j] = "X"
    lines = []
    if title:
        lines.append(f"{title}  [{lo:.4g} .. {hi:.4g}]")
    for row in reversed(chars):  # north up
        lines.append("".join(row))
    return "\n".join(lines)
