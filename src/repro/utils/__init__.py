"""Shared utilities: simulated clocks, structured run logs, table rendering."""

from .timing import SimClock, Timer
from .tables import render_table
from .logging import RunLog

__all__ = ["SimClock", "Timer", "render_table", "RunLog"]
