"""Shared utilities: simulated clocks, structured run logs, table rendering.

Cross-cutting plumbing with no paper section of its own, but in
service of two of the paper's reporting conventions:

- :mod:`~repro.utils.timing` — :class:`SimClock`/:class:`Timer`, the
  simulated-time base that lets every performance number in the repo
  (Table 1 timings, Figure 6--8 scaling curves) be deterministic
  model seconds rather than wall clock;
- :mod:`~repro.utils.logging` — :class:`RunLog`, the structured
  (JSONL-exportable) event log each experiment driver records its
  paper-vs-measured rows into;
- :mod:`~repro.utils.tables` — ASCII rendering for those comparison
  tables, in the layout of the paper's Table 1/Table 3.
"""

from .timing import SimClock, Timer
from .tables import render_table
from .logging import RunLog

__all__ = ["SimClock", "Timer", "render_table", "RunLog"]
