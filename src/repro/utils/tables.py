"""Plain-text table rendering for experiment reports.

Every experiment driver prints the same rows the paper reports; this
module renders them in aligned ASCII so the benchmark logs read like the
paper's tables.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    ncol = max(len(r) for r in cells)
    for r in cells:
        r.extend([""] * (ncol - len(r)))
    widths = [max(len(r[i]) for r in cells) for i in range(ncol)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
