"""Parallel-engine smoke experiment: real cores, same bits.

Not a paper artifact — a reproduction-infrastructure check that rides
the same harness.  It integrates the distributed shallow-water and
primitive-equation models serially and through the
:mod:`repro.parallel` worker pool and asserts the engine's contract
(DESIGN.md Section 10):

- parallel trajectories are **bitwise identical** to serial;
- the simulated clocks agree exactly (SimMPI stays the timing model);
- when the pool starts, work is actually dispatched to workers;
- the pipelined mode (DESIGN.md Section 11) keeps both guarantees
  while overlapping driver combines with worker compute.

The "paper" column holds the contract's expected values (all boolean),
so a MISS here means the determinism rule broke, not that a scale-down
drifted.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..homme.distributed import (
    DistributedPrimitiveEquations,
    DistributedShallowWater,
)
from ..homme.element import ElementGeometry, ElementState
from ..mesh.cubed_sphere import CubedSphereMesh
from ..parallel import available_cores
from ..perf.report import ComparisonTable


def _prim_state(ne: int, nlev: int = 8, qsize: int = 2):
    mesh = CubedSphereMesh(ne, 4)
    cfg = ModelConfig(ne=ne, nlev=nlev, qsize=qsize)
    state = ElementState.isothermal_rest(ElementGeometry(mesh), cfg)
    rng = np.random.default_rng(20)
    state.T += rng.standard_normal(state.T.shape)
    state.qdp[:] = (0.5 + rng.random(state.qdp.shape)) * state.dp3d[:, None]
    return cfg, mesh, state


def run_parallel_smoke(
    verbose: bool = True,
    workers: int = 2,
    steps: int = 2,
) -> ComparisonTable:
    """Cross-validate parallel vs serial distributed integration."""
    table = ComparisonTable("parallel")
    workers = max(2, int(workers))
    if verbose:
        print(f"parallel smoke: {workers} workers over "
              f"{available_cores()} core(s), {steps} steps per model")

    mesh8 = CubedSphereMesh(8, 4)
    with DistributedShallowWater(mesh8, nranks=4) as ser, \
            DistributedShallowWater(mesh8, nranks=4, workers=workers,
                                    validate=True) as par:
        ser.run_steps(steps)
        par.run_steps(steps)
        gs, gp = ser.gather_state(), par.gather_state()
        table.add("sw ne8 bitwise h", 1.0,
                  1.0 if np.array_equal(gs.h, gp.h) else 0.0, "boolean", 0.0)
        table.add("sw ne8 bitwise v", 1.0,
                  1.0 if np.array_equal(gs.v, gp.v) else 0.0, "boolean", 0.0)
        table.add("sw ne8 simulated clocks equal", 1.0,
                  1.0 if ser.max_rank_time() == par.max_rank_time() else 0.0,
                  "boolean", 0.0)
        pool_ok = (not par.engine.active) or par.engine.tasks_parallel > 0
        table.add("pool dispatched work (or clean fallback)", 1.0,
                  1.0 if pool_ok else 0.0, "boolean", 0.0)
        hv = par.health()
        table.health = hv.to_json()
        table.add("sw ne8 health not critical", 1.0,
                  1.0 if hv.verdict != "critical" else 0.0, "boolean", 0.0)
        if verbose:
            print(f"  health: {hv.verdict}"
                  + (f" ({len(hv.findings)} finding(s))" if hv.findings
                     else ""))
        if verbose and not par.engine.active:
            print(f"  note: pool fell back to serial "
                  f"({par.engine.fallback_reason})")

        # Pipelined mode: boundary/inner split dispatch with driver
        # combines overlapped against worker compute — same bits, same
        # simulated clocks (DESIGN.md Section 11).
        with DistributedShallowWater(mesh8, nranks=4, workers=workers,
                                     validate=True, pipeline=True) as pip:
            pip.run_steps(steps)
            gq = pip.gather_state()
            pipe_same = (np.array_equal(gs.h, gq.h)
                         and np.array_equal(gs.v, gq.v))
            table.add("sw ne8 pipelined bitwise (h,v)", 1.0,
                      1.0 if pipe_same else 0.0, "boolean", 0.0)
            table.add("sw ne8 pipelined simulated clocks equal", 1.0,
                      1.0 if ser.max_rank_time() == pip.max_rank_time()
                      else 0.0, "boolean", 0.0)
            pipe_ok = (not pip.engine.active) or pip.engine.pipeline_batches > 0
            table.add("pipeline overlapped batches (or clean fallback)", 1.0,
                      1.0 if pipe_ok else 0.0, "boolean", 0.0)
            if verbose and pip.engine.active:
                print(f"  pipeline: {pip.engine.pipeline_batches} overlapped "
                      f"batches, overlap fraction "
                      f"{pip.engine.overlap_fraction():.2f}")

    cfg, mesh4, state = _prim_state(ne=4)
    with DistributedPrimitiveEquations(cfg, mesh4, state, nranks=4,
                                       dt=30.0) as ser, \
            DistributedPrimitiveEquations(cfg, mesh4, state, nranks=4,
                                          dt=30.0, workers=workers,
                                          validate=True) as par:
        ser.run_steps(steps)
        par.run_steps(steps)
        gs, gp = ser.gather_state(), par.gather_state()
        same = all(np.array_equal(getattr(gs, f), getattr(gp, f))
                   for f in ("v", "T", "dp3d", "qdp"))
        table.add("prim ne4 bitwise (v,T,dp3d,qdp)", 1.0,
                  1.0 if same else 0.0, "boolean", 0.0)
        table.add("prim ne4 simulated clocks equal", 1.0,
                  1.0 if ser.max_rank_time() == par.max_rank_time() else 0.0,
                  "boolean", 0.0)

    if verbose:
        print(table.render())
    return table
