"""Figure 8: weak scaling at fixed elements per process.

Four series (48, 192, 650, 768 elements/process) scaled toward the full
machine; the paper reports final parallel efficiencies of 88.3%, 92.3%,
98.5% (650 elements, at 155,000 processes = 10,075,000 cores) and
92.2%, with the headline 3.3 PFlops at the 650-element full-machine
point.  Checks: every line's final efficiency above 80%, the 48-element
line the weakest of the power-of-two trio, and the full-machine
sustained PFlops within 50% of 3.3.
"""

from __future__ import annotations

from ..perf.scaling import HommePerfModel
from ..perf.report import ComparisonTable
from ..utils.tables import render_table

#: (elements/process, [(ne, nproc), ...]) — exact divisors so every rank
#: holds the stated element count.
WEAK_SERIES = {
    48: [(64, 512), (128, 2048), (256, 8192), (512, 32768), (1024, 131072)],
    192: [(128, 512), (256, 2048), (512, 8192), (1024, 32768), (2048, 131072)],
    768: [(256, 512), (512, 2048), (1024, 8192), (2048, 32768), (4096, 131072)],
}

#: The 650-element full-machine point: ne4096 at 155,000 processes
#: (100,663,296 / 155,000 = 649.4 elements per process).
FULL_MACHINE = (4096, 155_000)

PAPER_FINAL_EFF = {48: 0.883, 192: 0.923, 768: 0.922}
PAPER_FULL_PFLOPS = 3.3


def run_figure8(verbose: bool = True) -> ComparisonTable:
    """Regenerate the weak-scaling series; check efficiency bands."""
    table = ComparisonTable("figure8")
    rows = []
    finals = {}
    for elems, series in WEAK_SERIES.items():
        models = [HommePerfModel(ne, p) for ne, p in series]
        base = models[0]
        for m in models:
            rows.append(
                [f"{elems}/proc", m.nproc, f"{m.pflops:.4f}",
                 f"{m.parallel_efficiency(base) * 100:.1f}%"]
            )
        finals[elems] = models[-1].parallel_efficiency(base)
        table.add(
            f"{elems} elems/proc final efficiency",
            PAPER_FINAL_EFF[elems],
            finals[elems],
            "weak efficiency band",
            0.12,
        )
    # 48-element line is the weakest (surface-to-volume ordering).
    ordered = finals[48] <= finals[192] + 1e-9 and finals[48] <= finals[768] + 1e-9
    table.add("48-line weakest", 1.0, 1.0 if ordered else 0.0, "ordering", 0.0)

    full = HommePerfModel(*FULL_MACHINE)
    rows.append(["650/proc", full.nproc, f"{full.pflops:.3f}", "(full machine)"])
    table.add(
        "full-machine sustained PFlops (10,075,000 cores)",
        PAPER_FULL_PFLOPS,
        full.pflops,
        "headline",
        0.5,
    )
    if verbose:
        print(render_table(
            ["series", "nproc", "PFlops", "efficiency"],
            rows, title="Figure 8: weak scaling",
        ))
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_figure8()
