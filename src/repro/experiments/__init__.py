"""Experiment drivers: one per paper table/figure.

Each driver regenerates its artifact's rows/series from the library,
prints them next to the paper's values, and returns a
:class:`~repro.perf.report.ComparisonTable` whose shape criteria the
benchmark harness asserts:

========  =========================================================
driver    paper artifact
========  =========================================================
table1    Table 1 — kernel timings on Intel / MPE / OpenACC (+Athread)
figure5   Figure 5 — kernel speedups over platforms
figure6   Figure 6 — whole-CAM SYPD, ne30 and ne120 process sweeps
figure7   Figure 7 — HOMME strong scaling (ne256, ne1024)
figure8   Figure 8 — weak scaling (48/192/650/768 elements/process)
table3    Table 3 — NGGPS comparison vs FV3 and MPAS
figure4   Figure 4 — two-platform climatology validation
figure9   Figure 9 — Hurricane Katrina track and intensity
parallel  (infrastructure) parallel-engine bitwise smoke check
========  =========================================================
"""

from .table1_kernels import run_table1
from .figure5_speedups import run_figure5
from .figure6_sypd import run_figure6
from .figure7_strong import run_figure7
from .figure8_weak import run_figure8
from .table3_nggps import run_table3
from .figure4_validation import run_figure4
from .figure9_katrina import run_figure9
from .parallel_smoke import run_parallel_smoke

__all__ = [
    "run_table1",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_table3",
    "run_figure4",
    "run_figure9",
    "run_parallel_smoke",
]
