"""Figure 9: Hurricane Katrina — resolution sensitivity of track/intensity.

Panels reproduced:

- (a) the coarse (ne30-class) member fails to simulate the hurricane:
  the planted vortex never intensifies (its peak wind stays near or
  below the initial value);
- (b) the fine (ne120-class) member maintains and intensifies the
  storm (distinct warm-core cyclone with strengthening winds and a
  deepening central pressure);
- (c)/(d) the fine member's track stays coherent (westward-to-poleward
  drift like the observed storm) and its MSW series is compared against
  the NHC best track.
"""

from __future__ import annotations

import numpy as np

from ..katrina import KatrinaExperiment
from ..katrina.besttrack import KATRINA_BEST_TRACK
from ..perf.report import ComparisonTable
from ..utils.tables import render_table


def run_figure9(
    verbose: bool = True,
    hours: float = 12.0,
    coarse_ne: int = 4,
    fine_ne: int = 12,
) -> ComparisonTable:
    """Run the twin experiment; check the resolution-sensitivity claims."""
    exp = KatrinaExperiment(coarse_ne=coarse_ne, fine_ne=fine_ne, hours=hours)
    results = exp.run()
    coarse, fine = results["coarse"], results["fine"]

    table = ComparisonTable("figure9")
    # (a) the coarse member cannot keep the storm it was handed.
    table.add("coarse member fails to retain the storm", 1.0,
              0.0 if coarse.retained else 1.0, "boolean", 0.0)
    # (b) the fine member keeps a coherent storm through the window.
    table.add("fine member retains the storm", 1.0,
              1.0 if fine.retained else 0.0, "boolean", 0.0)
    # Resolution sensitivity of the retained intensity.
    table.add("retention contrast (fine/coarse)", 1.3,
              fine.retention / max(coarse.retention, 1e-9),
              "resolution sensitivity", 0.35)
    table.add("fine/coarse late MSW ratio", 1.35,
              fine.late_msw / max(coarse.late_msw, 1e-9),
              "resolution sensitivity", 0.35)
    # The fine member's cyclone is deeper (lower central pressure).
    table.add("fine min ps below coarse min ps", 1.0,
              1.0 if fine.final_min_ps < coarse.final_min_ps else 0.0,
              "boolean", 0.0)
    # Track: the fine-member storm moves coherently and in the observed
    # direction — westward under the easterly steering, with a slow
    # poleward drift (Figure 9c's motion across the Gulf).
    fixes = fine.tracker.fixes
    moved = np.hypot(fixes[-1].lat - fixes[0].lat, fixes[-1].lon - fixes[0].lon)
    per_hour = float(moved) / max(fixes[-1].hours, 1e-9)
    table.add("fine member track speed [deg/h]", 2.5, per_hour,
              "coherent storm motion", 0.8)
    dlon = fixes[-1].lon - fixes[0].lon
    dlat = fixes[-1].lat - fixes[0].lat
    table.add("fine member moves westward (dlon < 0)", 1.0,
              1.0 if dlon < 0 else 0.0, "observed direction", 0.0)
    table.add("fine member drifts poleward (dlat > 0)", 1.0,
              1.0 if dlat > 0 else 0.0, "observed direction", 0.0)

    if verbose:
        rows = []
        for label, r in (("coarse", coarse), ("fine", fine)):
            rows.append(
                [label, f"{r.effective_resolution_km:.0f} km",
                 f"{r.initial_msw:.1f}", f"{r.peak_msw:.1f}",
                 f"{r.late_msw:.1f}", f"{r.final_min_ps:.1f}", r.retained]
            )
        print(render_table(
            ["member", "eff. res", "init MSW", "peak MSW", "late MSW",
             "min ps", "retained"],
            rows, title=f"Figure 9: Katrina twin experiment ({hours:.0f} h)",
        ))
        print()
        obs_peak = max(p.max_wind_ms for p in KATRINA_BEST_TRACK)
        print(f"Observed Katrina peak MSW: {obs_peak:.1f} m/s (150 kt)")
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_figure9()
