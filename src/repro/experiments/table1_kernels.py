"""Table 1: key dynamics kernels at 6,144 processes, per platform.

Regenerates the paper's kernel-timing table from the calibrated
workload + backend models, and checks every cell against the published
value (criterion: within 25%; the Athread column, which the paper only
bounds through Figure 5's speedup claims, is checked against those
bounds in :mod:`repro.experiments.figure5_speedups`).
"""

from __future__ import annotations

from ..backends import ALL_BACKENDS, table1_workloads
from ..perf.report import ComparisonTable
from ..utils.tables import render_table

#: Paper Table 1 (seconds): Intel, MPE, OpenACC(Acc).
PAPER_TABLE1 = {
    "compute_and_apply_rhs": (12.69, 92.13, 75.11),
    "euler_step": (15.88, 175.73, 10.18),
    "vertical_remap": (11.38, 39.99, 16.17),
    "hypervis_dp1": (4.95, 12.71, 3.13),
    "hypervis_dp2": (3.81, 9.05, 1.32),
    "biharmonic_dp3d": (9.35, 36.18, 4.43),
}

KERNEL_DESCRIPTIONS = {
    "compute_and_apply_rhs": "compute the RHS, accumulate into velocity and apply DSS",
    "euler_step": "SSP second-order Runge-Kutta tracer advection",
    "vertical_remap": "vertical flux back to reference eta levels",
    "hypervis_dp1": "horizontal viscosity sweep 1 (momentum + T)",
    "hypervis_dp2": "horizontal hyperviscosity sweep 2 (momentum + T)",
    "biharmonic_dp3d": "weak biharmonic operator on dp3d",
}


def run_table1(verbose: bool = True) -> ComparisonTable:
    """Regenerate Table 1; returns the paper-vs-measured comparison."""
    wls = table1_workloads()
    backends = {name: cls() for name, cls in ALL_BACKENDS.items()}
    table = ComparisonTable("table1")
    rows = []
    for kernel, wl in wls.items():
        t = {b: backends[b].execute(wl).seconds for b in backends}
        pi, pm, pa = PAPER_TABLE1[kernel]
        table.add(f"{kernel} intel", pi, t["intel"], "cell within 25%", 0.25)
        table.add(f"{kernel} mpe", pm, t["mpe"], "cell within 25%", 0.25)
        table.add(f"{kernel} openacc", pa, t["openacc"], "cell within 25%", 0.25)
        rows.append(
            [kernel, f"{t['intel']:.2f}", f"{t['mpe']:.2f}",
             f"{t['openacc']:.2f}", f"{t['athread']:.3f}"]
        )
    if verbose:
        print(render_table(
            ["kernel", "Intel", "MPE", "Acc", "Athread"],
            rows,
            title="Table 1 (simulated seconds, 6,144 processes, ne256)",
        ))
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_table1()
