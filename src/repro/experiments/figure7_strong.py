"""Figure 7: HOMME strong scaling at ne256 and ne1024.

The paper scales ne256 from 4,096 to 131,072 processes (0.07 -> 0.64
PFlops, 21.73% parallel efficiency at the end) and ne1024 from 8,192
(memory-limited start) to 131,072 (0.18 -> 1.76 PFlops, ~51%).  Checks:

- both endpoint PFlops within 50%;
- final efficiencies in the right bands, ne1024 scaling better;
- ne1024 below 8,192 processes refuses to fit in node memory.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..perf.scaling import HommePerfModel
from ..perf.report import ComparisonTable
from ..utils.tables import render_table

NE256_PROCS = (4096, 8192, 16384, 32768, 65536, 131072)
NE1024_PROCS = (8192, 16384, 32768, 65536, 131072)

PAPER = {
    ("ne256", 4096): 0.07,
    ("ne256", 131072): 0.64,
    ("ne1024", 8192): 0.18,
    ("ne1024", 131072): 1.76,
}


def run_figure7(verbose: bool = True) -> ComparisonTable:
    """Regenerate the strong-scaling curves; check anchors and shape."""
    table = ComparisonTable("figure7")
    rows = []
    curves: dict[str, list[HommePerfModel]] = {}
    for label, ne, procs in (("ne256", 256, NE256_PROCS), ("ne1024", 1024, NE1024_PROCS)):
        models = [HommePerfModel(ne, p) for p in procs]
        curves[label] = models
        base = models[0]
        for m in models:
            rows.append(
                [label, m.nproc, m.elems_per_proc, f"{m.pflops:.3f}",
                 f"{m.parallel_efficiency(base) * 100:.1f}%"]
            )
    # Endpoint anchors.
    for (label, nproc), paper_pf in PAPER.items():
        models = curves[label]
        m = next(x for x in models if x.nproc == nproc)
        table.add(f"{label} PFlops @{nproc}", paper_pf, m.pflops, "endpoint", 0.5)
    # Final efficiencies.
    eff256 = curves["ne256"][-1].parallel_efficiency(curves["ne256"][0])
    eff1024 = curves["ne1024"][-1].parallel_efficiency(curves["ne1024"][0])
    table.add("ne256 final efficiency", 0.2173, eff256, "band", 0.35)
    table.add("ne1024 final efficiency", 0.56, eff1024, "band (51-61%)", 0.45)
    # Structural claims.
    table.add(
        "ne1024 scales better than ne256 (eff ratio)",
        0.56 / 0.2173,
        eff1024 / eff256,
        "ordering",
        0.6,
    )
    # Memory gate: ne1024 cannot start at 4,096 processes.
    try:
        HommePerfModel(1024, 4096)
        memory_blocked = 0.0
    except ConfigurationError:
        memory_blocked = 1.0
    table.add("ne1024 @4096 blocked by 32 GB/node", 1.0, memory_blocked, "boolean", 0.0)

    if verbose:
        print(render_table(
            ["case", "nproc", "elems/proc", "PFlops", "efficiency"],
            rows, title="Figure 7: HOMME strong scaling",
        ))
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_figure7()
