"""Table 3: NGGPS comparison of the redesigned HOMME vs FV3 and MPAS.

The reproduction criterion is the ratio structure (see
:mod:`repro.baselines.nggps`): HOMME fastest in both workloads, FV3
~1.3x behind at 12.5 km widening to ~2.1x at 3 km, MPAS ~2.8x widening
to ~4.5x.
"""

from __future__ import annotations

from ..baselines import NGGPSBenchmark
from ..perf.report import ComparisonTable
from ..utils.tables import render_table


def run_table3(verbose: bool = True) -> ComparisonTable:
    """Regenerate Table 3; check ratios against the paper."""
    table = ComparisonTable("table3")
    rows = []
    for row in NGGPSBenchmark().run():
        for model in ("ours", "fv3", "mpas"):
            rows.append(
                [row.label, model, f"{row.seconds[model]:.3f}",
                 f"{row.ratio(model):.2f}", f"{row.paper_ratio(model):.2f}"]
            )
            if model != "ours":
                table.add(
                    f"{row.label}: {model}/ours ratio",
                    row.paper_ratio(model),
                    row.ratio(model),
                    "ratio structure",
                    0.25,
                )
        fastest = min(row.seconds, key=row.seconds.get)
        table.add(
            f"{row.label}: HOMME fastest", 1.0,
            1.0 if fastest == "ours" else 0.0, "ordering", 0.0,
        )
    if verbose:
        print(render_table(
            ["workload", "model", "seconds", "ratio", "paper ratio"],
            rows, title="Table 3: NGGPS comparison",
        ))
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_table3()
