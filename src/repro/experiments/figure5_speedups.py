"""Figure 5: per-kernel speedups over platforms (Intel reference).

The paper plots, per kernel, the speedup of MPE / OpenACC / Athread
relative to one Intel process.  The quantitative claims checked here:

- one MPE is 2-10x *slower* than one Intel core;
- OpenACC improves on the MPE by 3-22x, landing near one Intel core;
- Athread improves on OpenACC by up to 50x;
- a full CG under Athread is worth 7-46 Intel cores.
"""

from __future__ import annotations

from ..backends import ALL_BACKENDS, table1_workloads
from ..perf.report import ComparisonTable
from ..utils.tables import render_table


def run_figure5(verbose: bool = True) -> ComparisonTable:
    """Regenerate Figure 5's speedup bars; check the claim bands."""
    wls = table1_workloads()
    backends = {name: cls() for name, cls in ALL_BACKENDS.items()}
    table = ComparisonTable("figure5")
    rows = []
    mpe_slowdowns, acc_over_mpe, ath_over_acc, ath_over_intel = [], [], [], []
    for kernel, wl in wls.items():
        t = {b: backends[b].execute(wl).seconds for b in backends}
        mpe_slowdowns.append(t["mpe"] / t["intel"])
        acc_over_mpe.append(t["mpe"] / t["openacc"])
        ath_over_acc.append(t["openacc"] / t["athread"])
        ath_over_intel.append(t["intel"] / t["athread"])
        rows.append(
            [kernel,
             f"{t['intel'] / t['mpe']:.2f}x",
             f"{t['intel'] / t['openacc']:.2f}x",
             f"{t['intel'] / t['athread']:.1f}x"]
        )
    # Claim bands from Section 8.3 (midpoints as the "paper value").
    table.add("MPE slowdown max (2-10x)", 10.0, max(mpe_slowdowns), "<= 12", 0.2)
    table.add("OpenACC over MPE max (3-22x)", 22.0, max(acc_over_mpe), "band", 0.5)
    table.add("Athread over OpenACC max (up to 50x)", 50.0, max(ath_over_acc), "band", 0.2)
    table.add("Athread vs Intel min (7x)", 7.0, min(ath_over_intel), ">= 7", 0.35)
    table.add("Athread vs Intel max (46x)", 46.0, max(ath_over_intel), "<= 46", 0.35)
    if verbose:
        print(render_table(
            ["kernel", "MPE/Intel", "Acc/Intel", "Athread/Intel"],
            rows,
            title="Figure 5 (speedup relative to one Intel core)",
        ))
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_figure5()
