"""Figure 4: two-platform climatology validation.

The paper runs the same CESM configuration on an Intel cluster
(control) and on Sunway TaihuLight (test) and shows the 30-year
climatological surface temperatures are "almost identical".  The two
platforms produce bitwise-different trajectories (different instruction
orderings and reductions), so the comparison is *statistical*.

We reproduce the protocol at laptop scale: two Held--Suarez runs whose
initial states differ by one machine-epsilon-scale perturbation (the
platform roundoff divergence), time-averaged surface temperature
compared by spatial correlation and RMSE.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..homme.timestep import PrimitiveEquationModel
from ..perf.report import ComparisonTable
from ..physics import PhysicsSuite
from ..utils.tables import render_table


def run_climatology(
    ne: int = 4,
    nlev: int = 8,
    spinup_days: float = 2.0,
    mean_days: float = 6.0,
    platform_epsilon: float = 0.0,
    seed: int = 7,
) -> np.ndarray:
    """One Held--Suarez run; returns the time-mean surface temperature.

    ``platform_epsilon`` perturbs the initial temperature at roundoff
    scale — the stand-in for running on a different platform.
    """
    cfg = ModelConfig(ne=ne, nlev=nlev, qsize=0)
    suite = PhysicsSuite(("held_suarez",))
    model = PrimitiveEquationModel(cfg, forcing=suite, dt=1200.0)
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(model.state.T.shape)
    model.state.T = model.geom.dss(model.state.T + 0.5 * noise)
    if platform_epsilon:
        model.state.T = model.state.T * (1.0 + platform_epsilon)
    model.run_days(spinup_days)
    steps = int(round(mean_days * 86400.0 / model.dt))
    acc = np.zeros_like(model.state.T[:, -1])
    for _ in range(steps):
        model.step()
        acc += model.state.T[:, -1]
    return acc / steps


def run_figure4(
    verbose: bool = True,
    spinup_days: float = 2.0,
    mean_days: float = 6.0,
) -> ComparisonTable:
    """Control-vs-test climatology comparison (Figure 4 protocol)."""
    control = run_climatology(
        spinup_days=spinup_days, mean_days=mean_days, platform_epsilon=0.0
    )
    test = run_climatology(
        spinup_days=spinup_days, mean_days=mean_days, platform_epsilon=1e-13
    )
    identical_bits = bool(np.array_equal(control, test))
    corr = float(np.corrcoef(control.reshape(-1), test.reshape(-1))[0, 1])
    rmse = float(np.sqrt(np.mean((control - test) ** 2)))
    spread = float(control.max() - control.min())

    table = ComparisonTable("figure4")
    table.add("trajectories diverge (not bitwise equal)", 1.0,
              0.0 if identical_bits else 1.0, "boolean", 0.0)
    table.add("climatology spatial correlation", 1.0, corr,
              "close-to-observation pattern match", 0.02)
    table.add("climatology RMSE / dynamic range", 0.0, rmse / spread,
              "small relative error", 0.05)
    if verbose:
        print(render_table(
            ["metric", "value"],
            [["bitwise identical", identical_bits],
             ["spatial correlation", f"{corr:.6f}"],
             ["RMSE [K]", f"{rmse:.4f}"],
             ["field range [K]", f"{spread:.2f}"]],
            title="Figure 4: two-platform climatological surface temperature",
        ))
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_figure4()
