"""Figure 6: whole-CAM simulation speed (SYPD) for ne30 and ne120.

Left panel: ne30 at 216-5400 processes for the original (MPE), OpenACC,
and Athread versions; right panel: ne120 (OpenACC) at 2,400-28,800.
Checked anchors: 21.5 SYPD (ne30, Athread, 5400 procs), 3.4 SYPD
(ne120, OpenACC, 28,800), and the whole-model speedup bands (OpenACC
1.4-1.5x over original; Athread a further 1.1-1.4x).
"""

from __future__ import annotations

from ..perf.scaling import CAMPerfModel
from ..perf.report import ComparisonTable
from ..utils.tables import render_table

NE30_PROCS = (216, 600, 900, 1350, 5400)
NE120_PROCS = (2400, 9600, 14400, 21600, 28800)


def run_figure6(verbose: bool = True) -> ComparisonTable:
    """Regenerate both Figure 6 panels; check anchors and ratio bands."""
    table = ComparisonTable("figure6")
    rows30 = []
    for nproc in NE30_PROCS:
        v = {
            b: CAMPerfModel(30, nproc, backend=b).sypd()
            for b in ("mpe", "openacc", "athread")
        }
        rows30.append(
            [nproc, f"{v['mpe']:.2f}", f"{v['openacc']:.2f}", f"{v['athread']:.2f}",
             f"{v['openacc'] / v['mpe']:.2f}", f"{v['athread'] / v['openacc']:.2f}"]
        )
        table.add(
            f"ne30 acc/ori ratio @{nproc}", 1.45, v["openacc"] / v["mpe"],
            "in [1.4, 1.5] band", 0.08,
        )
        table.add(
            f"ne30 ath/acc ratio @{nproc}", 1.25, v["athread"] / v["openacc"],
            "in [1.1, 1.4] band", 0.12,
        )
    v5400 = CAMPerfModel(30, 5400, backend="athread").sypd()
    table.add("ne30 athread SYPD @5400", 21.5, v5400, "headline anchor", 0.15)

    rows120 = []
    for nproc in NE120_PROCS:
        s = CAMPerfModel(120, nproc, backend="openacc").sypd()
        rows120.append([nproc, f"{s:.2f}"])
    table.add(
        "ne120 openacc SYPD @28800",
        3.4,
        CAMPerfModel(120, 28800, backend="openacc").sypd(),
        "headline anchor",
        0.15,
    )
    if verbose:
        print(render_table(
            ["nproc", "ori", "openacc", "athread", "acc/ori", "ath/acc"],
            rows30, title="Figure 6 left: ne30 SYPD",
        ))
        print()
        print(render_table(["nproc", "SYPD"], rows120,
                           title="Figure 6 right: ne120 SYPD (OpenACC)"))
        print()
        print(table.render())
    return table


if __name__ == "__main__":
    run_figure6()
