"""CLI: run any or all experiment drivers.

Usage::

    python -m repro.experiments.runner table1 figure7
    python -m repro.experiments.runner --all
    python -m repro.experiments.runner --all --quick     # shorten sims
    python -m repro.experiments.runner table1 --logdir experiment_logs

Each experiment is recorded into a structured :class:`~repro.utils.logging.RunLog`
(one event per paper-vs-measured row, plus start/verdict events) rather
than ad-hoc prints; ``--logdir`` writes one JSONL file per experiment.
Exit status is nonzero if any shape check fails, so the runner can
gate CI.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..utils.logging import RunLog
from . import (
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_parallel_smoke,
    run_table1,
    run_table3,
)

DRIVERS = {
    "table1": lambda quick, workers: run_table1(),
    "figure5": lambda quick, workers: run_figure5(),
    "figure6": lambda quick, workers: run_figure6(),
    "figure7": lambda quick, workers: run_figure7(),
    "figure8": lambda quick, workers: run_figure8(),
    "table3": lambda quick, workers: run_table3(),
    "figure4": lambda quick, workers: run_figure4(
        spinup_days=0.5 if quick else 2.0, mean_days=1.0 if quick else 6.0
    ),
    "figure9": lambda quick, workers: run_figure9(hours=2.0 if quick else 4.0),
    "parallel": lambda quick, workers: run_parallel_smoke(
        workers=workers, steps=1 if quick else 2
    ),
}


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run paper-reproduction experiment drivers.",
    )
    p.add_argument("experiments", nargs="*",
                   help=f"experiment names (choose from {sorted(DRIVERS)})")
    p.add_argument("--all", action="store_true", help="run every driver")
    p.add_argument("--quick", action="store_true", help="shorten simulations")
    p.add_argument("--logdir", default=None, metavar="DIR",
                   help="write one structured JSONL log per experiment to DIR")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker processes for the 'parallel' smoke driver "
                        "(default 2; other drivers are single-process)")
    return p


def run_experiment(name: str, quick: bool = False, workers: int = 2) -> RunLog:
    """Run one driver; returns its structured log.

    The log carries a ``start`` event, one ``record`` event per
    paper-vs-measured row (with the pass/fail verdict and rendered
    ratio in the metadata), and a final ``verdict`` event.
    """
    log = RunLog(name)
    log.record("start", name, quick=quick)
    table = DRIVERS[name](quick, workers)
    for rec in table.records:
        log.record(
            "record",
            rec.measured_value,
            quantity=rec.quantity,
            paper=rec.paper_value,
            ratio=rec.ratio_text,
            criterion=rec.criterion,
            passed=rec.passed,
        )
    health = getattr(table, "health", None)
    if health is not None:
        log.record("health", health["verdict"], report=health)
    log.record("verdict", "pass" if table.all_passed else "MISS",
               records=len(table.records))
    log.record("table", table.render())
    return log


def main(argv: list[str] | None = None) -> int:
    ns = _parser().parse_args(sys.argv[1:] if argv is None else argv)
    names = list(DRIVERS) if (ns.all or not ns.experiments) else ns.experiments
    unknown = [a for a in names if a not in DRIVERS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(DRIVERS)}")
        return 2
    if ns.logdir:
        os.makedirs(ns.logdir, exist_ok=True)
    ok = True
    for name in names:
        print(f"\n{'#' * 72}\n# {name}\n{'#' * 72}")
        log = run_experiment(name, ns.quick, ns.workers)
        ok = ok and log.last("verdict") == "pass"
        if ns.logdir:
            path = os.path.join(ns.logdir, f"{name}.jsonl")
            log.write_jsonl(path)
            print(f"[log] {path} ({len(log)} events)")
    print(f"\noverall: {'ALL SHAPE CHECKS PASS' if ok else 'SOME CHECKS FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
