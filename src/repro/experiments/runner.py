"""CLI: run any or all experiment drivers.

Usage::

    python -m repro.experiments.runner table1 figure7
    python -m repro.experiments.runner --all
    python -m repro.experiments.runner --all --quick   # shorten sims

Exit status is nonzero if any shape check fails, so the runner can
gate CI.
"""

from __future__ import annotations

import sys

from . import (
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table1,
    run_table3,
)

DRIVERS = {
    "table1": lambda quick: run_table1(),
    "figure5": lambda quick: run_figure5(),
    "figure6": lambda quick: run_figure6(),
    "figure7": lambda quick: run_figure7(),
    "figure8": lambda quick: run_figure8(),
    "table3": lambda quick: run_table3(),
    "figure4": lambda quick: run_figure4(
        spinup_days=0.5 if quick else 2.0, mean_days=1.0 if quick else 6.0
    ),
    "figure9": lambda quick: run_figure9(hours=2.0 if quick else 4.0),
}


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in args
    args = [a for a in args if not a.startswith("--")]
    if "--all" in (sys.argv[1:] if argv is None else argv) or not args:
        args = list(DRIVERS)
    unknown = [a for a in args if a not in DRIVERS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {sorted(DRIVERS)}")
        return 2
    ok = True
    for name in args:
        print(f"\n{'#' * 72}\n# {name}\n{'#' * 72}")
        table = DRIVERS[name](quick)
        ok = ok and table.all_passed
    print(f"\noverall: {'ALL SHAPE CHECKS PASS' if ok else 'SOME CHECKS FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
