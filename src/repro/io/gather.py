"""The serialized gather behind history writes.

CAM's I/O on TaihuLight funnels field data through a small set of
writer ranks; modeled (and executed functionally over SimMPI) as a
rank-0 gather: every rank sends its slice, rank 0 assembles in element
order.  The cost is what makes the whole-CAM I/O term proportional to
*global* columns rather than per-rank work
(:class:`~repro.perf.scaling.CAMPerfModel`).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimMPIError
from ..mesh.partition import SFCPartition
from ..network.simmpi import SimMPI

#: Effective disk bandwidth of the serialized writer path [bytes/s].
WRITER_BANDWIDTH = 0.6e9


def gather_field(
    mpi: SimMPI,
    part: SFCPartition,
    local_fields: list[np.ndarray],
    root: int = 0,
    tag: int = 900,
) -> np.ndarray:
    """Functionally gather per-rank element slices to ``root``.

    ``local_fields[r]`` holds rank r's elements in its partition order;
    the result is the global element-ordered array on the root.  Clocks
    advance with the serialized receive chain (the I/O bottleneck).
    """
    if len(local_fields) != part.nranks or mpi.nranks != part.nranks:
        raise SimMPIError("one local field per rank required")
    shape = (part.nelem,) + local_fields[root].shape[1:]
    out = np.empty(shape)
    out[part.rank_elements(root)] = local_fields[root]
    for r in range(part.nranks):
        if r == root:
            continue
        mpi.isend(r, root, local_fields[r], tag=tag + r)
    for r in range(part.nranks):
        if r == root:
            continue
        data = mpi.wait(mpi.irecv(root, r, tag=tag + r))
        out[part.rank_elements(r)] = data
    return out


def gather_cost_seconds(
    nbytes_global: float, nranks: int, alpha: float = 2.2e-6
) -> float:
    """Analytic cost of the serialized gather + disk write.

    The root receives ``nbytes_global`` in ``nranks - 1`` messages
    (latency-serialized) and streams them to disk.
    """
    if nbytes_global < 0 or nranks < 1:
        raise ValueError("invalid gather parameters")
    recv = (nranks - 1) * alpha + nbytes_global / 12e9
    disk = nbytes_global / WRITER_BANDWIDTH
    return recv + disk
