"""A self-describing binary history-file format.

Layout::

    magic  b"CAMH"            4 bytes
    version uint32            4 bytes
    nrecords uint32           4 bytes
    per record:
        name_len uint32, name utf-8
        time float64
        ndim uint32, shape uint64 * ndim
        data float64 (C order)

Deliberately simple (no compression, no chunking) but complete: every
field written round-trips bit-exactly, and the format is append-only so
a simulation can stream daily records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

MAGIC = b"CAMH"
VERSION = 1


@dataclass
class HistoryRecord:
    """One named, timestamped field."""

    name: str
    time: float
    data: np.ndarray


class HistoryWriter:
    """Appends records to a history file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._count = 0
        with open(self.path, "wb") as f:
            f.write(MAGIC)
            f.write(struct.pack("<II", VERSION, 0))

    def write(self, name: str, time: float, data: np.ndarray) -> int:
        """Append one record; returns bytes written."""
        data = np.ascontiguousarray(data, dtype=np.float64)
        name_b = name.encode("utf-8")
        with open(self.path, "ab") as f:
            f.write(struct.pack("<I", len(name_b)))
            f.write(name_b)
            f.write(struct.pack("<d", time))
            f.write(struct.pack("<I", data.ndim))
            f.write(struct.pack(f"<{data.ndim}Q", *data.shape))
            f.write(data.tobytes())
        self._count += 1
        # Patch the record count in the header.
        with open(self.path, "r+b") as f:
            f.seek(8)
            f.write(struct.pack("<I", self._count))
        return 4 + len(name_b) + 8 + 4 + 8 * data.ndim + data.nbytes


class HistoryReader:
    """Reads a history file back."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as f:
            magic = f.read(4)
            if magic != MAGIC:
                raise ValueError(f"{path}: not a CAMH history file")
            version, self.nrecords = struct.unpack("<II", f.read(8))
            if version != VERSION:
                raise ValueError(f"{path}: unsupported version {version}")

    def records(self) -> list[HistoryRecord]:
        """All records, in write order."""
        out = []
        with open(self.path, "rb") as f:
            f.seek(12)
            for _ in range(self.nrecords):
                (nlen,) = struct.unpack("<I", f.read(4))
                name = f.read(nlen).decode("utf-8")
                (time,) = struct.unpack("<d", f.read(8))
                (ndim,) = struct.unpack("<I", f.read(4))
                shape = struct.unpack(f"<{ndim}Q", f.read(8 * ndim))
                n = int(np.prod(shape)) if ndim else 1
                data = np.frombuffer(f.read(8 * n), dtype=np.float64).reshape(shape)
                out.append(HistoryRecord(name, time, data.copy()))
        return out

    def record(self, name: str, index: int = 0) -> HistoryRecord:
        """The ``index``-th record named ``name``."""
        matches = [r for r in self.records() if r.name == name]
        if index >= len(matches):
            raise KeyError(f"record {name!r}[{index}] not in {self.path}")
        return matches[index]
