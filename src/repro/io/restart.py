"""Restart files: bit-exact save/load of the prognostic state.

A restart round-trip must reproduce the run bit-for-bit — the property
climate centers actually verify before trusting a port (and the reason
Figure 4's two-platform comparison had to be statistical instead).
Built on the history format: one record per prognostic array plus the
configuration scalars.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..config import ModelConfig
from ..homme.element import ElementState
from .history import HistoryReader, HistoryWriter


def save_restart(
    path: str | Path, state: ElementState, cfg: ModelConfig, t: float
) -> None:
    """Write a restart file for ``state`` at model time ``t``."""
    w = HistoryWriter(path)
    meta = np.array(
        [cfg.ne, cfg.nlev, cfg.qsize, cfg.np, cfg.tracer_subcycles], dtype=float
    )
    w.write("meta", t, meta)
    w.write("v", t, state.v)
    w.write("T", t, state.T)
    w.write("dp3d", t, state.dp3d)
    w.write("qdp", t, state.qdp)


def load_restart(path: str | Path) -> tuple[ElementState, ModelConfig, float]:
    """Read a restart file; returns (state, config, model time)."""
    r = HistoryReader(path)
    meta_rec = r.record("meta")
    ne, nlev, qsize, np_, subs = (int(x) for x in meta_rec.data)
    cfg = ModelConfig(ne=ne, nlev=nlev, qsize=qsize, np=np_, tracer_subcycles=subs)
    state = ElementState(
        v=r.record("v").data,
        T=r.record("T").data,
        dp3d=r.record("dp3d").data,
        qdp=r.record("qdp").data,
    )
    state.check_consistent()
    return state, cfg, float(meta_rec.time)
