"""Model I/O: history files and restart round-trips.

CAM's timing includes I/O ("Results reported on basis of: whole
application with I/O"); on TaihuLight the daily history write is a
serialized gather through rank 0 — the resolution-proportional term in
the whole-CAM performance model.  This subpackage makes that concrete:

- :mod:`~repro.io.history` — a self-describing binary history format
  (header + named float64 records), written from gathered model state
  and readable back for analysis;
- :mod:`~repro.io.gather` — the gather cost model over SimMPI (the
  serialized funnel that caps I/O throughput).
"""

from .history import HistoryWriter, HistoryReader, HistoryRecord
from .gather import gather_field, gather_cost_seconds
from .restart import save_restart, load_restart

__all__ = [
    "HistoryWriter",
    "HistoryReader",
    "HistoryRecord",
    "gather_field",
    "gather_cost_seconds",
    "save_restart",
    "load_restart",
]
