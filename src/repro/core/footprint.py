"""The memory footprint analysis and reduction tool (paper Section 7.2).

Given a loop nest and a candidate parallel mapping, compute the
per-CPE-iteration working set — the bytes of each array one iteration
of the parallel loop touches — and find the level-tiling factor that
fits the working set into the 64 KB LDM ("to fit the frequently-
accessed variables into the local fast buffer of the CPE").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FootprintError
from .ir import LoopNest

#: Default scratchpad budget: 64 KB minus the stack/runtime reserve.
LDM_BUDGET = 56 * 1024


@dataclass
class FootprintReport:
    """Working-set analysis of one loop nest under a parallel mapping.

    - ``per_iteration_bytes``: bytes one parallel iteration touches,
      per array;
    - ``total_bytes``: their sum (the naive LDM requirement);
    - ``tile_factor``: the divisor applied to the innermost tileable
      loop so the tiled working set fits the budget (1 = fits as is);
    - ``tiled_bytes``: the working set after tiling;
    - ``resident``: arrays worth pinning in LDM across iterations
      (touched by every iteration with the same bytes — the reuse the
      Athread rewrite exploits).
    """

    nest: str
    per_iteration_bytes: dict[str, int]
    total_bytes: int
    tile_factor: int
    tiled_bytes: int
    resident: tuple[str, ...]

    @property
    def fits(self) -> bool:
        return self.tiled_bytes <= LDM_BUDGET


class FootprintAnalyzer:
    """The footprint analysis and reduction tool."""

    def __init__(self, budget: int = LDM_BUDGET) -> None:
        if budget < 1024:
            raise FootprintError("budget unrealistically small")
        self.budget = budget

    def analyze(
        self,
        nest: LoopNest,
        parallel_vars: tuple[str, ...],
        tile_var: str | None = None,
    ) -> FootprintReport:
        """Working set of one parallel iteration, with level tiling.

        ``parallel_vars`` are the loops distributed across CPEs (one
        iteration of each per CPE at a time); ``tile_var`` is the loop
        whose extent may be blocked to shrink the footprint (defaults
        to the innermost loop not in ``parallel_vars``).
        """
        for v in parallel_vars:
            nest.loop(v)  # validates
        inner = [lp for lp in nest.loops if lp.var not in parallel_vars]
        if tile_var is None and inner:
            tile_var = inner[0].var
        if tile_var is not None and tile_var in parallel_vars:
            raise FootprintError(f"tile var {tile_var!r} is a parallel var")

        per_arr: dict[str, int] = {}
        for arr in nest.arrays():
            accs = [a for a in nest.accesses if a.array.name == arr.name]
            # Bytes per iteration: full array divided by the extents of
            # parallel loops that index it.
            bytes_ = arr.nbytes
            for v in parallel_vars:
                if any(a.uses_loop(v) for a in accs):
                    bytes_ //= nest.loop(v).trips
            per_arr[arr.name] = max(arr.itemsize, bytes_)
        total = sum(per_arr.values())

        # Tiling: block tile_var's extent by successive factors of 2
        # until tileable arrays fit.
        factor = 1
        tiled = total
        if tile_var is not None:
            trips = nest.loop(tile_var).trips
            while tiled > self.budget and factor < trips:
                factor *= 2
                tiled = 0
                for arr in nest.arrays():
                    accs = [a for a in nest.accesses if a.array.name == arr.name]
                    b = per_arr[arr.name]
                    if any(a.uses_loop(tile_var) for a in accs):
                        b = max(arr.itemsize, b // factor)
                    tiled += b

        # Residency: arrays whose per-iteration bytes do not depend on
        # any non-parallel loop other than the tile var — the same tile
        # is needed by consecutive iterations, so keep it in LDM.
        resident = []
        other_inner = [lp.var for lp in inner if lp.var != tile_var]
        for arr in nest.arrays():
            accs = [a for a in nest.accesses if a.array.name == arr.name]
            reused = any(
                not any(a.uses_loop(v) for a in accs) for v in other_inner
            ) if other_inner else False
            if reused:
                resident.append(arr.name)
        return FootprintReport(
            nest=nest.name,
            per_iteration_bytes=per_arr,
            total_bytes=total,
            tile_factor=factor,
            tiled_bytes=tiled,
            resident=tuple(resident),
        )
