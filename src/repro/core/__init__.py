"""The paper's refactoring toolchain, as a first-class library.

The porting effort was tool-driven (Section 7.2): "we design a loop
transformation tool to identify and expose the most suitable level of
loop body for the parallelization on the CPE cluster" and "a memory
footprint analysis and reduction tool ... to fit the frequently-
accessed variables into the local fast buffer of the CPE".  This
subpackage builds those tools over a small loop-nest IR:

- :mod:`~repro.core.ir` — loop nests, arrays, and access descriptors;
- :mod:`~repro.core.translator` — the loop transformation tool:
  dependence-aware selection of the parallel loop level, loop
  collapsing/aggregation, and the OpenACC annotation pass;
- :mod:`~repro.core.footprint` — the memory footprint analysis and
  reduction tool: per-iteration working sets, reuse detection, and the
  tiling factors that fit 64 KB;
- :mod:`~repro.core.tiling` — LDM tiling plans validated against the
  scratchpad allocator;
- :mod:`~repro.core.roofline` — the bandwidth-bound projected
  performance upper bound used to decide which kernels justified the
  Athread redesign;
- :mod:`~repro.core.pipeline` — the two-stage workflow driver
  (OpenACC refactor, then Athread redesign where the projection says
  the directive port leaves >2x on the table).
"""

from .ir import Array, Access, Loop, LoopNest
from .translator import LoopTransformer, TranslationResult
from .footprint import FootprintAnalyzer, FootprintReport
from .tiling import TilingPlanner, TilingPlan
from .roofline import roofline_time, projected_upper_bound
from .pipeline import RefactorPipeline, KernelDecision

__all__ = [
    "Array",
    "Access",
    "Loop",
    "LoopNest",
    "LoopTransformer",
    "TranslationResult",
    "FootprintAnalyzer",
    "FootprintReport",
    "TilingPlanner",
    "TilingPlan",
    "roofline_time",
    "projected_upper_bound",
    "RefactorPipeline",
    "KernelDecision",
]
