"""A small loop-nest IR for the refactoring tools.

Models what the paper's source-to-source translators see in the CAM
Fortran: nested loops over named iteration spaces (elements, tracers,
levels, GLL points), arrays with per-dimension extents, and accesses
that map loop indices to array dimensions.  Dependences are declared
per loop ("this loop carries a recurrence"), which is how the tools
know the vertical level loop of the pressure scan cannot be freely
parallelized while the element loop can.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TranslationError


@dataclass(frozen=True)
class Array:
    """A named array with dimension extents (in elements) and dtype size."""

    name: str
    dims: tuple[int, ...]
    itemsize: int = 8

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise TranslationError(f"array {self.name}: invalid dims {self.dims}")

    @property
    def nbytes(self) -> int:
        n = self.itemsize
        for d in self.dims:
            n *= d
        return n


@dataclass(frozen=True)
class Access:
    """One array access inside a loop body.

    ``index_map`` names the loop variable indexing each array dimension
    (None for a dimension accessed wholesale within one iteration).
    ``is_write`` marks stores.
    """

    array: Array
    index_map: tuple[str | None, ...]
    is_write: bool = False

    def __post_init__(self) -> None:
        if len(self.index_map) != len(self.array.dims):
            raise TranslationError(
                f"access to {self.array.name}: {len(self.index_map)} indices "
                f"for {len(self.array.dims)} dims"
            )

    def uses_loop(self, var: str) -> bool:
        """Whether this access is indexed by loop variable ``var``."""
        return var in self.index_map


@dataclass(frozen=True)
class Loop:
    """One loop level: a variable, a trip count, and dependence flags.

    ``carries_dependence`` marks a loop whose iterations form a
    recurrence (the vertical scan); ``reduction`` marks loops whose
    iterations combine associatively (parallelizable with care).
    """

    var: str
    trips: int
    carries_dependence: bool = False
    reduction: bool = False

    def __post_init__(self) -> None:
        if self.trips < 1:
            raise TranslationError(f"loop {self.var}: trips must be >= 1")


@dataclass
class LoopNest:
    """A kernel loop nest: ordered loops (outermost first) + accesses.

    ``flops_per_iter`` is the arithmetic in the innermost body, used by
    the roofline projection.
    """

    name: str
    loops: list[Loop]
    accesses: list[Access]
    flops_per_iter: float = 1.0

    def __post_init__(self) -> None:
        if not self.loops:
            raise TranslationError(f"nest {self.name}: needs at least one loop")
        seen = set()
        for lp in self.loops:
            if lp.var in seen:
                raise TranslationError(f"nest {self.name}: duplicate loop var {lp.var}")
            seen.add(lp.var)
        for a in self.accesses:
            for v in a.index_map:
                if v is not None and v not in seen:
                    raise TranslationError(
                        f"nest {self.name}: access to {a.array.name} uses "
                        f"unknown loop var {v!r}"
                    )

    def loop(self, var: str) -> Loop:
        """The loop with variable ``var``."""
        for lp in self.loops:
            if lp.var == var:
                return lp
        raise TranslationError(f"nest {self.name}: no loop {var!r}")

    @property
    def total_trips(self) -> int:
        n = 1
        for lp in self.loops:
            n *= lp.trips
        return n

    @property
    def total_flops(self) -> float:
        return self.total_trips * self.flops_per_iter

    def arrays(self) -> list[Array]:
        """Unique arrays referenced (stable order)."""
        seen: dict[str, Array] = {}
        for a in self.accesses:
            seen.setdefault(a.array.name, a.array)
        return list(seen.values())


def euler_step_nest(nelem: int = 64, qsize: int = 25, nlev: int = 128, np_: int = 4) -> LoopNest:
    """The paper's Algorithm-1 loop nest (euler_step), as IR.

    Loops: ie (elements) x q (tracers) x k (levels) x ij (GLL points);
    qdp is indexed by (q, k); the derived arrays only by k — which is
    exactly the reuse the OpenACC collapse destroys.
    """
    qdp = Array("qdp", (nelem, qsize, nlev, np_ * np_))
    derived_dp = Array("derived_dp", (nelem, nlev, np_ * np_))
    vstar = Array("vstar", (nelem, nlev, np_ * np_, 2))
    out = Array("qdp_out", (nelem, qsize, nlev, np_ * np_))
    return LoopNest(
        name="euler_step",
        loops=[
            Loop("ie", nelem),
            Loop("q", qsize),
            Loop("k", nlev),
            Loop("ij", np_ * np_),
        ],
        accesses=[
            Access(qdp, ("ie", "q", "k", "ij")),
            Access(derived_dp, ("ie", "k", "ij")),
            Access(vstar, ("ie", "k", "ij", None)),
            Access(out, ("ie", "q", "k", "ij"), is_write=True),
        ],
        flops_per_iter=40.0,
    )


def pressure_scan_nest(nelem: int = 64, nlev: int = 128, np_: int = 4) -> LoopNest:
    """The compute_and_apply_rhs vertical scan, as IR.

    The level loop carries the recurrence p_k = p_{k-1} + dp_k.
    """
    dp = Array("dp3d", (nelem, nlev, np_ * np_))
    p = Array("p_mid", (nelem, nlev, np_ * np_))
    return LoopNest(
        name="pressure_scan",
        loops=[
            Loop("ie", nelem),
            Loop("k", nlev, carries_dependence=True),
            Loop("ij", np_ * np_),
        ],
        accesses=[
            Access(dp, ("ie", "k", "ij")),
            Access(p, ("ie", "k", "ij"), is_write=True),
        ],
        flops_per_iter=2.0,
    )
