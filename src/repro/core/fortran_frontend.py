"""A miniature Fortran loop-nest frontend for the refactoring tools.

The paper's translators are source-to-source: they read the CAM
Fortran, restructure loops, and emit annotated code.  This module
closes that loop for the reproduction: it parses a small Fortran-like
subset (DO nests over declared arrays) into the IR of
:mod:`repro.core.ir`, so the loop-transformation and footprint tools
can run against *source text*, and the generators in
:mod:`repro.core.codegen` emit the two target dialects.

Accepted subset (enough for the dycore kernels)::

    real(8) :: qdp(nelem, qsize, nlev, npts)
    real(8) :: vstar(nelem, nlev, npts)
    do ie = 1, nelem
      do q = 1, qsize          ! dependence-free
      do k = 1, nlev           ! scan              <- dependence marker
        qdp(ie, q, k, :) = vstar(ie, k, :) * qdp(ie, q, k, :)
      end do
    end do

- ``real(8) :: name(dim, ...)`` declares arrays (dims are integers or
  names bound via ``parameter`` lines);
- ``integer, parameter :: nlev = 128`` binds extents;
- ``do var = 1, extent`` opens a loop; a trailing ``! scan`` (or
  ``! dependence``) comment marks a loop-carried recurrence;
- assignment statements define the accesses: every ``name(idx, ...)``
  reference becomes an :class:`~repro.core.ir.Access`, the left-hand
  side a write.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import TranslationError
from .ir import Access, Array, Loop, LoopNest

_PARAM_RE = re.compile(
    r"^\s*integer\s*,\s*parameter\s*::\s*(\w+)\s*=\s*(\d+)\s*$", re.I
)
_DECL_RE = re.compile(r"^\s*real\s*\(\s*8\s*\)\s*::\s*(\w+)\s*\(([^)]*)\)\s*$", re.I)
_DO_RE = re.compile(r"^\s*do\s+(\w+)\s*=\s*1\s*,\s*(\w+|\d+)\s*(!.*)?$", re.I)
_END_RE = re.compile(r"^\s*end\s*do\s*$", re.I)
_REF_RE = re.compile(r"(\w+)\s*\(([^()]*)\)")


@dataclass
class ParsedKernel:
    """The parse result: a LoopNest plus source bookkeeping."""

    nest: LoopNest
    parameters: dict[str, int] = field(default_factory=dict)
    source_lines: int = 0


def parse_fortran_kernel(
    source: str, name: str = "kernel", flops_per_iter: float = 10.0
) -> ParsedKernel:
    """Parse the Fortran-like subset into a :class:`LoopNest`."""
    params: dict[str, int] = {}
    arrays: dict[str, Array] = {}
    loops: list[Loop] = []
    open_loops: list[Loop] = []
    accesses: list[Access] = []
    n_lines = 0

    def extent(tok: str) -> int:
        tok = tok.strip()
        if tok.isdigit():
            return int(tok)
        if tok in params:
            return params[tok]
        raise TranslationError(f"{name}: unknown extent {tok!r}")

    for raw in source.splitlines():
        line = raw.strip()
        if not line or line.startswith("!"):
            continue
        n_lines += 1
        m = _PARAM_RE.match(line)
        if m:
            params[m.group(1)] = int(m.group(2))
            continue
        m = _DECL_RE.match(line)
        if m:
            dims = tuple(extent(d) for d in m.group(2).split(","))
            arrays[m.group(1)] = Array(m.group(1), dims)
            continue
        m = _DO_RE.match(line)
        if m:
            var, ext, comment = m.group(1), m.group(2), m.group(3) or ""
            dep = bool(re.search(r"scan|dependence|recurrence", comment, re.I))
            loop = Loop(var, extent(ext), carries_dependence=dep)
            loops.append(loop)
            open_loops.append(loop)
            continue
        if _END_RE.match(line):
            if not open_loops:
                raise TranslationError(f"{name}: unbalanced 'end do'")
            open_loops.pop()
            continue
        # Assignment statement: extract references.
        if "=" in line:
            lhs, rhs = line.split("=", 1)
            loop_vars = {lp.var for lp in loops}
            for side, is_write in ((lhs, True), (rhs, False)):
                for ref in _REF_RE.finditer(side):
                    arr_name, idx = ref.group(1), ref.group(2)
                    if arr_name not in arrays:
                        continue  # intrinsic or scalar function
                    index_map = tuple(
                        tok.strip() if tok.strip() in loop_vars else None
                        for tok in idx.split(",")
                    )
                    accesses.append(
                        Access(arrays[arr_name], index_map, is_write=is_write)
                    )
            continue
        raise TranslationError(f"{name}: cannot parse line {line!r}")

    if open_loops:
        raise TranslationError(f"{name}: {len(open_loops)} unterminated DO loops")
    if not loops:
        raise TranslationError(f"{name}: no loops found")
    # Deduplicate identical accesses (same array, map, mode).
    seen = set()
    unique = []
    for a in accesses:
        key = (a.array.name, a.index_map, a.is_write)
        if key not in seen:
            seen.add(key)
            unique.append(a)
    nest = LoopNest(name=name, loops=loops, accesses=unique, flops_per_iter=flops_per_iter)
    return ParsedKernel(nest=nest, parameters=params, source_lines=n_lines)


#: The paper's Algorithm-1 kernel, in the accepted subset.
EULER_STEP_FORTRAN = """
integer, parameter :: nelem = 64
integer, parameter :: qsize = 25
integer, parameter :: nlev = 128
integer, parameter :: npts = 16
real(8) :: qdp(nelem, qsize, nlev, npts)
real(8) :: derived_dp(nelem, nlev, npts)
real(8) :: vstar(nelem, nlev, npts)
real(8) :: qdp_out(nelem, qsize, nlev, npts)
do ie = 1, nelem
do q = 1, qsize
do k = 1, nlev
qdp_out(ie, q, k, :) = qdp(ie, q, k, :) * vstar(ie, k, :) + derived_dp(ie, k, :)
end do
end do
end do
"""

#: The pressure scan with its dependence marker.
PRESSURE_SCAN_FORTRAN = """
integer, parameter :: nelem = 64
integer, parameter :: nlev = 128
integer, parameter :: npts = 16
real(8) :: dp3d(nelem, nlev, npts)
real(8) :: p_mid(nelem, nlev, npts)
do ie = 1, nelem
do k = 1, nlev   ! scan: p(k) = p(k-1) + dp(k)
p_mid(ie, k, :) = p_mid(ie, k, :) + dp3d(ie, k, :)
end do
end do
"""
