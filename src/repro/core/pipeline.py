"""The two-stage refactoring workflow (paper Sections 7.2-7.3).

Stage 1 (OpenACC): run the loop transformation and footprint tools on
each kernel nest, produce a directive mapping, and predict its time
with the OpenACC backend model.

Stage 2 (Athread): compare that prediction against the bandwidth-bound
projection; kernels with >2x headroom get the fine-grained redesign
(LDM-resident tiling plan, regcomm scan for dependence-carrying loops,
manual vectorization) and a new prediction from the Athread backend.

:class:`RefactorPipeline` drives both stages and records a
:class:`KernelDecision` per kernel — the reproduction of the paper's
engineering decision process, runnable as a library.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.base import KernelWorkload
from ..backends.openacc import OpenACCBackend
from ..backends.athread import AthreadBackend
from .footprint import FootprintAnalyzer, FootprintReport
from .ir import LoopNest
from .roofline import projected_upper_bound
from .tiling import TilingPlan, TilingPlanner
from .translator import LoopTransformer, TranslationResult


@dataclass
class KernelDecision:
    """The pipeline's record for one kernel."""

    nest: str
    openacc_mapping: TranslationResult
    footprint: FootprintReport
    openacc_seconds: float
    projection: dict
    rewrite: bool
    athread_mapping: TranslationResult | None = None
    tiling_plan: TilingPlan | None = None
    athread_seconds: float | None = None

    @property
    def speedup(self) -> float | None:
        """Athread over OpenACC, where the rewrite happened."""
        if self.athread_seconds is None:
            return None
        return self.openacc_seconds / self.athread_seconds


class RefactorPipeline:
    """OpenACC refactor -> roofline triage -> Athread redesign."""

    def __init__(self) -> None:
        self.transformer = LoopTransformer()
        self.analyzer = FootprintAnalyzer()
        self.planner = TilingPlanner()
        self.openacc = OpenACCBackend()
        self.athread = AthreadBackend()

    def process(
        self,
        nest: LoopNest,
        workload: KernelWorkload,
        tile_var: str | None = None,
        stream: tuple[str, ...] = (),
    ) -> KernelDecision:
        """Run the full decision process for one kernel.

        ``workload`` carries the calibrated volumes for the backend
        models; the IR supplies structure (mappings, footprints).
        """
        acc_map = self.transformer.transform(nest)
        # The footprint/tiling analysis uses the Athread mapping's view:
        # CPEs own outer-loop iterations, inner loops (tracers, levels)
        # run on-CPE — that is where residency and reuse live.
        fp = self.analyzer.analyze(
            nest, (nest.loops[0].var,), tile_var=tile_var
        )
        acc_report = self.openacc.execute(workload)

        proj = projected_upper_bound(
            workload.flops, workload.unique_bytes, acc_report.seconds
        )
        decision = KernelDecision(
            nest=nest.name,
            openacc_mapping=acc_map,
            footprint=fp,
            openacc_seconds=acc_report.seconds,
            projection=proj,
            rewrite=proj["rewrite_recommended"],
        )
        if decision.rewrite:
            decision.athread_mapping = self.transformer.athread_mapping(nest)
            plan, _ = self.planner.plan_and_validate(fp, stream=stream)
            decision.tiling_plan = plan
            decision.athread_seconds = self.athread.execute(workload).seconds
        return decision
