"""LDM tiling plans, validated against the scratchpad allocator.

Turns a footprint report into a concrete allocation plan — which
buffers live in the 64 KB LDM, double-buffered where streaming — and
*proves* the plan by allocating it on a real
:class:`~repro.sunway.ldm.LDM` instance.  A plan that does not allocate
cleanly is a plan that cannot be written on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sunway.ldm import LDM
from .footprint import FootprintReport


@dataclass
class TilingPlan:
    """A concrete LDM layout for one kernel.

    ``buffers`` maps name -> bytes; streamed buffers appear twice
    (ping/pong) for double buffering.
    """

    nest: str
    buffers: dict[str, int]
    double_buffered: tuple[str, ...]
    total_bytes: int

    def allocate_on(self, ldm: LDM) -> None:
        """Allocate every buffer; raises LDMOverflowError on misfit."""
        for name, size in self.buffers.items():
            ldm.alloc(size, label=name)


class TilingPlanner:
    """Builds and validates tiling plans from footprint reports."""

    def __init__(self, ldm_bytes: int = 64 * 1024, reserve: int = 4 * 1024) -> None:
        self.ldm_bytes = ldm_bytes
        self.reserve = reserve

    def plan(
        self,
        report: FootprintReport,
        stream: tuple[str, ...] = (),
    ) -> TilingPlan:
        """Build a plan from a (tiled) footprint.

        ``stream`` names arrays accessed once per tile and therefore
        worth double buffering (two copies in LDM so the DMA of tile
        n+1 overlaps compute on tile n).
        """
        buffers: dict[str, int] = {}
        factor = report.tile_factor
        for name, nbytes in report.per_iteration_bytes.items():
            size = max(32, nbytes // factor if name not in report.resident else nbytes // factor)
            if name in stream:
                buffers[f"{name}.ping"] = size
                buffers[f"{name}.pong"] = size
            else:
                buffers[name] = size
        total = sum(buffers.values())
        return TilingPlan(
            nest=report.nest,
            buffers=buffers,
            double_buffered=tuple(stream),
            total_bytes=total,
        )

    def validate(self, plan: TilingPlan) -> LDM:
        """Allocate the plan on a fresh LDM; returns it for inspection."""
        ldm = LDM(self.ldm_bytes - self.reserve)
        plan.allocate_on(ldm)
        return ldm

    def plan_and_validate(
        self, report: FootprintReport, stream: tuple[str, ...] = ()
    ) -> tuple[TilingPlan, LDM]:
        """Plan then prove it allocates; raises LDMOverflowError if not."""
        plan = self.plan(report, stream)
        return plan, self.validate(plan)
