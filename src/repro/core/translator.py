"""The loop transformation tool (paper Section 7.2).

Given a kernel loop nest, decide how a directive port maps it onto the
CPE cluster:

1. find the outermost contiguous run of dependence-free loops — those
   are collapsible under the Sunway OpenACC single-``collapse``
   restriction;
2. pick the parallel level: enough trips to occupy 64 CPEs, as far out
   as possible (coarser grain, fewer launches);
3. annotate which arrays must be ``copyin``/``copyout`` per iteration
   of the collapsed loop — including the re-read pathology when an
   array does *not* depend on one of the collapsed loop variables (the
   Algorithm-1 problem: ``derived_dp`` copyin inside the ``q`` loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TranslationError
from .ir import Loop, LoopNest

#: CPEs a collapsed loop must be able to occupy.
CLUSTER_WIDTH = 64


@dataclass
class TranslationResult:
    """What the tool decided for one loop nest.

    - ``collapsed``: loop vars merged into the parallel loop;
    - ``parallel_trips``: iterations distributed over CPEs;
    - ``copyin_per_iteration``: arrays (re-)read on every collapsed
      iteration, with the re-read multiplier relative to unique traffic;
    - ``reread_factor``: aggregate traffic inflation of the directive
      port (feeds the OpenACC backend model);
    - ``serial_vars``: loop vars that cannot be parallelized at all.
    """

    nest: str
    collapsed: tuple[str, ...]
    parallel_trips: int
    copyin_per_iteration: dict[str, int] = field(default_factory=dict)
    reread_factor: float = 1.0
    serial_vars: tuple[str, ...] = ()

    @property
    def occupies_cluster(self) -> bool:
        return self.parallel_trips >= CLUSTER_WIDTH


class LoopTransformer:
    """The source-to-source loop transformation tool."""

    def __init__(self, cluster_width: int = CLUSTER_WIDTH) -> None:
        if cluster_width < 1:
            raise TranslationError("cluster_width must be >= 1")
        self.cluster_width = cluster_width

    def collapsible_prefix(self, nest: LoopNest) -> list[Loop]:
        """Outermost contiguous dependence-free loops (collapse candidates)."""
        out = []
        for lp in nest.loops:
            if lp.carries_dependence:
                break
            out.append(lp)
        return out

    def transform(self, nest: LoopNest) -> TranslationResult:
        """Choose the parallel mapping and annotate the data movement."""
        prefix = self.collapsible_prefix(nest)
        if not prefix:
            # Fully serial nest: runs on the MPE / single CPE.
            return TranslationResult(
                nest=nest.name,
                collapsed=(),
                parallel_trips=1,
                reread_factor=1.0,
                serial_vars=tuple(lp.var for lp in nest.loops),
            )
        # Collapse outermost loops until the cluster is comfortably
        # oversubscribed (4x for load balance across uneven element
        # counts); the compiler supports a single collapse clause, so
        # the collapsed set must be a contiguous prefix.
        collapsed: list[Loop] = []
        trips = 1
        for lp in prefix:
            collapsed.append(lp)
            trips *= lp.trips
            if trips >= 4 * self.cluster_width:
                break
        collapsed_vars = tuple(lp.var for lp in collapsed)

        # Arrays not indexed by every collapsed var get re-read once per
        # iteration of the vars they ignore (no code can be inserted
        # between collapsed loops to hoist the copyin).
        copyin: dict[str, int] = {}
        unique_bytes = 0.0
        moved_bytes = 0.0
        for arr in nest.arrays():
            reads = [a for a in nest.accesses if a.array.name == arr.name]
            factor = 1
            for lp in collapsed:
                if not any(a.uses_loop(lp.var) for a in reads):
                    factor *= lp.trips
            copyin[arr.name] = factor
            unique_bytes += arr.nbytes
            moved_bytes += arr.nbytes * factor
        serial_vars = tuple(
            lp.var for lp in nest.loops if lp.carries_dependence
        )
        return TranslationResult(
            nest=nest.name,
            collapsed=collapsed_vars,
            parallel_trips=trips,
            copyin_per_iteration=copyin,
            reread_factor=moved_bytes / unique_bytes if unique_bytes else 1.0,
            serial_vars=serial_vars,
        )

    def athread_mapping(self, nest: LoopNest, mesh_rows: int = 8) -> TranslationResult:
        """The fine-grained redesign's mapping of the same nest.

        Dependence-carrying level loops are split over CPE rows (the
        8 x 16 layer decomposition + register scan), so they join the
        parallel set; arrays are kept LDM-resident, so every copyin
        factor is 1 (the measured 10%-traffic property).
        """
        trips = 1
        collapsed = []
        for lp in nest.loops:
            collapsed.append(lp.var)
            trips *= lp.trips if not lp.carries_dependence else mesh_rows
            if trips >= self.cluster_width and len(collapsed) >= 1:
                pass  # keep going: Athread tiles all levels explicitly
        copyin = {arr.name: 1 for arr in nest.arrays()}
        return TranslationResult(
            nest=nest.name,
            collapsed=tuple(collapsed),
            parallel_trips=trips,
            copyin_per_iteration=copyin,
            reread_factor=1.0,
            serial_vars=(),
        )
