"""Bandwidth-bound performance projection (paper Section 3/7.1).

"Combining the OpenACC-refactored code with the projected performance
upper bound based on the memory capacities (assuming bandwidth as the
major constraint), we then derive a more aggressive fine-grained
optimization workflow" — i.e. the roofline model decided which kernels
justified the Athread rewrite.  This module is that projector.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sunway.spec import SW26010Spec, DEFAULT_SPEC


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the CG roofline."""

    name: str
    arithmetic_intensity: float   # flops per byte of compulsory traffic
    time_bound: float             # seconds, lower bound
    bound: str                    # "memory" or "compute"
    attainable_flops: float       # flop/s at this intensity


def roofline_time(
    flops: float,
    unique_bytes: float,
    spec: SW26010Spec = DEFAULT_SPEC,
    vector_efficiency: float = 1.0,
) -> RooflinePoint:
    """Lower-bound execution time of a kernel on one core group.

    ``max(flops / peak, bytes / bandwidth)`` with the CG's share of the
    memory channel — the paper's "assuming bandwidth as the major
    constraint" projection.
    """
    if flops <= 0 or unique_bytes <= 0:
        raise ValueError("flops and unique_bytes must be positive")
    peak = spec.cg_peak_flops * vector_efficiency
    t_compute = flops / peak
    t_memory = unique_bytes / spec.cg_memory_bandwidth
    ai = flops / unique_bytes
    if t_memory >= t_compute:
        return RooflinePoint("", ai, t_memory, "memory", flops / t_memory)
    return RooflinePoint("", ai, t_compute, "compute", peak)


def ridge_intensity(spec: SW26010Spec = DEFAULT_SPEC, vector_efficiency: float = 1.0) -> float:
    """Arithmetic intensity where compute and memory bounds cross.

    For the SW26010 CG: 742 GF/s / 33 GB/s = 22.5 flops/byte at full
    vector efficiency — brutally high, which is why the paper's whole
    strategy is traffic minimization.
    """
    return spec.cg_peak_flops * vector_efficiency / spec.cg_memory_bandwidth


def projected_upper_bound(
    flops: float,
    unique_bytes: float,
    measured_openacc_seconds: float,
    spec: SW26010Spec = DEFAULT_SPEC,
    vector_efficiency: float = 0.35,
) -> dict:
    """The redesign decision record for one kernel.

    Compares the measured directive-port time against the bandwidth-
    bound projection; the ``headroom`` ratio is what the paper used to
    pick Athread-rewrite targets (a kernel already at its projection
    cannot be improved by rewriting; one 10x above it can).
    """
    point = roofline_time(flops, unique_bytes, spec, vector_efficiency)
    headroom = measured_openacc_seconds / point.time_bound
    return {
        "projection_seconds": point.time_bound,
        "bound": point.bound,
        "arithmetic_intensity": point.arithmetic_intensity,
        "measured_seconds": measured_openacc_seconds,
        "headroom": headroom,
        "rewrite_recommended": headroom > 2.0,
    }
