"""repro — a laptop-scale reproduction of "Redesigning CAM-SE for
Peta-Scale Climate Modeling Performance and Ultra-High Resolution on
Sunway TaihuLight" (Fu et al., SC 2017).

The package builds every system the paper depends on:

- :mod:`repro.sunway` — a functional + performance-model simulator of the
  SW26010 many-core processor (LDM scratchpads, DMA, register
  communication, 256-bit vectors with shuffle);
- :mod:`repro.network` — the TaihuLight two-level interconnect and a
  simulated MPI with computation/communication overlap;
- :mod:`repro.mesh` — the cubed-sphere spectral-element mesh, SFC
  partitioning and halo graphs;
- :mod:`repro.homme` — the CAM-SE/HOMME dynamical core kernels
  (compute_and_apply_rhs, euler_step, vertical_remap, hyperviscosity,
  biharmonic, bndry_exchangev) with real numerics;
- :mod:`repro.physics` — a simplified CAM physics suite;
- :mod:`repro.backends` — the Intel / MPE / OpenACC / Athread execution
  models, the paper's central contribution;
- :mod:`repro.core` — the refactoring toolchain (loop IR, translator,
  footprint analysis, LDM tiling, roofline projection);
- :mod:`repro.perf`, :mod:`repro.baselines`, :mod:`repro.katrina`,
  :mod:`repro.experiments` — performance models, NGGPS baselines, the
  Katrina experiment, and one driver per paper table/figure;
- :mod:`repro.bench` — the deterministic benchmark suite and
  regression gate (batched vs looped dycore paths on the wall clock,
  Table-1 kernels on the simulated clock, compared against the
  committed ``BENCH_homme.json`` baseline).

Quickstart::

    from repro.config import ModelConfig
    from repro.homme.timestep import PrimitiveEquationModel

    model = PrimitiveEquationModel(ModelConfig(ne=6, nlev=8, qsize=2))
    model.run_steps(10)
    print(model.diagnostics())
"""

__version__ = "1.0.0"

from . import constants
from .config import ModelConfig, RunConfig

__all__ = ["constants", "ModelConfig", "RunConfig", "__version__"]
