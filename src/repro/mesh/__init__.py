"""The cubed-sphere spectral-element mesh substrate.

CAM-SE discretizes the sphere as six gnomonic cube faces, each tiled
with ``ne x ne`` spectral elements carrying an ``np x np`` grid of
Gauss--Lobatto--Legendre (GLL) points (paper Section 8.1.3, Table 2).

- :mod:`~repro.mesh.gll` — GLL nodes, weights, derivative matrices;
- :mod:`~repro.mesh.cubed_sphere` — equiangular cubed-sphere geometry
  with analytic metric terms and global DOF assembly (for the
  functional dycore at laptop scale);
- :mod:`~repro.mesh.connectivity` — structural element adjacency valid
  at any ``ne`` (derived once from geometry, then applied cheaply);
- :mod:`~repro.mesh.sfc` — Hilbert space-filling curve ordering;
- :mod:`~repro.mesh.partition` — SFC domain decomposition, halo graphs,
  and the inner/boundary element split the overlap redesign uses.
"""

from .gll import gll_points, gll_weights, derivative_matrix
from .cubed_sphere import CubedSphereMesh
from .connectivity import CubeConnectivity
from .sfc import hilbert_d2xy, hilbert_xy2d, sfc_ordering
from .partition import SFCPartition, RankHalo

__all__ = [
    "gll_points",
    "gll_weights",
    "derivative_matrix",
    "CubedSphereMesh",
    "CubeConnectivity",
    "hilbert_d2xy",
    "hilbert_xy2d",
    "sfc_ordering",
    "SFCPartition",
    "RankHalo",
]
