"""SFC domain decomposition and halo graphs.

Elements are assigned to ranks as equal contiguous chunks of the global
space-filling curve (:func:`~repro.mesh.sfc.global_sfc_order`).  The
partition computes, per rank:

- the owned element list;
- the **inner/boundary split**: boundary elements have at least one
  edge- or corner-neighbor owned by another rank.  The redesigned
  ``bndry_exchangev`` (paper Section 7.6) computes boundary elements
  first, posts communication, and overlaps the inner elements with the
  in-flight messages;
- the halo graph: for each neighbor rank, how many element edges and
  corners are shared, which determines message sizes (np GLL points x
  nlev levels x fields per edge, 1 x nlev x fields per corner).

Everything is vectorized so that the paper-scale meshes (ne = 1024,
6.3 M elements, 131,072 ranks) are analyzable exactly on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PartitionError
from .connectivity import CubeConnectivity
from .sfc import global_sfc_order


@dataclass
class RankHalo:
    """Halo summary for one rank.

    ``neighbors`` maps a peer rank to ``(shared_edges, shared_corners)``
    counted from this rank's side (symmetric by construction).
    """

    rank: int
    n_elements: int
    n_inner: int
    n_boundary: int
    neighbors: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def n_neighbor_ranks(self) -> int:
        return len(self.neighbors)

    def message_bytes(self, nlev: int, nfields: int, np_: int = 4) -> dict[int, int]:
        """Bytes exchanged with each neighbor rank in one halo exchange.

        Each shared edge carries ``np`` GLL points per level per field;
        each shared corner carries one point.  8 bytes per double.
        """
        out = {}
        for peer, (edges, corners) in self.neighbors.items():
            points = edges * np_ + corners
            out[peer] = points * nlev * nfields * 8
        return out

    def total_message_bytes(self, nlev: int, nfields: int, np_: int = 4) -> int:
        """Total bytes this rank sends in one halo exchange."""
        return sum(self.message_bytes(nlev, nfields, np_).values())


class SFCPartition:
    """Space-filling-curve partition of a cubed-sphere mesh.

    Parameters
    ----------
    ne:
        Cubed-sphere resolution.
    nranks:
        MPI ranks (one per core group on TaihuLight).
    connectivity:
        Optional pre-built :class:`CubeConnectivity` (shared across
        partitions of the same mesh in sweeps).
    """

    def __init__(
        self,
        ne: int,
        nranks: int,
        connectivity: CubeConnectivity | None = None,
    ) -> None:
        self.ne = ne
        self.nelem = 6 * ne * ne
        if nranks < 1:
            raise PartitionError(f"nranks must be >= 1, got {nranks}")
        if nranks > self.nelem:
            raise PartitionError(
                f"{nranks} ranks exceed {self.nelem} elements at ne={ne}"
            )
        self.nranks = nranks
        self.conn = connectivity if connectivity is not None else CubeConnectivity(ne)
        if self.conn.ne != ne:
            raise PartitionError("connectivity ne does not match partition ne")

        order = global_sfc_order(ne)
        # Balanced contiguous chunks: first (nelem % nranks) ranks get one extra.
        base = self.nelem // nranks
        extra = self.nelem % nranks
        counts = np.full(nranks, base, dtype=np.int64)
        counts[:extra] += 1
        self._counts = counts
        bounds = np.concatenate([[0], np.cumsum(counts)])
        self._bounds = bounds
        self._order = order

        # owner[element] = rank.
        owner = np.empty(self.nelem, dtype=np.int64)
        ranks_along_curve = np.repeat(np.arange(nranks), counts)
        owner[order] = ranks_along_curve
        self.owner = owner

        self._build_halos()

    # -- construction ------------------------------------------------------------

    def _build_halos(self) -> None:
        conn = self.conn
        own = self.owner
        edge_peer = own[conn.edge_neighbors]                      # (nelem, 4)
        edge_foreign = edge_peer != own[:, None]
        corner_ids = conn.corner_neighbors
        corner_valid = corner_ids >= 0
        corner_peer = np.where(corner_valid, own[np.clip(corner_ids, 0, None)], -1)
        corner_foreign = corner_valid & (corner_peer != own[:, None])

        self.boundary_mask = edge_foreign.any(axis=1) | corner_foreign.any(axis=1)

        # Per-(rank, peer) edge counts.
        src = np.repeat(own, 4)
        dst = edge_peer.reshape(-1)
        keep = edge_foreign.reshape(-1)
        pairs_e = np.stack([src[keep], dst[keep]], axis=1)
        uniq_e, cnt_e = np.unique(pairs_e, axis=0, return_counts=True)

        srcc = np.repeat(own, 4)
        dstc = corner_peer.reshape(-1)
        keepc = corner_foreign.reshape(-1)
        pairs_c = np.stack([srcc[keepc], dstc[keepc]], axis=1)
        if len(pairs_c):
            uniq_c, cnt_c = np.unique(pairs_c, axis=0, return_counts=True)
        else:  # pragma: no cover - tiny meshes
            uniq_c, cnt_c = np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)

        halos: dict[int, RankHalo] = {}
        bcount = np.bincount(self.owner[self.boundary_mask], minlength=self.nranks)
        for r in range(self.nranks):
            n = int(self._counts[r])
            nb = int(bcount[r])
            halos[r] = RankHalo(r, n, n - nb, nb)
        for (s, d), c in zip(uniq_e, cnt_e):
            e, k = halos[int(s)].neighbors.get(int(d), (0, 0))
            halos[int(s)].neighbors[int(d)] = (e + int(c), k)
        for (s, d), c in zip(uniq_c, cnt_c):
            e, k = halos[int(s)].neighbors.get(int(d), (0, 0))
            halos[int(s)].neighbors[int(d)] = (e, k + int(c))
        self._halos = halos

    # -- queries --------------------------------------------------------------

    def rank_elements(self, rank: int) -> np.ndarray:
        """Element ids owned by ``rank``, in curve order."""
        self._check_rank(rank)
        return self._order[self._bounds[rank] : self._bounds[rank + 1]]

    def elements_per_rank(self) -> np.ndarray:
        """(nranks,) element counts; balanced to within one element."""
        return self._counts.copy()

    def halo(self, rank: int) -> RankHalo:
        """The halo summary for ``rank``."""
        self._check_rank(rank)
        return self._halos[rank]

    def halos(self) -> list[RankHalo]:
        """All rank halos."""
        return [self._halos[r] for r in range(self.nranks)]

    def inner_elements(self, rank: int) -> np.ndarray:
        """Owned elements with no foreign neighbor (overlappable work)."""
        els = self.rank_elements(rank)
        return els[~self.boundary_mask[els]]

    def boundary_elements(self, rank: int) -> np.ndarray:
        """Owned elements with at least one foreign neighbor."""
        els = self.rank_elements(rank)
        return els[self.boundary_mask[els]]

    # -- aggregate statistics for the performance model -----------------------------

    def mean_boundary_fraction(self) -> float:
        """Average fraction of a rank's elements on its boundary.

        Each rank contributes ``n_boundary / n_elements`` with equal
        weight.  This differs from the element-weighted global fraction
        ``boundary_mask.mean()`` whenever element counts are uneven:
        small ranks (which are almost all boundary) must not be diluted
        by large ones, since the per-rank fraction is what sets each
        rank's halo-to-compute ratio in the scaling model.
        """
        fracs = [
            h.n_boundary / h.n_elements for h in self._halos.values()
        ]
        return float(np.mean(fracs))

    def mean_neighbor_count(self) -> float:
        """Average number of neighbor ranks per rank."""
        return float(np.mean([h.n_neighbor_ranks for h in self._halos.values()]))

    def max_message_bytes(self, nlev: int, nfields: int) -> int:
        """Largest per-rank halo volume (the scaling-critical rank)."""
        return max(
            h.total_message_bytes(nlev, nfields, 4) for h in self._halos.values()
        )

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise PartitionError(f"rank {rank} outside 0..{self.nranks - 1}")
