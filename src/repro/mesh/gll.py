"""Gauss--Lobatto--Legendre quadrature and spectral derivative matrices.

CAM-SE uses np=4 GLL points per element edge (fourth-order accurate).
Nodes are the roots of (1 - x^2) P'_{n-1}(x); weights are
2 / (n (n-1) P_{n-1}(x_i)^2).  The derivative matrix is the exact
derivative of the Lagrange interpolating basis evaluated at the nodes,
built from barycentric weights for numerical stability.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from numpy.polynomial import legendre as npleg


@lru_cache(maxsize=None)
def _gll_points_weights(n: int) -> tuple[np.ndarray, np.ndarray]:
    if n < 2:
        raise ValueError(f"GLL rule needs at least 2 points, got {n}")
    # P_{n-1} coefficients in Legendre basis, differentiate for interior roots.
    coeffs = np.zeros(n)
    coeffs[-1] = 1.0
    dcoeffs = npleg.legder(coeffs)
    interior = npleg.legroots(dcoeffs)
    pts = np.concatenate([[-1.0], np.sort(interior), [1.0]])
    # Weights: 2 / (n (n-1) P_{n-1}(x)^2).
    pvals = npleg.legval(pts, coeffs)
    wts = 2.0 / (n * (n - 1) * pvals**2)
    pts.setflags(write=False)
    wts.setflags(write=False)
    return pts, wts


def gll_points(n: int) -> np.ndarray:
    """The ``n`` GLL nodes on [-1, 1] (read-only array)."""
    return _gll_points_weights(n)[0]


def gll_weights(n: int) -> np.ndarray:
    """The ``n`` GLL quadrature weights (read-only array; sums to 2)."""
    return _gll_points_weights(n)[1]


@lru_cache(maxsize=None)
def derivative_matrix(n: int) -> np.ndarray:
    """The spectral derivative matrix D with D[i, j] = l_j'(x_i).

    ``(D @ f)`` evaluates the derivative of the degree-(n-1) interpolant
    of nodal values ``f`` at the nodes.  Exact for polynomials of degree
    <= n-1.
    """
    x = gll_points(n)
    # Barycentric weights.
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    bary = 1.0 / np.prod(diff, axis=1)
    # Off-diagonal: D_ij = (w_j / w_i) / (x_i - x_j).
    D = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i != j:
                D[i, j] = (bary[j] / bary[i]) / (x[i] - x[j])
    # Diagonal: negative row sum (derivative of constants is zero).
    np.fill_diagonal(D, -D.sum(axis=1))
    D.setflags(write=False)
    return D


def lagrange_basis(n: int, xi: np.ndarray) -> np.ndarray:
    """Evaluate the n GLL Lagrange basis functions at points ``xi``.

    Returns an array of shape (len(xi), n): row k holds l_0..l_{n-1} at
    xi[k].  Used for interpolating element fields to arbitrary points
    (vortex tracking, validation plots).
    """
    x = gll_points(n)
    xi = np.atleast_1d(np.asarray(xi, dtype=np.float64))
    out = np.ones((xi.size, n))
    for j in range(n):
        for m in range(n):
            if m != j:
                out[:, j] *= (xi - x[m]) / (x[j] - x[m])
    return out
