"""Hilbert space-filling-curve ordering for cubed-sphere partitioning.

CAM-SE assigns elements to MPI ranks by cutting a space-filling curve
into equal pieces, which yields compact per-rank patches (small halo
surface for the volume).  We implement the classic Hilbert curve with a
vectorized index computation; faces that are not a power of two (ne=30,
ne=120, ...) are embedded in the enclosing 2^k grid and the missing
cells skipped, which preserves locality.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError


def hilbert_xy2d(order: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Distance along the Hilbert curve of order ``order`` for cells (x, y).

    Vectorized version of the standard bit-twiddling algorithm; the grid
    is ``2^order x 2^order``.
    """
    if order < 1:
        raise MeshError(f"order must be >= 1, got {order}")
    x = np.asarray(x, dtype=np.int64).copy()
    y = np.asarray(y, dtype=np.int64).copy()
    n = 1 << order
    if np.any((x < 0) | (x >= n) | (y < 0) | (y >= n)):
        raise MeshError(f"coordinates outside 2^{order} grid")
    d = np.zeros_like(x)
    s = n >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        s >>= 1
    return d


def hilbert_d2xy(order: int, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`hilbert_xy2d`: curve distance -> (x, y)."""
    if order < 1:
        raise MeshError(f"order must be >= 1, got {order}")
    d = np.asarray(d, dtype=np.int64)
    n = 1 << order
    if np.any((d < 0) | (d >= n * n)):
        raise MeshError("distance outside curve")
    t = d.copy()
    x = np.zeros_like(d)
    y = np.zeros_like(d)
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new + s * rx, y_new + s * ry
        t //= 4
        s <<= 1
    return x, y


def sfc_ordering(ne: int) -> np.ndarray:
    """Hilbert ordering of one ne x ne face.

    Returns a permutation ``perm`` of 0..ne^2-1 such that walking cells
    ``(fi, fj) = divmod(perm[t], ne)`` in order of ``t`` follows the
    curve.  Non-power-of-two faces use the enclosing 2^k grid.
    """
    if ne < 1:
        raise MeshError(f"ne must be >= 1, got {ne}")
    if ne == 1:
        return np.zeros(1, dtype=np.int64)
    order = int(np.ceil(np.log2(ne)))
    fi, fj = np.meshgrid(np.arange(ne), np.arange(ne), indexing="ij")
    d = hilbert_xy2d(order, fj.reshape(-1), fi.reshape(-1))
    cell = fi.reshape(-1) * ne + fj.reshape(-1)
    return cell[np.argsort(d, kind="stable")]


def global_sfc_order(ne: int) -> np.ndarray:
    """Curve ordering of all 6*ne^2 elements of the cubed sphere.

    Faces are traversed in the order 0,1,2,3,4,5 with each face's cells
    in Hilbert order; alternate faces reverse their curve so consecutive
    faces join end-to-start, keeping rank patches compact across face
    boundaries.  Element ids follow
    ``k = face * ne^2 + fi * ne + fj``.
    """
    per_face = sfc_ordering(ne)
    ne2 = ne * ne
    chunks = []
    for f in range(6):
        cells = per_face if f % 2 == 0 else per_face[::-1]
        chunks.append(f * ne2 + cells)
    return np.concatenate(chunks)
