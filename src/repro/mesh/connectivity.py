"""Structural element adjacency on the cubed sphere, valid at any ne.

Within a face, element neighbors are index arithmetic.  Across faces we
exploit a property of the *equiangular* projection: a shared cube edge
has the **same angular parameterization from both faces**, so the point
just beyond a face boundary, constructed analytically with the face's
own gnomonic formula (tan extends smoothly past pi/4), lands inside the
correct neighbor element of the adjacent face.  We classify that probe
point by its dominant Cartesian axis and invert the neighbor face's
gnomonic map — no hand-maintained orientation tables, and the result is
validated against the geometric (GLL-point-matching) adjacency of
:class:`~repro.mesh.cubed_sphere.CubedSphereMesh` in the test suite.

This machinery is cheap (a few vector ops per element) and is what the
partitioner uses for meshes far too large to build geometrically
(ne = 1024 and beyond, paper Figures 7/8).
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from .cubed_sphere import _FACE_XYZ

#: Edge order: 0 = south (fi-1), 1 = east (fj+1), 2 = north (fi+1), 3 = west (fj-1).
EDGE_OFFSETS = ((-1, 0), (0, 1), (1, 0), (0, -1))

#: Corner order: 0 = SW, 1 = SE, 2 = NE, 3 = NW.
CORNER_OFFSETS = ((-1, -1), (-1, 1), (1, 1), (1, -1))


def _face_of_point(p: np.ndarray) -> np.ndarray:
    """Classify unit vectors by dominant axis into faces 0..5."""
    x, y, z = p[..., 0], p[..., 1], p[..., 2]
    ax, ay, az = np.abs(x), np.abs(y), np.abs(z)
    face = np.empty(p.shape[:-1], dtype=np.int64)
    xd = (ax >= ay) & (ax >= az)
    yd = (ay > ax) & (ay >= az)
    zd = ~(xd | yd)
    face[xd] = np.where(x[xd] > 0, 0, 2)
    face[yd] = np.where(y[yd] > 0, 1, 3)
    face[zd] = np.where(z[zd] > 0, 4, 5)
    return face


def _invert_face(face: np.ndarray, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-face gnomonic inversion: unit vector -> (a, b) = (tan alpha, tan beta)."""
    x, y, z = p[..., 0], p[..., 1], p[..., 2]
    a = np.empty_like(x)
    b = np.empty_like(x)
    for f, (fa, fb) in {
        0: (lambda: y / x, lambda: z / x),
        1: (lambda: -x / y, lambda: z / y),
        2: (lambda: y / x, lambda: -z / x),
        3: (lambda: -x / y, lambda: -z / y),
        4: (lambda: y / z, lambda: -x / z),
        5: (lambda: -y / z, lambda: -x / z),
    }.items():
        sel = face == f
        if np.any(sel):
            with np.errstate(divide="ignore", invalid="ignore"):
                a_all, b_all = fa(), fb()
            a[sel] = a_all[sel]
            b[sel] = b_all[sel]
    return a, b


class CubeConnectivity:
    """Element adjacency for an ne x ne x 6 cubed-sphere mesh.

    Elements are numbered ``k = face * ne^2 + fi * ne + fj``.  The
    arrays built here:

    - ``edge_neighbors`` — (nelem, 4): neighbor across S/E/N/W edges;
    - ``corner_neighbors`` — (nelem, 4): diagonal neighbor at SW/SE/NE/NW,
      or -1 where three elements meet at a cube corner (no fourth).
    """

    def __init__(self, ne: int) -> None:
        if ne < 2:
            raise MeshError(f"ne must be >= 2, got {ne}")
        self.ne = ne
        self.nelem = 6 * ne * ne
        self._build()

    # -- index helpers -------------------------------------------------------

    def eid(self, face, fi, fj):
        """Element id from (face, row, col); accepts arrays."""
        return face * self.ne * self.ne + fi * self.ne + fj

    def locate(self, k):
        """(face, fi, fj) from element ids; accepts arrays."""
        ne2 = self.ne * self.ne
        face = k // ne2
        rem = k - face * ne2
        return face, rem // self.ne, rem % self.ne

    # -- construction ------------------------------------------------------------

    def _probe(self, face, alpha, beta):
        """Map (possibly out-of-face) angles to the element containing them."""
        a, b = np.tan(alpha), np.tan(beta)
        p = np.empty(alpha.shape + (3,))
        for f in range(6):
            sel = face == f
            if np.any(sel):
                x, y, z = _FACE_XYZ[f](a[sel], b[sel])
                v = np.stack([x, y, z], axis=-1)
                p[sel] = v / np.linalg.norm(v, axis=-1, keepdims=True)
        tface = _face_of_point(p)
        ta, tb = _invert_face(tface, p)
        dal = (np.pi / 2.0) / self.ne
        fj = np.floor((np.arctan(ta) + np.pi / 4.0) / dal).astype(np.int64)
        fi = np.floor((np.arctan(tb) + np.pi / 4.0) / dal).astype(np.int64)
        np.clip(fi, 0, self.ne - 1, out=fi)
        np.clip(fj, 0, self.ne - 1, out=fj)
        return self.eid(tface, fi, fj)

    def _build(self) -> None:
        ne = self.ne
        dal = (np.pi / 2.0) / ne
        k = np.arange(self.nelem)
        face, fi, fj = self.locate(k)
        # Element centers in angle coordinates.
        ca = -np.pi / 4.0 + (fj + 0.5) * dal
        cb = -np.pi / 4.0 + (fi + 0.5) * dal

        self.edge_neighbors = np.empty((self.nelem, 4), dtype=np.int64)
        for e, (di, dj) in enumerate(EDGE_OFFSETS):
            ni, nj = fi + di, fj + dj
            inside = (0 <= ni) & (ni < ne) & (0 <= nj) & (nj < ne)
            out = ~inside
            self.edge_neighbors[inside, e] = self.eid(
                face[inside], ni[inside], nj[inside]
            )
            if np.any(out):
                # Probe just past the shared edge: step from the edge
                # midpoint outward by a small fraction of an element.
                pa = ca[out] + dj * (0.5 + 0.05) * dal
                pb = cb[out] + di * (0.5 + 0.05) * dal
                self.edge_neighbors[out, e] = self._probe(face[out], pa, pb)

        self.corner_neighbors = np.empty((self.nelem, 4), dtype=np.int64)
        for c, (di, dj) in enumerate(CORNER_OFFSETS):
            ni, nj = fi + di, fj + dj
            inside = (0 <= ni) & (ni < ne) & (0 <= nj) & (nj < ne)
            out = ~inside
            self.corner_neighbors[inside, c] = self.eid(
                face[inside], ni[inside], nj[inside]
            )
            if np.any(out):
                pa = ca[out] + dj * (0.5 + 0.05) * dal
                pb = cb[out] + di * (0.5 + 0.05) * dal
                target = self._probe(face[out], pa, pb)
                # At a cube corner three elements meet: the diagonal probe
                # falls into an element that is already an edge neighbor;
                # record -1 (no distinct corner neighbor) there.
                idx = np.nonzero(out)[0]
                dup = (
                    (target == self.edge_neighbors[idx, 0])
                    | (target == self.edge_neighbors[idx, 1])
                    | (target == self.edge_neighbors[idx, 2])
                    | (target == self.edge_neighbors[idx, 3])
                )
                target = np.where(dup, -1, target)
                self.corner_neighbors[out, c] = target

    # -- queries --------------------------------------------------------------

    def all_neighbors(self, k: int) -> list[int]:
        """Edge + existing corner neighbors of element ``k`` (4 to 8 ids)."""
        ids = list(self.edge_neighbors[k]) + [
            c for c in self.corner_neighbors[k] if c >= 0
        ]
        return [int(i) for i in ids]

    def neighbor_matrix(self) -> np.ndarray:
        """(nelem, 8) edge+corner neighbor ids, -1 for absent corners."""
        return np.concatenate([self.edge_neighbors, self.corner_neighbors], axis=1)
