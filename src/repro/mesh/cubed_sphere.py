"""Equiangular gnomonic cubed-sphere geometry with analytic metric terms.

Each of the six cube faces carries face coordinates
(alpha, beta) in [-pi/4, pi/4]^2; with X = tan(alpha), Y = tan(beta) and
rho^2 = 1 + X^2 + Y^2 the metric tensor of the equiangular projection is::

    g_ij = R^2 (1+X^2)(1+Y^2) / rho^4 * [[1+X^2, -X Y], [-X Y, 1+Y^2]]

with sqrt(det g) = R^2 (1+X^2)(1+Y^2) / rho^3.  These are the exact
terms HOMME stores per element (``metdet``, ``met``, ``metinv``) and the
spectral-element operators in :mod:`repro.homme.operators` consume them
directly.

Faces are tiled by ``ne x ne`` elements, each with an ``np x np`` GLL
grid.  Global degree-of-freedom assembly (shared edges/corners) is done
geometrically: GLL points are identified by their rounded unit-sphere
coordinates, which handles cross-face edges and cube corners without a
hand-written orientation table.  This mesh is used by the functional
dycore at laptop scale (ne <= ~32); the structural machinery in
:mod:`repro.mesh.connectivity` covers arbitrary ne for partitioning.
"""

from __future__ import annotations

import numpy as np

from .. import constants as C
from ..errors import MeshError
from .gll import derivative_matrix, gll_points, gll_weights

#: Face base vectors: P_f(a, b) before normalization, with a = tan(alpha),
#: b = tan(beta).  Faces 0-3 ring the equator (centres at lon 0, 90, 180,
#: 270); face 4 is the north cap, face 5 the south cap.
_FACE_XYZ = {
    0: lambda a, b: (np.ones_like(a), a, b),
    1: lambda a, b: (-a, np.ones_like(a), b),
    2: lambda a, b: (-np.ones_like(a), -a, b),
    3: lambda a, b: (a, -np.ones_like(a), b),
    4: lambda a, b: (-b, a, np.ones_like(a)),
    5: lambda a, b: (b, a, -np.ones_like(a)),
}


def _face_point(face: int, alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Unit-sphere points for face coordinates (alpha, beta); shape (..., 3)."""
    a, b = np.tan(alpha), np.tan(beta)
    x, y, z = _FACE_XYZ[face](a, b)
    p = np.stack([x, y, z], axis=-1)
    return p / np.linalg.norm(p, axis=-1, keepdims=True)


class CubedSphereMesh:
    """An ne x ne x 6 cubed-sphere spectral-element mesh.

    Attributes (all numpy arrays, ``nelem = 6 * ne**2``):

    - ``face, fi, fj`` — (nelem,) element position: cube face, row, column;
    - ``alpha, beta`` — (nelem, np, np) face coordinates of GLL points;
    - ``xyz`` — (nelem, np, np, 3) unit-sphere Cartesian coordinates;
    - ``lat, lon`` — (nelem, np, np) geographic coordinates [rad];
    - ``metdet`` — (nelem, np, np) sqrt(det g), the area Jacobian;
    - ``met, metinv`` — (nelem, np, np, 2, 2) metric and inverse metric;
    - ``e_cov`` — (nelem, np, np, 3, 2) covariant basis vectors
      (d p/d alpha, d p/d beta) as 3-vectors (unit sphere, multiply by
      ``radius`` for physical length);
    - ``spheremp`` — (nelem, np, np) quadrature weights x Jacobian x
      element size factor: ``sum(f * spheremp)`` integrates f over the
      sphere of radius ``radius``;
    - ``gid`` — (nelem, np, np) global DOF ids (shared on edges/corners);
    - ``dss_weight`` — (nelem, np, np) spheremp / (assembled spheremp),
      the weights a direct stiffness summation uses to average shared
      points conservatively.
    """

    def __init__(
        self,
        ne: int,
        np_: int = C.NP,
        radius: float = C.EARTH_RADIUS,
        omega: float | None = None,
    ) -> None:
        if ne < 2:
            raise MeshError(f"ne must be >= 2, got {ne}")
        if np_ < 2:
            raise MeshError(f"np must be >= 2, got {np_}")
        self.ne = ne
        self.np = np_
        self.radius = radius
        # Reduced-radius ("small Earth") convention: rotation speeds up
        # by the same factor the radius shrinks, keeping the Rossby
        # number of resolved circulations unchanged (DCMIP X-scaling).
        if omega is None:
            omega = C.EARTH_OMEGA * (C.EARTH_RADIUS / radius)
        self.omega = omega
        self.nelem = 6 * ne * ne

        # Element placement.
        face, fi, fj = np.meshgrid(
            np.arange(6), np.arange(ne), np.arange(ne), indexing="ij"
        )
        self.face = face.reshape(-1)
        self.fi = fi.reshape(-1)  # row index (beta direction)
        self.fj = fj.reshape(-1)  # column index (alpha direction)

        # GLL reference grid.
        self.gll_x = gll_points(np_)
        self.gll_w = gll_weights(np_)
        self.deriv = derivative_matrix(np_)

        # Element width in face coordinates; dalpha/dxi Jacobian factor.
        self.dalpha = (np.pi / 2.0) / ne
        #: d(alpha)/d(xi): reference element [-1,1] -> alpha width.
        self.jac_ref = self.dalpha / 2.0

        # Face coordinates of every GLL point.
        lo = -np.pi / 4.0
        # element corner + (gll+1)/2 * dalpha
        a0 = lo + self.fj[:, None, None] * self.dalpha
        b0 = lo + self.fi[:, None, None] * self.dalpha
        gx = (self.gll_x + 1.0) / 2.0 * self.dalpha
        shape = (self.nelem, np_, np_)
        # alpha varies along j (last axis), beta along i (middle axis).
        self.alpha = np.broadcast_to(a0 + gx[None, None, :], shape).copy()
        self.beta = np.broadcast_to(b0 + gx[None, :, None], shape).copy()

        self._build_geometry()
        self._build_assembly()

    # ------------------------------------------------------------------ geometry

    def _build_geometry(self) -> None:
        ne, np_ = self.ne, self.np
        R = self.radius
        X = np.tan(self.alpha)
        Y = np.tan(self.beta)
        rho2 = 1.0 + X**2 + Y**2
        rho = np.sqrt(rho2)
        cx2 = 1.0 + X**2  # sec^2(alpha) / (1) in tan form
        cy2 = 1.0 + Y**2

        # Metric tensor and inverse (exact equiangular formulas).
        fac = R**2 * cx2 * cy2 / rho2**2
        met = np.empty((self.nelem, np_, np_, 2, 2))
        met[..., 0, 0] = fac * cx2
        met[..., 0, 1] = -fac * X * Y
        met[..., 1, 0] = -fac * X * Y
        met[..., 1, 1] = fac * cy2
        self.met = met
        self.metdet = R**2 * cx2 * cy2 / rho2**1.5

        detg = self.metdet**2
        metinv = np.empty_like(met)
        metinv[..., 0, 0] = met[..., 1, 1] / detg
        metinv[..., 0, 1] = -met[..., 0, 1] / detg
        metinv[..., 1, 0] = -met[..., 1, 0] / detg
        metinv[..., 1, 1] = met[..., 0, 0] / detg
        self.metinv = metinv

        # Unit-sphere positions, one face at a time.
        self.xyz = np.empty((self.nelem, np_, np_, 3))
        for f in range(6):
            sel = self.face == f
            self.xyz[sel] = _face_point(f, self.alpha[sel], self.beta[sel])
        self.lat = np.arcsin(np.clip(self.xyz[..., 2], -1.0, 1.0))
        self.lon = np.mod(np.arctan2(self.xyz[..., 1], self.xyz[..., 0]), 2 * np.pi)

        # Covariant basis vectors d p / d alpha, d p / d beta on the unit
        # sphere: differentiate p = P/|P| with dP/dalpha = sec^2(alpha) dP/da.
        self.e_cov = np.empty((self.nelem, np_, np_, 3, 2))
        for f in range(6):
            sel = self.face == f
            a, b = np.tan(self.alpha[sel]), np.tan(self.beta[sel])
            one = np.ones_like(a)
            zero = np.zeros_like(a)
            P = np.stack(_FACE_XYZ[f](a, b), axis=-1)
            # dP/da and dP/db are constant direction vectors per face.
            dPda = np.stack(_dface(f, "a", one, zero), axis=-1)
            dPdb = np.stack(_dface(f, "b", one, zero), axis=-1)
            norm = np.linalg.norm(P, axis=-1, keepdims=True)
            p = P / norm
            ecov_f = np.empty(p.shape + (2,))
            for k, (dP, tanv) in enumerate(((dPda, a), (dPdb, b))):
                # d(tan)/d(angle) = 1 + tan^2.
                sec2 = (1.0 + tanv**2)[..., None]
                dPd = dP * sec2
                proj = np.sum(p * dPd, axis=-1, keepdims=True)
                ecov_f[..., k] = (dPd - p * proj) / norm
            self.e_cov[sel] = ecov_f
        # Quadrature weights: w_i w_j * metdet * (dalpha/dxi)^2 — but metdet
        # already carries d(area)/d(alpha d beta), and GLL weights integrate
        # over xi in [-1,1]^2, so include the alpha(xi) Jacobian squared.
        w2 = self.gll_w[:, None] * self.gll_w[None, :]
        self.spheremp = self.metdet * w2[None, :, :] * self.jac_ref**2

        # Spherical unit vectors for wind conversion.
        lam, phi = self.lon, self.lat
        self.e_lon = np.stack([-np.sin(lam), np.cos(lam), np.zeros_like(lam)], axis=-1)
        self.e_lat = np.stack(
            [-np.sin(phi) * np.cos(lam), -np.sin(phi) * np.sin(lam), np.cos(phi)],
            axis=-1,
        )

    # ------------------------------------------------------------------ assembly

    def _build_assembly(self) -> None:
        pts = np.round(self.xyz.reshape(-1, 3), decimals=9)
        _, inverse = np.unique(pts, axis=0, return_inverse=True)
        self.gid = inverse.reshape(self.nelem, self.np, self.np)
        self.ngid = int(self.gid.max()) + 1
        # Assembled spheremp per global id.
        assembled = np.zeros(self.ngid)
        np.add.at(assembled, self.gid.reshape(-1), self.spheremp.reshape(-1))
        self.assembled_spheremp = assembled
        self.dss_weight = self.spheremp / assembled[self.gid]
        mult = np.zeros(self.ngid, dtype=np.int64)
        np.add.at(mult, self.gid.reshape(-1), 1)
        self.multiplicity = mult

    # ------------------------------------------------------------------ operations

    def dss(self, field: np.ndarray) -> np.ndarray:
        """Direct stiffness summation: make ``field`` continuous.

        ``field`` has shape (nelem, np, np) or (nelem, np, np, K); shared
        GLL points are replaced by their spheremp-weighted average, the
        conservative projection onto the continuous basis.
        """
        field = np.asarray(field)
        if field.shape[:3] != (self.nelem, self.np, self.np):
            raise MeshError(
                f"dss expects leading shape {(self.nelem, self.np, self.np)}, "
                f"got {field.shape}"
            )
        extra = field.shape[3:]
        flat = field.reshape(self.nelem * self.np * self.np, -1)
        weighted = flat * self.dss_weight.reshape(-1, 1)
        gid_flat = self.gid.reshape(-1)
        # bincount per trailing column: much faster than np.add.at for
        # the scatter-add this hot path is.
        K = weighted.shape[1]
        acc = np.empty((self.ngid, K))
        for k in range(K):
            acc[:, k] = np.bincount(
                gid_flat, weights=weighted[:, k], minlength=self.ngid
            )
        out = acc[gid_flat]
        return out.reshape((self.nelem, self.np, self.np) + extra)

    def global_integral(self, field: np.ndarray) -> float:
        """Integrate a (nelem, np, np) field over the sphere.

        Shared points are weighted by spheremp/assembled so edges are not
        double counted; equivalent to integrating the continuous field.
        """
        if field.shape != (self.nelem, self.np, self.np):
            raise MeshError("global_integral expects an (nelem, np, np) field")
        w = self.spheremp * self.dss_weight  # de-duplicated area weights...
        # NOTE: spheremp already partitions area among duplicates only after
        # DSS weighting; for a continuous field the plain sum over spheremp
        # integrates each shared point multiple times with its share of the
        # area, which is exactly right.
        return float(np.sum(field * self.spheremp))

    def surface_area(self) -> float:
        """Total surface area (checks against 4 pi R^2)."""
        return self.global_integral(np.ones((self.nelem, self.np, self.np)))

    # -- wind conversion ----------------------------------------------------

    def contravariant_to_spherical(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Convert contravariant (v1, v2) [1/s] to zonal/meridional wind [m/s].

        ``v`` has shape (nelem, np, np, 2).  Physical velocity is
        ``radius * (v^1 e_alpha + v^2 e_beta)`` projected on the local
        east/north unit vectors.
        """
        vec = self.radius * (
            self.e_cov[..., 0] * v[..., 0:1] + self.e_cov[..., 1] * v[..., 1:2]
        )
        u = np.sum(vec * self.e_lon, axis=-1)
        w = np.sum(vec * self.e_lat, axis=-1)
        return u, w

    def spherical_to_contravariant(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Convert zonal/meridional wind [m/s] to contravariant components.

        Solves the 2x2 system per GLL point; inverse of
        :meth:`contravariant_to_spherical`.
        """
        # Matrix M[k, c] = radius * e_cov[..., c] . e_k.
        m00 = self.radius * np.sum(self.e_cov[..., 0] * self.e_lon, axis=-1)
        m01 = self.radius * np.sum(self.e_cov[..., 1] * self.e_lon, axis=-1)
        m10 = self.radius * np.sum(self.e_cov[..., 0] * self.e_lat, axis=-1)
        m11 = self.radius * np.sum(self.e_cov[..., 1] * self.e_lat, axis=-1)
        det = m00 * m11 - m01 * m10
        v1 = (u * m11 - v * m01) / det
        v2 = (-u * m10 + v * m00) / det
        return np.stack([v1, v2], axis=-1)


def _dface(face: int, wrt: str, one: np.ndarray, zero: np.ndarray):
    """dP/da or dP/db for each face's base mapping (constant vectors)."""
    table = {
        (0, "a"): (zero, one, zero),
        (0, "b"): (zero, zero, one),
        (1, "a"): (-one, zero, zero),
        (1, "b"): (zero, zero, one),
        (2, "a"): (zero, -one, zero),
        (2, "b"): (zero, zero, one),
        (3, "a"): (one, zero, zero),
        (3, "b"): (zero, zero, one),
        (4, "a"): (zero, one, zero),
        (4, "b"): (-one, zero, zero),
        (5, "a"): (zero, one, zero),
        (5, "b"): (one, zero, zero),
    }
    return table[(face, wrt)]
