"""The flight recorder: event storage, JSONL, and Chrome trace export.

A :class:`FlightRecorder` accumulates :class:`TraceEvent` rows emitted
by a :class:`~repro.obs.tracer.Tracer` and exports them three ways:

- **JSONL** (:meth:`FlightRecorder.to_jsonl`): one canonical JSON
  object per event, sorted keys, stable ordering — the format the
  determinism tests compare byte-for-byte;
- **Chrome trace-event JSON** (:meth:`FlightRecorder.chrome_trace`):
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev, one
  named thread per track (per simulated rank, DMA engine, backend);
- **text summary** (:meth:`FlightRecorder.text_summary`): a pure-python
  per-track/per-span aggregate for tests and CI logs.

Timestamps are simulated seconds; the Chrome export scales them to the
format's microsecond unit.  :func:`validate_chrome_trace` is the schema
check used by the CI smoke job and the tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..utils.logging import jsonable as _jsonable

#: Chrome trace-event timestamps are microseconds.
_CHROME_US_PER_SECOND = 1e6

#: Event phases the recorder emits (a subset of the trace-event spec).
PHASES = ("X", "i", "C")


@dataclass
class TraceEvent:
    """One recorded event on a named track.

    ``ph`` follows the Chrome trace-event phase codes: "X" complete
    span, "i" instant, "C" counter.  ``ts``/``dur`` are simulated
    seconds; ``seq`` is the recording order (the tiebreaker that keeps
    exports deterministic).
    """

    seq: int
    track: str
    name: str
    cat: str
    ph: str
    ts: float
    dur: float = 0.0
    args: dict[str, Any] = field(default_factory=dict)


class FlightRecorder:
    """Append-only store of trace events with deterministic exports."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.events: list[TraceEvent] = []
        self._seq = 0
        #: Track names in first-seen order (Chrome tid assignment).
        self._tracks: list[str] = []
        #: track -> (pid, process name) for tracks owned by another OS
        #: process (pool workers); unmapped tracks belong to the driver
        #: (pid 0 in the export).
        self._procs: dict[str, tuple[int, str]] = {}

    # -- recording ------------------------------------------------------------

    def record(
        self,
        track: str,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: float = 0.0,
        args: dict[str, Any] | None = None,
    ) -> TraceEvent:
        """Append one event; returns it (mainly for tests)."""
        if ph not in PHASES:
            raise ValueError(f"unknown trace phase {ph!r}; expected one of {PHASES}")
        ev = TraceEvent(self._seq, track, name, cat, ph,
                        float(ts), float(dur), dict(args or {}))
        self._seq += 1
        if track not in self._tracks:
            self._tracks.append(track)
        self.events.append(ev)
        return ev

    def set_process(self, track: str, pid: int, name: str | None = None) -> None:
        """Map ``track`` to another OS process in the Chrome export.

        The engine registers each ``worker/<i>`` track against the live
        worker's pid (re-registering on respawn), so the merged trace
        shows one Perfetto *process* group per worker instead of fake
        threads of the driver.  Unmapped tracks stay with the driver
        (pid 0).
        """
        self._procs[track] = (int(pid), name or track)
        if track not in self._tracks:
            self._tracks.append(track)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def tracks(self) -> list[str]:
        """Track names in first-seen order."""
        return list(self._tracks)

    def spans(self, track: str | None = None, name: str | None = None,
              cat: str | None = None) -> list[TraceEvent]:
        """Completed spans, optionally filtered."""
        return [
            e for e in self.events
            if e.ph == "X"
            and (track is None or e.track == track)
            and (name is None or e.name == name)
            and (cat is None or e.cat == cat)
        ]

    def instants(self, track: str | None = None,
                 name: str | None = None) -> list[TraceEvent]:
        """Instant events, optionally filtered."""
        return [
            e for e in self.events
            if e.ph == "i"
            and (track is None or e.track == track)
            and (name is None or e.name == name)
        ]

    # -- JSONL export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One canonical JSON object per line (determinism-comparable)."""
        lines = []
        for e in self.events:
            row = {
                "seq": e.seq,
                "track": e.track,
                "name": e.name,
                "cat": e.cat,
                "ph": e.ph,
                "ts": e.ts,
                "dur": e.dur,
                "args": _jsonable(e.args),
            }
            lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        """Stream the JSONL export to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    # -- Chrome trace export ---------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Driver tracks live under pid 0; tracks registered through
        :meth:`set_process` (pool workers) get their owning process's
        real pid, so Perfetto renders one process group per worker.
        Every pid carries a ``process_name`` metadata event and every
        track a ``thread_name`` one; timeline events are sorted by
        timestamp (recording order as the tiebreaker), so timestamps
        are monotonically non-decreasing per track.  Spans are "X"
        complete events, instants thread-scoped "i" events, counter
        samples "C" events.  Load the written file in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        proc_of = {
            track: self._procs.get(track, (0, self.name))
            for track in self._tracks
        }
        tids: dict[str, int] = {}
        next_tid: dict[int, int] = {}
        for track in self._tracks:
            pid = proc_of[track][0]
            tids[track] = next_tid.get(pid, 0)
            next_tid[pid] = tids[track] + 1
        out: list[dict[str, Any]] = []
        seen_pids: set[int] = set()
        for track in self._tracks:
            pid, pname = proc_of[track]
            if pid not in seen_pids:
                seen_pids.add(pid)
                out.append({
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": pname if pid else self.name},
                })
            out.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tids[track],
                "args": {"name": track},
            })
        for e in sorted(self.events, key=lambda e: (e.ts, e.seq)):
            row: dict[str, Any] = {
                "name": e.name,
                "cat": e.cat or "default",
                "ph": e.ph,
                "ts": e.ts * _CHROME_US_PER_SECOND,
                "pid": proc_of[e.track][0],
                "tid": tids[e.track],
            }
            if e.ph == "X":
                row["dur"] = e.dur * _CHROME_US_PER_SECOND
            if e.ph == "i":
                row["s"] = "t"  # thread-scoped instant
            if e.ph == "C":
                row["args"] = {e.name: _jsonable(e.args.get("value", 0.0))}
            elif e.args:
                row["args"] = _jsonable(e.args)
            out.append(row)
        return {"traceEvents": out, "displayTimeUnit": "ns"}

    def write_chrome_trace(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, sort_keys=True)

    # -- text summary -------------------------------------------------------------

    def text_summary(self) -> str:
        """Per-track, per-name aggregates (pure python, for tests/CI)."""
        lines = [f"FlightRecorder {self.name!r}: {len(self.events)} events, "
                 f"{len(self._tracks)} tracks"]
        for track in self._tracks:
            lines.append(f"  track {track}")
            agg: dict[tuple[str, str], tuple[int, float]] = {}
            for e in self.events:
                if e.track != track:
                    continue
                key = (e.ph, e.name)
                n, total = agg.get(key, (0, 0.0))
                agg[key] = (n + 1, total + e.dur)
            for (ph, name), (n, total) in sorted(agg.items()):
                if ph == "X":
                    lines.append(
                        f"    span {name}: n={n} total={total:.3e}s"
                    )
                elif ph == "i":
                    lines.append(f"    instant {name}: n={n}")
                else:
                    lines.append(f"    counter {name}: n={n}")
        return "\n".join(lines)


def validate_chrome_trace(obj: Any) -> list[str]:
    """Schema-check a Chrome trace object; returns a list of problems.

    An empty list means the trace is loadable: a ``traceEvents`` array
    whose entries carry the phase-appropriate required fields.  Used by
    the CI smoke job (``scripts/validate_trace.py``) and the tests.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"trace must be a JSON object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["trace object lacks a 'traceEvents' array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if "pid" not in ev or "tid" not in ev:
            problems.append(f"{where}: missing pid/tid")
        if ph in ("X", "B", "E", "i", "I", "C"):
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs dur >= 0")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: 'C' event needs an args object")
    return problems
