"""``python -m repro.obs`` — inspect, merge, and diff telemetry artifacts.

Three subcommands over the artifacts the stack writes (Chrome trace
JSON from :meth:`FlightRecorder.write_chrome_trace`, metrics snapshots
from :meth:`MetricsRegistry.snapshot`, and run reports carrying a
``health`` section):

- ``summary PATH [--top N] [--fail-on warn|critical]`` — render a
  per-artifact summary; with ``--fail-on``, exit nonzero when any
  embedded health verdict is at least that severe (the CI gate);
- ``merge OUT IN [IN ...]`` — combine artifacts of one kind: traces
  merge with per-input pid remapping (two runs render side by side in
  Perfetto), metrics snapshots merge with the registry's deterministic
  counter/gauge/histogram semantics;
- ``diff A B`` — mechanical comparison: per-(pid, name) span counts
  and total durations for traces, per-metric value deltas for metrics.

Artifact kinds are auto-detected from their JSON shape, so the same
command works on a trace, a metrics file, or a ``--report`` output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .health import SEVERITIES
from .metrics import MetricsRegistry

_US = 1e6  # Chrome trace timestamps are microseconds


def _load(path: str) -> Any:
    with open(path) as fh:
        return json.load(fh)


def _kind(obj: Any) -> str:
    """Classify an artifact: 'trace', 'metrics', or 'report'."""
    if isinstance(obj, dict):
        if isinstance(obj.get("traceEvents"), list):
            return "trace"
        if all(
            isinstance(v, (int, float))
            or (isinstance(v, dict) and ("peak" in v or "buckets" in v))
            for v in obj.values()
        ) and obj and all(isinstance(k, str) for k in obj):
            return "metrics"
        return "report"
    return "report"


# ---------------------------------------------------------------------------
# summary
# ---------------------------------------------------------------------------


def _trace_tracks(events: list) -> dict[tuple[int, int], str]:
    names = {}
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") != "M":
            continue
        if ev.get("name") == "thread_name":
            names[(ev.get("pid"), ev.get("tid"))] = ev["args"]["name"]
    return names


def _trace_processes(events: list) -> dict[int, str]:
    procs = {}
    for ev in events:
        if isinstance(ev, dict) and ev.get("ph") == "M" \
                and ev.get("name") == "process_name":
            procs[ev.get("pid")] = ev["args"]["name"]
    return procs


def _summarize_trace(obj: dict, top: int) -> str:
    events = obj.get("traceEvents", [])
    tracks = _trace_tracks(events)
    procs = _trace_processes(events)
    spans: dict[str, tuple[int, float]] = {}
    counters: set[str] = set()
    instants: dict[str, int] = {}
    for ev in events:
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        if ph == "X":
            n, total = spans.get(ev["name"], (0, 0.0))
            spans[ev["name"]] = (n + 1, total + float(ev.get("dur", 0.0)) / _US)
        elif ph == "C":
            counters.add(ev["name"])
        elif ph in ("i", "I"):
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1
    lines = [
        f"trace: {len(events)} events, {len(procs)} process(es), "
        f"{len(tracks)} track(s)"
    ]
    for pid in sorted(procs):
        owned = sorted(name for (p, _), name in tracks.items() if p == pid)
        lines.append(f"  pid {pid} ({procs[pid]}): {', '.join(owned)}")
    ranked = sorted(spans.items(), key=lambda kv: (-kv[1][1], kv[0]))
    for name, (n, total) in ranked[:top]:
        lines.append(f"  span {name}: n={n} total={total:.4f}s")
    for name in sorted(counters):
        lines.append(f"  counter {name}")
    for name, n in sorted(instants.items()):
        lines.append(f"  instant {name}: n={n}")
    return "\n".join(lines)


def _find_health(obj: Any) -> list[dict]:
    """Collect every embedded health report (dicts with verdict+findings)."""
    found: list[dict] = []
    if isinstance(obj, dict):
        if "verdict" in obj and "findings" in obj:
            found.append(obj)
        else:
            for v in obj.values():
                found.extend(_find_health(v))
    elif isinstance(obj, list):
        for v in obj:
            found.extend(_find_health(v))
    return found


def _summarize_report(obj: Any, top: int) -> str:
    lines = []
    healths = _find_health(obj)
    for h in healths:
        lines.append(f"health: {h['verdict'].upper()} "
                     f"({len(h['findings'])} finding(s))")
        for f in h["findings"]:
            lines.append(f"  [{f['severity']}] {f['rule']}: {f['message']}")
    if not healths:
        lines.append("report: no embedded health section")
    if isinstance(obj, dict):
        for key in ("bitwise_identical", "scenario", "workers", "steps"):
            if key in obj:
                lines.append(f"  {key}: {obj[key]}")
    return "\n".join(lines)


def cmd_summary(ns: argparse.Namespace) -> int:
    rc = 0
    for path in ns.paths:
        obj = _load(path)
        kind = _kind(obj)
        print(f"== {path} [{kind}]")
        if kind == "trace":
            print(_summarize_trace(obj, ns.top))
        elif kind == "metrics":
            print(MetricsRegistry.from_snapshot(obj, name=path).render())
        else:
            print(_summarize_report(obj, ns.top))
        if ns.fail_on:
            threshold = SEVERITIES.index(ns.fail_on)
            for h in _find_health(obj):
                if SEVERITIES.index(h["verdict"]) >= threshold:
                    print(f"FAIL: health verdict {h['verdict']!r} >= "
                          f"--fail-on {ns.fail_on!r}", file=sys.stderr)
                    rc = 1
    return rc


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------


def _merge_traces(inputs: list[tuple[str, dict]]) -> dict:
    """Concatenate traces, remapping pids so inputs never collide."""
    out: list[dict] = []
    next_base = 0
    for i, (path, obj) in enumerate(inputs):
        events = obj.get("traceEvents", [])
        pids = sorted({
            ev.get("pid") for ev in events
            if isinstance(ev, dict) and "pid" in ev
        })
        remap = {pid: next_base + j for j, pid in enumerate(pids)}
        next_base += len(pids)
        for ev in events:
            if not isinstance(ev, dict):
                continue
            ev = dict(ev)
            ev["pid"] = remap.get(ev.get("pid"), ev.get("pid"))
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                ev = dict(ev, args={
                    "name": f"run{i}:{ev.get('args', {}).get('name', path)}"
                })
            out.append(ev)
    return {"traceEvents": out, "displayTimeUnit": "ns"}


def cmd_merge(ns: argparse.Namespace) -> int:
    inputs = [(p, _load(p)) for p in ns.inputs]
    kinds = {_kind(obj) for _, obj in inputs}
    if len(kinds) != 1:
        print(f"cannot merge mixed artifact kinds: {sorted(kinds)}",
              file=sys.stderr)
        return 2
    kind = kinds.pop()
    if kind == "trace":
        merged: Any = _merge_traces(inputs)
    elif kind == "metrics":
        reg = MetricsRegistry("merged")
        for path, obj in inputs:
            reg.merge(MetricsRegistry.from_snapshot(obj, name=path))
        merged = reg.snapshot()
    else:
        print("merge supports traces and metrics snapshots, not reports",
              file=sys.stderr)
        return 2
    with open(ns.out, "w") as fh:
        json.dump(merged, fh, sort_keys=True)
    print(f"[merge] {len(inputs)} {kind} artifact(s) -> {ns.out}")
    return 0


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def _trace_profile(obj: dict) -> dict[str, tuple[int, float]]:
    agg: dict[str, tuple[int, float]] = {}
    for ev in obj.get("traceEvents", []):
        if isinstance(ev, dict) and ev.get("ph") == "X":
            n, total = agg.get(ev["name"], (0, 0.0))
            agg[ev["name"]] = (n + 1, total + float(ev.get("dur", 0.0)) / _US)
    return agg


def _flatten(obj: Any, prefix: str = "") -> dict[str, float]:
    flat: dict[str, float] = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            flat.update(_flatten(v, f"{prefix}{k}."))
    elif isinstance(obj, bool):
        flat[prefix.rstrip(".")] = float(obj)
    elif isinstance(obj, (int, float)):
        flat[prefix.rstrip(".")] = float(obj)
    return flat


def cmd_diff(ns: argparse.Namespace) -> int:
    a, b = _load(ns.a), _load(ns.b)
    ka, kb = _kind(a), _kind(b)
    if ka != kb:
        print(f"cannot diff {ka} against {kb}", file=sys.stderr)
        return 2
    changed = 0
    if ka == "trace":
        pa, pb = _trace_profile(a), _trace_profile(b)
        for name in sorted(set(pa) | set(pb)):
            na, ta = pa.get(name, (0, 0.0))
            nb, tb = pb.get(name, (0, 0.0))
            if na != nb or abs(ta - tb) > 1e-12:
                changed += 1
                print(f"  span {name}: n {na} -> {nb}, "
                      f"total {ta:.4f}s -> {tb:.4f}s")
    else:
        fa, fb = _flatten(a), _flatten(b)
        for name in sorted(set(fa) | set(fb)):
            va, vb = fa.get(name), fb.get(name)
            if va != vb:
                changed += 1
                print(f"  {name}: {va} -> {vb}")
    print(f"diff: {changed} difference(s) between {ns.a} and {ns.b}")
    return 0


# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, merge, and diff telemetry artifacts.",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("summary", help="summarize trace/metrics/report files")
    p.add_argument("paths", nargs="+", help="artifact files")
    p.add_argument("--top", type=int, default=10,
                   help="span rows to show per trace (default 10)")
    p.add_argument("--fail-on", choices=["warn", "critical"], default=None,
                   help="exit nonzero if any embedded health verdict is "
                        "at least this severe")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("merge", help="merge artifacts of one kind")
    p.add_argument("out", help="output file")
    p.add_argument("inputs", nargs="+", help="input artifacts (same kind)")
    p.set_defaults(fn=cmd_merge)

    p = sub.add_parser("diff", help="mechanically compare two artifacts")
    p.add_argument("a")
    p.add_argument("b")
    p.set_defaults(fn=cmd_diff)

    ns = ap.parse_args(argv)
    return ns.fn(ns)


if __name__ == "__main__":
    raise SystemExit(main())
