"""repro.obs — the unified observability layer.

Three coordinated pieces (DESIGN.md Section 7):

- :mod:`repro.obs.tracer` — hierarchical spans over **simulated** time
  (:class:`Tracer`), with a zero-cost disabled default
  (:data:`NULL_TRACER`);
- :mod:`repro.obs.recorder` — the :class:`FlightRecorder` event store
  with JSONL, Chrome trace-event, and text-summary exports;
- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` unifying
  every simulator counter under one dotted namespace, plus the
  per-component ``collect_*`` helpers;
- :mod:`repro.obs.roofline_report` — per-kernel roofline attribution
  computed from recorded kernel spans;
- :mod:`repro.obs.telemetry` / :mod:`repro.obs.profiler` /
  :mod:`repro.obs.health` — cross-process telemetry for the worker
  pool (DESIGN.md §13): in-worker spans and metric deltas shipped in
  per-result packets, a wall-clock sampling profiler, and the run
  health monitor.  ``python -m repro.obs`` offers ``summary`` /
  ``merge`` / ``diff`` over trace and metrics artifacts.

Quickstart::

    from repro.obs import Tracer
    from repro.homme.distributed import DistributedShallowWater
    from repro.mesh import CubedSphereMesh

    tracer = Tracer()
    model = DistributedShallowWater(CubedSphereMesh(ne=4), nranks=4,
                                    tracer=tracer)
    model.run_steps(2)
    tracer.recorder.write_chrome_trace("trace.json")  # open in Perfetto
"""

from .tracer import NULL_TRACER, NullTracer, Tracer
from .recorder import FlightRecorder, TraceEvent, validate_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_dma,
    collect_exchange_report,
    collect_faults,
    collect_ldm,
    collect_parallel_engine,
    collect_perf_counters,
    collect_simmpi,
    collect_supervisor,
)
from .profiler import PROFILE_HZ, SamplingProfiler, merge_profiles, render_profile
from .telemetry import (
    TelemetrySpec,
    WorkerTelemetry,
    canonical_metrics_jsonl,
    canonical_trace_jsonl,
    quantile,
)
from .health import HealthFinding, HealthMonitor, HealthReport
from .roofline_report import (
    KernelAttribution,
    attribute_kernels,
    render_roofline_report,
    roofline_report,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "FlightRecorder",
    "TraceEvent",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_dma",
    "collect_exchange_report",
    "collect_faults",
    "collect_ldm",
    "collect_parallel_engine",
    "collect_perf_counters",
    "collect_simmpi",
    "collect_supervisor",
    "PROFILE_HZ",
    "SamplingProfiler",
    "merge_profiles",
    "render_profile",
    "TelemetrySpec",
    "WorkerTelemetry",
    "canonical_metrics_jsonl",
    "canonical_trace_jsonl",
    "quantile",
    "HealthFinding",
    "HealthMonitor",
    "HealthReport",
    "KernelAttribution",
    "attribute_kernels",
    "render_roofline_report",
    "roofline_report",
]
