"""The metrics registry: one namespace over every counter in the stack.

The simulator components each keep their own tallies — ``PerfCounters``
for the CPE cluster, ``DMAEngine`` traffic, ``LDM`` high-water marks,
``SimMPI`` message counts, ``ExchangeReport`` memcpy time, the
``FaultInjector`` event log.  :class:`MetricsRegistry` unifies them
under dotted names (``dma.get.bytes``, ``mpi.retransmissions``,
``ldm.high_water``) so an experiment can snapshot, merge, and render
all of them at once.

Three metric kinds, with deterministic merge semantics for aggregating
across ranks / core groups:

- :class:`Counter` — monotonically increasing totals; merge **sums**;
- :class:`Gauge` — instantaneous levels with a tracked peak; merge
  takes the **max** (occupancy/high-water semantics);
- :class:`Histogram` — log2-bucketed size/latency distributions; merge
  adds bucket counts.

The ``collect_*`` helpers pull each simulator component's counters into
a registry under its canonical prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class Counter:
    """Monotonic total (bytes moved, messages sent, faults fired)."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


@dataclass
class Gauge:
    """Instantaneous level with a peak (LDM occupancy, queue depth)."""

    name: str
    value: float = 0.0
    peak: float = 0.0

    def set(self, v: float) -> None:
        self.value = v
        self.peak = max(self.peak, v)


@dataclass
class Histogram:
    """Log2-bucketed distribution (message sizes, wait times).

    Bucket ``b`` counts observations in ``[2^b, 2^(b+1))``; bucket 0
    additionally holds everything below 1.  Exact count/total/min/max
    ride along for summary statistics.
    """

    name: str
    buckets: dict[int, int] = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, v: float) -> None:
        if v < 0:
            raise ValueError(f"histogram {self.name!r} takes non-negative values")
        b = 0 if v < 1.0 else int(v).bit_length() - 1
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-first-use registry of named metrics."""

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- access ----------------------------------------------------------------

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def inc(self, name: str, n: float = 1.0) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, v: float) -> None:
        self.gauge(name).set(v)

    def observe(self, name: str, v: float) -> None:
        self.histogram(name).observe(v)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter/gauge (histograms: the mean)."""
        m = self._metrics.get(name)
        if m is None:
            return default
        if isinstance(m, Histogram):
            return m.mean
        return m.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- aggregation --------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (rank/core-group reduce).

        Counters sum, gauges take the max of value and peak, histograms
        add bucket counts.  Returns ``self`` for chaining.
        """
        for name, m in other._metrics.items():
            if isinstance(m, Counter):
                self.counter(name).inc(m.value)
            elif isinstance(m, Gauge):
                g = self.gauge(name)
                g.value = max(g.value, m.value)
                g.peak = max(g.peak, m.peak)
            else:
                h = self.histogram(name)
                for b, n in m.buckets.items():
                    h.buckets[b] = h.buckets.get(b, 0) + n
                h.count += m.count
                h.total += m.total
                h.min = min(h.min, m.min)
                h.max = max(h.max, m.max)
        return self

    @staticmethod
    def merged(registries: Iterable["MetricsRegistry"],
               name: str = "merged") -> "MetricsRegistry":
        """Reduce a sequence of per-rank registries into a fresh one."""
        out = MetricsRegistry(name)
        for reg in registries:
            out.merge(reg)
        return out

    @staticmethod
    def from_snapshot(snap: dict[str, Any],
                      name: str = "metrics") -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        The inverse the ``python -m repro.obs merge``/``diff`` CLI needs
        to operate on metrics artifacts written by earlier runs.
        """
        reg = MetricsRegistry(name)
        for key, val in snap.items():
            if isinstance(val, (int, float)):
                reg.counter(key).inc(float(val))
            elif isinstance(val, dict) and "peak" in val:
                g = reg.gauge(key)
                g.value = float(val.get("value", 0.0))
                g.peak = float(val.get("peak", g.value))
            elif isinstance(val, dict) and "buckets" in val:
                h = reg.histogram(key)
                h.count = int(val.get("count", 0))
                h.total = float(val.get("mean", 0.0)) * h.count
                h.min = float(val.get("min", 0.0)) if h.count else float("inf")
                h.max = float(val.get("max", 0.0)) if h.count else float("-inf")
                h.buckets = {int(b): int(n)
                             for b, n in val.get("buckets", {}).items()}
            else:
                raise ValueError(f"unrecognized snapshot entry {key!r}: {val!r}")
        return reg

    # -- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One canonical JSON object per metric (sorted, stable keys)."""
        import json

        snap = self.snapshot()
        lines = [
            json.dumps({"name": k, "value": snap[k]},
                       sort_keys=True, separators=(",", ":"))
            for k in sorted(snap)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view keyed by metric name (sorted, JSON-friendly)."""
        out: dict[str, Any] = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                out[name] = m.value
            elif isinstance(m, Gauge):
                out[name] = {"value": m.value, "peak": m.peak}
            else:
                out[name] = {
                    "count": m.count, "mean": m.mean,
                    "min": m.min if m.count else 0.0,
                    "max": m.max if m.count else 0.0,
                    "buckets": {str(b): n for b, n in sorted(m.buckets.items())},
                }
        return out

    def render(self) -> str:
        """Human-readable one-metric-per-line summary."""
        lines = [f"MetricsRegistry {self.name!r} ({len(self._metrics)} metrics)"]
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                lines.append(f"  {name} = {m.value:g}")
            elif isinstance(m, Gauge):
                lines.append(f"  {name} = {m.value:g} (peak {m.peak:g})")
            else:
                lines.append(
                    f"  {name}: n={m.count} mean={m.mean:g} "
                    f"max={m.max if m.count else 0.0:g}"
                )
        return "\n".join(lines)


# -- component collectors ------------------------------------------------------


def collect_simmpi(reg: MetricsRegistry, mpi) -> MetricsRegistry:
    """Fold a :class:`~repro.network.simmpi.SimMPI`'s tallies into ``reg``."""
    reg.inc("mpi.messages.sent", mpi.messages_sent)
    reg.inc("mpi.bytes.sent", mpi.bytes_sent)
    reg.inc("mpi.messages.dropped", mpi.messages_dropped)
    reg.inc("mpi.messages.delayed", mpi.messages_delayed)
    reg.inc("mpi.retransmissions", mpi.retransmissions)
    for wait in mpi.comm_seconds:
        reg.inc("mpi.comm.seconds", wait)
    reg.set_gauge("mpi.time.max", mpi.max_time())
    return reg


def collect_dma(reg: MetricsRegistry, engine) -> MetricsRegistry:
    """Fold a :class:`~repro.sunway.dma.DMAEngine`'s traffic into ``reg``."""
    reg.inc("dma.get.bytes", engine.bytes_get)
    reg.inc("dma.put.bytes", engine.bytes_put)
    reg.inc("dma.transfers", engine.transfer_count)
    reg.inc("dma.cycles", engine.total_cycles)
    reg.inc("dma.corrupted_transfers", engine.corrupted_transfers)
    return reg


def collect_ldm(reg: MetricsRegistry, ldm) -> MetricsRegistry:
    """Fold an :class:`~repro.sunway.ldm.LDM`'s occupancy into ``reg``."""
    g = reg.gauge("ldm.used")
    g.set(float(ldm.used))
    reg.gauge("ldm.high_water").set(float(ldm.high_water))
    reg.gauge("ldm.capacity").set(float(ldm.capacity))
    return reg


def collect_perf_counters(reg: MetricsRegistry, pc) -> MetricsRegistry:
    """Fold a :class:`~repro.sunway.perf.PerfCounters` into ``reg``."""
    reg.inc("perf.dp_flops", pc.dp_flops)
    reg.inc("perf.vector_instructions", pc.vector_instructions)
    reg.inc("dma.get.bytes", pc.dma_bytes_get)
    reg.inc("dma.put.bytes", pc.dma_bytes_put)
    reg.inc("perf.regcomm_transfers", pc.regcomm_transfers)
    reg.gauge("ldm.high_water").set(float(pc.ldm_high_water))
    reg.inc("perf.cycles", pc.cycles)
    reg.set_gauge("perf.degradation", pc.degradation)
    return reg


def collect_exchange_report(reg: MetricsRegistry, report) -> MetricsRegistry:
    """Fold a :class:`~repro.homme.bndry.ExchangeReport` into ``reg``."""
    reg.inc("exchange.count")
    reg.inc("exchange.memcpy.seconds", report.memcpy_seconds)
    reg.inc("exchange.dropped", report.dropped)
    reg.inc("mpi.retransmissions", report.retransmissions)
    if report.rank_times:
        reg.set_gauge("exchange.max_time", report.max_time)
    return reg


def collect_faults(reg: MetricsRegistry, injector) -> MetricsRegistry:
    """Fold a :class:`~repro.resilience.faults.FaultInjector` into ``reg``."""
    for kind, n in sorted(injector.summary().items()):
        reg.inc(f"faults.{kind}", n)
    return reg


def collect_parallel_engine(reg: MetricsRegistry, engine) -> MetricsRegistry:
    """Fold a :class:`~repro.parallel.engine.ParallelEngine` into ``reg``.

    Whole-pool tallies under ``parallel.*`` plus per-worker counters
    under ``parallel.worker.<i>.*`` — these are *wall-clock* quantities
    (the pool runs on real cores), unlike the simulated-time ``mpi.*``
    family.
    """
    reg.set_gauge("parallel.workers", engine.workers)
    reg.set_gauge("parallel.active", 1.0 if engine.active else 0.0)
    reg.inc("parallel.calls", engine.calls)
    reg.inc("parallel.tasks.parallel", engine.tasks_parallel)
    reg.inc("parallel.tasks.serial", engine.tasks_serial)
    reg.inc("parallel.validations", engine.validations)
    reg.inc("parallel.pipeline.batches", engine.pipeline_batches)
    reg.set_gauge("parallel.pipeline.max_depth", engine.pipeline_max_depth)
    reg.inc("parallel.pipeline.overlap_seconds", engine.pipeline_overlap_seconds)
    reg.inc("parallel.pipeline.wait_seconds", engine.pipeline_wait_seconds)
    reg.set_gauge("parallel.pipeline.overlap_fraction", engine.overlap_fraction())
    # Self-healing tallies (DESIGN.md §12): what the supervisor saw and
    # did, plus a labelled counter per degrade reason — the full history,
    # not just the engine's last fallback_reason string.
    for key, value in engine.recovery.items():
        reg.inc(f"parallel.recovery.{key}", value)
    for kind, count in engine.degrade_kinds.items():
        reg.inc(f"parallel.degrade.reason.{kind}", count)
    for s in engine.stats:
        prefix = f"parallel.worker.{s.worker}"
        reg.inc(f"{prefix}.tasks", s.tasks)
        reg.inc(f"{prefix}.busy_seconds", s.busy_seconds)
        reg.inc(f"{prefix}.bytes_in", s.bytes_in)
        reg.inc(f"{prefix}.bytes_out", s.bytes_out)
        reg.inc(f"{prefix}.errors", s.errors)
        reg.inc(f"{prefix}.respawns", s.respawns)
        reg.set_gauge(f"{prefix}.generation", getattr(s, "generation", 0))
        reg.set_gauge(f"{prefix}.queue_depth.peak",
                      getattr(s, "queue_peak", 0))
    # Cross-process telemetry (DESIGN.md §13): heartbeat ages observed
    # worker-side, packet/profile tallies, and the per-worker metric
    # deltas the packets carried.
    hb = list(getattr(engine, "_hb_samples", ()) or ())
    if hb:
        from .telemetry import quantile

        reg.set_gauge("parallel.heartbeat.age.max", max(hb))
        reg.set_gauge("parallel.heartbeat.age.p99", quantile(hb, 0.99))
    reg.inc("parallel.telemetry.packets",
            getattr(engine, "telemetry_packets", 0))
    reg.inc("parallel.profile.samples",
            getattr(engine, "profile_samples", 0))
    tele = getattr(engine, "telemetry_metrics", None)
    if tele is not None:
        reg.merge(tele)
    supervisor = getattr(engine, "supervisor", None)
    if supervisor is not None:
        collect_supervisor(reg, supervisor)
    return reg


def collect_supervisor(reg: MetricsRegistry, supervisor) -> MetricsRegistry:
    """Fold a :class:`~repro.parallel.supervisor.WorkerSupervisor`'s
    live view into ``reg``: respawn totals, live-slot count, and the
    driver-side heartbeat age and generation per slot."""
    reg.inc("parallel.supervisor.respawns", supervisor.respawns)
    reg.set_gauge("parallel.supervisor.slots", supervisor.nslots)
    reg.set_gauge("parallel.supervisor.live", len(supervisor.live_slots()))
    for h in supervisor.handles:
        if h is None:
            continue
        prefix = f"parallel.worker.{h.slot}"
        reg.set_gauge(f"{prefix}.heartbeat_age",
                      max(0.0, supervisor.heartbeat_age(h.slot)))
        reg.set_gauge(f"{prefix}.generation", h.generation)
    return reg
