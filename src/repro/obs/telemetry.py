"""Cross-process telemetry: the worker->driver wire format.

The parallel engine's workers are forked processes; before this module
their execution was *inferred* driver-side from result timestamps.
Telemetry closes the gap: each worker owns a tiny in-process
instrumentation kit (:class:`WorkerTelemetry`) and ships a compact
**telemetry packet** back with every result over the existing result
queue — no extra channel, no extra synchronization.

Wire format (DESIGN.md §13)
---------------------------

A result-queue item grows one trailing field::

    (tid, slot, status, data, crc, t0, t1, fn_name, packet)

``packet`` is ``None`` when telemetry is off (the engine keeps the old
8-tuple readable for compatibility) and otherwise a plain dict:

- ``pid`` — the worker's OS pid (drives the per-process Perfetto track);
- ``gen`` — the worker's respawn generation;
- ``hb_age`` — seconds since the worker's own heartbeat stamp, sampled
  at send time (the worker-side view the driver's p99 rule consumes);
- ``spans`` — tuple of ``(name, t0, t1)`` in-worker sub-spans
  (``unpack``, ``compute``) in ``time.perf_counter()`` seconds, which
  on Linux is ``CLOCK_MONOTONIC`` and therefore directly comparable to
  the driver's clock across the fork;
- ``metrics`` — flat ``name -> delta`` counter increments;
- ``profile`` / ``samples`` — a :meth:`SamplingProfiler.drain` delta.

Everything in a packet is plain data (str/int/float/tuple/dict): it
pickles through ``SimpleQueue`` untouched and merges deterministically.

Determinism canonicalization
----------------------------

Telemetry is wall-clock by nature, so raw traces from two identical
runs differ in timestamps and arrival order while agreeing on
*structure*.  :func:`canonical_trace_jsonl` and
:func:`canonical_metrics_jsonl` project the wall-clock-dependent fields
out (zeroed timestamps, scrubbed volatile args, dropped profile tracks,
sorted rows) so the byte-identity determinism tests can compare what is
actually promised to be deterministic — the event structure.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from ..utils.logging import jsonable as _jsonable
from .profiler import PROFILE_HZ, SamplingProfiler

__all__ = [
    "TelemetrySpec",
    "WorkerTelemetry",
    "WALL_TRACKS",
    "canonical_trace_jsonl",
    "canonical_metrics_jsonl",
    "quantile",
]


@dataclass(frozen=True)
class TelemetrySpec:
    """What the workers should measure (picklable; crosses the fork).

    ``enabled`` turns on per-task sub-spans, metric deltas, and
    heartbeat-age reporting; ``profile_hz > 0`` additionally runs a
    :class:`~repro.obs.profiler.SamplingProfiler` against the worker's
    task loop at that rate.
    """

    enabled: bool = False
    profile_hz: float = 0.0

    @property
    def live(self) -> bool:
        return self.enabled or self.profile_hz > 0


class WorkerTelemetry:
    """The in-worker instrumentation kit (built inside ``_worker_main``).

    Owns the worker-side sampling profiler and assembles one packet per
    completed task.  Never touches task *data* — telemetry runs beside
    the compute, which is how enabling it cannot perturb the bitwise
    serial==parallel contract.
    """

    def __init__(self, spec: TelemetrySpec, slot: int, generation: int,
                 hb_view) -> None:
        self.spec = spec
        self.slot = slot
        self.generation = generation
        self.hb_view = hb_view
        self.pid = os.getpid()
        self.profiler: SamplingProfiler | None = None
        if spec.profile_hz > 0:
            self.profiler = SamplingProfiler(
                hz=spec.profile_hz or PROFILE_HZ).start()

    def packet(self, spans: tuple = (),
               metrics: dict | None = None) -> dict:
        """Assemble one telemetry packet (rides the result tuple)."""
        profile: dict = {}
        samples = 0
        if self.profiler is not None:
            profile, samples = self.profiler.drain()
        hb_age = 0.0
        if self.hb_view is not None:
            hb_age = max(0.0, time.monotonic() - float(self.hb_view[self.slot]))
        return {
            "pid": self.pid,
            "gen": self.generation,
            "hb_age": hb_age,
            "spans": tuple(spans),
            "metrics": dict(metrics or {}),
            "profile": profile,
            "samples": samples,
        }

    def close(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()
            self.profiler = None


def quantile(samples, q: float) -> float:
    """Nearest-rank quantile of a sequence (0 for an empty one)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return float(ordered[idx])


# ---------------------------------------------------------------------------
# Determinism canonicalization
# ---------------------------------------------------------------------------

#: Track names (exact or ``prefix/``) whose events are stamped with the
#: *wall* clock — the explicitly whitelisted nondeterministic family.
#: Everything else is simulated time and must be byte-identical raw.
WALL_TRACKS = ("worker/", "supervisor", "pipeline", "health", "profile")

#: Argument keys on wall-track events whose values depend on wall-clock
#: timing (ages, durations, in-flight depths, free-text details) or on
#: process-global counters (the shared-context registry key) rather
#: than run structure.
_VOLATILE_ARGS = frozenset({
    "value", "detail", "reason", "why", "redistributed", "age",
    "seconds", "depth", "ctx",
})


def _is_wall_track(track: str) -> bool:
    return any(
        track == p.rstrip("/") or track.startswith(p)
        for p in WALL_TRACKS
    )


def canonical_trace_jsonl(recorder) -> str:
    """Project a recorder to its deterministic structure, as JSONL.

    Two runs of the same seeded workload must produce byte-identical
    output: profile tracks are dropped wholesale (sample counts are
    statistical), wall-track timestamps/durations are zeroed and their
    volatile args scrubbed, the recording-order ``seq`` is omitted, and
    rows are sorted — so neither wall-clock values nor result arrival
    order can leak into the comparison, while every span, instant, and
    counter the run *structurally* produced still must match.
    """
    rows: list[str] = []
    for e in recorder.events:
        track = e.track
        if track == "profile" or track.startswith("profile/"):
            continue
        wall = _is_wall_track(track)
        args = {
            k: v for k, v in _jsonable(e.args or {}).items()
            if not (wall and k in _VOLATILE_ARGS)
        } if e.args else {}
        rows.append(json.dumps({
            "track": track,
            "name": e.name,
            "cat": e.cat,
            "ph": e.ph,
            "ts": 0.0 if wall else e.ts,
            "dur": 0.0 if wall else e.dur,
            "args": args,
        }, sort_keys=True, separators=(",", ":")))
    rows.sort()
    return "\n".join(rows) + ("\n" if rows else "")


#: Metric-name markers whose values are wall-clock measurements.
_VOLATILE_METRIC_MARKERS = (
    "seconds", "heartbeat", "profile", "overlap", "busy", "depth",
    "fraction", "age", "samples",
)


def canonical_metrics_jsonl(registry) -> str:
    """Deterministic projection of a metrics snapshot, as JSONL.

    Metrics whose names mark them as wall-clock quantities (durations,
    heartbeat ages, profile samples, queue depths) are reduced to their
    *presence*; everything else keeps its value.  One sorted JSON row
    per metric, byte-comparable across runs.
    """
    snap = registry.snapshot()
    rows = []
    for name in sorted(snap):
        volatile = any(m in name for m in _VOLATILE_METRIC_MARKERS)
        rows.append(json.dumps(
            {"name": name, "value": "wall" if volatile else _jsonable(snap[name])},
            sort_keys=True, separators=(",", ":"),
        ))
    return "\n".join(rows) + ("\n" if rows else "")
