"""Roofline attribution from recorded kernel spans.

Backends annotate every kernel span (``cat="kernel"``) with its flop and
byte counts, so the flight recorder can place each execution on the core
group's roofline after the fact: was the kernel memory- or
compute-limited, what is the attainable rate at its arithmetic
intensity, and what fraction of that bound did the simulated execution
achieve?  This is the trace-side counterpart of the projection the paper
used to pick Athread-rewrite targets (Section 7.1), and cross-checks the
same flop counts the PERF-style counters report (Section 8.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..utils.tables import render_table
from .recorder import FlightRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..sunway.spec import SW26010Spec

# ``repro.core``/``repro.sunway`` are imported lazily inside the
# attribution functions: instrumented modules (backends, DMA, LDM)
# import ``repro.obs`` at load time, and a module-level import here
# would close an import cycle through ``repro.core.pipeline``.


@dataclass(frozen=True)
class KernelAttribution:
    """One kernel execution placed on the roofline."""

    name: str
    backend: str
    seconds: float
    flops: float
    bytes_moved: float
    arithmetic_intensity: float
    bound: str                 # "memory" or "compute"
    bound_seconds: float       # roofline lower bound at this intensity
    achieved_flops: float      # flop/s the execution sustained
    attainable_flops: float    # flop/s at the roofline bound
    achieved_fraction: float   # achieved / attainable in [0, ~1]


def attribute_kernels(
    recorder: FlightRecorder, spec: SW26010Spec | None = None
) -> list[KernelAttribution]:
    """Roofline-attribute every ``cat="kernel"`` span in the recorder.

    Kernel spans must carry ``flops`` and ``bytes`` args (the backends'
    tracing hook guarantees this); spans without them are skipped.
    ``spec`` defaults to the SW26010 core-group spec.
    """
    from ..core.roofline import roofline_time
    from ..sunway.spec import DEFAULT_SPEC

    if spec is None:
        spec = DEFAULT_SPEC
    out: list[KernelAttribution] = []
    for ev in recorder.spans(cat="kernel"):
        flops = float(ev.args.get("flops", 0.0))
        nbytes = float(ev.args.get("bytes", 0.0))
        if flops <= 0 or nbytes <= 0 or ev.dur <= 0:
            continue
        point = roofline_time(flops, nbytes, spec)
        achieved = flops / ev.dur
        out.append(
            KernelAttribution(
                name=ev.name,
                backend=str(ev.args.get("backend", ev.track)),
                seconds=ev.dur,
                flops=flops,
                bytes_moved=nbytes,
                arithmetic_intensity=point.arithmetic_intensity,
                bound=point.bound,
                bound_seconds=point.time_bound,
                achieved_flops=achieved,
                attainable_flops=point.attainable_flops,
                achieved_fraction=achieved / point.attainable_flops,
            )
        )
    return out


def render_roofline_report(attributions: list[KernelAttribution]) -> str:
    """Text table: per kernel, bound class and achieved fraction."""
    if not attributions:
        return "roofline attribution: no kernel spans recorded"
    rows = [
        [
            a.name,
            a.backend,
            f"{a.arithmetic_intensity:.2f}",
            a.bound,
            f"{a.seconds:.3e}",
            f"{a.bound_seconds:.3e}",
            f"{a.achieved_flops / 1e9:.2f}",
            f"{a.achieved_fraction * 100:.1f}%",
        ]
        for a in attributions
    ]
    return render_table(
        ["kernel", "backend", "flops/byte", "bound", "seconds",
         "bound seconds", "GF/s", "of bound"],
        rows,
        title="Roofline attribution (per recorded kernel span)",
    )


def roofline_report(
    recorder: FlightRecorder, spec: SW26010Spec | None = None
) -> str:
    """Convenience: attribute and render in one call."""
    return render_roofline_report(attribute_kernels(recorder, spec))
