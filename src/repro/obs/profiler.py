"""A wall-clock sampling profiler for worker processes.

The simulated-time tracer (:mod:`repro.obs.tracer`) answers "where does
*simulated* time go"; it cannot answer "where does the *wall clock* go
inside a forked worker", which is the number the scaling-study and
autotuning work needs.  :class:`SamplingProfiler` is the smallest
honest answer: a daemon thread wakes at a configurable rate, grabs the
target thread's current Python stack via ``sys._current_frames()``, and
aggregates it into ``dir/file.py:func`` frame keys with *self* (leaf)
and *cumulative* (anywhere-on-stack) hit counts.

Design constraints, in order:

- **Cheap.**  No ``sys.settrace`` — sampling perturbs the profiled
  code only by the GIL hand-off of one stack walk per tick.  The
  default rate is a prime (:data:`PROFILE_HZ`) so periodic workloads
  don't alias against the sampler.
- **Cross-process mergeable.**  Frames are plain strings and counts
  plain ints, so a worker's :meth:`drain` output travels in a
  telemetry packet and folds into the driver's aggregate with
  :func:`merge_profiles` — no pickle games, no live objects.
- **Statistical, and labelled as such.**  Sample counts are never part
  of any determinism contract; the telemetry canonicalizer
  (:mod:`repro.obs.telemetry`) strips them before byte comparison.
"""

from __future__ import annotations

import os
import sys
import threading

__all__ = ["PROFILE_HZ", "SamplingProfiler", "frame_key", "merge_profiles"]

#: Default sampling rate.  A prime, so fixed-period workloads (task
#: loops, heartbeat ticks) don't systematically hide from the sampler.
PROFILE_HZ = 97.0


def frame_key(filename: str, funcname: str) -> str:
    """Aggregate key for one stack frame: ``dir/file.py:func``.

    Only the last two path components are kept, so the same source
    file produces the same key on every machine and in every checkout.
    """
    base = os.path.basename(filename)
    parent = os.path.basename(os.path.dirname(filename))
    return f"{parent}/{base}:{funcname}" if parent else f"{base}:{funcname}"


def merge_profiles(into: dict[str, tuple[int, int]],
                   delta: dict[str, tuple[int, int]]) -> dict[str, tuple[int, int]]:
    """Fold one ``frame -> (self, cum)`` dict into another; returns ``into``."""
    for frame, (self_n, cum_n) in delta.items():
        s, c = into.get(frame, (0, 0))
        into[frame] = (s + self_n, c + cum_n)
    return into


class SamplingProfiler:
    """Sample one thread's Python stack on a wall-clock cadence.

    Parameters
    ----------
    hz:
        Target sampling rate (samples per second).
    thread_id:
        ``ident`` of the thread to sample; defaults to the *main*
        thread — in a pool worker that is the task loop.
    max_stack:
        Frames walked per sample (deep recursions are truncated at the
        root end; the leaf is always kept, since *self* time lives
        there).
    """

    def __init__(self, hz: float = PROFILE_HZ, thread_id: int | None = None,
                 max_stack: int = 64) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.interval = 1.0 / float(hz)
        self.max_stack = int(max_stack)
        if thread_id is None:
            thread_id = threading.main_thread().ident
        self.thread_id = thread_id
        self._counts: dict[str, list[int]] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start the sampling thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, daemon=True, name="sampling-profiler")
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (the accumulated counts stay drainable)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- sampling -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        frame = sys._current_frames().get(self.thread_id)
        if frame is None:
            return
        # Walk leaf -> root; dedupe within one stack so a recursive
        # function's cumulative count is "samples it was on stack for",
        # not "stack depth x samples".
        stack: list[str] = []
        seen: set[str] = set()
        depth = 0
        while frame is not None and depth < self.max_stack:
            key = frame_key(frame.f_code.co_filename, frame.f_code.co_name)
            if key not in seen:
                seen.add(key)
                stack.append(key)
            frame = frame.f_back
            depth += 1
        if not stack:
            return
        with self._lock:
            self._samples += 1
            for i, key in enumerate(stack):
                counts = self._counts.get(key)
                if counts is None:
                    counts = self._counts[key] = [0, 0]
                counts[1] += 1          # cumulative: anywhere on stack
                if i == 0:
                    counts[0] += 1      # self: the leaf frame

    # -- harvest ------------------------------------------------------------

    def drain(self) -> tuple[dict[str, tuple[int, int]], int]:
        """Atomically take and reset the accumulated counts.

        Returns ``(frames, samples)`` with ``frames`` mapping frame key
        to ``(self_count, cumulative_count)`` — the shape a telemetry
        packet ships and :func:`merge_profiles` folds.
        """
        with self._lock:
            out = {k: (v[0], v[1]) for k, v in self._counts.items()}
            n = self._samples
            self._counts = {}
            self._samples = 0
        return out, n

    @property
    def samples(self) -> int:
        """Samples accumulated since the last :meth:`drain`."""
        with self._lock:
            return self._samples


def render_profile(frames: dict[str, tuple[int, int]], samples: int,
                   top: int = 10) -> str:
    """Human-readable top-N frame table (self-count ordered)."""
    lines = [f"sampling profile: {samples} samples, {len(frames)} frames"]
    ranked = sorted(frames.items(), key=lambda kv: (-kv[1][0], -kv[1][1], kv[0]))
    for frame, (self_n, cum_n) in ranked[:top]:
        pct = 100.0 * self_n / samples if samples else 0.0
        lines.append(f"  {pct:5.1f}% self={self_n:<6} cum={cum_n:<6} {frame}")
    return "\n".join(lines)
