"""The run health monitor: per-step rules over engine telemetry.

A chaos run can be bitwise correct and still be *sick* — workers
respawning every step, one slot doing all the work, heartbeats aging
toward the hang deadline.  :class:`HealthMonitor` turns the engine's
``describe()`` snapshot plus the telemetry heartbeat samples into an
ok/warn/critical :class:`HealthReport` that CI can gate on and humans
can read next to the recovery narration.

Rules (DESIGN.md §13):

- **heartbeat-age p99 / max** — warn past ``hb_warn`` seconds,
  critical past ``hb_critical`` (a pool whose heartbeats routinely age
  toward the hang deadline is about to start false-positive respawns);
- **compute imbalance** — max/mean of per-worker busy seconds across
  workers that did work; only evaluated with >= 2 busy workers and a
  non-trivial total, so tiny smoke runs don't alarm on scheduler noise;
- **recovery counters** — any respawn, crash, hang, timeout,
  redistribution, re-execution, corrupt or non-finite result is a
  *warn* (the run survived; you should still know);
- **degrades** — a runtime pool degrade (timeout / worker-loss /
  respawn-budget / dispatch) is **critical**: the run silently lost
  its parallelism.  A *startup* or *platform* degrade is only a warn —
  falling back to serial on a 1-core machine is expected behaviour,
  and CI smoke jobs gate on "no critical", not "no fallback";
- **task errors** — per-worker error counts warn.

Severity ordering is ``ok < warn < critical``; the report's verdict is
the worst finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .telemetry import quantile

__all__ = ["HealthFinding", "HealthReport", "HealthMonitor", "SEVERITIES"]

#: Severity levels, worst last.
SEVERITIES = ("ok", "warn", "critical")

#: Degrade kinds that mean "expected serial fallback", not "lost the
#: pool at runtime".
_BENIGN_DEGRADES = frozenset({"startup", "platform"})


@dataclass(frozen=True)
class HealthFinding:
    """One triggered rule."""

    severity: str
    rule: str
    message: str
    value: float = 0.0

    def to_json(self) -> dict:
        return {"severity": self.severity, "rule": self.rule,
                "message": self.message, "value": self.value}


@dataclass
class HealthReport:
    """The monitor's verdict plus every triggered finding."""

    verdict: str = "ok"
    findings: list[HealthFinding] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def add(self, severity: str, rule: str, message: str,
            value: float = 0.0) -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self.findings.append(HealthFinding(severity, rule, message, value))
        if SEVERITIES.index(severity) > SEVERITIES.index(self.verdict):
            self.verdict = severity

    @property
    def ok(self) -> bool:
        return self.verdict == "ok"

    def to_json(self) -> dict:
        return {
            "verdict": self.verdict,
            "findings": [f.to_json() for f in self.findings],
            "stats": dict(self.stats),
        }

    def render(self) -> str:
        lines = [f"health: {self.verdict.upper()} "
                 f"({len(self.findings)} finding(s))"]
        for f in self.findings:
            lines.append(f"  [{f.severity}] {f.rule}: {f.message}")
        return "\n".join(lines)


class HealthMonitor:
    """Evaluate health rules over an engine snapshot.

    Thresholds are constructor knobs so a test (or a stricter CI gate)
    can tighten them without touching the rules.
    """

    def __init__(
        self,
        *,
        hb_warn: float = 1.0,
        hb_critical: float = 5.0,
        imbalance_warn: float = 3.0,
        imbalance_critical: float = 10.0,
        min_busy_seconds: float = 0.01,
    ) -> None:
        self.hb_warn = float(hb_warn)
        self.hb_critical = float(hb_critical)
        self.imbalance_warn = float(imbalance_warn)
        self.imbalance_critical = float(imbalance_critical)
        self.min_busy_seconds = float(min_busy_seconds)

    # -- rule evaluation ----------------------------------------------------

    def evaluate(self, desc: dict, hb_samples=None) -> HealthReport:
        """Evaluate every rule over a ``describe()``-shaped snapshot."""
        report = HealthReport()
        hb_samples = list(hb_samples or [])
        self._check_heartbeats(report, hb_samples)
        self._check_imbalance(report, desc.get("per_worker") or [])
        self._check_recovery(report, desc.get("recovery") or {})
        self._check_degrades(report, desc)
        self._check_errors(report, desc.get("per_worker") or [])
        report.stats = {
            "workers": desc.get("workers", 0),
            "active": bool(desc.get("active", False)),
            "tasks_parallel": desc.get("tasks_parallel", 0),
            "tasks_serial": desc.get("tasks_serial", 0),
            "heartbeat_samples": len(hb_samples),
            "heartbeat_age_p99": quantile(hb_samples, 0.99),
            "heartbeat_age_max": max(hb_samples, default=0.0),
        }
        return report

    def evaluate_engine(self, engine) -> HealthReport:
        """Evaluate an engine directly (describe + telemetry heartbeats).

        Falls back to the supervisor's live heartbeat ages when no
        telemetry packets carried worker-side samples — a supervised
        pool is health-checkable even with telemetry off.
        """
        hb = list(getattr(engine, "_hb_samples", ()) or ())
        supervisor = getattr(engine, "supervisor", None)
        if not hb and supervisor is not None:
            hb = [
                supervisor.heartbeat_age(h.slot)
                for h in supervisor.handles if h is not None
            ]
        return self.evaluate(engine.describe(), hb)

    # -- individual rules ---------------------------------------------------

    def _check_heartbeats(self, report: HealthReport, samples: list) -> None:
        if not samples:
            return
        p99 = quantile(samples, 0.99)
        worst = max(samples)
        if p99 > self.hb_critical:
            report.add("critical", "heartbeat-age",
                       f"heartbeat age p99 {p99:.2f}s exceeds critical "
                       f"threshold {self.hb_critical:.2f}s", p99)
        elif p99 > self.hb_warn:
            report.add("warn", "heartbeat-age",
                       f"heartbeat age p99 {p99:.2f}s exceeds warn "
                       f"threshold {self.hb_warn:.2f}s", p99)
        elif worst > self.hb_critical:
            report.add("warn", "heartbeat-age",
                       f"worst heartbeat age {worst:.2f}s exceeds "
                       f"{self.hb_critical:.2f}s", worst)

    def _check_imbalance(self, report: HealthReport, per_worker: list) -> None:
        busy = [w.get("busy_seconds", 0.0) for w in per_worker
                if w.get("tasks", 0) > 0]
        total = sum(busy)
        if len(busy) < 2 or total < self.min_busy_seconds:
            return
        mean = total / len(busy)
        ratio = max(busy) / mean if mean > 0 else 0.0
        if ratio > self.imbalance_critical:
            report.add("critical", "compute-imbalance",
                       f"worker busy-time imbalance {ratio:.1f}x "
                       f"(max/mean over {len(busy)} busy workers)", ratio)
        elif ratio > self.imbalance_warn:
            report.add("warn", "compute-imbalance",
                       f"worker busy-time imbalance {ratio:.1f}x "
                       f"(max/mean over {len(busy)} busy workers)", ratio)

    def _check_recovery(self, report: HealthReport, recovery: dict) -> None:
        for key in ("respawns", "crashes", "hangs", "timeouts",
                    "redistributed_tasks", "reexecuted_tasks",
                    "corrupt_results", "nonfinite_results"):
            n = recovery.get(key, 0)
            if n:
                report.add("warn", f"recovery.{key}",
                           f"{n} {key.replace('_', ' ')} during the run",
                           float(n))

    def _check_degrades(self, report: HealthReport, desc: dict) -> None:
        if desc.get("recovery", {}).get("pool_degrades", 0):
            report.add("critical", "pool-degrade",
                       "the pool degraded to serial at runtime: "
                       f"{desc.get('fallback_reason')}",
                       float(desc["recovery"]["pool_degrades"]))
        for kind, n in sorted((desc.get("degrade_reasons") or {}).items()):
            if not n:
                continue
            severity = "warn" if kind in _BENIGN_DEGRADES else "critical"
            report.add(severity, f"degrade.{kind}",
                       f"{n} degrade(s) of kind {kind!r} "
                       f"({desc.get('fallback_reason')})", float(n))

    def _check_errors(self, report: HealthReport, per_worker: list) -> None:
        for w in per_worker:
            n = w.get("errors", 0)
            if n:
                report.add("warn", "task-errors",
                           f"worker {w.get('worker')} reported {n} "
                           f"task error(s)", float(n))
