"""Hierarchical span tracing over *simulated* time.

Every span and instant event carries a timestamp read from a
:class:`~repro.utils.timing.SimClock` (or supplied explicitly from one),
never from the host's wall clock — so two identical runs produce
byte-identical traces, and a trace from a laptop is comparable to a
trace from CI.

The default tracer everywhere is :data:`NULL_TRACER`, a shared
:class:`NullTracer` whose every method is a no-op: instrumented code
paths stay on a "call one empty method" budget when tracing is off, and
record nothing.  A real :class:`Tracer` feeds a
:class:`~repro.obs.recorder.FlightRecorder`, which exports JSONL and
Chrome trace-event JSON (`chrome://tracing` / Perfetto).

Tracing never touches model state or simulated clocks: enabling it
cannot change a trajectory or a ``max_rank_time`` — the property the
acceptance tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..utils.timing import SimClock
    from .recorder import FlightRecorder


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: records nothing, costs (almost) nothing.

    All instrumentation sites accept a tracer defaulting to the shared
    :data:`NULL_TRACER` instance, and hot paths may additionally guard
    on :attr:`enabled` to skip argument construction entirely.
    """

    enabled: bool = False
    recorder: "FlightRecorder | None" = None

    def span(self, track: str, name: str, clock: "SimClock",
             cat: str = "span", **args: Any) -> _NullSpan:
        """Open a span against ``clock`` (no-op here)."""
        return _NULL_SPAN

    def span_at(self, track: str, name: str, t0: float, t1: float,
                cat: str = "span", **args: Any) -> None:
        """Record a completed span with explicit simulated times (no-op)."""

    def instant(self, track: str, name: str, t: float,
                cat: str = "event", **args: Any) -> None:
        """Record an instant event (no-op)."""

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        """Record a counter sample (no-op)."""


#: The process-wide disabled tracer (the default at every call site).
NULL_TRACER = NullTracer()


class _ClockSpan:
    """Context manager that reads ``clock.now`` at entry and exit."""

    __slots__ = ("_tracer", "_track", "_name", "_clock", "_cat", "_args", "_t0")

    def __init__(self, tracer: "Tracer", track: str, name: str,
                 clock: "SimClock", cat: str, args: dict[str, Any]) -> None:
        self._tracer = tracer
        self._track = track
        self._name = name
        self._clock = clock
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_ClockSpan":
        self._t0 = self._clock.now
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer.span_at(
            self._track, self._name, self._t0, self._clock.now,
            cat=self._cat, **self._args,
        )


class Tracer(NullTracer):
    """The enabled tracer: every event lands in a flight recorder.

    Parameters
    ----------
    name:
        Name for the freshly created flight recorder.
    recorder:
        Destination :class:`~repro.obs.recorder.FlightRecorder`; a fresh
        one (named ``name``) is created when omitted.
    """

    enabled = True

    def __init__(self, name: str = "trace",
                 recorder: "FlightRecorder | None" = None) -> None:
        if recorder is None:
            from .recorder import FlightRecorder

            recorder = FlightRecorder(name)
        self.recorder = recorder

    def span(self, track: str, name: str, clock: "SimClock",
             cat: str = "span", **args: Any) -> _ClockSpan:
        """Open a span whose begin/end are read from ``clock.now``."""
        return _ClockSpan(self, track, name, clock, cat, args)

    def span_at(self, track: str, name: str, t0: float, t1: float,
                cat: str = "span", **args: Any) -> None:
        """Record a completed span [t0, t1] in simulated seconds."""
        self.recorder.record(track, name, cat, "X", t0,
                             dur=max(0.0, t1 - t0), args=args or None)

    def instant(self, track: str, name: str, t: float,
                cat: str = "event", **args: Any) -> None:
        """Record an instant event at simulated time ``t``."""
        self.recorder.record(track, name, cat, "i", t, args=args or None)

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        """Record a counter sample (e.g. LDM occupancy) at time ``t``."""
        self.recorder.record(track, name, "counter", "C", t,
                             args={"value": float(value)})
