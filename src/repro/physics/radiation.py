"""Grey-gas two-stream longwave radiation (Frierson et al. 2006 style).

A single broadband LW optical depth increasing toward the surface,
stronger in the tropics; the upward/downward irradiance equations are
integrated level-by-level with B = sigma T^4, and the heating rate is
g/cp dF_net/dp.  Plays the role of CAM's radiation block: the most
flop-dense column kernel in the suite (the paper's 14x-speedup CAM
shortwave citation is this kind of kernel).
"""

from __future__ import annotations

import numpy as np

from .. import constants as C

#: Stefan-Boltzmann constant [W/m^2/K^4].
SIGMA_SB = 5.670374419e-8
#: Surface optical depth at the equator and pole.
TAU0_EQ = 6.0
TAU0_POLE = 1.5
#: Shortwave absorbed at the surface (crude solar forcing) [W/m^2].
SOLAR_SURFACE = 240.0


def optical_depth_profile(p: np.ndarray, ps: np.ndarray, lat: np.ndarray) -> np.ndarray:
    """LW optical depth at layer midpoints: tau = tau0(lat) (p/ps)^4."""
    tau0 = TAU0_POLE + (TAU0_EQ - TAU0_POLE) * np.cos(lat) ** 2
    return tau0[:, None] * (p / ps[:, None]) ** 4


def grey_lw_fluxes(
    T: np.ndarray, p: np.ndarray, ps: np.ndarray, Ts: np.ndarray, lat: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Upward/downward LW fluxes at layer interfaces.

    Shapes: T, p are (E, L, n, n); ps, Ts, lat are (E, n, n).  Returns
    (F_up, F_dn) at interfaces, shape (E, L+1, n, n), index 0 = model top.
    """
    E, L = T.shape[0], T.shape[1]
    tau_mid = optical_depth_profile(p, ps, lat)
    # Interface optical depths (0 at top).
    tau_int = np.concatenate(
        [np.zeros((E, 1) + T.shape[2:]), tau_mid], axis=1
    )
    dtau = np.diff(tau_int, axis=1)
    B = SIGMA_SB * T**4
    trans = np.exp(-dtau)

    # Downward: F_dn(top) = 0; F_dn(k+1) = F_dn(k) T_k + B_k (1 - T_k).
    F_dn = np.zeros((E, L + 1) + T.shape[2:])
    for k in range(L):
        F_dn[:, k + 1] = F_dn[:, k] * trans[:, k] + B[:, k] * (1 - trans[:, k])

    # Upward: F_up(surface) = sigma Ts^4.
    F_up = np.zeros_like(F_dn)
    F_up[:, L] = SIGMA_SB * Ts**4
    for k in range(L - 1, -1, -1):
        F_up[:, k] = F_up[:, k + 1] * trans[:, k] + B[:, k] * (1 - trans[:, k])
    return F_up, F_dn


def radiative_heating(
    T: np.ndarray,
    p: np.ndarray,
    dp: np.ndarray,
    ps: np.ndarray,
    Ts: np.ndarray,
    lat: np.ndarray,
) -> np.ndarray:
    """Heating rate dT/dt [K/s] from LW flux divergence."""
    F_up, F_dn = grey_lw_fluxes(T, p, ps, Ts, lat)
    net = F_up - F_dn  # positive upward
    dF = net[:, 1:] - net[:, :-1]  # divergence across each layer
    return C.GRAVITY / C.CP_DRY * dF / dp


def surface_temperature(lat: np.ndarray, sst_eq: float = 302.0, sst_pole: float = 271.0) -> np.ndarray:
    """Prescribed zonally symmetric surface temperature [K]."""
    return sst_pole + (sst_eq - sst_pole) * np.cos(lat) ** 2
