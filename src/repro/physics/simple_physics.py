"""Reed--Jablonowski (2012) simplified moist physics.

The standard idealized-tropical-cyclone physics package for CAM-SE:

1. **Large-scale condensation** — supersaturated vapour condenses
   immediately, releasing latent heat; condensate rains out instantly.
2. **Surface fluxes** — bulk aerodynamic momentum drag plus sensible
   and latent heat fluxes from a fixed-SST ocean, with the
   wind-speed-dependent exchange coefficients of RJ2012.
3. **Boundary-layer diffusion** — implicit vertical diffusion of
   momentum, temperature, and moisture below ~850 hPa.

This is the physics that turns the analytic vortex of
:mod:`repro.katrina.vortex` into an intensifying hurricane at high
resolution — the mechanism behind the paper's Figure 9.
"""

from __future__ import annotations

import numpy as np

from .. import constants as C
from ..homme.element import ElementGeometry, ElementState
from ..homme.rhs import PTOP, compute_pressure
from .kessler import saturation_mixing_ratio
from .pbl import drag_coefficient, CE


def large_scale_condensation(
    T: np.ndarray, qv: np.ndarray, p: np.ndarray, dt: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Remove supersaturation; returns (T_new, qv_new, precip_rate).

    Single linearized saturation-adjustment step (RJ2012 eq. 16-18);
    condensate is removed immediately (no cloud stage).
    """
    lv_cp = C.LATENT_HEAT_VAP / C.CP_DRY
    qvs = saturation_mixing_ratio(T, p)
    dqsdT = qvs * 17.27 * (273.15 - 35.85) / (T - 35.85) ** 2
    cond = np.clip((qv - qvs) / (1.0 + lv_cp * dqsdT), 0.0, None)
    return T + lv_cp * cond, qv - cond, cond / max(dt, 1e-12)


class SimplePhysics:
    """RJ2012 physics as a forcing callback for the dynamical core.

    Parameters
    ----------
    sst:
        Fixed sea-surface temperature [K] (302.15 K in RJ2012).
    qv_index:
        Which tracer slot carries water vapour.
    thermo_acceleration:
        DARE factor for the *diabatic* processes (condensation heating,
        surface enthalpy/moisture fluxes) on reduced-radius spheres.
        Momentum drag and mechanical mixing are not diabatic and keep
        the physical timestep.
    """

    def __init__(
        self,
        sst: float = 302.15,
        qv_index: int = 0,
        thermo_acceleration: float = 1.0,
    ) -> None:
        self.sst = sst
        self.qv_index = qv_index
        self.thermo_acceleration = thermo_acceleration
        self.total_precip = 0.0

    def __call__(
        self, state: ElementState, geom: ElementGeometry, t: float, dt: float
    ) -> None:
        iq = self.qv_index
        dt_thermo = dt * self.thermo_acceleration
        p_mid, _ = compute_pressure(state.dp3d)
        dp = state.dp3d
        qv = state.qdp[:, iq] / dp

        # 1. Large-scale condensation through the whole column.
        T_new, qv_new, precip = large_scale_condensation(state.T, qv, p_mid, dt_thermo)
        state.T[:] = T_new
        qv = qv_new
        w = geom.spheremp[:, None]
        self.total_precip += float(np.sum(precip * dt * dp * w) / C.GRAVITY)

        # 2. Surface fluxes on the lowest level (index -1 = surface).
        from ..homme import operators as op

        speed = np.sqrt(2.0 * op.kinetic_energy(state.v[:, -1], geom))
        rho_low = p_mid[:, -1] / (C.R_DRY * state.T[:, -1])
        rate_fac = C.GRAVITY * rho_low / dp[:, -1]
        cd = drag_coefficient(speed)
        k_m = cd * speed * rate_fac
        k_e = CE * speed * rate_fac

        ps = state.ps(PTOP)
        qsat_surf = saturation_mixing_ratio(
            np.full_like(ps, self.sst), ps
        )
        state.T[:, -1] = (state.T[:, -1] + dt_thermo * k_e * self.sst) / (
            1.0 + dt_thermo * k_e
        )
        qv[:, -1] = (qv[:, -1] + dt_thermo * k_e * qsat_surf) / (1.0 + dt_thermo * k_e)
        state.v[:, -1] /= (1.0 + dt * k_m)[..., None]

        # 3. Boundary-layer diffusion below ~850 hPa (simple implicit
        # two-level mixing: each PBL level relaxes toward its neighbour
        # above with the RJ K-profile timescale).
        pbl = p_mid > 85000.0
        k_mix = np.where(pbl, k_e[:, None] * 0.5, 0.0)
        for k in range(state.T.shape[1] - 1, 0, -1):
            lam = dt * k_mix[:, k]
            state.T[:, k] = (state.T[:, k] + lam * state.T[:, k - 1]) / (1.0 + lam)
            qv[:, k] = (qv[:, k] + lam * qv[:, k - 1]) / (1.0 + lam)
            state.v[:, k] = (state.v[:, k] + lam[..., None] * state.v[:, k - 1]) / (
                1.0 + lam[..., None]
            )

        state.qdp[:, iq] = np.clip(qv, 0.0, None) * dp
