"""Bulk surface fluxes and boundary-layer vertical diffusion.

The Reed--Jablonowski (2012) simplified boundary layer: bulk
aerodynamic surface fluxes of momentum, heat, and moisture with
wind-speed-dependent exchange coefficients, plus implicit vertical
diffusion through a prescribed K profile decaying above the boundary
layer top.  The implicit (backward Euler) tridiagonal solve keeps long
physics steps stable — the same reason CAM's own PBL is implicit.
"""

from __future__ import annotations

import numpy as np

from .. import constants as C

#: Exchange coefficient pieces (RJ2012).
CD0 = 7.0e-4
CD1 = 6.5e-5
CD_MAX = 2.0e-3
CE = 1.1e-3  # heat/moisture exchange coefficient
#: Boundary-layer top pressure [Pa] and decay scale for K above it.
P_PBL_TOP = 85000.0
P_PBL_STRATO = 10000.0


def drag_coefficient(wind_speed: np.ndarray) -> np.ndarray:
    """Wind-dependent surface drag Cd = min(Cd0 + Cd1 |v|, Cd_max)."""
    return np.minimum(CD0 + CD1 * wind_speed, CD_MAX)


def eddy_diffusivity(p: np.ndarray, wind_lowest: np.ndarray) -> np.ndarray:
    """K profile [m^2/s]: Ce |v| scale in the PBL, decaying above.

    ``p`` is midlevel pressure (E, L, n, n); ``wind_lowest`` (E, n, n).
    """
    k_pbl = CE * wind_lowest * 1.0e3  # scale height ~1 km folded in
    shape = np.ones_like(p)
    above = p < P_PBL_TOP
    decay = np.exp(-(((P_PBL_TOP - p) / P_PBL_STRATO) ** 2))
    shape = np.where(above, decay, shape)
    return k_pbl[:, None] * shape


def implicit_diffusion(
    x: np.ndarray, K: np.ndarray, dz: np.ndarray, dt: float
) -> np.ndarray:
    """Backward-Euler vertical diffusion d x/dt = d/dz (K d x/dz).

    ``x``, ``K``, ``dz`` have levels on axis 1 (E, L, n, n); zero-flux
    boundaries top and bottom (surface fluxes are applied separately).
    Solves the tridiagonal system per column with the Thomas algorithm,
    vectorized over columns.
    """
    E, L = x.shape[0], x.shape[1]
    # Interface diffusivity (L-1 interior interfaces).
    K_int = 0.5 * (K[:, 1:] + K[:, :-1])
    dz_int = 0.5 * (dz[:, 1:] + dz[:, :-1])
    lam = dt * K_int / (dz_int * 0.5 * (dz[:, 1:] + dz[:, :-1]))

    a = np.zeros_like(x)          # sub-diagonal (couples k with k-1)
    c = np.zeros_like(x)          # super-diagonal (couples k with k+1)
    a[:, 1:] = -lam
    c[:, :-1] = -lam
    b = 1.0 - a - c               # diagonal

    # Thomas algorithm along axis 1.
    cp = np.zeros_like(x)
    dp_ = np.zeros_like(x)
    cp[:, 0] = c[:, 0] / b[:, 0]
    dp_[:, 0] = x[:, 0] / b[:, 0]
    for k in range(1, L):
        denom = b[:, k] - a[:, k] * cp[:, k - 1]
        cp[:, k] = c[:, k] / denom
        dp_[:, k] = (x[:, k] - a[:, k] * dp_[:, k - 1]) / denom
    out = np.empty_like(x)
    out[:, -1] = dp_[:, -1]
    for k in range(L - 2, -1, -1):
        out[:, k] = dp_[:, k] - cp[:, k] * out[:, k + 1]
    return out


def surface_fluxes(
    T: np.ndarray,
    qv: np.ndarray,
    v: np.ndarray,
    speed: np.ndarray,
    Ts: np.ndarray,
    qs_sat: np.ndarray,
    dp_lowest: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Implicit bulk surface-flux updates for the lowest model level.

    Returns updated (T_low, qv_low, v_low_scale): temperature and
    moisture relax toward (Ts, qs_sat); momentum decays by drag.  The
    tendency scale is Cd |v| g / dp (flux divided by layer mass).
    """
    rho_fac = C.GRAVITY / dp_lowest  # converts kg m^-2 s^-1 flux to 1/s rate
    cd = drag_coefficient(speed)
    k_m = cd * speed * rho_fac * C.P0 / (C.R_DRY * 300.0)  # bulk momentum rate
    k_e = CE * speed * rho_fac * C.P0 / (C.R_DRY * 300.0)

    T_new = (T + dt * k_e * Ts) / (1.0 + dt * k_e)
    q_new = (qv + dt * k_e * qs_sat) / (1.0 + dt * k_e)
    v_scale = 1.0 / (1.0 + dt * k_m)
    return T_new, q_new, v_scale
