"""Simplified CAM physics suite.

The paper's "physics part" is the CAM5 parameterization package —
hundreds of column schemes.  For the reproduction, we build the
structurally equivalent substitute: a set of column-parallel processes
with the same phase structure (dynamics / physics alternation, no halo
communication inside physics):

- :mod:`~repro.physics.held_suarez` — the Held--Suarez (1994) dry-core
  forcing used for the climatology validation experiment (Figure 4);
- :mod:`~repro.physics.kessler` — Kessler warm-rain microphysics;
- :mod:`~repro.physics.radiation` — grey-gas two-stream longwave
  radiation (Frierson-style);
- :mod:`~repro.physics.pbl` — bulk surface fluxes + boundary-layer
  diffusion;
- :mod:`~repro.physics.simple_physics` — the Reed--Jablonowski (2012)
  simplified moist physics (surface drag/fluxes + large-scale
  condensation), the standard package for idealized tropical-cyclone
  tests and the engine of the Katrina experiment (Figure 9);
- :mod:`~repro.physics.suite` — the driver that sequences processes
  each physics step.
"""

from .held_suarez import held_suarez_forcing
from .suite import PhysicsSuite

__all__ = ["held_suarez_forcing", "PhysicsSuite"]
