"""The physics driver: sequences column processes each physics step.

CAM alternates dynamics and physics phases (paper Section 6).
:class:`PhysicsSuite` is the physics phase: a configurable sequence of
column processes applied to the state, usable directly as the
``forcing`` callback of
:class:`~repro.homme.timestep.PrimitiveEquationModel`.  Being purely
column-local it needs no halo communication — the structural property
that makes the physics phase embarrassingly parallel on the CPE
clusters (and why the paper's physics refactoring is tool-driven while
the dycore needed manual redesign).
"""

from __future__ import annotations

import numpy as np

from .. import constants as C
from ..errors import ConfigurationError
from ..homme.element import ElementGeometry, ElementState
from ..homme.rhs import PTOP, compute_pressure
from .held_suarez import held_suarez_forcing
from .kessler import kessler_step
from .radiation import radiative_heating, surface_temperature
from .simple_physics import SimplePhysics

#: Processes selectable in a suite.
AVAILABLE = ("held_suarez", "kessler", "radiation", "simple_physics")


class PhysicsSuite:
    """A configurable CAM-style physics package.

    Parameters
    ----------
    processes:
        Ordered process names from :data:`AVAILABLE`.
    qv_index, qc_index, qr_index:
        Tracer slots for the water species (Kessler needs all three).
    """

    def __init__(
        self,
        processes: tuple[str, ...] = ("held_suarez",),
        qv_index: int = 0,
        qc_index: int = 1,
        qr_index: int = 2,
    ) -> None:
        for p in processes:
            if p not in AVAILABLE:
                raise ConfigurationError(f"unknown physics process {p!r}")
        self.processes = tuple(processes)
        self.qv_index = qv_index
        self.qc_index = qc_index
        self.qr_index = qr_index
        self._simple = SimplePhysics(qv_index=qv_index)
        self.precip_total = 0.0

    def __call__(
        self, state: ElementState, geom: ElementGeometry, t: float, dt: float
    ) -> None:
        """Apply all configured processes in order (in place)."""
        for p in self.processes:
            getattr(self, f"_apply_{p}")(state, geom, t, dt)

    # -- individual processes ----------------------------------------------------

    def _apply_held_suarez(self, state, geom, t, dt) -> None:
        held_suarez_forcing(state, geom, t, dt)

    def _apply_simple_physics(self, state, geom, t, dt) -> None:
        self._simple(state, geom, t, dt)

    def _apply_kessler(self, state, geom, t, dt) -> None:
        if state.qsize <= max(self.qv_index, self.qc_index, self.qr_index):
            raise ConfigurationError(
                "Kessler needs qv/qc/qr tracer slots; increase qsize"
            )
        p_mid, _ = compute_pressure(state.dp3d)
        dp = state.dp3d
        qv = state.qdp[:, self.qv_index] / dp
        qc = state.qdp[:, self.qc_index] / dp
        qr = state.qdp[:, self.qr_index] / dp
        T, qv, qc, qr, precip = kessler_step(state.T, qv, qc, qr, p_mid, dt)
        state.T[:] = T
        state.qdp[:, self.qv_index] = qv * dp
        state.qdp[:, self.qc_index] = qc * dp
        state.qdp[:, self.qr_index] = qr * dp
        w = geom.spheremp[:, None]
        self.precip_total += float(np.sum(precip * dp * w) / C.GRAVITY)

    def _apply_radiation(self, state, geom, t, dt) -> None:
        p_mid, _ = compute_pressure(state.dp3d)
        ps = state.ps(PTOP)
        Ts = surface_temperature(geom.lat)
        heating = radiative_heating(
            state.T, p_mid, state.dp3d, ps, Ts, geom.lat
        )
        # Clip the rate so coarse vertical grids cannot produce runaway
        # cooling in one step.
        heating = np.clip(heating, -20.0 / C.SECONDS_PER_DAY, 20.0 / C.SECONDS_PER_DAY)
        state.T[:] = state.T + dt * heating

    # -- cost model hooks -----------------------------------------------------------

    def flops_per_column_level(self) -> float:
        """Approximate DP flops per (column, level) for the configured
        suite — used by the whole-CAM performance model (Figure 6)."""
        per_process = {
            "held_suarez": 25.0,
            "kessler": 120.0,
            "radiation": 180.0,
            "simple_physics": 80.0,
        }
        return sum(per_process[p] for p in self.processes)
