"""Kessler warm-rain microphysics (simplified, column-vectorized).

Three water species as tracers: vapour (qv), cloud water (qc), rain
(qr).  Processes: saturation adjustment (condensation/evaporation of
cloud), autoconversion and accretion of cloud to rain, rain evaporation
in subsaturated air, and instantaneous sedimentation of rain to the
surface (precipitation).  Latent heat feeds back on temperature.

This is the classic scheme GPU ports in the literature target (the
paper cites WRF's Kessler CUDA port, 70x); here it serves as the "heavy
column microphysics" workload of the physics phase.
"""

from __future__ import annotations

import numpy as np

from .. import constants as C

#: Autoconversion threshold [kg/kg] and rate [1/s].
QC_THRESHOLD = 1.0e-3
AUTOCONV_RATE = 1.0e-3
#: Accretion rate coefficient [1/s per unit qr^0.875] (simplified linear).
ACCRETION_RATE = 2.2
#: Rain evaporation rate coefficient [1/s].
RAIN_EVAP_RATE = 1.0e-4


def saturation_vapor_pressure(T: np.ndarray) -> np.ndarray:
    """Tetens formula over liquid water [Pa]."""
    return 610.78 * np.exp(17.27 * (T - 273.15) / (T - 35.85))


def saturation_mixing_ratio(T: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Saturation mixing ratio qvs = eps e_s / (p - e_s)."""
    es = np.minimum(saturation_vapor_pressure(T), 0.99 * p)
    eps = C.R_DRY / C.R_VAPOR
    return eps * es / (p - es)


def kessler_step(
    T: np.ndarray,
    qv: np.ndarray,
    qc: np.ndarray,
    qr: np.ndarray,
    p: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One Kessler microphysics step.

    All inputs share a shape (columns x levels in any layout); returns
    updated (T, qv, qc, qr) plus the precipitation mass removed
    (``precip``, same shape, in mixing-ratio units) for diagnostics.
    """
    T = T.copy()
    qv = np.clip(qv, 0.0, None).copy()
    qc = np.clip(qc, 0.0, None).copy()
    qr = np.clip(qr, 0.0, None).copy()
    lv_cp = C.LATENT_HEAT_VAP / C.CP_DRY

    # 1. Saturation adjustment (single Newton step on the linearized
    # Clausius-Clapeyron balance, the standard Kessler simplification).
    qvs = saturation_mixing_ratio(T, p)
    dqsdT = qvs * 17.27 * (273.15 - 35.85) / (T - 35.85) ** 2
    excess = (qv - qvs) / (1.0 + lv_cp * dqsdT)
    cond = np.clip(excess, -qc, qv)  # condense at most qv, evaporate at most qc
    qv -= cond
    qc += cond
    T += lv_cp * cond

    # 2. Autoconversion: cloud above threshold converts to rain.
    auto = AUTOCONV_RATE * dt * np.clip(qc - QC_THRESHOLD, 0.0, None)
    # 3. Accretion: rain collects cloud.
    accr = ACCRETION_RATE * dt * qc * qr
    to_rain = np.minimum(auto + accr, qc)
    qc -= to_rain
    qr += to_rain

    # 4. Rain evaporation in subsaturated air.
    qvs = saturation_mixing_ratio(T, p)
    subsat = np.clip(qvs - qv, 0.0, None)
    evap = np.minimum(RAIN_EVAP_RATE * dt * subsat * np.sqrt(np.clip(qr, 0, None) + 1e-12) * 1e3, qr)
    qr -= evap
    qv += evap
    T -= lv_cp * evap

    # 5. Instantaneous fallout: rain leaves the column as precipitation.
    precip = qr.copy()
    qr[:] = 0.0
    return T, qv, qc, qr, precip
