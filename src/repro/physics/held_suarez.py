"""Held--Suarez (1994) forcing: the standard dry-dynamical-core test.

Newtonian relaxation of temperature toward a prescribed radiative-
equilibrium profile plus Rayleigh friction on low-level winds.  Running
the dycore under this forcing for a long period produces a statistically
steady climate with realistic jets and baroclinic eddies — the basis of
our Figure-4 analogue (two-platform climatology comparison).
"""

from __future__ import annotations

import numpy as np

from .. import constants as C
from ..homme.element import ElementGeometry, ElementState
from ..homme.rhs import PTOP, compute_pressure

#: HS94 constants.
SIGMA_B = 0.7
KF = 1.0 / C.SECONDS_PER_DAY          # surface friction rate [1/s]
KA = 1.0 / (40.0 * C.SECONDS_PER_DAY)  # free-atmosphere relaxation
KS = 1.0 / (4.0 * C.SECONDS_PER_DAY)   # surface relaxation
DELTA_T_Y = 60.0                      # equator-pole temperature contrast [K]
DELTA_THETA_Z = 10.0                  # vertical potential-temperature contrast [K]
T_STRATOSPHERE = 200.0                # relaxation floor [K]


def equilibrium_temperature(p: np.ndarray, lat: np.ndarray) -> np.ndarray:
    """HS94 radiative-equilibrium temperature T_eq(p, lat).

    ``p`` has shape (E, L, n, n); ``lat`` (E, n, n) broadcasts over levels.
    """
    lat_b = lat[:, None]
    pr = p / C.P0
    teq = (
        315.0
        - DELTA_T_Y * np.sin(lat_b) ** 2
        - DELTA_THETA_Z * np.log(pr) * np.cos(lat_b) ** 2
    ) * pr**C.KAPPA
    return np.maximum(T_STRATOSPHERE, teq)


def relaxation_rates(
    sigma: np.ndarray, lat: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(k_T, k_v): temperature and friction rates per HS94.

    k_v = k_f max(0, (sigma - sigma_b)/(1 - sigma_b));
    k_T = k_a + (k_s - k_a) max(0, ...) cos^4(lat).
    """
    weight = np.clip((sigma - SIGMA_B) / (1.0 - SIGMA_B), 0.0, None)
    kv = KF * weight
    kt = KA + (KS - KA) * weight * np.cos(lat[:, None]) ** 4
    return kt, kv


def held_suarez_forcing(
    state: ElementState, geom: ElementGeometry, t: float, dt: float
) -> None:
    """Apply one physics step of HS94 forcing in place (implicit update).

    Uses the unconditionally stable backward-Euler form
    ``x_new = (x + dt k x_target) / (1 + dt k)`` so large physics steps
    cannot overshoot the equilibrium.
    """
    p_mid, _ = compute_pressure(state.dp3d)
    ps = state.ps(PTOP)
    sigma = p_mid / ps[:, None]
    teq = equilibrium_temperature(p_mid, geom.lat)
    kt, kv = relaxation_rates(sigma, geom.lat)
    state.T[:] = (state.T + dt * kt * teq) / (1.0 + dt * kt)
    state.v[:] = state.v / (1.0 + dt * kv)[..., None]
