"""Kernel workload derivation for the Table-1 benchmark configuration.

Each Table-1 kernel's arithmetic and traffic volumes are derived from
the model configuration (elements/process, levels, tracers) and
per-point operation counts taken from inspection of the kernel
implementations in :mod:`repro.homme`:

===================  =====================================================
kernel               per-point-per-step composition
===================  =====================================================
compute_and_apply    3 RK stages x (pressure scan, geopotential scan,
_rhs                 KE, vorticity, 2 gradients, k-cross, omega, div)
euler_step           3 subcycles x 2 SSP stages x Q tracers x (flux
                     divergence + DSS + limiter)
vertical_remap       (3 + Q) fields x PPM (edges, limiter, cumulative
                     search, integral), amortized over rsplit steps
hypervis_dp1/dp2     3 fields x (vector/scalar Laplacian + DSS [+ update])
biharmonic_dp3d      2 weak-Laplacian sweeps with quadrature assembly
===================  =====================================================

Structural parameters (re-read factors, serial fractions, LDM
fitability) encode the paper's findings: the OpenACC euler_step re-read
measured by the authors (traffic drops to ~10% under Athread, Section
7.3), the data-dependent kernels that defeat the directive model
(compute_and_apply_rhs 6x slower than one Intel core, Section 7.3), and
the 32-level chunking of Algorithm 1.
"""

from __future__ import annotations

from ..config import ModelConfig
from ..errors import ConfigurationError
from .base import KernelWorkload

#: Tracer count in the dycore benchmark configuration (HOMME scaling
#: runs use a reduced tracer set, not the CAM5 25-tracer suite).
BENCH_QSIZE = 4

#: Dynamics steps in the Table-1 timing window (about 6 simulated hours
#: at ne256; sets the absolute scale of the reported seconds).
BENCH_STEPS = 600

#: Per-(GLL point, level, step) DP operation counts, from kernel
#: inspection (see module docstring).
FLOPS_PER_POINT = {
    "compute_and_apply_rhs": 3 * 260.0,      # 3 RK stages
    "euler_step": 6 * 40.0,                  # x Q tracers
    "vertical_remap": 300.0,                 # x (3 + Q) fields / rsplit
    "hypervis_dp1": 3 * 100.0,               # 3 fields
    "hypervis_dp2": 3 * 78.0,
    "biharmonic_dp3d": 2 * 290.0,            # 2 weak sweeps
}

#: Unique main-memory traffic per (point, level, step) in doubles.
DOUBLES_PER_POINT = {
    "compute_and_apply_rhs": 3 * 22.0,   # state + scan/DSS temporaries
    "euler_step": None,                      # computed from Q below
    "vertical_remap": None,
    "hypervis_dp1": 12.0,
    "hypervis_dp2": 14.0,
    "biharmonic_dp3d": 10.0,
}

#: Intel achieved fraction of AVX2 peak.  The per-point operation counts
#: above already encode each kernel's arithmetic structure; SE kernels on
#: Haswell uniformly sustain ~12% of peak (bandwidth+latency limited).
VEC_INTEL = {k: 0.12 for k in FLOPS_PER_POINT}

#: MPE scalar efficiency per kernel (fraction of the 2 GF/s scalar rate).
#: Small-working-set loop kernels (hyperviscosity) run near scalar peak;
#: kernels streaming the whole state (euler_step with its tracers) thrash
#: the 256 KB L2 and drop to ~0.2.  Calibrated to Table 1's MPE column.
MPE_EFFICIENCY = {
    "compute_and_apply_rhs": 0.33,
    "euler_step": 0.215,
    "vertical_remap": 0.69,
    "hypervis_dp1": 0.93,
    "hypervis_dp2": 1.0,
    "biharmonic_dp3d": 0.63,
}

#: Structural parameters for the accelerated backends.
STRUCTURE = {
    "compute_and_apply_rhs": dict(
        ldm_fields=12,
        reread_factor_openacc=3.8,
        serial_fraction=0.12,
        scan_levels=9,                        # 3 scans x 3 stages
        acc_ldm_fit=False,                    # directive port spills to gld/gst
        vec_openacc=0.02,
        vec_athread=0.30,
        launch_regions=36,
    ),
    "euler_step": dict(
        ldm_fields=8,
        reread_factor_openacc=10.0,           # paper: traffic -> 10% with reuse
        serial_fraction=0.0,
        scan_levels=0,
        acc_ldm_fit=True,                     # Algorithm 1's 32-level chunks fit
        vec_openacc=0.05,
        vec_athread=0.35,
        launch_regions=None,                  # filled as 6 * Q below
    ),
    "vertical_remap": dict(
        ldm_fields=9,
        reread_factor_openacc=4.0,
        serial_fraction=0.09,             # PPM searches serialize under directives
        scan_levels=1,
        acc_ldm_fit=False,                # transposed access defeats LDM buffering
        transposed=True,                      # axis switch: strided on OpenACC
        vec_openacc=0.03,
        vec_athread=0.22,                 # PPM searches resist even manual SIMD
        launch_regions=None,                  # 3 + Q
    ),
    "hypervis_dp1": dict(
        ldm_fields=7,
        reread_factor_openacc=3.0,
        serial_fraction=0.0,
        scan_levels=0,
        acc_ldm_fit=True,
        vec_openacc=0.011,
        vec_athread=0.30,
        launch_regions=6,
    ),
    "hypervis_dp2": dict(
        ldm_fields=7,
        reread_factor_openacc=3.0,
        serial_fraction=0.0,
        scan_levels=0,
        acc_ldm_fit=True,
        vec_openacc=0.02,
        vec_athread=0.30,
        launch_regions=6,
    ),
    "biharmonic_dp3d": dict(
        ldm_fields=6,
        reread_factor_openacc=4.0,
        serial_fraction=0.0,
        scan_levels=0,
        acc_ldm_fit=True,
        vec_openacc=0.0145,
        vec_athread=0.30,
        launch_regions=4,
    ),
}

KERNELS = tuple(FLOPS_PER_POINT)


def workload_for(
    kernel: str,
    cfg: ModelConfig,
    elems_per_proc: int,
    steps: int = BENCH_STEPS,
) -> KernelWorkload:
    """Build the per-process workload of ``kernel`` over ``steps`` steps."""
    if kernel not in FLOPS_PER_POINT:
        raise ConfigurationError(f"unknown kernel {kernel!r}")
    E, L, Q = elems_per_proc, cfg.nlev, cfg.qsize
    points = E * L * cfg.np * cfg.np  # point-levels per process
    s = dict(STRUCTURE[kernel])

    fl = FLOPS_PER_POINT[kernel]
    if kernel == "euler_step":
        flops = fl * Q * points * steps
        # Compulsory traffic after full LDM reuse: each of the 6 SSP
        # stages (3 subcycles x 2) reads and writes qdp per tracer
        # (12 Q doubles) plus the shared arrays once (~5) — the Athread
        # floor; OpenACC re-reads 10x this (paper Section 7.3).
        doubles = 12.0 * Q + 5.0
        s["launch_regions"] = 6 * Q
    elif kernel == "vertical_remap":
        flops = fl * (3 + Q) / 3.0 * points * steps  # amortized over rsplit
        doubles = (2.0 * (3 + Q) + 4.0) / 3.0
        s["launch_regions"] = 3 + Q
    else:
        flops = fl * points * steps
        doubles = DOUBLES_PER_POINT[kernel]
    unique_bytes = doubles * 8.0 * points * steps

    transposed = s.pop("transposed", False)
    acc_ldm_fit = s.pop("acc_ldm_fit")
    # Athread tiling: one element's tile of the kernel's resident fields
    # over a 16-level slab (the 8x16 layer decomposition of Figure 2).
    # Tracer kernels stage ONE tracer at a time (Algorithm 2), so the
    # resident set is the shared fields plus one tracer's buffers.
    ldm_tile = s.pop("ldm_fields") * cfg.np * cfg.np * 16 * 8

    return KernelWorkload(
        name=kernel,
        flops=flops,
        unique_bytes=unique_bytes,
        reread_factor_openacc=s["reread_factor_openacc"],
        serial_fraction=s["serial_fraction"],
        scan_levels=s["scan_levels"] * steps,
        transpose_points=points * steps if transposed else 0,
        ldm_tile_bytes=ldm_tile,
        vec_intel=VEC_INTEL[kernel],
        mpe_efficiency=MPE_EFFICIENCY[kernel],
        vec_openacc=s["vec_openacc"],
        vec_athread=s["vec_athread"],
        launch_regions=s["launch_regions"] * steps,
        acc_ldm_fit=acc_ldm_fit,
    )


def table1_workloads(
    ne: int = 256,
    nproc: int = 6144,
    nlev: int = 128,
    qsize: int = BENCH_QSIZE,
    steps: int = BENCH_STEPS,
) -> dict[str, KernelWorkload]:
    """All Table-1 kernel workloads for the paper's 6,144-process run.

    ne256 over 6,144 processes gives the paper's 64 elements per
    process.
    """
    cfg = ModelConfig(ne=ne, nlev=nlev, qsize=qsize)
    epp = cfg.nelem // nproc
    if epp < 1:
        raise ConfigurationError(f"{nproc} processes exceed {cfg.nelem} elements")
    return {k: workload_for(k, cfg, epp, steps) for k in KERNELS}


def fused_hypervis_workload(
    cfg: ModelConfig, elems_per_proc: int, steps: int = BENCH_STEPS
) -> KernelWorkload:
    """hypervis_dp1 + dp2 fused into one kernel (paper Section 10:
    "using fused memory operation to achieve better bandwidth").

    The separate kernels write the intermediate Laplacians to main
    memory and read them back; fusing keeps them LDM-resident, saving
    one round trip of the 3 intermediate fields (6 doubles per point
    per step).
    """
    d1 = workload_for("hypervis_dp1", cfg, elems_per_proc, steps)
    d2 = workload_for("hypervis_dp2", cfg, elems_per_proc, steps)
    points = elems_per_proc * cfg.nlev * cfg.np * cfg.np
    saved = 6.0 * 8.0 * points * steps  # lap_v(2) + lap_T written+read
    return KernelWorkload(
        name="hypervis_fused",
        flops=d1.flops + d2.flops,
        unique_bytes=d1.unique_bytes + d2.unique_bytes - saved,
        reread_factor_openacc=3.0,
        serial_fraction=0.0,
        scan_levels=0,
        transpose_points=0,
        ldm_tile_bytes=d1.ldm_tile_bytes + 2 * cfg.np * cfg.np * 16 * 8,
        vec_intel=d1.vec_intel,
        vec_openacc=d1.vec_openacc,
        vec_athread=d1.vec_athread,
        mpe_efficiency=d1.mpe_efficiency,
        launch_regions=6,                  # one region instead of two
        acc_ldm_fit=True,
    )
