"""Shuffle + register-communication array transposition (Section 7.5).

Two levels, exactly as the paper's Figure 3:

1. **Intra-CPE**: a 4x4 double block held in four vector registers is
   transposed with 8 ``shuffle`` instructions;
2. **Inter-CPE**: an (n x n)-of-blocks matrix distributed one block-row
   per CPE is transposed in n-1 XOR phases — in phase k, CPE i swaps
   block i^k with CPE i^k, a collision-free pairing over the row
   network.

Functional over the real :class:`~repro.sunway.vector` shuffle and
:class:`~repro.sunway.regcomm.CPEMeshComm`; cycle accounting lets the
ablation bench compare against strided-DMA transposition.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..sunway.dma import DMAEngine
from ..sunway.regcomm import CPEMeshComm
from ..sunway.spec import DEFAULT_SPEC
from ..sunway.vector import transpose4x4

#: Cycles per vector instruction (shuffles issue one per cycle).
SHUFFLE_CYCLES = 1.0


def transpose_distributed(
    m: np.ndarray, comm: CPEMeshComm | None = None
) -> tuple[np.ndarray, float]:
    """Transpose a (4n x 4n) matrix distributed over n CPEs by block rows.

    CPE i holds block row i: blocks (i, 0..n-1), each 4x4.  Returns the
    transposed matrix and the simulated cycles (shuffles + XOR-phase
    register traffic; phases are serialized, pairs within a phase run
    concurrently).
    """
    comm = comm or CPEMeshComm(DEFAULT_SPEC)
    m = np.asarray(m, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1] or m.shape[0] % 4:
        raise KernelError(f"need a square matrix of 4x4 blocks, got {m.shape}")
    n = m.shape[0] // 4
    if n > comm.cols:
        raise KernelError(f"{n} block rows exceed {comm.cols} CPEs")
    if n & (n - 1):
        raise KernelError("XOR exchange requires a power-of-two CPE count")

    # Local view: blocks[i][j] is the 4x4 block at block-row i, col j.
    blocks = [[m[4 * i : 4 * i + 4, 4 * j : 4 * j + 4].copy() for j in range(n)] for i in range(n)]
    cycles = 0.0

    # Step 1: every CPE transposes its diagonal-destined blocks locally
    # (8 shuffles each); off-diagonal blocks transpose before exchange.
    shuffle_count = 0
    for i in range(n):
        for j in range(n):
            blocks[i][j], nshuf = transpose4x4(blocks[i][j])
            shuffle_count += nshuf
    # All CPEs shuffle concurrently: charge the per-CPE share.
    cycles += (shuffle_count / n) * SHUFFLE_CYCLES

    # Step 2: n-1 XOR phases swapping block (i, i^k) <-> (i^k, i).
    for phase in range(1, n):
        contrib = {i: blocks[i][i ^ phase] for i in range(n)}
        received, phase_cycles = comm.exchange_phase(contrib, phase, along="row")
        for i in range(n):
            blocks[i][i ^ phase] = received[i]
        cycles += phase_cycles

    out = np.empty_like(m)
    for i in range(n):
        for j in range(n):
            out[4 * i : 4 * i + 4, 4 * j : 4 * j + 4] = blocks[i][j]
    return out, cycles


def strided_dma_transpose_cycles(size: int, spec=DEFAULT_SPEC) -> float:
    """Baseline: transpose by strided DMA through main memory.

    Each of the ``size`` rows is written column-wise: ``size`` strided
    transfers of ``size`` doubles each, paying the stride penalty of
    the DMA efficiency curve, plus the read-back.
    """
    eng = DMAEngine(spec, bandwidth_share=1.0 / spec.cpes_per_cg)
    row_bytes = size * 8
    cycles = 0.0
    for _ in range(size):
        cycles += eng.transfer_cycles(row_bytes, stride_bytes=row_bytes * size)
    return 2 * cycles  # write strided + read back
