"""Backend protocol and the kernel workload description.

A :class:`KernelWorkload` captures everything about a kernel that the
execution models need: arithmetic volume, unique memory traffic, the
structural properties the paper's redesign exploits (vertical
dependency chains, transposed access, tracer-loop reuse), and the
per-CPE LDM working set.  Backends turn a workload into a
:class:`KernelReport` with simulated seconds.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class KernelWorkload:
    """Per-process workload of one kernel invocation.

    Attributes
    ----------
    name:
        Kernel name (Table 1 names).
    flops:
        Double-precision operations for the whole local workload.
    unique_bytes:
        Bytes that must cross main memory at least once (compulsory
        traffic: inputs read once + outputs written once).
    reread_factor_openacc:
        How much the OpenACC copyin-per-loop-nest discipline inflates
        traffic over ``unique_bytes`` (the paper's euler_step measured
        ~10x; Section 7.3).
    serial_fraction:
        Fraction of the arithmetic that a directive-only port cannot
        parallelize across CPEs (vertical dependency chains, DSS
        accumulations).  The Athread redesign converts this to parallel
        work via the register-communication scan.
    scan_levels:
        Number of column-scan traversals per invocation (pressure,
        geopotential, omega) — costed explicitly on the Athread path.
    transpose_points:
        GLL points whose data must switch axis layout (vertical remap);
        strided on OpenACC, shuffle+regcomm on Athread.
    ldm_tile_bytes:
        Working-set bytes per CPE for the Athread tiling plan (checked
        against the 64 KB LDM).
    vec_intel / vec_openacc / vec_athread:
        Achieved fraction of each platform's vector peak.
    launch_regions:
        Accelerated loop nests per invocation (OpenACC pays a kernel
        launch overhead for each).
    """

    name: str
    flops: float
    unique_bytes: float
    reread_factor_openacc: float = 1.0
    serial_fraction: float = 0.0
    scan_levels: int = 0
    transpose_points: int = 0
    ldm_tile_bytes: int = 16 * 1024
    vec_intel: float = 0.12
    vec_openacc: float = 0.04
    vec_athread: float = 0.25
    #: Fraction of the MPE's scalar rate this kernel sustains (cache
    #: behaviour of the unmodified code on the management core).
    mpe_efficiency: float = 0.5
    launch_regions: int = 1
    #: Whether the directive port can stage its working set through the
    #: LDM at all (single-collapse restriction); when False the OpenACC
    #: path falls back to direct gld/gst global loads.
    acc_ldm_fit: bool = True

    def __post_init__(self) -> None:
        if self.flops <= 0 or self.unique_bytes <= 0:
            raise ValueError(f"{self.name}: flops and unique_bytes must be positive")
        if not (0.0 <= self.serial_fraction < 1.0):
            raise ValueError(f"{self.name}: serial_fraction must be in [0, 1)")
        if self.reread_factor_openacc < 1.0:
            raise ValueError(f"{self.name}: reread factor cannot be < 1")

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per unique byte (roofline x-axis)."""
        return self.flops / self.unique_bytes


@dataclass
class KernelReport:
    """Result of executing a workload on a backend."""

    name: str
    backend: str
    seconds: float
    flops: float
    bytes_moved: float
    compute_seconds: float = 0.0
    memory_seconds: float = 0.0
    overhead_seconds: float = 0.0
    notes: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        """Sustained GFlop/s of the kernel on this backend."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


class Backend(abc.ABC):
    """Executes kernel workloads under one hardware/programming model.

    Assigning a real :class:`~repro.obs.Tracer` to :attr:`tracer` turns
    every executed kernel into a span (``cat="kernel"``) on the
    ``backend.<name>`` track, laid back-to-back on the backend's own
    simulated timeline and annotated with flop/byte counts — the input
    the flight recorder's roofline attribution report consumes.
    """

    name: str = "abstract"
    #: Observability hook; the class default records nothing.
    tracer = NULL_TRACER

    @abc.abstractmethod
    def execute(self, wl: KernelWorkload) -> KernelReport:
        """Simulated execution of one kernel invocation."""

    def execute_all(self, workloads: dict[str, KernelWorkload]) -> dict[str, KernelReport]:
        """Execute a set of kernels, keyed by name."""
        return {k: self.execute(wl) for k, wl in workloads.items()}

    def _trace_report(self, rep: KernelReport) -> KernelReport:
        """Record ``rep`` as a kernel span; returns ``rep`` for chaining.

        Kernels are placed end-to-end at a per-backend time cursor, so
        the track reads as the backend's serialized execution order.
        """
        if not self.tracer.enabled:
            return rep
        t0 = getattr(self, "_trace_cursor", 0.0)
        t1 = t0 + rep.seconds
        self._trace_cursor = t1
        self.tracer.span_at(
            f"backend.{self.name}", rep.name, t0, t1, cat="kernel",
            backend=self.name, flops=rep.flops, bytes=rep.bytes_moved,
            compute_seconds=rep.compute_seconds,
            memory_seconds=rep.memory_seconds,
            overhead_seconds=rep.overhead_seconds,
            bound=rep.notes.get("bound", ""),
        )
        return rep
