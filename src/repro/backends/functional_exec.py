"""Functional execution disciplines: Algorithms 1/2 on the simulated CPE
cluster, and the batched/looped dispatch for the HOMME hot path.

Two related things live here:

1. the CPE-cluster execution of a mini tracer kernel (below) — the
   paper's Algorithms 1 and 2 run through the simulated hardware;
2. the **execution-path dispatch** for the real HOMME kernels
   (:func:`homme_execution`): selecting ``"batched"`` (whole element
   stack per kernel call, memoized operator tensors), ``"looped"``
   (one dispatch per element — the pre-redesign discipline), or
   ``"fused"`` (single-pass BLAS contractions against preassembled
   per-mesh operands — :mod:`repro.homme.fused`).  All paths are kept
   permanently and cross-validated against batched
   (:func:`cross_validate_paths`, asserted to 1e-12 in
   ``tests/test_exec_paths.py``); ``repro.bench`` times them against
   each other and commits the speedups to ``BENCH_homme.json``.

This module executes a small flux-form tracer update

    qdp_out = qdp - dt * div(v * qdp)      (1D column stencil form)

through the *simulated hardware*: data is DMA'd from "main memory"
(numpy arrays) into real LDM allocations, computed with the vector
unit, and DMA'd back.  Two disciplines are implemented:

- :class:`OpenACCStyleExecution` (Algorithm 1): the collapsed (ie, q)
  loop copyins the shared arrays *inside* the q loop — every tracer
  iteration re-reads ``vstar`` and ``dp`` tiles;
- :class:`AthreadStyleExecution` (Algorithm 2): shared tiles are
  DMA'd once per element slab and kept LDM-resident across the tracer
  loop, with qdp double-buffered.

Both produce bit-identical numerics (verified in the tests); the DMA
byte counters differ by the reuse factor — the measured mechanism
behind the paper's "total data transfer size has been decreased to
10%" (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import KernelError, LDMOverflowError
from ..homme import fused as _fz
from ..homme import looped as _looped
from ..homme import operators as _op
from ..homme import rhs as _rhs
from ..homme import shallow_water as _sw
from ..sunway.cpe import CPE
from ..sunway.spec import SW26010Spec, DEFAULT_SPEC


# ---------------------------------------------------------------------------
# Execution-path dispatch for the HOMME kernels (batched vs looped)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HommeExecution:
    """One execution path through the HOMME element-local kernels.

    Bundles the path-specific forms of every dispatchable kernel; DSS
    and the time integrators are shared, so two executions of the same
    state differ only in kernel dispatch granularity (and agree to
    roundoff — cross-validated in ``tests/test_exec_paths.py``).
    """

    name: str
    #: primitive-equation tendencies: f(state, geom, phis) -> (dv, dT, ddp)
    compute_rhs: Callable
    #: shallow-water tendencies: f(h, v, geom) -> (dh, dv)
    sw_rhs: Callable
    #: weak scalar Laplacian: f(field, geom) -> field
    laplace_wk: Callable
    #: vector Laplacian: f(v, geom) -> v
    vlaplace: Callable
    #: tracer path name handed to ``euler_step(..., path=...)``
    euler_path: str


EXECUTION_PATHS: dict[str, HommeExecution] = {
    "batched": HommeExecution(
        name="batched",
        compute_rhs=_rhs.compute_rhs,
        sw_rhs=_sw.sw_compute_rhs,
        laplace_wk=_op.laplace_sphere_wk,
        vlaplace=_op.vlaplace_sphere,
        euler_path="batched",
    ),
    "looped": HommeExecution(
        name="looped",
        compute_rhs=_looped.compute_rhs_looped,
        sw_rhs=_looped.sw_compute_rhs_looped,
        laplace_wk=_looped.laplace_sphere_wk_looped,
        vlaplace=_looped.vlaplace_sphere_looped,
        euler_path="looped",
    ),
    "fused": HommeExecution(
        name="fused",
        compute_rhs=_fz.compute_rhs_fused,
        sw_rhs=_fz.sw_compute_rhs_fused,
        laplace_wk=_fz.laplace_sphere_wk_fused,
        vlaplace=_fz.vlaplace_sphere_fused,
        euler_path="fused",
    ),
}


def homme_execution(name: str = "batched") -> HommeExecution:
    """Look up an execution path by name (``"batched"``, ``"looped"``
    or ``"fused"``)."""
    try:
        return EXECUTION_PATHS[name]
    except KeyError:
        raise KernelError(
            f"unknown execution path {name!r}; choose from {sorted(EXECUTION_PATHS)}"
        ) from None


def cross_validate_paths(
    state, geom, phis=None, rtol: float = 1e-12,
    paths: tuple[str, ...] = ("looped", "fused"),
) -> dict[str, float]:
    """Run every dispatchable kernel through every alternate path;
    return max relative disagreements against batched (and raise if any
    exceeds ``rtol``).

    The contract behind the alternate paths: looping and fusing are
    *only* dispatch/contraction-order changes, so every kernel must
    agree with its batched twin to roundoff on the same inputs.
    """
    b = EXECUTION_PATHS["batched"]

    def rel(a, c):
        scale = max(float(np.max(np.abs(a))), 1e-300)
        return float(np.max(np.abs(a - c))) / scale

    errs: dict[str, float] = {}
    dv_b, dT_b, ddp_b = b.compute_rhs(state, geom, phis)
    lap_b = b.laplace_wk(state.T, geom)
    vlap_b = b.vlaplace(state.v, geom)
    for name in paths:
        o = homme_execution(name)
        dv_o, dT_o, ddp_o = o.compute_rhs(state, geom, phis)
        errs[f"{name}.compute_rhs.dv"] = rel(dv_b, dv_o)
        errs[f"{name}.compute_rhs.dT"] = rel(dT_b, dT_o)
        errs[f"{name}.compute_rhs.ddp"] = rel(ddp_b, ddp_o)
        errs[f"{name}.laplace_wk.T"] = rel(lap_b, o.laplace_wk(state.T, geom))
        errs[f"{name}.vlaplace.v"] = rel(vlap_b, o.vlaplace(state.v, geom))
    worst = max(errs.values())
    if worst > rtol:
        raise KernelError(
            f"execution-path cross-validation failed: max rel err {worst:.3e} "
            f"> {rtol:.1e} ({errs})"
        )
    return errs


@dataclass
class MiniWorkload:
    """A small element-slab tracer workload living in "main memory".

    Arrays (levels x points layout, one element slab):

    - ``qdp``   — (Q, L, P) tracer mass;
    - ``vstar`` — (L, P) advecting velocity (1D stencil direction);
    - ``dp``    — (L, P) layer thickness.
    """

    qdp: np.ndarray
    vstar: np.ndarray
    dp: np.ndarray
    dt: float = 0.1

    def __post_init__(self) -> None:
        Q, L, P = self.qdp.shape
        if self.vstar.shape != (L, P) or self.dp.shape != (L, P):
            raise ValueError("shared array shapes must match qdp's (L, P)")

    @classmethod
    def random(cls, qsize: int = 8, nlev: int = 16, points: int = 16, seed: int = 0):
        rng = np.random.default_rng(seed)
        return cls(
            qdp=rng.random((qsize, nlev, points)) + 0.5,
            vstar=rng.standard_normal((nlev, points)) * 0.1,
            dp=rng.random((nlev, points)) + 1.0,
        )


def _reference_update(wl: MiniWorkload, passes: int = 1) -> np.ndarray:
    """The numpy reference: ``passes`` sweeps of qdp -= dt d(v qdp)/dx."""
    qdp = wl.qdp
    for _ in range(passes):
        flux = wl.vstar[None] * qdp
        div = 0.5 * (np.roll(flux, -1, axis=-1) - np.roll(flux, 1, axis=-1))
        qdp = qdp - wl.dt * div
    return qdp


def _tile_update(qdp_tile, vstar_tile, dt, vector_unit):
    """One tile's update through the vector unit (counts real flops)."""
    flux = vector_unit.mul(vstar_tile, qdp_tile)
    div = vector_unit.mul(
        np.full_like(flux, 0.5),
        np.roll(flux, -1, axis=-1) - np.roll(flux, 1, axis=-1),
    )
    return vector_unit.fmadd(np.full_like(div, -dt), div, qdp_tile)


class OpenACCStyleExecution:
    """Algorithm 1: copyin of shared arrays inside the tracer loop.

    The single collapse over (ie, q) means no code can hoist the shared
    tiles out of the q loop — every tracer iteration DMA-gets ``vstar``
    and ``dp`` again.
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC, passes: int = 1) -> None:
        self.cpe = CPE(0, 0, spec)
        self.passes = passes

    def run(self, wl: MiniWorkload) -> np.ndarray:
        cpe = self.cpe
        Q, L, P = wl.qdp.shape
        # Each loop nest (pass) is its own parallel region: the previous
        # pass's result returns to main memory and is copyin'd again —
        # "even if the next loop reuses the same array, it reads the
        # data again" (Section 7.3).
        main = wl.qdp.copy()
        for _ in range(self.passes):
            out = np.empty_like(main)
            for q in range(Q):
                # copyin(derived_dp), copyin(vstar) — inside the q loop.
                vstar_tile = cpe.ldm.alloc_array((L, P), label="vstar")
                dp_tile = cpe.ldm.alloc_array((L, P), label="dp")
                cpe.dma.get(wl.vstar, vstar_tile, tag="vstar")
                cpe.dma.get(wl.dp, dp_tile, tag="dp")
                # copyin(elements(ie).qdp(q)).
                q_tile = cpe.ldm.alloc_array((L, P), label="qdp")
                cpe.dma.get(main[q], q_tile, tag="qdp")
                result = _tile_update(q_tile, vstar_tile, wl.dt, cpe.vector)
                cpe.dma.put(result, out[q], tag="qdp_out")
                # Directive model: buffers die with the parallel region.
                cpe.ldm.free_array(q_tile)
                cpe.ldm.free_array(dp_tile)
                cpe.ldm.free_array(vstar_tile)
            main = out
        return main

    @property
    def dma_bytes(self) -> int:
        return self.cpe.dma.total_bytes


class AthreadStyleExecution:
    """Algorithm 2: shared tiles LDM-resident, qdp double-buffered."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC, passes: int = 1) -> None:
        self.cpe = CPE(0, 0, spec)
        self.passes = passes

    def run(self, wl: MiniWorkload) -> np.ndarray:
        cpe = self.cpe
        out = np.empty_like(wl.qdp)
        Q, L, P = wl.qdp.shape
        nbytes = L * P * 8
        if 4 * nbytes > cpe.ldm.capacity:
            raise LDMOverflowError(4 * nbytes, cpe.ldm.capacity, "athread tiles")
        # DMA-get the non-q arrays ONCE, keep them resident.
        vstar_tile = cpe.ldm.alloc_array((L, P), label="vstar")
        dp_tile = cpe.ldm.alloc_array((L, P), label="dp")
        cpe.dma.get(wl.vstar, vstar_tile, tag="vstar")
        cpe.dma.get(wl.dp, dp_tile, tag="dp")
        # Ping/pong qdp buffers: tracer q+1 streams in while q computes.
        ping = cpe.ldm.alloc_array((L, P), label="qdp.ping")
        pong = cpe.ldm.alloc_array((L, P), label="qdp.pong")
        cpe.dma.get(wl.qdp[0], ping, tag="qdp0")
        for q in range(Q):
            nxt = pong if q % 2 == 0 else ping
            cur = ping if q % 2 == 0 else pong
            if q + 1 < Q:
                req = cpe.dma.prefetch(nbytes, tag=f"qdp{q + 1}")
                np.copyto(nxt, wl.qdp[q + 1])  # the async transfer lands
            # ALL passes run on the LDM-resident tile before it leaves:
            # the fine-grained rewrite fuses the loop nests.
            result = cur
            for _ in range(self.passes):
                result = _tile_update(result, vstar_tile, wl.dt, cpe.vector)
            if q + 1 < Q:
                # Compute overlapped the prefetch; charge max of the two.
                cpe.dma.overlap_cost(req, compute_cycles=result.size / 4.0)
            cpe.dma.put(result, out[q], tag="qdp_out")
        for arr in (pong, ping, dp_tile, vstar_tile):
            cpe.ldm.free_array(arr)
        return out

    @property
    def dma_bytes(self) -> int:
        return self.cpe.dma.total_bytes


def traffic_comparison(wl: MiniWorkload, passes: int = 1) -> dict[str, float]:
    """Run both disciplines; return numerics check + traffic ratio.

    ``passes`` models euler_step's several sequential loop nests; at
    the realistic (Q=25, passes=5) point the ratio lands near the
    paper's measured 10%.
    """
    acc = OpenACCStyleExecution(passes=passes)
    ath = AthreadStyleExecution(passes=passes)
    ref = _reference_update(wl, passes=passes)
    out_acc = acc.run(wl)
    out_ath = ath.run(wl)
    return {
        "acc_matches_reference": bool(np.allclose(out_acc, ref)),
        "ath_matches_reference": bool(np.allclose(out_ath, ref)),
        "bit_identical": bool(np.array_equal(out_acc, out_ath)),
        "acc_bytes": float(acc.dma_bytes),
        "ath_bytes": float(ath.dma_bytes),
        "traffic_ratio": ath.dma_bytes / acc.dma_bytes,
    }
