"""The OpenACC directive backend: the first-stage refactoring.

Models the constraints the paper documents for the Sunway OpenACC
compiler (Section 7.3):

- **single collapse**: only one loop level maps to the CPE cluster, and
  no code can be inserted between collapsed loops — so shared arrays
  are ``copyin``'d inside the tracer loop and re-read every iteration
  (``reread_factor_openacc``, measured ~10x for euler_step);
- **no LDM staging for complex kernels** (``acc_ldm_fit=False``): the
  working set cannot be tiled under the directive restrictions, so
  accesses fall back to direct gld/gst global loads at a fraction of
  DMA bandwidth — this is what makes compute_and_apply_rhs 6x *slower*
  than one Intel core;
- **no vectorization control**: the compiler's achieved SIMD fraction
  is low (``vec_openacc``);
- **threading overhead**: each accelerated region pays a launch cost,
  significant for a model with hundreds of small kernels;
- **Amdahl**: the serial fraction (vertical dependencies) runs on one
  CPE at scalar speed.
"""

from __future__ import annotations

from .base import Backend, KernelReport, KernelWorkload

#: Kernel-launch overhead per accelerated region [s] (spawn + join of
#: the CPE cluster through the Athread runtime underneath OpenACC).
LAUNCH_OVERHEAD = 9.0e-6

#: Effective bandwidth of direct gld/gst global accesses from CPEs
#: [bytes/s per CG] — roughly an order of magnitude below DMA.
GLD_BANDWIDTH = 2.6e9

#: Scalar rate of one CPE on serialized (non-vector, LDM-miss) code.
CPE_SCALAR_RATE = 0.5e9


class OpenACCBackend(Backend):
    """64 CPEs driven by Sunway OpenACC directives."""

    name = "openacc"

    def __init__(self, spec=None) -> None:
        from ..sunway.spec import DEFAULT_SPEC

        self.spec = spec or DEFAULT_SPEC

    def execute(self, wl: KernelWorkload) -> KernelReport:
        cluster_peak = self.spec.cg_peak_flops
        parallel_flops = wl.flops * (1.0 - wl.serial_fraction)
        compute = parallel_flops / (cluster_peak * wl.vec_openacc)

        # Memory: DMA when the directive port can buffer, gld otherwise.
        bw = self.spec.cg_memory_bandwidth if wl.acc_ldm_fit else GLD_BANDWIDTH
        bytes_moved = wl.unique_bytes * wl.reread_factor_openacc
        memory = bytes_moved / bw

        # Serialized remainder: one CPE, scalar, cache-less.
        serial = wl.flops * wl.serial_fraction / CPE_SCALAR_RATE

        overhead = wl.launch_regions * LAUNCH_OVERHEAD + serial
        seconds = max(compute, memory) + overhead
        return self._trace_report(KernelReport(
            name=wl.name,
            backend=self.name,
            seconds=seconds,
            flops=wl.flops,
            bytes_moved=bytes_moved,
            compute_seconds=compute,
            memory_seconds=memory,
            overhead_seconds=overhead,
            notes={
                "bound": "compute" if compute >= memory else "memory",
                "gld_fallback": not wl.acc_ldm_fit,
                "serial_seconds": serial,
            },
        ))
