"""The Intel Xeon E5-2680 v3 reference backend (one core per process).

Table 1 and Figure 5 measure every Sunway variant against one Intel
core running the original Fortran.  The model is a per-kernel roofline:
compute at ``peak x achieved-vector-efficiency``, memory at the
per-core share of socket bandwidth, plus nothing else (the original
code has no offload overheads).
"""

from __future__ import annotations

from .. import constants as C
from .base import Backend, KernelReport, KernelWorkload


class IntelBackend(Backend):
    """One Haswell core executing the original kernel."""

    name = "intel"

    def __init__(
        self,
        peak_flops: float = C.INTEL_CORE_PEAK_FLOPS,
        bandwidth: float = C.INTEL_CORE_BANDWIDTH,
    ) -> None:
        self.peak_flops = peak_flops
        self.bandwidth = bandwidth

    def execute(self, wl: KernelWorkload) -> KernelReport:
        compute = wl.flops / (self.peak_flops * wl.vec_intel)
        # The cache hierarchy captures reuse: only unique traffic pays.
        memory = wl.unique_bytes / self.bandwidth
        seconds = max(compute, memory)
        return self._trace_report(KernelReport(
            name=wl.name,
            backend=self.name,
            seconds=seconds,
            flops=wl.flops,
            bytes_moved=wl.unique_bytes,
            compute_seconds=compute,
            memory_seconds=memory,
            notes={"bound": "compute" if compute >= memory else "memory"},
        ))
