"""The MPE-only backend: the naive port, before any CPE use.

Table 1's "MPE" column: the original code on the management core alone
runs 2--10x slower than one Intel core — the starting point that makes
the whole refactoring necessary.  The MPE is a single in-order-ish RISC
core without wide SIMD for this code, so its compute rate is flat
(vectorization differences between kernels disappear), while its
single-thread memory path is far below the memory controller's peak.
"""

from __future__ import annotations

from .base import Backend, KernelReport, KernelWorkload

#: Peak MPE scalar flop rate [flop/s] (1.45 GHz, ~1.4 flops/cycle on
#: scalar FMA-friendly loops); per-kernel cache behaviour scales it
#: down via ``KernelWorkload.mpe_efficiency``.
MPE_FLOP_RATE = 2.0e9

#: Single-thread achieved memory bandwidth on the MPE [bytes/s].
MPE_BANDWIDTH = 4.0e9


class MPEBackend(Backend):
    """The management core executing the unmodified kernel."""

    name = "mpe"

    def __init__(
        self,
        flop_rate: float = MPE_FLOP_RATE,
        bandwidth: float = MPE_BANDWIDTH,
    ) -> None:
        self.flop_rate = flop_rate
        self.bandwidth = bandwidth

    def execute(self, wl: KernelWorkload) -> KernelReport:
        compute = wl.flops / (self.flop_rate * wl.mpe_efficiency)
        memory = wl.unique_bytes / self.bandwidth
        seconds = max(compute, memory)
        return self._trace_report(KernelReport(
            name=wl.name,
            backend=self.name,
            seconds=seconds,
            flops=wl.flops,
            bytes_moved=wl.unique_bytes,
            compute_seconds=compute,
            memory_seconds=memory,
            notes={"bound": "compute" if compute >= memory else "memory"},
        ))
