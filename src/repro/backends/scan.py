"""The register-communication vertical scan (paper Section 7.4, Figure 2).

128 atmospheric layers are split into 8 groups of 16; CPE row i holds
layers [16 i, 16 i + 15].  The pressure accumulation
``p_k = p_{k-1} + a_k`` runs in three stages:

1. **Local accumulation** — each CPE scans its own 16 layers;
2. **Partial sum exchange** — CPE (i, j) blocks on a register read of
   the running total from (i-1, j), adds its local total, forwards to
   (i+1, j);
3. **Global accumulation** — each CPE offsets its local prefix sums.

Functional implementation over :class:`~repro.sunway.regcomm.CPEMeshComm`
with cycle accounting; :func:`serial_scan_cycles` is the baseline the
scheme replaces (one CPE walking all 128 layers).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from ..sunway.regcomm import CPEMeshComm
from ..sunway.spec import SW26010Spec, DEFAULT_SPEC

#: Cycles for one scalar add+load step of the serial column walk.
SERIAL_CYCLES_PER_LEVEL = 6.0


def regcomm_scan(
    a: np.ndarray,
    comm: CPEMeshComm | None = None,
    p0: float = 0.0,
) -> tuple[np.ndarray, float]:
    """Parallel inclusive scan of layer increments ``a`` over CPE rows.

    ``a`` has shape (levels, columns) with levels divisible by the mesh
    row count; column j is handled by CPE column j (the 16 element
    columns of a 4x4 element map onto the 8 CPE columns two at a time
    in the real code; here columns <= mesh columns).

    Returns (p, cycles): ``p[k] = p0 + a[0] + ... + a[k]`` and the
    simulated cycle cost of stage 2 (stages 1 and 3 are ordinary local
    arithmetic, charged by the caller as compute).
    """
    comm = comm or CPEMeshComm(DEFAULT_SPEC)
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise KernelError("regcomm_scan expects (levels, columns)")
    L, ncol = a.shape
    rows = comm.rows
    if L % rows != 0:
        raise KernelError(f"{L} levels not divisible by {rows} CPE rows")
    if ncol > comm.cols:
        raise KernelError(f"{ncol} columns exceed {comm.cols} CPE columns")
    per = L // rows

    # Stage 1: local prefix sums within each CPE's layer group.
    blocks = a.reshape(rows, per, ncol)
    local = np.cumsum(blocks, axis=1)

    # Stage 2: exchange of group totals down each column (functional
    # register traffic through the mesh).
    totals = local[:, -1, :]  # (rows, ncol)
    padded = np.zeros((rows, comm.cols))
    padded[:, :ncol] = totals
    offsets, cycles = comm.column_scan(padded)

    # Stage 3: add the incoming offset (plus p0) to every local sum.
    p = local + offsets[:, None, :ncol] + p0
    return p.reshape(L, ncol), cycles


def serial_scan_cycles(levels: int, spec: SW26010Spec = DEFAULT_SPEC) -> float:
    """Cycles for the unparallelized scan: one pass over all levels."""
    return levels * SERIAL_CYCLES_PER_LEVEL


def scan_speedup(levels: int, spec: SW26010Spec = DEFAULT_SPEC) -> float:
    """Critical-path speedup of the three-stage scheme over the serial walk.

    Parallel critical path: per-CPE local work (levels/rows passes,
    twice: stages 1 and 3) + the register chain of stage 2.
    """
    per = levels / spec.cpe_rows
    parallel = 2 * per * SERIAL_CYCLES_PER_LEVEL + (
        spec.cpe_rows - 1
    ) * spec.regcomm_latency_cycles
    return serial_scan_cycles(levels, spec) / parallel
