"""The Athread backend: the paper's fine-grained redesign.

Everything the directive model could not do (Section 7.3-7.5):

- **LDM-resident reuse**: only compulsory traffic crosses main memory
  (the measured 10x euler_step traffic reduction), moved by DMA in
  large double-buffered blocks that overlap computation;
- **manual vectorization**: explicitly declared vector types raise the
  achieved SIMD fraction (``vec_athread``);
- **register-communication scan**: the vertical dependency chains
  (pressure/geopotential accumulation) become the three-stage parallel
  scan of Figure 2, costing a handful of register hops instead of
  serializing the cluster;
- **shuffle + register transposition**: axis switches (vertical remap)
  run at register speed instead of strided-DMA speed (Figure 3);
- **8 x 16 layer decomposition**: 128 levels split over the 8 CPE rows
  exposes enough parallelism that the whole cluster stays busy.

The tiling plan is validated against the 64 KB LDM: a workload whose
tile does not fit raises, because on the real machine that plan simply
cannot be written.
"""

from __future__ import annotations

from ..errors import LDMOverflowError, ResilienceError
from .base import Backend, KernelReport, KernelWorkload

#: Fraction of DMA streaming that double buffering cannot hide
#: (first/last tile exposure and descriptor issue).
DMA_EXPOSED_FRACTION = 0.08

#: Athread spawn/join overhead per kernel invocation [s] — one region
#: per kernel instead of one per loop nest.
SPAWN_OVERHEAD = 6.0e-6

#: Shuffle-based 4x4 transposition: 8 shuffles per 16 points -> 0.5
#: vector instructions per point, plus the XOR-phase register hops.
TRANSPOSE_CYCLES_PER_POINT = 1.2


class AthreadBackend(Backend):
    """64 CPEs with explicit DMA, regcomm, and manual vectorization.

    ``healthy_cpes`` enables graceful degradation: a cluster with k < 64
    surviving CPEs re-tiles each kernel's work evenly over the
    survivors, so compute-bound kernels slow down by 64/k while the
    memory-bound roofline term is unchanged (the shared channel does not
    care which cores drive it).  The report carries the degradation
    factor so perf models can attribute the slowdown.
    """

    name = "athread"

    def __init__(self, spec=None, healthy_cpes: int | None = None) -> None:
        from ..sunway.spec import DEFAULT_SPEC

        self.spec = spec or DEFAULT_SPEC
        if healthy_cpes is None:
            healthy_cpes = self.spec.cpes_per_cg
        if not (1 <= healthy_cpes <= self.spec.cpes_per_cg):
            raise ResilienceError(
                f"healthy_cpes must be in 1..{self.spec.cpes_per_cg}, "
                f"got {healthy_cpes}"
            )
        self.healthy_cpes = healthy_cpes

    @property
    def degradation(self) -> float:
        """Compute slowdown factor from failed CPEs (1.0 = healthy)."""
        return self.spec.cpes_per_cg / self.healthy_cpes

    def execute(self, wl: KernelWorkload) -> KernelReport:
        spec = self.spec
        if wl.ldm_tile_bytes > spec.ldm_bytes:
            raise LDMOverflowError(wl.ldm_tile_bytes, spec.ldm_bytes, wl.name)

        cluster_peak = spec.cg_peak_flops / self.degradation
        # The layer decomposition + regcomm scan parallelize the former
        # serial fraction; its cost appears as explicit scan hops below.
        compute = wl.flops / (cluster_peak * wl.vec_athread)

        # Memory: compulsory traffic only, at DMA efficiency; double
        # buffering hides it behind compute except for the exposed tail.
        stream = wl.unique_bytes / (
            spec.cg_memory_bandwidth * spec.dma_peak_efficiency
        )
        memory = stream  # roofline term
        exposed = stream * DMA_EXPOSED_FRACTION

        # Register-communication scan: per scan, 7 sequential hops down
        # the CPE column (Figure 2 stage 2); columns run in parallel.
        scan_cycles = wl.scan_levels * (spec.cpe_rows - 1) * spec.regcomm_latency_cycles
        scan = scan_cycles / spec.clock_hz

        # Shuffle transposition where the kernel switches axes.
        transpose = (
            wl.transpose_points * TRANSPOSE_CYCLES_PER_POINT / spec.clock_hz / spec.cpes_per_cg
        )

        overhead = SPAWN_OVERHEAD + scan + transpose + exposed
        seconds = max(compute, memory) + overhead
        return self._trace_report(KernelReport(
            name=wl.name,
            backend=self.name,
            seconds=seconds,
            flops=wl.flops,
            bytes_moved=wl.unique_bytes,
            compute_seconds=compute,
            memory_seconds=memory,
            overhead_seconds=overhead,
            notes={
                "bound": "compute" if compute >= memory else "memory",
                "scan_seconds": scan,
                "transpose_seconds": transpose,
                "ldm_tile_bytes": wl.ldm_tile_bytes,
                "healthy_cpes": self.healthy_cpes,
                "degradation": self.degradation,
            },
        ))
