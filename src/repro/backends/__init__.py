"""Execution backends: Intel / MPE / OpenACC / Athread.

The paper's contribution is not new numerics but new *executions* of
the same numerics.  Each backend here executes a kernel's workload
description against its hardware cost model, producing the simulated
timings that regenerate Table 1 and Figure 5:

- :mod:`~repro.backends.intel` — one Xeon E5-2680v3 core (the paper's
  reference);
- :mod:`~repro.backends.mpe` — the management core alone (the naive
  port: 2--10x slower than the Intel core);
- :mod:`~repro.backends.openacc` — the directive refactoring: 64 CPEs,
  but per-loop-nest copyin/copyout (re-read factors), compiler-limited
  vectorization, launch overheads, and Amdahl serialization on the
  vertically-dependent kernels;
- :mod:`~repro.backends.athread` — the fine-grained redesign: LDM-
  resident reuse, double-buffered DMA, manual vectorization, the
  register-communication scan and the shuffle transposition.

:mod:`~repro.backends.workloads` derives each Table-1 kernel's flop
and byte counts from the model configuration;
:mod:`~repro.backends.scan` and :mod:`~repro.backends.transpose` are
the functional implementations of the two Sunway-specific schemes
(Sections 7.4 and 7.5).

:mod:`~repro.backends.functional_exec` is the *functional* execution
dispatch: :func:`~repro.backends.functional_exec.homme_execution`
selects the element-batched or per-element-looped implementation of
every dycore kernel (the repo-level analogue of the Athread-vs-OpenACC
dispatch-granularity choice), and
:func:`~repro.backends.functional_exec.cross_validate_paths` asserts
the two agree to 1e-12 on the same inputs.
"""

from .base import KernelWorkload, KernelReport, Backend
from .workloads import table1_workloads, workload_for
from .intel import IntelBackend
from .mpe import MPEBackend
from .openacc import OpenACCBackend
from .athread import AthreadBackend

ALL_BACKENDS = {
    "intel": IntelBackend,
    "mpe": MPEBackend,
    "openacc": OpenACCBackend,
    "athread": AthreadBackend,
}

__all__ = [
    "KernelWorkload",
    "KernelReport",
    "Backend",
    "table1_workloads",
    "workload_for",
    "IntelBackend",
    "MPEBackend",
    "OpenACCBackend",
    "AthreadBackend",
    "ALL_BACKENDS",
]
