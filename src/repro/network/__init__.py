"""TaihuLight interconnect model and simulated MPI.

The machine's two-level network (paper Section 5.1) — 256-node
supernodes fully connected through a customized network board, with
central switches above — is modeled by :mod:`~repro.network.topology`.
Message costs follow an alpha-beta model with distinct intra/inter-
supernode parameters (:mod:`~repro.network.costmodel`).  On top sits
:class:`~repro.network.simmpi.SimMPI`, a rank-based message-passing
simulator with non-blocking sends/receives whose completion times allow
the computation/communication overlap the redesigned
``bndry_exchangev`` exploits.
"""

from .topology import TaihuLightTopology
from .costmodel import NetworkCostModel
from .simmpi import SimMPI, SimRequest

__all__ = ["TaihuLightTopology", "NetworkCostModel", "SimMPI", "SimRequest"]
