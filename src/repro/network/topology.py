"""The two-level TaihuLight network topology.

40,960 nodes are organized into supernodes of 256 nodes each; nodes in a
supernode are fully connected through a customized network board, while
traffic between supernodes traverses central switches (paper Section
5.1).  For process placement, consecutive MPI ranks map to consecutive
CGs, four per node, filling supernodes in order — the standard TaihuLight
job-launch layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants as C
from ..errors import TopologyError


@dataclass(frozen=True)
class TaihuLightTopology:
    """Node/supernode layout and rank placement.

    Parameters
    ----------
    nodes:
        Total nodes in the allocation (up to 40,960 for the full machine).
    nodes_per_supernode:
        256 on the real machine.
    ranks_per_node:
        4 (one rank per core group) in all of the paper's experiments.
    """

    nodes: int = C.TAIHULIGHT_NODES
    nodes_per_supernode: int = C.TAIHULIGHT_NODES_PER_SUPERNODE
    ranks_per_node: int = C.SW_CORE_GROUPS

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise TopologyError(f"nodes must be >= 1, got {self.nodes}")
        if self.nodes_per_supernode < 1:
            raise TopologyError("nodes_per_supernode must be >= 1")
        if self.ranks_per_node < 1:
            raise TopologyError("ranks_per_node must be >= 1")

    @property
    def max_ranks(self) -> int:
        """Ranks the allocation can host."""
        return self.nodes * self.ranks_per_node

    @property
    def supernodes(self) -> int:
        """Supernodes spanned by the allocation (ceiling).

        Allocations need not fill supernodes: when ``nodes`` is not a
        multiple of ``nodes_per_supernode`` the last supernode is
        partial.  Membership is still pure integer division, so
        ``same_supernode``/``hops`` stay correct across the partial
        boundary; :meth:`nodes_in_supernode` exposes the ragged size.
        """
        return -(-self.nodes // self.nodes_per_supernode)

    def nodes_in_supernode(self, supernode: int) -> int:
        """Nodes hosted by ``supernode`` (the last one may be partial)."""
        if not (0 <= supernode < self.supernodes):
            raise TopologyError(
                f"supernode {supernode} outside 0..{self.supernodes - 1}"
            )
        return min(
            self.nodes_per_supernode,
            self.nodes - supernode * self.nodes_per_supernode,
        )

    def supernode_of_node(self, node: int) -> int:
        """The supernode hosting ``node``."""
        if not (0 <= node < self.nodes):
            raise TopologyError(f"node {node} outside 0..{self.nodes - 1}")
        return node // self.nodes_per_supernode

    def node_of_rank(self, rank: int) -> int:
        """The node hosting ``rank`` (consecutive placement)."""
        if not (0 <= rank < self.max_ranks):
            raise TopologyError(f"rank {rank} outside 0..{self.max_ranks - 1}")
        return rank // self.ranks_per_node

    def supernode_of_rank(self, rank: int) -> int:
        """The supernode hosting ``rank``."""
        return self.node_of_rank(rank) // self.nodes_per_supernode

    def same_node(self, a: int, b: int) -> bool:
        """Whether two ranks share a node (shared-memory path)."""
        return self.node_of_rank(a) == self.node_of_rank(b)

    def same_supernode(self, a: int, b: int) -> bool:
        """Whether two ranks share a supernode (network-board path)."""
        return self.supernode_of_rank(a) == self.supernode_of_rank(b)

    def hops(self, a: int, b: int) -> int:
        """Abstract hop count: 0 on-node, 1 in-supernode, 2 via switch."""
        if self.same_node(a, b):
            return 0
        if self.same_supernode(a, b):
            return 1
        return 2

    def reduction_groups(
        self, nranks: int
    ) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
        """Combine-tree groups for ``nranks`` consecutively placed ranks.

        Returns ``(node_ranks, supernode_nodes)``: the ranks hosted on
        each occupied node and the occupied nodes in each occupied
        supernode.  Groups respect partial supernodes — the last group
        simply has fewer members — so a node-local / supernode /
        central-switch hierarchical combine can be built directly from
        them.
        """
        if not (1 <= nranks <= self.max_ranks):
            raise TopologyError(
                f"nranks {nranks} outside 1..{self.max_ranks}"
            )
        node_ranks: dict[int, list[int]] = {}
        for rank in range(nranks):
            node_ranks.setdefault(self.node_of_rank(rank), []).append(rank)
        supernode_nodes: dict[int, list[int]] = {}
        for node in node_ranks:
            supernode_nodes.setdefault(self.supernode_of_node(node), []).append(node)
        return node_ranks, supernode_nodes
