"""Alpha-beta message cost model for the TaihuLight interconnect.

The time to deliver an ``n``-byte point-to-point message between ranks
``a`` and ``b`` is::

    t = alpha(hops) + n / (beta * share(hops))

where alpha is the latency for the path class (on-node memcpy,
in-supernode network board, cross-supernode central switch) and beta the
node injection bandwidth, derated across the switch.  Collectives follow
the standard log-tree forms.  These are the terms that make the Figure
7/8 scaling curves bend: halo messages shrink with strong scaling until
alpha dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from .. import constants as C
from .topology import TaihuLightTopology


@dataclass(frozen=True)
class NetworkCostModel:
    """Latency/bandwidth parameters plus the topology they apply to."""

    topology: TaihuLightTopology
    latency_on_node: float = 0.4e-6
    latency_intra_supernode: float = C.NET_LATENCY_INTRA_SUPERNODE
    latency_inter_supernode: float = C.NET_LATENCY_INTER_SUPERNODE
    node_bandwidth: float = C.NET_NODE_BANDWIDTH
    inter_supernode_bw_factor: float = C.NET_INTER_SUPERNODE_BW_FACTOR
    #: On-node transfers move at memory speed, not NIC speed.
    on_node_bandwidth: float = C.SW_MEMORY_BANDWIDTH / 4

    def alpha(self, hops: int) -> float:
        """Path latency [s] for a hop class from :meth:`TaihuLightTopology.hops`."""
        if hops == 0:
            return self.latency_on_node
        if hops == 1:
            return self.latency_intra_supernode
        return self.latency_inter_supernode

    def beta(self, hops: int) -> float:
        """Path bandwidth [bytes/s]."""
        if hops == 0:
            return self.on_node_bandwidth
        if hops == 1:
            return self.node_bandwidth
        return self.node_bandwidth * self.inter_supernode_bw_factor

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """Point-to-point message time [s]."""
        if nbytes < 0:
            raise ValueError(f"message size cannot be negative: {nbytes}")
        hops = self.topology.hops(src, dst)
        return self.alpha(hops) + nbytes / self.beta(hops)

    def p2p_time_by_hops(self, hops: int, nbytes: int) -> float:
        """p2p time for a known hop class (perf-model fast path)."""
        return self.alpha(hops) + nbytes / self.beta(hops)

    def allreduce_time(self, nranks: int, nbytes: int) -> float:
        """Recursive-doubling allreduce estimate [s].

        log2(p) rounds; each round a p2p of ``nbytes``.  Beyond a
        supernode the rounds pay switch latency — modeled by using the
        worst path class once more than half the rounds leave the
        supernode.
        """
        if nranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        ranks_per_sn = self.topology.nodes_per_supernode * self.topology.ranks_per_node
        local_rounds = min(rounds, max(0, math.ceil(math.log2(min(nranks, ranks_per_sn)))))
        remote_rounds = rounds - local_rounds
        t = local_rounds * self.p2p_time_by_hops(1, nbytes)
        t += remote_rounds * self.p2p_time_by_hops(2, nbytes)
        return t

    def barrier_time(self, nranks: int) -> float:
        """Barrier = zero-byte allreduce."""
        return self.allreduce_time(nranks, 0)

    def suggested_timeout(self, nbytes: int = 1 << 20) -> float:
        """A safe receiver timeout for the retransmission protocol [s].

        Several times the worst-path delivery time of a generously sized
        message, so a healthy-but-slow delivery is never mistaken for a
        loss (a spurious retransmit), while a genuinely lost message is
        detected within a handful of worst-case latencies.
        """
        return 4.0 * self.p2p_time_by_hops(2, nbytes)
