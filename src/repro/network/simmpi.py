"""SimMPI: a single-process, simulated-time MPI for the reproduction.

Every rank has its own :class:`~repro.utils.timing.SimClock`.  Messages
really carry numpy payloads between ranks (the dycore's halo exchange is
functional), and each message is stamped with an *arrival time* computed
from the sender's clock plus the :class:`NetworkCostModel` transfer time.
A receiver that waits on a message advances its clock to
``max(receiver_now, arrival)`` — which is exactly what permits
computation/communication overlap: compute charged between ``isend`` and
``wait`` hides transfer time, reproducing the redesigned
``bndry_exchangev`` behaviour (paper Section 7.6).

Because all ranks execute inside one Python process, drivers iterate
ranks in phases (all sends posted, then receives completed) — the natural
structure of a halo exchange.  ``wait`` on a receive whose matching send
has not been posted raises :class:`SimMPIError`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import SimMPIError
from ..utils.timing import SimClock
from .costmodel import NetworkCostModel
from .topology import TaihuLightTopology


@dataclass
class SimRequest:
    """Handle for a non-blocking operation."""

    kind: str                    # "send" | "recv"
    rank: int                    # owning rank
    peer: int
    tag: int
    completion_time: float | None = None
    payload: np.ndarray | None = None
    done: bool = False


@dataclass
class _Message:
    src: int
    dst: int
    tag: int
    payload: np.ndarray
    arrival: float


class SimMPI:
    """A simulated communicator over ``nranks`` ranks."""

    def __init__(
        self,
        nranks: int,
        cost: NetworkCostModel | None = None,
    ) -> None:
        if nranks < 1:
            raise SimMPIError(f"nranks must be >= 1, got {nranks}")
        if cost is None:
            nodes = max(1, -(-nranks // 4))
            cost = NetworkCostModel(TaihuLightTopology(nodes=nodes))
        if nranks > cost.topology.max_ranks:
            raise SimMPIError(
                f"{nranks} ranks exceed topology capacity {cost.topology.max_ranks}"
            )
        self.nranks = nranks
        self.cost = cost
        self._clocks = [SimClock() for _ in range(nranks)]
        self._mailbox: dict[tuple[int, int, int], deque[_Message]] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.comm_seconds = [0.0] * nranks  # time visibly spent waiting

    # -- clocks ------------------------------------------------------------

    def clock(self, rank: int) -> SimClock:
        """The simulated clock of ``rank``."""
        self._check_rank(rank)
        return self._clocks[rank]

    def now(self, rank: int) -> float:
        """Current simulated time at ``rank``."""
        return self.clock(rank).now

    def compute(self, rank: int, seconds: float) -> None:
        """Charge ``seconds`` of computation to ``rank``'s clock."""
        self.clock(rank).advance(seconds)

    def max_time(self) -> float:
        """Simulated completion time of the whole job (slowest rank)."""
        return max(c.now for c in self._clocks)

    # -- point to point -------------------------------------------------------

    def isend(self, src: int, dst: int, payload: np.ndarray, tag: int = 0) -> SimRequest:
        """Post a non-blocking send.  The payload is copied at post time.

        The send itself is near-free on the sender (the MPE drives the
        NIC); transfer time is charged to the message's arrival stamp.
        """
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.asarray(payload)
        t_send = self._clocks[src].now
        transfer = self.cost.p2p_time(src, dst, payload.nbytes)
        msg = _Message(src, dst, tag, payload.copy(), t_send + transfer)
        self._mailbox.setdefault((src, dst, tag), deque()).append(msg)
        self.messages_sent += 1
        self.bytes_sent += payload.nbytes
        return SimRequest("send", src, dst, tag, completion_time=t_send, done=True)

    def irecv(self, dst: int, src: int, tag: int = 0) -> SimRequest:
        """Post a non-blocking receive (completion resolved at wait)."""
        self._check_rank(src)
        self._check_rank(dst)
        return SimRequest("recv", dst, src, tag)

    def wait(self, req: SimRequest) -> np.ndarray | None:
        """Complete a request, advancing the owner's clock as needed."""
        if req.done and req.kind == "recv":
            raise SimMPIError("wait called twice on the same receive request")
        if req.kind == "send":
            return None
        key = (req.peer, req.rank, req.tag)
        q = self._mailbox.get(key)
        if not q:
            raise SimMPIError(
                f"rank {req.rank} waits on message from {req.peer} tag {req.tag}, "
                "but no matching send was posted"
            )
        msg = q.popleft()
        clock = self._clocks[req.rank]
        waited = max(0.0, msg.arrival - clock.now)
        self.comm_seconds[req.rank] += waited
        clock.advance_to(msg.arrival)
        req.done = True
        req.completion_time = clock.now
        req.payload = msg.payload
        return msg.payload

    def waitall(self, reqs: list[SimRequest]) -> list[np.ndarray | None]:
        """Complete a list of requests in order."""
        return [self.wait(r) for r in reqs]

    # -- collectives ---------------------------------------------------------------

    def allreduce(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Sum-allreduce over all ranks.

        ``contributions[r]`` is rank r's array.  All clocks advance to the
        same completion time: the slowest participant plus the modeled
        collective time.
        """
        if len(contributions) != self.nranks:
            raise SimMPIError(
                f"allreduce needs one contribution per rank "
                f"({self.nranks}), got {len(contributions)}"
            )
        arrays = [np.asarray(c, dtype=np.float64) for c in contributions]
        shape = arrays[0].shape
        for a in arrays[1:]:
            if a.shape != shape:
                raise SimMPIError("allreduce contributions must share a shape")
        total = np.sum(arrays, axis=0)
        start = max(c.now for c in self._clocks)
        t = start + self.cost.allreduce_time(self.nranks, total.nbytes)
        for r, c in enumerate(self._clocks):
            self.comm_seconds[r] += max(0.0, t - c.now)
            c.advance_to(t)
        return total

    def barrier(self) -> float:
        """Synchronize all clocks; returns the post-barrier time."""
        start = max(c.now for c in self._clocks)
        t = start + self.cost.barrier_time(self.nranks)
        for r, c in enumerate(self._clocks):
            self.comm_seconds[r] += max(0.0, t - c.now)
            c.advance_to(t)
        return t

    # -- internals ---------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise SimMPIError(f"rank {rank} outside 0..{self.nranks - 1}")

    def pending_messages(self) -> int:
        """Messages posted but not yet received (should be 0 after a step)."""
        return sum(len(q) for q in self._mailbox.values())
