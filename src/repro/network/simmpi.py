"""SimMPI: a single-process, simulated-time MPI for the reproduction.

Every rank has its own :class:`~repro.utils.timing.SimClock`.  Messages
really carry numpy payloads between ranks (the dycore's halo exchange is
functional), and each message is stamped with an *arrival time* computed
from the sender's clock plus the :class:`NetworkCostModel` transfer time.
A receiver that waits on a message advances its clock to
``max(receiver_now, arrival)`` — which is exactly what permits
computation/communication overlap: compute charged between ``isend`` and
``wait`` hides transfer time, reproducing the redesigned
``bndry_exchangev`` behaviour (paper Section 7.6).

Because all ranks execute inside one Python process, drivers iterate
ranks in phases (all sends posted, then receives completed) — the natural
structure of a halo exchange.  ``wait`` on a receive whose matching send
has not been posted raises :class:`SimMPIError`.

**Fault model.**  A :class:`~repro.resilience.faults.FaultInjector` can
drop or delay messages and slow individual ranks down.  Because
``isend`` copies the payload at post time, the sender always holds a
retransmittable copy: when a receiver waits on a dropped message it
waits out a (simulated-time) timeout window, the sender re-posts the
copy with a fresh arrival stamp, and the window doubles on every retry —
a retransmit-with-exponential-backoff protocol.  Only after
``max_retries`` failed retransmissions does ``wait`` surface
:class:`SimMPITimeoutError`.  All of it is deterministic under the
injector's seed.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SimMPIError, SimMPITimeoutError
from ..obs.tracer import NULL_TRACER
from ..utils.timing import SimClock
from .costmodel import NetworkCostModel
from .topology import TaihuLightTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..obs.tracer import NullTracer
    from ..resilience.faults import FaultInjector


def rank_track(rank: int) -> str:
    """Canonical trace-track name for a simulated rank."""
    return f"rank{rank}"


@dataclass
class SimRequest:
    """Handle for a non-blocking operation."""

    kind: str                    # "send" | "recv"
    rank: int                    # owning rank
    peer: int
    tag: int
    completion_time: float | None = None
    payload: np.ndarray | None = None
    done: bool = False
    comm: "SimMPI | None" = None  # owning communicator


@dataclass
class _Message:
    src: int
    dst: int
    tag: int
    payload: np.ndarray
    arrival: float


class SimMPI:
    """A simulated communicator over ``nranks`` ranks.

    Parameters
    ----------
    nranks:
        Communicator size.
    cost:
        Network cost model; a TaihuLight-shaped default is built when
        omitted.
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`.  When
        set, posted messages may be dropped or delayed and ``compute``
        honours per-rank laggard factors.
    timeout:
        Simulated seconds a receiver waits before assuming its message
        was lost and triggering a retransmission.  Defaults to
        :meth:`NetworkCostModel.suggested_timeout`.
    max_retries:
        Retransmissions attempted before ``wait`` raises
        :class:`SimMPITimeoutError`.
    backoff:
        Multiplier applied to the timeout window after each failed
        retransmission (exponential backoff).
    tracer:
        Observability tracer (:mod:`repro.obs`).  The default
        :data:`~repro.obs.tracer.NULL_TRACER` records nothing; a real
        :class:`~repro.obs.Tracer` gets per-rank send instants, receive
        wait spans, collective spans, and retransmission events — all
        stamped in simulated time, never perturbing the clocks.
    allreduce_algorithm:
        Default clock-charging model for :meth:`allreduce`: ``"flat"``
        (recursive-doubling estimate, all clocks synchronized) or
        ``"hierarchical"`` (node → supernode → central-switch combine
        tree with hop-weighted per-level costs).  Reduced values are
        bitwise identical either way.
    """

    def __init__(
        self,
        nranks: int,
        cost: NetworkCostModel | None = None,
        faults: "FaultInjector | None" = None,
        timeout: float | None = None,
        max_retries: int = 3,
        backoff: float = 2.0,
        tracer: "NullTracer | None" = None,
        allreduce_algorithm: str = "flat",
    ) -> None:
        if nranks < 1:
            raise SimMPIError(f"nranks must be >= 1, got {nranks}")
        if allreduce_algorithm not in ("flat", "hierarchical"):
            raise SimMPIError(
                f"unknown allreduce algorithm {allreduce_algorithm!r} "
                "(expected 'flat' or 'hierarchical')"
            )
        if cost is None:
            nodes = max(1, -(-nranks // 4))
            cost = NetworkCostModel(TaihuLightTopology(nodes=nodes))
        if nranks > cost.topology.max_ranks:
            raise SimMPIError(
                f"{nranks} ranks exceed topology capacity {cost.topology.max_ranks}"
            )
        if max_retries < 0:
            raise SimMPIError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 1.0:
            raise SimMPIError(f"backoff must be >= 1, got {backoff}")
        self.nranks = nranks
        self.cost = cost
        self.faults = faults
        self.timeout = cost.suggested_timeout() if timeout is None else float(timeout)
        self.max_retries = max_retries
        self.backoff = backoff
        self.allreduce_algorithm = allreduce_algorithm
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._clocks = [SimClock() for _ in range(nranks)]
        self._mailbox: dict[tuple[int, int, int], deque[_Message]] = {}
        #: Dropped messages awaiting retransmission (sender-side copies).
        self._lost: dict[tuple[int, int, int], deque[_Message]] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.retransmissions = 0
        self.hierarchical_allreduces = 0
        self.comm_seconds = [0.0] * nranks  # time visibly spent waiting
        self._finalized = False

    # -- clocks ------------------------------------------------------------

    def clock(self, rank: int) -> SimClock:
        """The simulated clock of ``rank``."""
        self._check_rank(rank)
        return self._clocks[rank]

    def now(self, rank: int) -> float:
        """Current simulated time at ``rank``."""
        return self.clock(rank).now

    def compute(self, rank: int, seconds: float) -> None:
        """Charge ``seconds`` of computation to ``rank``'s clock.

        A laggard rank (fault injector ``laggards``) pays a multiple of
        the nominal time — the whole-job effect is visible in
        :meth:`max_time` because every peer ends up waiting for it.
        """
        if self.faults is not None:
            seconds *= self.faults.compute_factor(rank)
        self.clock(rank).advance(seconds)

    def max_time(self) -> float:
        """Simulated completion time of the whole job (slowest rank)."""
        return max(c.now for c in self._clocks)

    # -- point to point -------------------------------------------------------

    def isend(self, src: int, dst: int, payload: np.ndarray, tag: int = 0) -> SimRequest:
        """Post a non-blocking send.  The payload is copied at post time.

        The send itself is near-free on the sender (the MPE drives the
        NIC); transfer time is charged to the message's arrival stamp.
        The copy doubles as the retransmission buffer when the fault
        injector drops the message in flight.
        """
        self._check_rank(src)
        self._check_rank(dst)
        payload = np.asarray(payload)
        t_send = self._clocks[src].now
        transfer = self.cost.p2p_time(src, dst, payload.nbytes)
        msg = _Message(src, dst, tag, payload.copy(), t_send + transfer)
        fate, extra = ("deliver", 0.0)
        if self.faults is not None:
            fate, extra = self.faults.on_send(src, dst, tag, payload.nbytes)
        if fate == "drop":
            self._lost.setdefault((src, dst, tag), deque()).append(msg)
            self.messages_dropped += 1
        else:
            if fate == "delay":
                msg.arrival += extra
                self.messages_delayed += 1
            self._mailbox.setdefault((src, dst, tag), deque()).append(msg)
        self.messages_sent += 1
        self.bytes_sent += payload.nbytes
        if self.tracer.enabled:
            self.tracer.instant(
                rank_track(src), "mpi.isend", t_send, cat="mpi",
                dst=dst, tag=tag, nbytes=payload.nbytes, fate=fate,
            )
        return SimRequest(
            "send", src, dst, tag,
            completion_time=t_send, payload=msg.payload, done=True, comm=self,
        )

    def irecv(self, dst: int, src: int, tag: int = 0) -> SimRequest:
        """Post a non-blocking receive (completion resolved at wait)."""
        self._check_rank(src)
        self._check_rank(dst)
        return SimRequest("recv", dst, src, tag, comm=self)

    def wait(self, req: SimRequest) -> np.ndarray | None:
        """Complete a request, advancing the owner's clock as needed.

        Waiting any *completed* request again is an idempotent no-op
        (matching MPI_Wait on an inactive request, and what
        :meth:`waitall`'s contract already promised): a completed send
        returns ``None``, a completed receive returns the payload it
        already delivered — without touching the mailbox, the owner's
        clock, or ``comm_seconds`` again.  Waiting a request owned by a
        different communicator is always a protocol error.
        """
        if req.comm is not None and req.comm is not self:
            raise SimMPIError(
                "wait called on a request owned by another communicator"
            )
        if req.kind == "send":
            # Sends complete at post time; repeated waits are no-ops.
            return None
        if req.done:
            # Previously this re-entered the mailbox pop: a duplicated
            # request in a waitall list could re-deliver another
            # request's message (or die on an empty queue) and charge
            # comm_seconds twice.
            return req.payload
        key = (req.peer, req.rank, req.tag)
        q = self._mailbox.get(key)
        if q:
            msg = q.popleft()
        else:
            lost = self._lost.get(key)
            if not lost:
                raise SimMPIError(
                    f"rank {req.rank} waits on message from {req.peer} tag {req.tag}, "
                    "but no matching send was posted"
                )
            msg = self._recover(key, lost.popleft())
        clock = self._clocks[req.rank]
        t_wait = clock.now
        waited = max(0.0, msg.arrival - clock.now)
        self.comm_seconds[req.rank] += waited
        clock.advance_to(msg.arrival)
        req.done = True
        req.completion_time = clock.now
        req.payload = msg.payload
        if self.tracer.enabled:
            self.tracer.span_at(
                rank_track(req.rank), "mpi.wait", t_wait, clock.now, cat="mpi",
                src=req.peer, tag=req.tag, nbytes=msg.payload.nbytes,
                waited=waited,
            )
        return msg.payload

    def _recover(self, key: tuple[int, int, int], msg: _Message) -> _Message:
        """Retransmit a dropped message until it arrives or the retry
        budget runs out.

        The receiver first waits out ``timeout`` simulated seconds (the
        window in which the original would have arrived); each failed
        retransmission widens the window by ``backoff``.  A successful
        retransmission is a mailbox re-post of the sender's copy with a
        fresh arrival stamp: re-post time plus the transfer time.
        """
        src, dst, _tag = key
        clock = self._clocks[dst]
        t = clock.now
        transfer = self.cost.p2p_time(src, dst, msg.payload.nbytes)
        window = self.timeout
        for attempt in range(1, self.max_retries + 1):
            t += window  # receiver rides out the timeout window
            window *= self.backoff
            self.retransmissions += 1
            delivered = True
            if self.faults is not None:
                delivered = self.faults.on_retransmit(src, dst, msg.tag, attempt)
            if self.tracer.enabled:
                self.tracer.instant(
                    rank_track(dst), "mpi.retransmit", t, cat="fault",
                    src=src, tag=msg.tag, attempt=attempt, delivered=delivered,
                )
            if delivered:
                msg.arrival = t + transfer
                return msg
        self.comm_seconds[dst] += max(0.0, t - clock.now)
        clock.advance_to(t)
        raise SimMPITimeoutError(
            f"rank {dst} gave up on message from {src} tag {msg.tag} "
            f"after {self.max_retries} retransmissions"
        )

    def waitall(self, reqs: list[SimRequest]) -> list[np.ndarray | None]:
        """Complete a list of requests in order.

        Requests appearing more than once complete exactly once: the
        duplicates are idempotent no-ops (receives re-return the payload
        already delivered; sends return ``None``) and never consume
        another request's message or charge ``comm_seconds`` twice.
        """
        return [self.wait(r) for r in reqs]

    # -- collectives ---------------------------------------------------------------

    def allreduce(
        self, contributions: list[np.ndarray], algorithm: str | None = None
    ) -> np.ndarray:
        """Sum-allreduce over all ranks.

        ``contributions[r]`` is rank r's array.  The reduced *values* are
        identical under every algorithm — always ``np.sum`` over the
        contributions in rank order, so trajectories stay bitwise
        reproducible — only the *clock charging* differs:

        - ``"flat"`` (default): every clock advances to the slowest
          participant plus the recursive-doubling estimate from
          :meth:`NetworkCostModel.allreduce_time`.
        - ``"hierarchical"``: a topology-aware combine tree — node-local
          reduce at memory speed, supernode reduce over the network
          board, central-switch reduce across supernodes, then the
          mirror-image broadcast — with each level's hop class charged
          via :meth:`NetworkCostModel.p2p_time_by_hops`.  Ranks finish
          at times that depend on their group sizes, so partial nodes
          and supernodes are visible in the per-rank clocks.

        ``algorithm`` overrides the communicator-level default for one
        call.
        """
        if len(contributions) != self.nranks:
            raise SimMPIError(
                f"allreduce needs one contribution per rank "
                f"({self.nranks}), got {len(contributions)}"
            )
        arrays = [np.asarray(c, dtype=np.float64) for c in contributions]
        shape = arrays[0].shape
        for a in arrays[1:]:
            if a.shape != shape:
                raise SimMPIError("allreduce contributions must share a shape")
        alg = self.allreduce_algorithm if algorithm is None else algorithm
        if alg not in ("flat", "hierarchical"):
            raise SimMPIError(
                f"unknown allreduce algorithm {alg!r} "
                "(expected 'flat' or 'hierarchical')"
            )
        total = np.sum(arrays, axis=0)
        if alg == "hierarchical" and self.nranks > 1:
            self._charge_hierarchical_allreduce(total.nbytes)
        else:
            start = max(c.now for c in self._clocks)
            t = start + self.cost.allreduce_time(self.nranks, total.nbytes)
            for r, c in enumerate(self._clocks):
                if self.tracer.enabled:
                    self.tracer.span_at(
                        rank_track(r), "mpi.allreduce", c.now, t, cat="mpi",
                        nbytes=total.nbytes, algorithm="flat",
                    )
                self.comm_seconds[r] += max(0.0, t - c.now)
                c.advance_to(t)
        return total

    def _charge_hierarchical_allreduce(self, nbytes: int) -> None:
        """Advance the clocks along the three-level combine tree.

        Reduce phase: each node's ranks log-tree into a node leader over
        hop class 0; node leaders log-tree into a supernode leader over
        hop class 1; supernode leaders log-tree through the central
        switch over hop class 2.  The broadcast back retraces the same
        tree, so a rank's completion time is the root time plus the
        down-tree latency of *its own* (possibly partial) groups.
        """
        topo = self.cost.topology
        node_ranks, sn_nodes = topo.reduction_groups(self.nranks)
        c_hop = [self.cost.p2p_time_by_hops(h, nbytes) for h in (0, 1, 2)]

        def tree(n: int, per_round: float) -> float:
            return math.ceil(math.log2(n)) * per_round if n > 1 else 0.0

        t_node = {
            node: max(self._clocks[r].now for r in ranks) + tree(len(ranks), c_hop[0])
            for node, ranks in node_ranks.items()
        }
        t_sn = {
            sn: max(t_node[n] for n in nodes) + tree(len(nodes), c_hop[1])
            for sn, nodes in sn_nodes.items()
        }
        t_root = max(t_sn.values()) + tree(len(t_sn), c_hop[2])
        down_sn = tree(len(t_sn), c_hop[2])
        self.hierarchical_allreduces += 1
        for r in range(self.nranks):
            node = topo.node_of_rank(r)
            sn = topo.supernode_of_node(node)
            t_done = (
                t_root
                + down_sn
                + tree(len(sn_nodes[sn]), c_hop[1])
                + tree(len(node_ranks[node]), c_hop[0])
            )
            c = self._clocks[r]
            if self.tracer.enabled:
                self.tracer.span_at(
                    rank_track(r), "mpi.allreduce", c.now, t_done, cat="mpi",
                    nbytes=nbytes, algorithm="hierarchical",
                    node=node, supernode=sn,
                )
            self.comm_seconds[r] += max(0.0, t_done - c.now)
            c.advance_to(t_done)

    def barrier(self) -> float:
        """Synchronize all clocks; returns the post-barrier time."""
        start = max(c.now for c in self._clocks)
        t = start + self.cost.barrier_time(self.nranks)
        for r, c in enumerate(self._clocks):
            if self.tracer.enabled:
                self.tracer.span_at(
                    rank_track(r), "mpi.barrier", c.now, t, cat="mpi",
                )
            self.comm_seconds[r] += max(0.0, t - c.now)
            c.advance_to(t)
        return t

    # -- lifecycle ---------------------------------------------------------------

    def finalize(self) -> None:
        """Close the communicator, verifying the mailbox drained.

        A message posted but never received — typically a mismatched
        tag — would otherwise sit in the mailbox forever and corrupt a
        later exchange that reuses the tag.  Raises
        :class:`SimMPIError` naming the leaked (src, dst, tag) triples.
        """
        self._finalized = True
        leaked = {
            key: len(q) for key, q in self._mailbox.items() if q
        }
        leaked.update({key: len(q) for key, q in self._lost.items() if q})
        if leaked:
            desc = ", ".join(
                f"src={k[0]} dst={k[1]} tag={k[2]} x{n}" for k, n in sorted(leaked.items())
            )
            raise SimMPIError(
                f"finalize with {sum(leaked.values())} undelivered message(s): {desc}"
            )

    # -- internals ---------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise SimMPIError(f"rank {rank} outside 0..{self.nranks - 1}")

    def pending_messages(self) -> int:
        """Messages posted but not yet received (should be 0 after a step)."""
        return sum(len(q) for q in self._mailbox.values()) + sum(
            len(q) for q in self._lost.values()
        )

    def purge_pending(self) -> int:
        """Discard every undelivered message; returns how many.

        For rollback/restart paths: after a mid-step abort (e.g. a
        :class:`SimMPITimeoutError` surfaced to a resilience runner) the
        mailbox may still hold messages from the aborted exchange.
        Restoring a checkpoint must drop them, or a replayed exchange
        could match a stale retransmit against a reused tag.
        """
        n = self.pending_messages()
        self._mailbox.clear()
        self._lost.clear()
        return n
