"""Rank-distributed integrations over SimMPI (shallow water and the
full primitive equations).

The end-to-end demonstration of the communication redesign: the same
RK3 shallow-water step as :class:`~repro.homme.shallow_water.ShallowWaterModel`,
but with the mesh partitioned across simulated MPI ranks and every DSS
performed by :class:`~repro.homme.bndry.HaloExchanger` — pack, send,
(overlap), receive, unpack.  Scalar fields exchange directly; vectors
exchange in the frame-free Cartesian tangent representation (the same
device as :meth:`ElementGeometry.dss_vector`).

The distributed trajectory matches the serial model to roundoff, and
the per-rank clocks expose the overlap-vs-classic timing difference on
a real integration.
"""

from __future__ import annotations

import numpy as np

from .. import constants as C
from ..errors import KernelError
from ..mesh.cubed_sphere import CubedSphereMesh
from ..mesh.partition import SFCPartition
from ..network.simmpi import SimMPI, rank_track
from ..obs.tracer import NULL_TRACER
from ..parallel.dycore import (
    fresh_context_key,
    shard_context_key,
    prim_euler_stage1_task,
    prim_euler_stage2_task,
    prim_laplace_task,
    prim_laplace_wk_task,
    prim_limit_task,
    prim_stage_task,
    prim_vlaplace_task,
    sw_stage_task,
)
from ..parallel.engine import (
    SERIAL_ENGINE,
    ParallelEngine,
    register_context,
    unregister_context,
)
from .bndry import HaloExchanger, exchange_tag
from .element import ElementGeometry
from .shallow_water import SWState, williamson2_initial


def _make_engine(model, workers: int, validate: bool, label: str,
                 pipeline: bool = False, engine_kwargs: dict | None = None):
    """Shared ``workers=``/``pipeline=`` plumbing for the distributed models.

    Publishes **one context entry per rank shard** — rank ``r``'s
    :class:`ElementGeometry` under ``shard_context_key(base, r)`` — in
    the fork-inherited registry (warming the memoized tensor caches
    first, so workers inherit them copy-on-write), then starts the pool
    — or hands back the shared always-serial engine for ``workers <=
    1``.  Combined with the engine's shard-affinity dispatch, a worker
    only ever resolves (and therefore faults in) the shards pinned to
    its slot, instead of the whole replicated geometry list the old
    single-key layout handed every worker.  ``engine_kwargs`` passes
    straight through to :class:`~repro.parallel.engine.ParallelEngine`
    — the supervision, chaos, and integrity knobs of DESIGN.md §12.

    ``pipeline=True`` additionally registers the *split* per-rank
    geometries (slot ``2r`` = rank ``r``'s boundary elements, ``2r+1``
    = its inner elements; ``None`` for an empty subset), each under its
    own per-slot key so the pipelined fanout keeps the same one-shard-
    per-worker ownership.
    """
    model.workers = max(0, int(workers))
    model.validate = bool(validate)
    model.pipeline = bool(pipeline)
    warm_fused = getattr(model, "exec_path", "batched") == "fused"
    for g in model.geoms:
        g.tensors  # noqa: B018 - warm the cache before the pool forks
        if warm_fused:
            g.tensors.fused()
    base = fresh_context_key(label)
    model._ctx_key = base
    model._shard_keys = [
        register_context(shard_context_key(base, r), g)
        for r, g in enumerate(model.geoms)
    ]
    model._pipe_shard_keys = None
    if model.pipeline:
        pipe_base = fresh_context_key(label + "-pipe")
        pipe_keys: list[str] = []
        for r in range(model.nranks):
            els = model.part.rank_elements(r)
            for part_i, ix in enumerate((model.hx.local_boundary_idx[r],
                                         model.hx.local_inner_idx[r])):
                g = None
                if len(ix) > 0:
                    g = ElementGeometry(model.mesh, els[ix])
                    g.tensors  # noqa: B018 - warm before the fork
                    if warm_fused:
                        g.tensors.fused()
                pipe_keys.append(register_context(
                    shard_context_key(pipe_base, 2 * r + part_i), g
                ))
        model._pipe_shard_keys = pipe_keys
    if model.workers > 1:
        model.engine = ParallelEngine(
            workers=model.workers, validate=model.validate,
            tracer=model.tracer, label=label, **(engine_kwargs or {}),
        )
    else:
        model.engine = SERIAL_ENGINE


def charge_calibrated_compute(model, steps: int) -> None:
    """Charge calibrated per-element kernel time to every rank's clock.

    The distributed models' SimMPI clocks measure communication (halo
    exchange, pack/unpack memcpy, allreduce combines); per-element
    kernel compute is charged here from the calibrated
    :class:`~repro.perf.scaling.HommePerfModel`, so scaling studies
    built on ``max_rank_time()`` reflect a full step rather than comm
    alone.  The charge is additive (call it after ``run_steps``),
    exactly deterministic, and proportional to each rank's actual shard
    size — SFC load imbalance shows up in the slowest clock.
    """
    from ..perf.scaling import HommePerfModel

    perf = HommePerfModel(model.cfg.ne, model.nranks,
                          nlev=model.cfg.nlev, qsize=model.cfg.qsize)
    per_elem = perf.compute_seconds / perf.elems_per_proc
    for r in range(model.nranks):
        nelem = len(model.part.rank_elements(r))
        model.mpi.compute(r, per_elem * nelem * steps)


def _pipeline_active(model) -> bool:
    """Pipelined dispatch is only meaningful on a live pool."""
    return bool(model.pipeline) and model.engine.active


def _pipelined_fanout(model, task, meta_extra: dict,
                      per_rank_arrays: list[tuple], nout: int) -> list[tuple]:
    """Boundary-first split dispatch of one per-rank stage (DESIGN.md §11).

    Splits every rank's element stack into its boundary and inner rows,
    submits the boundary batch first and the inner batch immediately
    after (into the other shared-memory bank), then collects the
    boundary results and reassembles them **while the workers compute
    the inner batch** — the driver-side combine of batch *k* overlapped
    with worker compute of batch *k+1*.  Reassembly is a pure scatter
    by precomputed indices, and every combine below (DSS, allreduce)
    still runs on the driver in fixed rank order, so the result is
    bitwise identical to the synchronous full-stack dispatch.

    Returns one tuple of ``nout`` full per-rank arrays per rank.
    """
    hx = model.hx
    pends = []
    for part_i, idx_of in ((0, hx.local_boundary_idx),
                           (1, hx.local_inner_idx)):
        payloads, owners = [], []
        for r in range(model.nranks):
            ix = idx_of[r]
            if len(ix) == 0:
                continue
            meta = {"ctx": model._pipe_shard_keys[2 * r + part_i],
                    "rank": 2 * r + part_i, "shard": r, **meta_extra}
            payloads.append((meta, tuple(a[ix] for a in per_rank_arrays[r])))
            owners.append(r)
        pends.append((model.engine.submit(task, payloads), owners, idx_of))
    outs: list[list] = [[None] * nout for _ in range(model.nranks)]
    for pend, owners, idx_of in pends:
        results = pend.wait()
        for r, res in zip(owners, results):
            ix = idx_of[r]
            for k in range(nout):
                if outs[r][k] is None:
                    shape = ((len(hx.rank_elems[r]),) + res[k].shape[1:])
                    outs[r][k] = np.empty(shape, dtype=res[k].dtype)
                outs[r][k][ix] = res[k]
    return [tuple(o) for o in outs]


class DistributedShallowWater:
    """Shallow-water RK3 over ``nranks`` simulated MPI ranks.

    ``workers > 1`` runs each rank's tendency computation on a real
    core through :class:`repro.parallel.engine.ParallelEngine`; every
    DSS stays on the driver in fixed rank order, so the trajectory is
    bitwise identical to ``workers=0`` (``validate=True`` asserts this
    on every pool dispatch).  Simulated clocks are unaffected either
    way — SimMPI remains the timing model.

    ``pipeline=True`` additionally splits each rank's elements into
    boundary and inner batches and overlaps the driver-side combines
    with worker compute (:func:`_pipelined_fanout`); results stay
    bitwise identical and the simulated clocks are untouched — only
    wall time changes.

    ``exec_path`` selects the element-local kernels each rank task runs
    (``"batched"`` default, ``"fused"`` for the single-pass contraction
    kernels, ``"looped"`` for the per-element baseline); the DSS
    structure is identical across paths.
    """

    def __init__(
        self,
        mesh: CubedSphereMesh,
        nranks: int,
        dt: float | None = None,
        mode: str = "overlap",
        compute_cost_per_element: float = 1.0e-5,
        faults=None,
        tracer=None,
        workers: int = 0,
        validate: bool = False,
        pipeline: bool = False,
        engine_kwargs: dict | None = None,
        exec_path: str = "batched",
    ) -> None:
        from ..backends.functional_exec import homme_execution

        if mode not in ("overlap", "classic"):
            raise KernelError(f"unknown exchange mode {mode!r}")
        homme_execution(exec_path)  # fail fast on unknown paths
        self.exec_path = exec_path
        self.mesh = mesh
        self.nranks = nranks
        self.mode = mode
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.part = SFCPartition(mesh.ne, nranks)
        self.hx = HaloExchanger(mesh, self.part)
        self.mpi = SimMPI(nranks, faults=faults, tracer=self.tracer)
        self.geoms = [
            ElementGeometry(mesh, self.part.rank_elements(r)) for r in range(nranks)
        ]
        _make_engine(self, workers, validate, "dist-sw", pipeline=pipeline,
                     engine_kwargs=engine_kwargs)
        init = williamson2_initial(mesh)
        self.states = [
            SWState(
                h=init.h[self.part.rank_elements(r)].copy(),
                v=init.v[self.part.rank_elements(r)].copy(),
            )
            for r in range(nranks)
        ]
        if dt is None:
            c = float(np.sqrt(C.GRAVITY * init.h.max()))
            dx = 2 * np.pi * mesh.radius / (4 * mesh.ne * (mesh.np - 1))
            dt = 0.25 * dx / c
        self.dt = dt
        self.t = 0.0
        self.step_count = 0
        self._epoch = 0
        # Simulated kernel cost attribution for the overlap window.
        self._cost = compute_cost_per_element
        self._bc = [
            self._cost * len(self.part.boundary_elements(r)) for r in range(nranks)
        ]
        self._ic = [
            self._cost * len(self.part.inner_elements(r)) for r in range(nranks)
        ]

    # -- distributed DSS ------------------------------------------------------

    def _exchange(self, locals_: list[np.ndarray], stage: int,
                  slot: int) -> list[np.ndarray]:
        outs, _ = self.hx.exchange(
            locals_,
            self.mpi,
            mode=self.mode,
            boundary_compute=self._bc,
            inner_compute=self._ic,
            tag=exchange_tag(self.step_count, stage, slot, self._epoch),
        )
        return outs

    def _dss_scalar(self, fields: list[np.ndarray], stage: int,
                    slot: int) -> list[np.ndarray]:
        return self._exchange(fields, stage, slot)

    def _dss_vector(self, vs: list[np.ndarray], stage: int,
                    slot: int) -> list[np.ndarray]:
        """Vector DSS through the Cartesian tangent representation."""
        ws = []
        for r, v in enumerate(vs):
            e = self.geoms[r].e_cov  # (E_r, n, n, 3, 2)
            ws.append(self.mesh.radius * np.einsum("...xc,...c->...x", e, v))
        ws = self._exchange(ws, stage, slot)
        out = []
        for r, w in enumerate(ws):
            g = self.geoms[r]
            cov = self.mesh.radius * np.einsum("...xc,...x->...c", g.e_cov, w)
            out.append(np.einsum("...ij,...j->...i", g.metinv, cov))
        return out

    # -- dynamics -----------------------------------------------------------------

    def _stage(self, bases: list[SWState], points: list[SWState], dt: float,
               stage: int = 0) -> list[SWState]:
        t0s = [self.mpi.now(r) for r in range(self.nranks)]
        if _pipeline_active(self):
            outs = _pipelined_fanout(
                self, sw_stage_task, {"dt": dt, "path": self.exec_path},
                [(bases[r].h, bases[r].v, points[r].h, points[r].v)
                 for r in range(self.nranks)],
                nout=2,
            )
        else:
            outs = self.engine.run(sw_stage_task, [
                ({"ctx": self._shard_keys[r], "rank": r, "shard": r,
                  "dt": dt, "path": self.exec_path},
                 (bases[r].h, bases[r].v, points[r].h, points[r].v))
                for r in range(self.nranks)
            ])
        hs = self._dss_scalar([o[0] for o in outs], stage, slot=0)
        vs = self._dss_vector([o[1] for o in outs], stage, slot=1)
        if self.tracer.enabled:
            for r in range(self.nranks):
                self.tracer.span_at(
                    rank_track(r), "rk_stage", t0s[r], self.mpi.now(r),
                    cat="model", stage=stage, step=self.step_count,
                )
        return [SWState(h=h, v=v) for h, v in zip(hs, vs)]

    def step(self) -> None:
        """One distributed RK3 step (three halo-exchange rounds)."""
        t0s = [self.mpi.now(r) for r in range(self.nranks)]
        s0 = self.states
        s1 = self._stage(s0, s0, self.dt / 3.0, stage=1)
        s2 = self._stage(s0, s1, self.dt / 2.0, stage=2)
        self.states = self._stage(s0, s2, self.dt, stage=3)
        if self.tracer.enabled:
            for r in range(self.nranks):
                self.tracer.span_at(
                    rank_track(r), "step", t0s[r], self.mpi.now(r),
                    cat="model", step=self.step_count,
                )
        self.t += self.dt
        self.step_count += 1

    def run_steps(self, n: int) -> None:
        for _ in range(n):
            self.step()

    def close(self) -> None:
        """Stop the worker pool (if any) and drop every shard context."""
        if self.engine is not SERIAL_ENGINE:
            self.engine.close()
        for key in self._shard_keys:
            unregister_context(key)
        if self._pipe_shard_keys is not None:
            for key in self._pipe_shard_keys:
                unregister_context(key)

    def health(self, monitor=None):
        """Run the health rules over the engine (DESIGN.md §13.4)."""
        return self.engine.health(monitor)

    def __enter__(self) -> "DistributedShallowWater":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- checkpointing ------------------------------------------------------------

    def snapshot(self) -> dict[str, np.ndarray]:
        """Everything needed to continue the trajectory bitwise.

        Per-rank prognostic arrays plus the scalar counters (model time,
        step count, tag epoch).
        """
        snap: dict[str, np.ndarray] = {
            "meta": np.array([self.t, self.step_count, self._epoch],
                             dtype=np.float64)
        }
        for r, s in enumerate(self.states):
            snap[f"h_{r}"] = s.h.copy()
            snap[f"v_{r}"] = s.v.copy()
        return snap

    def restore_snapshot(self, snap: dict[str, np.ndarray]) -> None:
        """Reset the prognostic state from a :meth:`snapshot` dict.

        The tag epoch is *not* restored — it strictly increases so a
        replayed step can never match a stale in-flight message from
        the aborted attempt (which is also purged outright).
        """
        if f"h_{self.nranks - 1}" not in snap or f"h_{self.nranks}" in snap:
            raise KernelError("snapshot rank count does not match this model")
        t, steps, _epoch = (float(x) for x in snap["meta"])
        self.t = t
        self.step_count = int(steps)
        self._epoch += 1
        self.mpi.purge_pending()
        self.states = [
            SWState(h=snap[f"h_{r}"].copy(), v=snap[f"v_{r}"].copy())
            for r in range(self.nranks)
        ]

    # -- gathering / diagnostics ------------------------------------------------------

    def gather_state(self) -> SWState:
        """Assemble the global state (for comparison with serial runs)."""
        h = self.hx.gather([s.h for s in self.states])
        v = self.hx.gather([s.v for s in self.states])
        return SWState(h=h, v=v)

    def max_rank_time(self) -> float:
        """Simulated completion time of the slowest rank."""
        return self.mpi.max_time()

    def total_mass(self) -> float:
        s = self.gather_state()
        return float(np.sum(self.mesh.spheremp * s.h))


class DistributedPrimitiveEquations:
    """The full prim_run distributed across simulated MPI ranks.

    Mirrors :class:`~repro.homme.timestep.PrimitiveEquationModel`'s RK3
    + tracer + hyperviscosity + remap step, with every DSS routed
    through ``bndry_exchangev``.  Column-local work (pressure scans,
    vertical remap, physics) needs no communication — exactly the
    structure the paper exploits.  Trajectories match the serial model
    to roundoff (verified in the tests).

    ``workers > 1`` fans the per-rank tendency, tracer-advection, and
    hyperviscosity work across real cores (see
    :mod:`repro.parallel.dycore`); all DSS and allreduce combines stay
    on the driver in fixed rank order, so the trajectory is bitwise
    identical to ``workers=0``.

    ``pipeline=True`` (with a live pool) overlaps driver-side combines
    with worker compute: the RK stages use the boundary-first split
    dispatch of :func:`_pipelined_fanout`, and hyperviscosity runs a
    per-field depth-2 software pipeline (the DSS of field *f* overlaps
    the laplacian of field *f+1*).  DSS calls keep their slot order, so
    both the trajectory and the simulated clocks are bitwise unchanged.

    ``exec_path`` selects the element-local kernels the per-rank tasks
    run (``"batched"`` default, ``"fused"``, ``"looped"``); the
    exchange/allreduce structure is identical across paths.

    ``combine`` selects how the tracer mass-fixer allreduces charge the
    simulated clocks: ``"flat"`` (default, the recursive-doubling
    estimate — all clocks synchronized) or ``"hierarchical"`` (the
    node → supernode → central-switch combine tree with hop-weighted
    per-level costs, mirroring TaihuLight's topology).  Reduced values
    — and therefore the trajectory — are bitwise identical either way;
    only the clock charging differs.
    """

    def __init__(
        self,
        cfg,
        mesh: CubedSphereMesh,
        init_state,
        nranks: int,
        dt: float,
        mode: str = "overlap",
        faults=None,
        tracer=None,
        workers: int = 0,
        validate: bool = False,
        pipeline: bool = False,
        engine_kwargs: dict | None = None,
        exec_path: str = "batched",
        combine: str = "flat",
    ) -> None:
        from ..backends.functional_exec import homme_execution
        from ..homme.hypervis import nu_for_ne

        if mode not in ("overlap", "classic"):
            raise KernelError(f"unknown exchange mode {mode!r}")
        homme_execution(exec_path)  # fail fast on unknown paths
        self.exec_path = exec_path
        self.cfg = cfg
        self.mesh = mesh
        self.nranks = nranks
        self.mode = mode
        self.dt = dt
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.combine = combine
        self.part = SFCPartition(mesh.ne, nranks)
        self.hx = HaloExchanger(mesh, self.part)
        self.mpi = SimMPI(nranks, faults=faults, tracer=self.tracer,
                          allreduce_algorithm=combine)
        self.geoms = [
            ElementGeometry(mesh, self.part.rank_elements(r)) for r in range(nranks)
        ]
        self.states = [
            type(init_state)(
                v=init_state.v[self.part.rank_elements(r)].copy(),
                T=init_state.T[self.part.rank_elements(r)].copy(),
                dp3d=init_state.dp3d[self.part.rank_elements(r)].copy(),
                qdp=init_state.qdp[self.part.rank_elements(r)].copy(),
            )
            for r in range(nranks)
        ]
        self.nu = nu_for_ne(cfg.ne)
        self.t = 0.0
        self.step_count = 0
        self._epoch = 0
        _make_engine(self, workers, validate, "dist-prim", pipeline=pipeline,
                     engine_kwargs=engine_kwargs)

    # -- distributed DSS over level-carrying fields --------------------------------

    def _exchange(self, locals_, stage, slot):
        tag = exchange_tag(self.step_count, stage, slot, self._epoch)
        outs, _ = self.hx.exchange(locals_, self.mpi, mode=self.mode, tag=tag)
        return outs

    def _dss_levels(self, fields, stage, slot):
        """DSS (E_r, L, n, n) fields: levels move to the trailing axis.

        Outputs are made contiguous so the state's memory layout — and
        therefore every subsequent reduction's rounding — is identical
        whether the state came from stepping or from a restored
        checkpoint (bitwise restart depends on this).
        """
        moved = [np.moveaxis(f, 1, -1) for f in fields]
        out = self._exchange(moved, stage, slot)
        return [np.ascontiguousarray(np.moveaxis(f, -1, 1)) for f in out]

    def _dss_vector_levels(self, vs, stage, slot):
        """DSS (E_r, L, n, n, 2) contravariant fields via Cartesian form."""
        ws = []
        for r, v in enumerate(vs):
            e = self.geoms[r].e_cov[:, None]  # broadcast over levels
            w = self.mesh.radius * np.einsum("...xc,...c->...x", e, v)
            ws.append(np.moveaxis(w, 1, -2).reshape(w.shape[0], w.shape[2], w.shape[3], -1))
        ws = self._exchange(ws, stage, slot)
        out = []
        for r, w in enumerate(ws):
            E, n = w.shape[0], w.shape[1]
            L = w.shape[-1] // 3
            w = np.moveaxis(w.reshape(E, n, n, L, 3), -2, 1)
            g = self.geoms[r]
            cov = self.mesh.radius * np.einsum(
                "...xc,...x->...c", g.e_cov[:, None], w
            )
            out.append(
                np.ascontiguousarray(
                    np.einsum("...ij,...j->...i", g.metinv[:, None], cov)
                )
            )
        return out

    # -- one distributed dynamics step ------------------------------------------------

    def _rk_stage(self, bases, points, dt, stage=0):
        t0s = [self.mpi.now(r) for r in range(self.nranks)]
        if _pipeline_active(self):
            outs = _pipelined_fanout(
                self, prim_stage_task, {"dt": dt, "path": self.exec_path},
                [(bases[r].v, bases[r].T, bases[r].dp3d,
                  points[r].v, points[r].T, points[r].dp3d)
                 for r in range(self.nranks)],
                nout=3,
            )
        else:
            outs = self.engine.run(prim_stage_task, [
                ({"ctx": self._shard_keys[r], "rank": r, "shard": r,
                  "dt": dt, "path": self.exec_path},
                 (bases[r].v, bases[r].T, bases[r].dp3d,
                  points[r].v, points[r].T, points[r].dp3d))
                for r in range(self.nranks)
            ])
        Ts = self._dss_levels([o[1] for o in outs], stage, slot=0)
        dps = self._dss_levels([o[2] for o in outs], stage, slot=1)
        vs = self._dss_vector_levels([o[0] for o in outs], stage, slot=2)
        if self.tracer.enabled:
            for r in range(self.nranks):
                self.tracer.span_at(
                    rank_track(r), "rk_stage", t0s[r], self.mpi.now(r),
                    cat="model", stage=stage, step=self.step_count,
                )
        out = []
        for r in range(self.nranks):
            s = bases[r].copy()
            s.v, s.T, s.dp3d = vs[r], Ts[r], dps[r]
            out.append(s)
        return out

    def _hypervis_pipelined(self, s3, metas):
        """Per-field depth-2 software pipeline for hyperviscosity.

        Splits the fused three-field laplacian dispatch into six
        per-field batches so the driver's DSS of one field overlaps
        worker compute of the next, never holding more than two batches
        in flight (the engine's two shared-memory banks).  The DSS
        calls execute in the same slot order 0..5 as the synchronous
        form and each field's laplacian/DSS chain is independent, so
        the values and the simulated clocks are bitwise unchanged.
        """
        eng = self.engine

        def submit(task, fields):
            return eng.submit(
                task, [(metas[r], (fields[r],)) for r in range(self.nranks)]
            )

        def outs(pend):
            return [o[0] for o in pend.wait()]

        p_lapT = submit(prim_laplace_wk_task, [s.T for s in s3])
        p_lapv = submit(prim_vlaplace_task, [s.v for s in s3])
        lap_T = self._dss_levels(outs(p_lapT), stage=5, slot=0)
        p_lapdp = submit(prim_laplace_wk_task, [s.dp3d for s in s3])
        lap_v = self._dss_vector_levels(outs(p_lapv), stage=5, slot=1)
        p_bihT = submit(prim_laplace_wk_task, lap_T)
        lap_dp = self._dss_levels(outs(p_lapdp), stage=5, slot=2)
        p_bihv = submit(prim_vlaplace_task, lap_v)
        bih_T = self._dss_levels(outs(p_bihT), stage=5, slot=3)
        p_bihdp = submit(prim_laplace_wk_task, lap_dp)
        bih_v = self._dss_vector_levels(outs(p_bihv), stage=5, slot=4)
        bih_dp = self._dss_levels(outs(p_bihdp), stage=5, slot=5)
        return bih_T, bih_v, bih_dp

    def step(self) -> None:
        from .remap import vertical_remap
        from .timestep import RSPLIT

        dt = self.dt
        step_t0s = [self.mpi.now(r) for r in range(self.nranks)]
        s0 = self.states
        s1 = self._rk_stage(s0, s0, dt / 3.0, stage=1)
        s2 = self._rk_stage(s0, s1, dt / 2.0, stage=2)
        s3 = self._rk_stage(s0, s2, dt, stage=3)

        # Tracer advection: subcycled SSP-RK2, distributed DSS per stage.
        euler_t0s = [self.mpi.now(r) for r in range(self.nranks)]
        sub = self.cfg.tracer_subcycles
        sdt = dt / sub
        for sub_i in range(sub):
            for q in range(self.cfg.qsize):
                # Three exchanges per (subcycle, tracer): st1, st2, limited.
                slot0 = 3 * (sub_i * self.cfg.qsize + q)
                metas = [
                    {"ctx": self._shard_keys[r], "rank": r, "shard": r,
                     "sdt": sdt, "path": self.exec_path}
                    for r in range(self.nranks)
                ]
                st1 = self._dss_levels([o[0] for o in self.engine.run(
                    prim_euler_stage1_task,
                    [(metas[r], (s3[r].qdp[:, q], s3[r].v))
                     for r in range(self.nranks)],
                )], stage=4, slot=slot0)
                st2 = self._dss_levels([o[0] for o in self.engine.run(
                    prim_euler_stage2_task,
                    [(metas[r], (s3[r].qdp[:, q], st1[r], s3[r].v))
                     for r in range(self.nranks)],
                )], stage=4, slot=slot0 + 1)
                # NOTE: the serial limiter's global fixer needs global
                # sums; the distributed form uses an allreduce (on the
                # driver, in fixed rank order — the determinism rule).
                lim = self.engine.run(
                    prim_limit_task,
                    [(metas[r], (st2[r],)) for r in range(self.nranks)],
                )
                limited = [o[0] for o in lim]
                before = self.mpi.allreduce([o[1] for o in lim])
                after = self.mpi.allreduce([o[2] for o in lim])
                with np.errstate(divide="ignore", invalid="ignore"):
                    scale = np.where(after > 0, before / after, 0.0)
                limited = [arr * np.clip(scale, 0.0, None)[None, :, None, None]
                           for arr in limited]
                limited = self._dss_levels(limited, stage=4, slot=slot0 + 2)
                for r in range(self.nranks):
                    s3[r].qdp[:, q] = limited[r]
        if self.tracer.enabled:
            for r in range(self.nranks):
                self.tracer.span_at(
                    rank_track(r), "euler_step", euler_t0s[r], self.mpi.now(r),
                    cat="model", step=self.step_count,
                )

        # Hyperviscosity (single subcycle configuration assumed small dt).
        # Each biharmonic round is one pool dispatch computing all three
        # field laplacians per rank; the DSS rounds between them stay on
        # the driver.  (Values are unchanged from the per-field form —
        # each field's laplacian/DSS chain is independent.)
        hv_t0s = [self.mpi.now(r) for r in range(self.nranks)]
        hv_metas = [
            {"ctx": self._shard_keys[r], "rank": r, "shard": r,
             "path": self.exec_path}
            for r in range(self.nranks)
        ]
        if _pipeline_active(self):
            bih_T, bih_v, bih_dp = self._hypervis_pipelined(s3, hv_metas)
        else:
            lap = self.engine.run(prim_laplace_task, [
                (hv_metas[r], (s3[r].T, s3[r].v, s3[r].dp3d))
                for r in range(self.nranks)
            ])
            lap_T = self._dss_levels([o[0] for o in lap], stage=5, slot=0)
            lap_v = self._dss_vector_levels([o[1] for o in lap], stage=5, slot=1)
            lap_dp = self._dss_levels([o[2] for o in lap], stage=5, slot=2)
            bih = self.engine.run(prim_laplace_task, [
                (hv_metas[r], (lap_T[r], lap_v[r], lap_dp[r]))
                for r in range(self.nranks)
            ])
            bih_T = self._dss_levels([o[0] for o in bih], stage=5, slot=3)
            bih_v = self._dss_vector_levels([o[1] for o in bih], stage=5, slot=4)
            bih_dp = self._dss_levels([o[2] for o in bih], stage=5, slot=5)
        for r in range(self.nranks):
            s3[r].T = s3[r].T - dt * self.nu * bih_T[r]
            s3[r].v = s3[r].v - dt * self.nu * bih_v[r]
            s3[r].dp3d = s3[r].dp3d - dt * self.nu * bih_dp[r]
        if self.tracer.enabled:
            for r in range(self.nranks):
                self.tracer.span_at(
                    rank_track(r), "hypervis", hv_t0s[r], self.mpi.now(r),
                    cat="model", step=self.step_count,
                )

        self.step_count += 1
        if self.step_count % RSPLIT == 0:
            for r in range(self.nranks):
                s3[r] = vertical_remap(s3[r])
            if self.tracer.enabled:
                for r in range(self.nranks):
                    self.tracer.instant(
                        rank_track(r), "vertical_remap", self.mpi.now(r),
                        cat="model", step=self.step_count,
                    )
        self.t += dt
        self.states = s3
        if self.tracer.enabled:
            for r in range(self.nranks):
                self.tracer.span_at(
                    rank_track(r), "step", step_t0s[r], self.mpi.now(r),
                    cat="model", step=self.step_count - 1,
                )

    def run_steps(self, n: int) -> None:
        for _ in range(n):
            self.step()

    def close(self) -> None:
        """Stop the worker pool (if any) and drop every shard context."""
        if self.engine is not SERIAL_ENGINE:
            self.engine.close()
        for key in self._shard_keys:
            unregister_context(key)
        if self._pipe_shard_keys is not None:
            for key in self._pipe_shard_keys:
                unregister_context(key)

    def health(self, monitor=None):
        """Run the health rules over the engine (DESIGN.md §13.4)."""
        return self.engine.health(monitor)

    def __enter__(self) -> "DistributedPrimitiveEquations":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- checkpointing ------------------------------------------------------------

    def snapshot(self) -> dict[str, np.ndarray]:
        """Everything needed to continue the trajectory bitwise."""
        snap: dict[str, np.ndarray] = {
            "meta": np.array([self.t, self.step_count, self._epoch],
                             dtype=np.float64)
        }
        for r, s in enumerate(self.states):
            snap[f"v_{r}"] = s.v.copy()
            snap[f"T_{r}"] = s.T.copy()
            snap[f"dp3d_{r}"] = s.dp3d.copy()
            snap[f"qdp_{r}"] = s.qdp.copy()
        return snap

    def restore_snapshot(self, snap: dict[str, np.ndarray]) -> None:
        """Reset the prognostic state from a :meth:`snapshot` dict.

        The tag epoch strictly increases (never restored) and pending
        messages are purged, so a replayed step cannot match stale
        in-flight traffic from an aborted attempt.
        """
        if f"T_{self.nranks - 1}" not in snap or f"T_{self.nranks}" in snap:
            raise KernelError("snapshot rank count does not match this model")
        t, steps, _epoch = (float(x) for x in snap["meta"])
        self.t = t
        self.step_count = int(steps)
        self._epoch += 1
        self.mpi.purge_pending()
        for r, s in enumerate(self.states):
            s.v = snap[f"v_{r}"].copy()
            s.T = snap[f"T_{r}"].copy()
            s.dp3d = snap[f"dp3d_{r}"].copy()
            s.qdp = snap[f"qdp_{r}"].copy()

    def gather_state(self):
        from .element import ElementState

        return ElementState(
            v=self.hx.gather([s.v for s in self.states]),
            T=self.hx.gather([s.T for s in self.states]),
            dp3d=self.hx.gather([s.dp3d for s in self.states]),
            qdp=self.hx.gather([s.qdp for s in self.states]),
        )

    def max_rank_time(self) -> float:
        return self.mpi.max_time()
