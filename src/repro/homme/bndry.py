"""``bndry_exchangev``: the halo exchange behind the distributed DSS.

The paper redesigns this subroutine twice over (Section 7.6):

1. **Computation/communication overlap** — elements are split into a
   *boundary* part (touching another rank) and an *inner* part; the
   boundary part is computed first, its edge data sent asynchronously,
   and the inner part computed while messages fly.  This cut HOMME's
   runtime by up to 23% at scale.
2. **Direct unpack** — the original HOMME funnels both MPI messages and
   intra-node copies through a unified pack/unpack buffer, costing a
   redundant memcpy per exchange; the redesign fetches received data
   straight into the destination elements (another ~30% off the
   dynamical core's memory-copy time).

:class:`HaloExchanger` implements the exchange functionally (weighted
DSS contributions really travel between ranks through
:class:`~repro.network.simmpi.SimMPI`) with both the ``classic`` and
``overlap`` execution disciplines, charging pack/unpack memcpy time and
compute time to each rank's simulated clock.  The distributed result is
bit-identical to the serial :meth:`CubedSphereMesh.dss`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import constants as C
from ..errors import KernelError
from ..mesh.cubed_sphere import CubedSphereMesh
from ..mesh.partition import SFCPartition
from ..network.simmpi import SimMPI, rank_track

#: Memory-copy bandwidth for pack/unpack staging [bytes/s] (one CG's share).
MEMCPY_BANDWIDTH = C.SW_MEMORY_BANDWIDTH / C.SW_CORE_GROUPS

#: Tag-space strides for :func:`exchange_tag`.  Python ints are
#: unbounded, so these are namespacing strides, not capacity limits.
TAG_SLOTS = 4096
TAG_STAGES = 16
_TAG_STEPS = 2 ** 32  # steps per epoch before epochs could collide


def exchange_tag(step: int, stage: int, slot: int = 0, epoch: int = 0) -> int:
    """Collision-free message tag for one (step, stage, field-slot).

    The distributed models used to bump a single shared counter per
    exchange, which meant a replayed stage (resilience rollback) or a
    restored checkpoint could reuse a tag against a stale in-flight
    retransmit.  Deriving the tag from its position in the integration —
    plus an ``epoch`` that only ever *increases* on checkpoint restore —
    makes every exchange's tag structurally unique across replays.
    """
    if not 0 <= stage < TAG_STAGES:
        raise KernelError(f"exchange stage {stage} outside 0..{TAG_STAGES - 1}")
    if not 0 <= slot < TAG_SLOTS:
        raise KernelError(f"exchange slot {slot} outside 0..{TAG_SLOTS - 1}")
    return ((epoch * _TAG_STEPS + step) * TAG_STAGES + stage) * TAG_SLOTS + slot


@dataclass
class ExchangeReport:
    """Timing summary of one exchange (simulated seconds).

    ``dropped``/``retransmissions`` count fault-injected losses healed
    by SimMPI's retransmit protocol during this exchange — the DSS
    result is unaffected (the sender's copy is re-posted verbatim), but
    the waiting rank's clock shows the timeout windows it rode out.
    """

    mode: str
    rank_times: list[float] = field(default_factory=list)
    comm_wait: list[float] = field(default_factory=list)
    memcpy_seconds: float = 0.0
    dropped: int = 0
    retransmissions: int = 0

    @property
    def max_time(self) -> float:
        return max(self.rank_times) if self.rank_times else 0.0


class HaloExchanger:
    """Distributed DSS over an SFC partition.

    Precomputes, per rank pair, the shared global DOF ids in a canonical
    (sorted) order, plus the local flat indices contributing to them, so
    an exchange is pure vectorized gather/scatter.
    """

    def __init__(self, mesh: CubedSphereMesh, part: SFCPartition) -> None:
        if part.ne != mesh.ne:
            raise KernelError("partition and mesh resolutions differ")
        self.mesh = mesh
        self.part = part
        self.nranks = part.nranks
        n = mesh.np

        #: Per rank: owned element ids (curve order) and their gid block.
        self.rank_elems = [part.rank_elements(r) for r in range(self.nranks)]
        self.rank_gids = [mesh.gid[e] for e in self.rank_elems]

        # gid -> set of touching ranks.
        gid_ranks: dict[int, set[int]] = {}
        for r in range(self.nranks):
            for g in np.unique(self.rank_gids[r]):
                gid_ranks.setdefault(int(g), set()).add(r)

        # Shared gid lists per ordered rank pair.
        shared: dict[tuple[int, int], list[int]] = {}
        for g, ranks in gid_ranks.items():
            if len(ranks) > 1:
                rl = sorted(ranks)
                for a in rl:
                    for b in rl:
                        if a != b:
                            shared.setdefault((a, b), []).append(g)
        self.shared_gids = {
            key: np.array(sorted(gs), dtype=np.int64) for key, gs in shared.items()
        }
        self.peers = {
            r: sorted({b for (a, b) in self.shared_gids if a == r})
            for r in range(self.nranks)
        }

        # Local scatter structures: for rank r, flat arrays over local GLL
        # points of (gid, weight) and, per element, whether it is boundary.
        self.local_flat_gid = [g.reshape(-1) for g in self.rank_gids]
        self.local_weights = [
            mesh.spheremp[e].reshape(-1) for e in self.rank_elems
        ]
        self.assembled = mesh.assembled_spheremp
        self.boundary_elems = [part.boundary_elements(r) for r in range(self.nranks)]
        self.inner_elems = [part.inner_elements(r) for r in range(self.nranks)]
        # Mask over local elements (in rank_elems order): boundary or not.
        self.local_boundary_mask = [
            part.boundary_mask[e] for e in self.rank_elems
        ]
        # Positions within each rank's local element order of the
        # boundary and inner rows.  The pipelined engine mode dispatches
        # these as separate worker batches (boundary first, inner
        # overlapped with the driver's combines) and reassembles by
        # exactly these indices — a pure scatter, so the reassembled
        # stack is bit-identical to computing the full stack at once.
        self.local_boundary_idx = [
            np.nonzero(m)[0] for m in self.local_boundary_mask
        ]
        self.local_inner_idx = [
            np.nonzero(~m)[0] for m in self.local_boundary_mask
        ]

    # -- core exchange ------------------------------------------------------------

    def _local_accumulate(self, rank: int, f_flat: np.ndarray) -> dict[int, np.ndarray]:
        """Weighted contributions acc[gid] for rank's local field values."""
        gids = self.local_flat_gid[rank]
        w = self.local_weights[rank]
        vals = f_flat * w[:, None]
        # Accumulate into a compact dict keyed by gid.
        uniq, inv = np.unique(gids, return_inverse=True)
        acc = np.zeros((len(uniq),) + vals.shape[1:])
        np.add.at(acc, inv, vals)
        return {"gids": uniq, "acc": acc}

    def exchange(
        self,
        local_fields: list[np.ndarray],
        mpi: SimMPI,
        mode: str = "overlap",
        boundary_compute: list[float] | None = None,
        inner_compute: list[float] | None = None,
        tag: int = 0,
    ) -> tuple[list[np.ndarray], ExchangeReport]:
        """Run one DSS exchange over all ranks.

        Parameters
        ----------
        local_fields:
            Per rank, array (E_r, np, np) or (E_r, np, np, K) of the
            element-local field to make continuous.
        mpi:
            The simulated communicator (nranks must match).
        mode:
            "classic" (compute all, pack-buffer staging, no overlap) or
            "overlap" (boundary first, direct unpack, inner overlapped).
        boundary_compute / inner_compute:
            Per-rank simulated seconds of kernel work attributed to the
            boundary / inner element sets.  In classic mode their sum is
            charged before communication; in overlap mode the boundary
            part is charged before the sends and the inner part between
            send and wait — which is what hides the transfer.

        Returns the DSS'd local fields and an :class:`ExchangeReport`.
        """
        if mpi.nranks != self.nranks:
            raise KernelError(
                f"communicator has {mpi.nranks} ranks, partition {self.nranks}"
            )
        if mode not in ("classic", "overlap"):
            raise KernelError(f"unknown exchange mode {mode!r}")
        if len(local_fields) != self.nranks:
            raise KernelError("need one local field array per rank")
        bc = boundary_compute or [0.0] * self.nranks
        ic = inner_compute or [0.0] * self.nranks

        n = self.mesh.np
        flats = []
        for r, f in enumerate(local_fields):
            f = np.asarray(f, dtype=np.float64)
            if f.shape[:3] != (len(self.rank_elems[r]), n, n):
                raise KernelError(f"rank {r} field has shape {f.shape}")
            k = int(np.prod(f.shape[3:])) if f.ndim > 3 else 1
            flats.append(f.reshape(-1, k))

        report = ExchangeReport(mode=mode)
        dropped0 = mpi.messages_dropped
        retrans0 = mpi.retransmissions
        tracer = mpi.tracer
        accs = []

        # Phase 1: compute + pack + send on every rank.
        sends = []
        for r in range(self.nranks):
            track = rank_track(r)
            t0 = mpi.now(r)
            if mode == "classic":
                # All kernel work happens before any communication.
                mpi.compute(r, bc[r] + ic[r])
            else:
                # Boundary elements first; inner is deferred.
                mpi.compute(r, bc[r])
            if tracer.enabled:
                name = "compute" if mode == "classic" else "compute.boundary"
                tracer.span_at(track, name, t0, mpi.now(r), cat="exchange",
                               tag=tag)
            acc = self._local_accumulate(r, flats[r])
            accs.append(acc)
            for p in self.peers[r]:
                sg = self.shared_gids[(r, p)]
                idx = np.searchsorted(acc["gids"], sg)
                payload = acc["acc"][idx]
                # Pack memcpy: classic stages through the pack buffer.
                pack_copies = 2 if mode == "classic" else 1
                t_pack = pack_copies * payload.nbytes / MEMCPY_BANDWIDTH
                t1 = mpi.now(r)
                mpi.compute(r, t_pack)
                report.memcpy_seconds += t_pack
                if tracer.enabled:
                    tracer.span_at(track, "pack", t1, mpi.now(r),
                                   cat="exchange", peer=p, tag=tag,
                                   nbytes=payload.nbytes, copies=pack_copies)
                    tracer.span_at(track, "send", mpi.now(r), mpi.now(r),
                                   cat="exchange", peer=p, tag=tag,
                                   nbytes=payload.nbytes)
                sends.append(mpi.isend(r, p, payload, tag=tag))

        # Phase 2: overlap window — inner compute happens while in flight.
        if mode == "overlap":
            for r in range(self.nranks):
                t0 = mpi.now(r)
                mpi.compute(r, ic[r])
                if tracer.enabled:
                    tracer.span_at(rank_track(r), "overlap", t0, mpi.now(r),
                                   cat="exchange", tag=tag)

        # Phase 3: receive, unpack, finalize.
        outs: list[np.ndarray] = []
        for r in range(self.nranks):
            acc = accs[r]
            for p in self.peers[r]:
                sg = self.shared_gids[(r, p)]
                data = mpi.wait(mpi.irecv(r, p, tag=tag))
                if data.shape[0] != len(sg):
                    raise KernelError("halo message length mismatch")
                idx = np.searchsorted(acc["gids"], sg)
                acc["acc"][idx] += data
                # Unpack memcpy: classic copies receive buffer -> pack
                # buffer -> elements (2 copies); redesign goes direct (1).
                unpack_copies = 2 if mode == "classic" else 1
                t_unpack = unpack_copies * data.nbytes / MEMCPY_BANDWIDTH
                t2 = mpi.now(r)
                mpi.compute(r, t_unpack)
                report.memcpy_seconds += t_unpack
                if tracer.enabled:
                    tracer.span_at(rank_track(r), "unpack", t2, mpi.now(r),
                                   cat="exchange", peer=p, tag=tag,
                                   nbytes=data.nbytes, copies=unpack_copies)
            # Final division by assembled weights at local points.
            gids = self.local_flat_gid[r]
            pos = np.searchsorted(acc["gids"], gids)
            vals = acc["acc"][pos] / self.assembled[gids][:, None]
            outs.append(vals.reshape(local_fields[r].shape))

        report.rank_times = [mpi.now(r) for r in range(self.nranks)]
        report.comm_wait = list(mpi.comm_seconds)
        report.dropped = mpi.messages_dropped - dropped0
        report.retransmissions = mpi.retransmissions - retrans0
        return outs, report

    # -- helpers for tests/benches --------------------------------------------------

    def scatter(self, field: np.ndarray) -> list[np.ndarray]:
        """Split a global (nelem, np, np[, K]) field into per-rank locals."""
        return [field[e] for e in self.rank_elems]

    def split_local(self, rank: int, field: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Split a rank-local element array into (boundary, inner) rows.

        Fancy indexing copies, so the two stacks are contiguous and safe
        to ship through shared memory independently.
        """
        return (field[self.local_boundary_idx[rank]],
                field[self.local_inner_idx[rank]])

    def merge_local(self, rank: int, boundary: np.ndarray,
                    inner: np.ndarray) -> np.ndarray:
        """Reassemble (boundary, inner) rows into local element order.

        The inverse of :meth:`split_local`: a pure scatter by the
        precomputed index arrays — every output row is a byte-exact copy
        of the corresponding input row.
        """
        trailing = boundary.shape[1:] if len(boundary) else inner.shape[1:]
        dtype = boundary.dtype if len(boundary) else inner.dtype
        out = np.empty((len(self.rank_elems[rank]),) + trailing, dtype=dtype)
        out[self.local_boundary_idx[rank]] = boundary
        out[self.local_inner_idx[rank]] = inner
        return out

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank locals into a global element array."""
        shape = (self.mesh.nelem,) + locals_[0].shape[1:]
        out = np.empty(shape)
        for r, e in enumerate(self.rank_elems):
            out[e] = locals_[r]
        return out
