"""Hyperviscosity kernels: ``hypervis_dp1``, ``hypervis_dp2``,
``biharmonic_dp3d``.

CAM-SE stabilizes the spectral-element discretization with a
fourth-order hyperviscosity, implemented as two Laplacian sweeps with a
DSS between them (the weak biharmonic operator).  Table 1 splits the
cost into the first sweep (``hypervis_dp1``), the second sweep plus the
update (``hypervis_dp2``), and the thickness operator
(``biharmonic_dp3d``).

The coefficient follows the CAM-SE resolution scaling
``nu = nu0 * (ne0 / ne)^hv_scaling`` so runs remain stable across the
paper's resolution sweep, with explicit subcycling when dt exceeds the
diffusive stability limit.
"""

from __future__ import annotations

import math

import numpy as np

from .. import constants as C
from ..errors import KernelError
from .element import ElementGeometry, ElementState
from . import operators as op

#: CAM-SE reference hyperviscosity at ne30 [m^4/s].
NU0 = 1.0e15
NE0 = 30
HV_SCALING = 3.2


def nu_for_ne(ne: int, nu0: float = NU0) -> float:
    """Resolution-scaled hyperviscosity coefficient."""
    if ne < 2:
        raise KernelError(f"ne must be >= 2, got {ne}")
    return nu0 * (NE0 / ne) ** HV_SCALING


def hypervis_dp1(
    state: ElementState,
    geom: ElementGeometry,
    laplace_fn=None,
    vlaplace_fn=None,
) -> tuple[np.ndarray, np.ndarray]:
    """First Laplacian sweep over momentum and temperature (with DSS).

    Returns (lap_v, lap_T), the continuous Laplacians that feed
    :func:`hypervis_dp2`.  ``laplace_fn``/``vlaplace_fn`` select the
    element-local execution path (batched operators by default; the
    looped twins from :mod:`repro.homme.looped` via the dispatch in
    :func:`repro.backends.functional_exec.homme_execution`).
    """
    lap = laplace_fn or op.laplace_sphere_wk
    vlap = vlaplace_fn or op.vlaplace_sphere
    lap_v = geom.dss_vector(vlap(state.v, geom))
    lap_T = geom.dss(lap(state.T, geom))
    return lap_v, lap_T


def hypervis_dp2(
    state: ElementState,
    lap_v: np.ndarray,
    lap_T: np.ndarray,
    geom: ElementGeometry,
    dt: float,
    nu: float,
    laplace_fn=None,
    vlaplace_fn=None,
) -> ElementState:
    """Second sweep + update: u -= dt nu lap(lap(u)) for v and T."""
    if dt <= 0 or nu < 0:
        raise KernelError(f"invalid dt={dt} or nu={nu}")
    lap = laplace_fn or op.laplace_sphere_wk
    vlap = vlaplace_fn or op.vlaplace_sphere
    bih_v = geom.dss_vector(vlap(lap_v, geom))
    bih_T = geom.dss(lap(lap_T, geom))
    out = state.copy()
    out.v = state.v - dt * nu * bih_v
    out.T = state.T - dt * nu * bih_T
    return out


def biharmonic_dp3d(
    dp3d: np.ndarray, geom: ElementGeometry, dss=None, laplace_fn=None
) -> np.ndarray:
    """Weak biharmonic operator on layer thickness (Table 1's last kernel).

    Two weak-Laplacian sweeps with a DSS between; the weak form keeps
    the global dp3d integral (total air mass) conserved to roundoff.
    """
    dss = dss or geom.dss
    lap = laplace_fn or op.laplace_sphere_wk
    lap1 = dss(lap(dp3d, geom))
    return dss(lap(lap1, geom))


def hypervis_stable_subcycles(dt: float, nu: float, ne: int, radius: float) -> int:
    """Subcycles needed for explicit biharmonic stability.

    The largest SE eigenvalue scales like (c / dx^2)^2 with dx the
    minimum GLL spacing; explicit Euler needs dt_sub < 2 / (nu lam_max).
    A safety factor absorbs metric distortion near cube corners.
    """
    dx = 2 * math.pi * radius / (4 * ne * (C.NP - 1))
    lam_max = (8.0 / dx**2) ** 2  # conservative spectral bound
    dt_stable = 1.2 / (nu * lam_max)
    return max(1, math.ceil(dt / dt_stable))


def advance_hypervis(
    state: ElementState,
    geom: ElementGeometry,
    dt: float,
    ne: int,
    nu: float | None = None,
    nu_p: float | None = None,
    subcycles: int | None = None,
    laplace_fn=None,
    vlaplace_fn=None,
) -> ElementState:
    """Apply hyperviscosity to v, T and dp3d over one dynamics step.

    ``nu_p`` (thickness diffusion) defaults to ``nu``; subcycling is
    chosen automatically from the stability analysis unless given.
    ``laplace_fn``/``vlaplace_fn`` select the execution path for the
    element-local Laplacians (batched by default).
    """
    nu = nu_for_ne(ne) if nu is None else nu
    nu_p = nu if nu_p is None else nu_p
    if subcycles is None:
        n_sub = hypervis_stable_subcycles(dt, nu, ne, geom.radius)
    elif subcycles < 1:
        # `subcycles or auto(...)` would silently re-enable auto-selection
        # for an explicit 0 — an invalid request must fail loudly instead.
        raise KernelError(f"subcycles must be >= 1, got {subcycles}")
    else:
        n_sub = subcycles
    sub_dt = dt / n_sub
    out = state
    for _ in range(n_sub):
        lap_v, lap_T = hypervis_dp1(out, geom, laplace_fn, vlaplace_fn)
        out = hypervis_dp2(out, lap_v, lap_T, geom, sub_dt, nu,
                           laplace_fn, vlaplace_fn)
        bih_dp = biharmonic_dp3d(out.dp3d, geom, laplace_fn=laplace_fn)
        out.dp3d = out.dp3d - sub_dt * nu_p * bih_dp
    return out
