"""Conservation and stability diagnostics for the dynamical core."""

from __future__ import annotations

import numpy as np

from .. import constants as C
from .element import ElementGeometry, ElementState
from .rhs import PTOP
from . import operators as op


def total_mass(state: ElementState, geom: ElementGeometry) -> float:
    """Total dry-air mass integral: sum over levels of dp3d * area / g."""
    w = geom.spheremp[:, None]
    return float(np.sum(state.dp3d * w) / C.GRAVITY)


def total_tracer_mass(state: ElementState, geom: ElementGeometry) -> np.ndarray:
    """Per-tracer global mass (Q,)."""
    w = geom.spheremp[:, None, None]
    return np.sum(state.qdp * w, axis=(0, 2, 3, 4)) / C.GRAVITY


def total_energy(state: ElementState, geom: ElementGeometry) -> float:
    """Total energy: kinetic + internal (cp T) per unit mass, mass weighted."""
    ke = op.kinetic_energy(state.v, geom)
    e = ke + C.CP_DRY * state.T
    w = geom.spheremp[:, None]
    return float(np.sum(e * state.dp3d * w) / C.GRAVITY)


def max_wind(state: ElementState, geom: ElementGeometry) -> float:
    """Maximum wind speed [m/s] (from the metric norm of contravariant v)."""
    speed2 = 2.0 * op.kinetic_energy(state.v, geom)
    return float(np.sqrt(speed2.max()))


def courant_number(state: ElementState, geom: ElementGeometry, dt: float, ne: int) -> float:
    """Advective CFL estimate: max |v| dt / dx_min."""
    dx = 2 * np.pi * geom.radius / (4 * ne * (C.NP - 1))
    return max_wind(state, geom) * dt / dx


def surface_pressure_range(state: ElementState) -> tuple[float, float]:
    """(min, max) surface pressure [Pa] — a quick blow-up detector."""
    ps = state.ps(PTOP)
    return float(ps.min()), float(ps.max())


def state_is_finite(state: ElementState) -> bool:
    """All prognostic arrays finite (no NaN/Inf)."""
    return bool(
        np.isfinite(state.v).all()
        and np.isfinite(state.T).all()
        and np.isfinite(state.dp3d).all()
        and np.isfinite(state.qdp).all()
    )
