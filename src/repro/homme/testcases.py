"""Analytic test cases for the primitive-equation core.

- :func:`steady_zonal_state` — an *exact* steady state of the
  hydrostatic primitive equations: isothermal solid-body zonal flow
  with the surface pressure that balances it,

  .. math:: \\ln p_s(\\phi) = \\ln p_{00}
            - \\frac{(a\\,\\Omega\\,u_0 + u_0^2/2)\\,\\sin^2\\phi}{R\\,T_0}.

  Any drift when integrating it is pure discretization error — the
  primitive-equation analogue of Williamson case 2.

- :func:`add_temperature_bump` — a localized warm anomaly used to
  trigger a growing (baroclinic-like) disturbance on that jet, the
  standard Jablonowski--Williamson-style perturbation protocol.
"""

from __future__ import annotations

import numpy as np

from .. import constants as C
from ..config import ModelConfig
from .element import ElementGeometry, ElementState
from .rhs import PTOP


def steady_zonal_state(
    geom: ElementGeometry,
    cfg: ModelConfig,
    u0: float = 20.0,
    T0: float = 288.0,
    p00: float = C.P0,
) -> ElementState:
    """Balanced isothermal solid-body zonal flow (exact steady state)."""
    mesh = geom.mesh
    omega = getattr(mesh, "omega", C.EARTH_OMEGA)
    a = mesh.radius
    state = ElementState.zeros(geom.nelem, cfg.nlev, geom.np, cfg.qsize)
    state.T[:] = T0

    phi = geom.lat
    ps = p00 * np.exp(
        -(a * omega * u0 + 0.5 * u0**2) * np.sin(phi) ** 2 / (C.R_DRY * T0)
    )
    dsigma = 1.0 / cfg.nlev
    state.dp3d[:] = dsigma * (ps - PTOP)[:, None]

    u = u0 * np.cos(phi)
    vc = mesh.spherical_to_contravariant(u, np.zeros_like(u))[geom.elem_ids]
    state.v[:] = vc[:, None]
    if cfg.qsize:
        state.qdp[:, 0] = 1.0e-3 * state.dp3d
    return state


def add_temperature_bump(
    state: ElementState,
    geom: ElementGeometry,
    amplitude_k: float = 1.0,
    lat0_deg: float = 40.0,
    lon0_deg: float = 90.0,
    width_rad: float = 0.25,
) -> ElementState:
    """Superpose a Gaussian warm anomaly (all levels) to seed a wave."""
    out = state.copy()
    lat0, lon0 = np.deg2rad(lat0_deg), np.deg2rad(lon0_deg)
    dlon = np.mod(geom.lon - lon0 + np.pi, 2 * np.pi) - np.pi
    r2 = ((geom.lat - lat0) ** 2 + (np.cos(lat0) * dlon) ** 2) / width_rad**2
    out.T = out.T + amplitude_k * np.exp(-r2)[:, None]
    return out


def zonal_wind_error(state: ElementState, geom: ElementGeometry, u0: float) -> float:
    """Normalized max error of the zonal wind against the analytic jet."""
    mesh = geom.mesh
    u_sim, v_sim = mesh.contravariant_to_spherical(
        _full(state.v.mean(axis=1), geom, mesh)
    )
    u_exact = u0 * np.cos(mesh.lat)
    err = np.sqrt((u_sim - u_exact) ** 2 + v_sim**2)
    return float(err.max() / u0)


def _full(v_local: np.ndarray, geom: ElementGeometry, mesh) -> np.ndarray:
    """Scatter a rank-local (E, n, n, 2) array onto the full mesh."""
    if len(geom.elem_ids) == mesh.nelem:
        return v_local
    out = np.zeros((mesh.nelem,) + v_local.shape[1:])
    out[geom.elem_ids] = v_local
    return out
