"""``prim_run``: the full CAM-SE dynamics timestep.

One dynamics step is (CAM-SE structure, paper Section 6):

1. RK dynamics — N stages of :func:`compute_and_apply_rhs` (we use the
   3-stage second-order Runge--Kutta HOMME describes as "a combination
   of the RK2 and Leapfrog schemes");
2. tracer advection — :func:`euler_step` subcycled 3x;
3. hyperviscosity — :func:`advance_hypervis`;
4. every ``rsplit`` steps, :func:`vertical_remap` back to reference
   levels.

:class:`PrimitiveEquationModel` is the serial (whole-mesh) driver used
by the numerics tests, the physics experiments, and the Katrina runs;
the distributed form lives in :mod:`repro.homme.bndry` +
:mod:`repro.perf.scaling`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .. import constants as C
from ..config import ModelConfig
from ..errors import KernelError
from ..mesh.cubed_sphere import CubedSphereMesh
from ..obs.tracer import NULL_TRACER
from ..utils.logging import RunLog
from .element import ElementGeometry, ElementState
from .euler import euler_step_subcycled
from .hypervis import advance_hypervis, nu_for_ne
from .remap import vertical_remap
from .rhs import compute_and_apply_rhs
from . import diagnostics

#: Dynamics steps between vertical remaps (CAM-SE rsplit).
RSPLIT = 3

#: Forcing signature: f(state, geom, t, dt) -> None (modifies state in place).
ForcingFn = Callable[[ElementState, ElementGeometry, float, float], None]


class PrimitiveEquationModel:
    """Serial primitive-equation dynamical core on the cubed sphere.

    Parameters
    ----------
    cfg:
        Model configuration (ne, nlev, qsize, timestep).
    mesh:
        Optional pre-built mesh (shared across experiments).
    init:
        Initial condition: "isothermal" rest state, or a ready
        :class:`ElementState`.
    forcing:
        Optional physics callback applied after each dynamics step.
    dt:
        Override the CFL-derived dynamics timestep.
    tracer:
        Observability tracer (:mod:`repro.obs`).  The serial model has
        no simulated hardware clock, so its spans live on the *model
        time* axis: each step spans ``[t, t + dt]`` on the "serial"
        track, with schematic sub-spans for the RK stages, tracer
        advection, hyperviscosity, and remap phases.
    exec_path:
        Element-local kernel dispatch: ``"batched"`` (default — whole
        element stack per kernel call, memoized operator tensors) or
        ``"looped"`` (one dispatch per element, the pre-redesign
        discipline kept for cross-validation and benchmarking).  See
        :func:`repro.backends.functional_exec.homme_execution`.
    """

    def __init__(
        self,
        cfg: ModelConfig,
        mesh: CubedSphereMesh | None = None,
        init: str | ElementState = "isothermal",
        forcing: ForcingFn | None = None,
        dt: float | None = None,
        hypervis: bool = True,
        nu: float | None = None,
        phis: np.ndarray | None = None,
        tracer=None,
        exec_path: str = "batched",
    ) -> None:
        self.cfg = cfg
        self.mesh = mesh if mesh is not None else CubedSphereMesh(cfg.ne, cfg.np)
        if self.mesh.ne != cfg.ne:
            raise KernelError("mesh resolution disagrees with configuration")
        self.geom = ElementGeometry(self.mesh)
        if isinstance(init, ElementState):
            self.state = init
        elif init == "isothermal":
            self.state = ElementState.isothermal_rest(self.geom, cfg)
        else:
            raise KernelError(f"unknown initial condition {init!r}")
        self.state.check_consistent()
        self.forcing = forcing
        self.dt = dt if dt is not None else cfg.dt_dynamics
        self.hypervis = hypervis
        # Hyperviscosity scales with the *physical* grid spacing; on a
        # reduced-radius sphere the effective ne is larger by the same
        # factor the radius shrank.
        if nu is None:
            ne_eff = cfg.ne * C.EARTH_RADIUS / self.mesh.radius
            nu = nu_for_ne(max(2, int(round(ne_eff))))
        self.nu = nu
        self.phis = phis
        self.t = 0.0
        self.step_count = 0
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.log = RunLog("prim_run")
        # Imported lazily: backends.functional_exec imports repro.homme.
        from ..backends.functional_exec import homme_execution

        self.exec = homme_execution(exec_path)

    # -- one dynamics step ------------------------------------------------------

    def step(self) -> None:
        """Advance one dynamics timestep (RK3 + tracers + hypervis + remap)."""
        s0 = self.state
        dt = self.dt
        geom = self.geom
        ex = self.exec
        # 3-stage 2nd-order RK (HOMME's RK + leapfrog combination):
        # u1 = u0 + dt/3 f(u0); u2 = u0 + dt/2 f(u1); u = u0 + dt f(u2).
        s1 = compute_and_apply_rhs(s0, s0, geom, dt / 3.0, self.phis, ex.compute_rhs)
        s2 = compute_and_apply_rhs(s1, s0, geom, dt / 2.0, self.phis, ex.compute_rhs)
        s3 = compute_and_apply_rhs(s2, s0, geom, dt, self.phis, ex.compute_rhs)

        # Tracer advection on the updated winds (3 subcycles).
        s3.qdp = euler_step_subcycled(
            s3, geom, dt, subcycles=self.cfg.tracer_subcycles,
            path=ex.euler_path,
        )

        if self.hypervis:
            s3 = advance_hypervis(
                s3, geom, dt, self.cfg.ne, nu=self.nu,
                laplace_fn=ex.laplace_wk, vlaplace_fn=ex.vlaplace,
            )

        self.step_count += 1
        remapped = self.step_count % RSPLIT == 0
        if remapped:
            s3 = vertical_remap(s3)

        if self.tracer.enabled:
            self._trace_step(self.t, dt, remapped)
        self.t += dt
        if self.forcing is not None:
            self.forcing(s3, geom, self.t, dt)
        self.state = s3

    def _trace_step(self, t: float, dt: float, remapped: bool) -> None:
        """Schematic model-time spans for one serial step.

        The serial driver charges no simulated hardware clock, so phase
        sub-spans partition ``[t, t + dt]`` at fixed fractions — enough
        to see the step structure (and remap cadence) on a timeline.
        """
        tr = self.tracer
        tr.span_at("serial", "step", t, t + dt, cat="model",
                   step=self.step_count - 1)
        tr.span_at("serial", "compute_and_apply_rhs", t, t + 0.45 * dt,
                   cat="model")
        tr.span_at("serial", "euler_step", t + 0.45 * dt, t + 0.7 * dt,
                   cat="model")
        if self.hypervis:
            tr.span_at("serial", "hypervis", t + 0.7 * dt, t + 0.9 * dt,
                       cat="model")
        if remapped:
            tr.span_at("serial", "vertical_remap", t + 0.9 * dt, t + dt,
                       cat="model")

    def run_steps(self, n: int) -> None:
        """Advance ``n`` dynamics steps."""
        for _ in range(n):
            self.step()

    def run_days(self, days: float) -> None:
        """Advance the given number of simulated days."""
        n = int(round(days * C.SECONDS_PER_DAY / self.dt))
        self.run_steps(n)

    # -- diagnostics --------------------------------------------------------------

    def diagnostics(self) -> dict[str, float]:
        """Mass/energy/wind/ps diagnostics of the current state."""
        ps_min, ps_max = diagnostics.surface_pressure_range(self.state)
        return {
            "t_days": self.t / C.SECONDS_PER_DAY,
            "mass": diagnostics.total_mass(self.state, self.geom),
            "energy": diagnostics.total_energy(self.state, self.geom),
            "max_wind": diagnostics.max_wind(self.state, self.geom),
            "ps_min": ps_min,
            "ps_max": ps_max,
            "courant": diagnostics.courant_number(
                self.state, self.geom, self.dt, self.cfg.ne
            ),
            "finite": float(diagnostics.state_is_finite(self.state)),
        }
