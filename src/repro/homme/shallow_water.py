"""Shallow-water mode for verifying the spectral-element operators.

The shallow-water equations on the sphere share all the horizontal
machinery of the primitive equations (vector-invariant momentum,
flux-form continuity, DSS, hyperviscosity) without the vertical
dimension, and have analytic steady states.  Williamson et al. (1992)
test case 2 — steady geostrophic solid-body flow — is the standard
correctness check: a correct discretization keeps the height error
small for days.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as C
from ..mesh.cubed_sphere import CubedSphereMesh
from .element import ElementGeometry
from . import operators as op


@dataclass
class SWState:
    """Shallow-water prognostics: thickness h (E, n, n), wind v (E, n, n, 2)."""

    h: np.ndarray
    v: np.ndarray

    def copy(self) -> "SWState":
        return SWState(self.h.copy(), self.v.copy())


def williamson2_initial(mesh: CubedSphereMesh, u0: float = 2.0 * np.pi * C.EARTH_RADIUS / (12 * 86400)) -> SWState:
    """Steady geostrophic solid-body flow (Williamson case 2).

    u = u0 cos(lat); gh = gh0 - (R Omega u0 + u0^2/2) sin^2(lat).
    This is an exact steady solution, so any drift is discretization
    error.
    """
    gh0 = 2.94e4
    lat = mesh.lat
    u = u0 * np.cos(lat)
    v = np.zeros_like(u)
    gh = gh0 - (C.EARTH_RADIUS * C.EARTH_OMEGA * u0 + 0.5 * u0**2) * np.sin(lat) ** 2
    vc = mesh.spherical_to_contravariant(u, v)
    return SWState(h=gh / C.GRAVITY, v=vc)


def rossby_haurwitz_initial(mesh: CubedSphereMesh) -> SWState:
    """Rossby--Haurwitz wave (Williamson case 6, wavenumber 4).

    A steadily westward-propagating exact solution of the barotropic
    vorticity equation, the classic "does the dycore keep a coherent
    large-scale wave" test.  Standard parameters: omega = K = 7.848e-6
    1/s, h0 = 8000 m, R = 4.
    """
    w = 7.848e-6
    K = 7.848e-6
    h0 = 8000.0
    Rw = 4.0
    a = mesh.radius
    Om = C.EARTH_OMEGA
    lat, lon = mesh.lat, mesh.lon
    cl = np.cos(lat)

    u = a * w * cl + a * K * cl ** (Rw - 1) * (
        Rw * np.sin(lat) ** 2 - cl**2
    ) * np.cos(Rw * lon)
    v = -a * K * Rw * cl ** (Rw - 1) * np.sin(lat) * np.sin(Rw * lon)

    A = w / 2 * (2 * Om + w) * cl**2 + 0.25 * K**2 * cl ** (2 * Rw) * (
        (Rw + 1) * cl**2 + (2 * Rw**2 - Rw - 2) - 2 * Rw**2 * cl ** (-2)
    )
    B = (
        2 * (Om + w) * K / ((Rw + 1) * (Rw + 2)) * cl**Rw
        * ((Rw**2 + 2 * Rw + 2) - (Rw + 1) ** 2 * cl**2)
    )
    Cc = 0.25 * K**2 * cl ** (2 * Rw) * ((Rw + 1) * cl**2 - (Rw + 2))
    gh = C.GRAVITY * h0 + a**2 * (A + B * np.cos(Rw * lon) + Cc * np.cos(2 * Rw * lon))

    vc = mesh.spherical_to_contravariant(u, v)
    return SWState(h=gh / C.GRAVITY, v=vc)


def sw_compute_rhs(
    h: np.ndarray, v: np.ndarray, geom: ElementGeometry
) -> tuple[np.ndarray, np.ndarray]:
    """Element-local shallow-water tendencies (dh/dt, dv/dt), no DSS.

    The **batched** form: one call covers the whole element stack, with
    geometric factors from the memoized tensor cache.  The per-element
    twin is :func:`repro.homme.looped.sw_compute_rhs_looped`; both are
    timed against each other by ``repro.bench`` (the ne8 RK-step
    speedup committed in ``BENCH_homme.json``).
    """
    t = geom.tensors
    zeta = op.vorticity_sphere(v, geom, t)
    E = op.kinetic_energy(v, geom, t) + C.GRAVITY * h
    grad_E = op.gradient_sphere(E, geom, t)
    kxv = op.k_cross(v, geom, t)
    abs_vort = (zeta + geom.fcor)[..., None]
    dv = -abs_vort * kxv - grad_E
    dh = -op.divergence_sphere(v * h[..., None], geom, t)
    return dh, dv


class ShallowWaterModel:
    """SE shallow-water solver (RK3, optional hyperviscosity).

    ``exec_path`` selects how the element-local kernels (RHS and the
    hyperviscosity Laplacians) are dispatched: ``"batched"`` (default,
    whole element stack per call), ``"looped"`` (one call per element)
    or ``"fused"`` (single-pass contractions) — see
    :func:`repro.backends.functional_exec.homme_execution`.
    """

    def __init__(
        self,
        mesh: CubedSphereMesh,
        state: SWState | None = None,
        dt: float | None = None,
        nu: float = 0.0,
        exec_path: str = "batched",
    ) -> None:
        self.mesh = mesh
        self.geom = ElementGeometry(mesh)
        self.state = state if state is not None else williamson2_initial(mesh)
        # Gravity-wave CFL: c = sqrt(g h_max).
        if dt is None:
            c = float(np.sqrt(C.GRAVITY * self.state.h.max()))
            dx = 2 * np.pi * mesh.radius / (4 * mesh.ne * (mesh.np - 1))
            dt = 0.25 * dx / c
        self.dt = dt
        self.nu = nu
        self.t = 0.0
        self.exec_path = exec_path
        from ..backends.functional_exec import homme_execution
        from ..errors import KernelError

        try:
            self._exec = homme_execution(exec_path)
        except KernelError:
            # Model-construction contract predates the dispatch registry:
            # a bad path here is a config error, reported as ValueError.
            raise ValueError(f"unknown exec_path {exec_path!r}") from None
        self._rhs_fn = self._exec.sw_rhs

    def _rhs(self, s: SWState) -> tuple[np.ndarray, np.ndarray]:
        return self._rhs_fn(s.h, s.v, self.geom)

    def _stage(self, base: SWState, point: SWState, dt: float) -> SWState:
        dh, dv = self._rhs(point)
        return SWState(
            h=self.geom.dss(base.h + dt * dh),
            v=self.geom.dss_vector(base.v + dt * dv),
        )

    def step(self) -> None:
        """One RK3 step (same scheme as the primitive-equation driver)."""
        s0 = self.state
        s1 = self._stage(s0, s0, self.dt / 3.0)
        s2 = self._stage(s0, s1, self.dt / 2.0)
        s3 = self._stage(s0, s2, self.dt)
        if self.nu > 0:
            # Weak form: exactly mass-conserving under DSS.  The
            # Laplacians dispatch through the selected execution path.
            lap = self._exec.laplace_wk
            vlap = self._exec.vlaplace
            lap_h = self.geom.dss(lap(s3.h, self.geom))
            bih_h = self.geom.dss(lap(lap_h, self.geom))
            s3.h = s3.h - self.dt * self.nu * bih_h
            lap_v = self.geom.dss_vector(vlap(s3.v, self.geom))
            bih_v = self.geom.dss_vector(vlap(lap_v, self.geom))
            s3.v = s3.v - self.dt * self.nu * bih_v
        self.state = s3
        self.t += self.dt

    def run_hours(self, hours: float) -> None:
        n = int(round(hours * 3600.0 / self.dt))
        for _ in range(n):
            self.step()

    def height_l2_error(self, reference: SWState) -> float:
        """Normalized L2 height error against a reference state."""
        w = self.mesh.spheremp
        num = np.sum(w * (self.state.h - reference.h) ** 2)
        den = np.sum(w * reference.h**2)
        return float(np.sqrt(num / den))

    def total_mass(self) -> float:
        """Integral of h (conserved by the flux-form continuity + DSS)."""
        return float(np.sum(self.mesh.spheremp * self.state.h))
