"""Cached operator tensors for the batched spectral-element hot path.

The differential operators of :mod:`repro.homme.operators` need, on
every call, a family of small derived arrays: the transposed GLL
derivative matrix, reciprocals of the Jacobian and metric determinant,
the unpacked components of the metric tensor and its inverse, and the
weak-form quadrature factor ``metdet * w_p w_q * J^2``.  Rebuilding
them per call is pure overhead — they depend only on the mesh geometry,
which is fixed for the life of a run.  This module memoizes them as an
:class:`OperatorTensors` bundle on the element container
(:class:`~repro.homme.element.ElementGeometry.tensors`), the
Python-level analogue of the paper's Athread redesign keeping shared
metric tiles LDM-resident across the tracer loop (Section 7.3,
Algorithm 2) instead of re-reading them every iteration.

Cache invalidation rule (DESIGN.md §9): the bundle carries a CRC-32
fingerprint of the geometry arrays it was derived from
(``metdet``, ``met``, ``metinv``, ``spheremp``, ``D``).  Every access
through ``ElementGeometry.tensors`` re-hashes those sources and
rebuilds the bundle when the fingerprint differs, so in-place mutation
of the metric terms can never serve stale tensors; an explicit
:meth:`~repro.homme.element.ElementGeometry.invalidate_tensors` is
available when the caller already knows it mutated the geometry.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["OperatorTensors", "geometry_fingerprint", "build_tensors"]


def geometry_fingerprint(geom) -> int:
    """CRC-32 over the geometry arrays the operator tensors derive from.

    Exact (full-bytes) rather than sampled: the metric arrays are small
    (a few hundred KB at ne8) and hashing them costs microseconds next
    to one RK stage, so there is no window where a mutation can go
    unnoticed.
    """
    crc = 0
    for arr in (geom.metdet, geom.met, geom.metinv, geom.spheremp, geom.D):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


@dataclass(frozen=True)
class OperatorTensors:
    """Memoized per-mesh operator tensors (all read-only by convention).

    Components are unpacked from their (..., 2, 2) packing so the
    operators run on contiguous (E, np, np) planes with plain
    multiplies — no trailing-axis stride games, no divisions in the
    hot loop.
    """

    #: fingerprint of the source geometry arrays at build time
    token: int
    #: GLL derivative matrix (np, np) and its transpose (C-contiguous)
    D: np.ndarray
    Dt: np.ndarray
    #: reference-element Jacobian (scalar) and its reciprocal
    jac: float
    inv_jac: float
    #: metric determinant sqrt(g) and reciprocal, (E, np, np)
    metdet: np.ndarray
    inv_metdet: np.ndarray
    #: covariant metric components g_ij (symmetric), (E, np, np)
    met00: np.ndarray
    met01: np.ndarray
    met11: np.ndarray
    #: contravariant metric components g^ij (symmetric), (E, np, np)
    metinv00: np.ndarray
    metinv01: np.ndarray
    metinv11: np.ndarray
    #: spheremp and reciprocal, (E, np, np)
    spheremp: np.ndarray
    inv_spheremp: np.ndarray
    #: weak-form quadrature factor metdet * (w_p w_q) * J^2, (E, np, np)
    wk_fac: np.ndarray
    #: broadcast-view cache keyed by (array id, extra middle axes)
    _bcache: dict = field(default_factory=dict, repr=False, compare=False)

    def bshape(self, geom_arr: np.ndarray, scalar_ref: np.ndarray) -> np.ndarray:
        """Broadcast a (E, np, np) tensor against a field (E, ..., np, np).

        Returns a reshaped *view* with singleton middle axes inserted
        after E; views are memoized so repeated calls in a kernel cost
        one dict lookup.
        """
        extra = scalar_ref.ndim - 3
        if extra <= 0:
            return geom_arr
        key = (id(geom_arr), extra)
        view = self._bcache.get(key)
        if view is None:
            shape = (geom_arr.shape[0],) + (1,) * extra + geom_arr.shape[1:]
            view = geom_arr.reshape(shape)
            self._bcache[key] = view
        return view


def build_tensors(geom) -> OperatorTensors:
    """Derive the full tensor bundle from an element geometry."""
    D = np.ascontiguousarray(geom.D)
    met = geom.met
    metinv = geom.metinv
    metdet = geom.metdet
    spheremp = geom.spheremp
    jac = float(geom.jac)
    w = geom.mesh.gll_w
    wpwq = w[:, None] * w[None, :]
    return OperatorTensors(
        token=geometry_fingerprint(geom),
        D=D,
        Dt=np.ascontiguousarray(D.T),
        jac=jac,
        inv_jac=1.0 / jac,
        metdet=metdet,
        inv_metdet=1.0 / metdet,
        met00=np.ascontiguousarray(met[..., 0, 0]),
        met01=np.ascontiguousarray(met[..., 0, 1]),
        met11=np.ascontiguousarray(met[..., 1, 1]),
        metinv00=np.ascontiguousarray(metinv[..., 0, 0]),
        metinv01=np.ascontiguousarray(metinv[..., 0, 1]),
        metinv11=np.ascontiguousarray(metinv[..., 1, 1]),
        spheremp=spheremp,
        inv_spheremp=1.0 / spheremp,
        wk_fac=metdet * wpwq[None, :, :] * jac**2,
    )
