"""Cached operator tensors for the batched spectral-element hot path.

The differential operators of :mod:`repro.homme.operators` need, on
every call, a family of small derived arrays: the transposed GLL
derivative matrix, reciprocals of the Jacobian and metric determinant,
the unpacked components of the metric tensor and its inverse, and the
weak-form quadrature factor ``metdet * w_p w_q * J^2``.  Rebuilding
them per call is pure overhead — they depend only on the mesh geometry,
which is fixed for the life of a run.  This module memoizes them as an
:class:`OperatorTensors` bundle on the element container
(:class:`~repro.homme.element.ElementGeometry.tensors`), the
Python-level analogue of the paper's Athread redesign keeping shared
metric tiles LDM-resident across the tracer loop (Section 7.3,
Algorithm 2) instead of re-reading them every iteration.

Cache invalidation rule (DESIGN.md §9): the bundle carries a CRC-32
fingerprint of the geometry arrays it was derived from
(``metdet``, ``met``, ``metinv``, ``spheremp``, ``D``).  Every access
through ``ElementGeometry.tensors`` re-hashes those sources and
rebuilds the bundle when the fingerprint differs, so in-place mutation
of the metric terms can never serve stale tensors; an explicit
:meth:`~repro.homme.element.ElementGeometry.invalidate_tensors` is
available when the caller already knows it mutated the geometry.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FusedOperands",
    "OperatorTensors",
    "build_fused_operands",
    "build_tensors",
    "geometry_fingerprint",
]

#: Compute dtypes the fused path supports; anything else falls back to
#: float64 (the fused kernels never compute in integer arithmetic).
FUSED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def geometry_fingerprint(geom) -> int:
    """CRC-32 over the geometry arrays the operator tensors derive from.

    Exact (full-bytes) rather than sampled: the metric arrays are small
    (a few hundred KB at ne8) and hashing them costs microseconds next
    to one RK stage, so there is no window where a mutation can go
    unnoticed.
    """
    crc = 0
    for arr in (geom.metdet, geom.met, geom.metinv, geom.spheremp, geom.D):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


@dataclass(frozen=True)
class OperatorTensors:
    """Memoized per-mesh operator tensors (all read-only by convention).

    Components are unpacked from their (..., 2, 2) packing so the
    operators run on contiguous (E, np, np) planes with plain
    multiplies — no trailing-axis stride games, no divisions in the
    hot loop.
    """

    #: fingerprint of the source geometry arrays at build time
    token: int
    #: GLL derivative matrix (np, np) and its transpose (C-contiguous)
    D: np.ndarray
    Dt: np.ndarray
    #: reference-element Jacobian (scalar) and its reciprocal
    jac: float
    inv_jac: float
    #: metric determinant sqrt(g) and reciprocal, (E, np, np)
    metdet: np.ndarray
    inv_metdet: np.ndarray
    #: covariant metric components g_ij (symmetric), (E, np, np)
    met00: np.ndarray
    met01: np.ndarray
    met11: np.ndarray
    #: contravariant metric components g^ij (symmetric), (E, np, np)
    metinv00: np.ndarray
    metinv01: np.ndarray
    metinv11: np.ndarray
    #: spheremp and reciprocal, (E, np, np)
    spheremp: np.ndarray
    inv_spheremp: np.ndarray
    #: weak-form quadrature factor metdet * (w_p w_q) * J^2, (E, np, np)
    wk_fac: np.ndarray
    #: broadcast-view cache keyed by (array id, extra middle axes)
    _bcache: dict = field(default_factory=dict, repr=False, compare=False)
    #: fused contraction-operand bundles keyed by compute dtype
    _fused: dict = field(default_factory=dict, repr=False, compare=False)

    def fused(self, dtype=np.float64) -> "FusedOperands":
        """Memoized fused contraction operands for a compute dtype.

        The folded planes (``wk_fac * metinv * inv_jac`` etc.) depend
        only on the geometry this bundle was built from, so they are
        assembled once per (mesh, dtype) and cached here; geometry
        mutation invalidates them together with the parent bundle
        through the fingerprint check on ``ElementGeometry.tensors``.
        """
        dt = np.dtype(dtype)
        if dt not in FUSED_DTYPES:
            dt = np.dtype(np.float64)
        ops = self._fused.get(dt)
        if ops is None:
            ops = build_fused_operands(self, dt)
            self._fused[dt] = ops
        return ops

    def bshape(self, geom_arr: np.ndarray, scalar_ref: np.ndarray) -> np.ndarray:
        """Broadcast a (E, np, np) tensor against a field (E, ..., np, np).

        Returns a reshaped *view* with singleton middle axes inserted
        after E; views are memoized so repeated calls in a kernel cost
        one dict lookup.
        """
        extra = scalar_ref.ndim - 3
        if extra <= 0:
            return geom_arr
        key = (id(geom_arr), extra)
        view = self._bcache.get(key)
        if view is None:
            shape = (geom_arr.shape[0],) + (1,) * extra + geom_arr.shape[1:]
            view = geom_arr.reshape(shape)
            self._bcache[key] = view
        return view

    @property
    def nbytes(self) -> int:
        """Resident bytes of this bundle's unique arrays.

        Counts the operator planes plus any fused bundles built from
        them; the ``_bcache`` reshape views alias arrays already counted
        and are excluded.  This is the per-shard footprint the sharded
        ownership accounting sums per worker.
        """
        planes = (
            self.D, self.Dt, self.metdet, self.inv_metdet,
            self.met00, self.met01, self.met11,
            self.metinv00, self.metinv01, self.metinv11,
            self.spheremp, self.inv_spheremp, self.wk_fac,
        )
        return sum(int(p.nbytes) for p in planes) + sum(
            f.nbytes for f in self._fused.values()
        )


def build_tensors(geom) -> OperatorTensors:
    """Derive the full tensor bundle from an element geometry."""
    D = np.ascontiguousarray(geom.D)
    met = geom.met
    metinv = geom.metinv
    metdet = geom.metdet
    spheremp = geom.spheremp
    jac = float(geom.jac)
    w = geom.mesh.gll_w
    wpwq = w[:, None] * w[None, :]
    return OperatorTensors(
        token=geometry_fingerprint(geom),
        D=D,
        Dt=np.ascontiguousarray(D.T),
        jac=jac,
        inv_jac=1.0 / jac,
        metdet=metdet,
        inv_metdet=1.0 / metdet,
        met00=np.ascontiguousarray(met[..., 0, 0]),
        met01=np.ascontiguousarray(met[..., 0, 1]),
        met11=np.ascontiguousarray(met[..., 1, 1]),
        metinv00=np.ascontiguousarray(metinv[..., 0, 0]),
        metinv01=np.ascontiguousarray(metinv[..., 0, 1]),
        metinv11=np.ascontiguousarray(metinv[..., 1, 1]),
        spheremp=spheremp,
        inv_spheremp=1.0 / spheremp,
        wk_fac=metdet * wpwq[None, :, :] * jac**2,
    )


@dataclass(frozen=True)
class FusedOperands:
    """Preassembled contraction operands for :mod:`repro.homme.fused`.

    Where the batched operators apply the Jacobian, metric and
    quadrature factors as separate elementwise passes after each
    derivative matmul, the fused kernels contract against planes with
    those factors **folded in once per mesh** (DESIGN.md §14):

    - ``mi__j``  = ``metinv__ * inv_jac`` — contravariant gradient in
      one multiply-add per component;
    - ``wk__``   = ``wk_fac * metinv__ * inv_jac`` — the whole first
      pass of the weak Laplacian;
    - ``wk_out`` = ``-(inv_jac * inv_spheremp)`` — its output scaling;
    - ``imdj``   = ``inv_metdet * inv_jac`` — divergence / vorticity
      normalization, and the analytic ``k x grad(zeta)`` factor
      (``g . g^{-1}`` cancels exactly, so the vector Laplacian never
      round-trips through the metric).

    All planes are stored in the bundle's compute ``dtype`` (float64 or
    the optional float32 mode), assembled in float64 and cast once.
    """

    #: compute dtype of every array in the bundle
    dtype: np.dtype
    #: GLL derivative matrix and transpose in the compute dtype
    D: np.ndarray
    Dt: np.ndarray
    #: reciprocal reference-element Jacobian (python float: scalar
    #: multiplies never promote the arrays under NEP 50)
    inv_jac: float
    #: metinv * inv_jac planes (contravariant gradient), (E, np, np)
    mi00j: np.ndarray
    mi01j: np.ndarray
    mi11j: np.ndarray
    #: wk_fac * metinv * inv_jac planes (weak-Laplacian first pass)
    wk00: np.ndarray
    wk01: np.ndarray
    wk11: np.ndarray
    #: -(inv_jac * inv_spheremp) (weak-Laplacian output scaling)
    wk_out: np.ndarray
    #: covariant metric planes g_ij
    met00: np.ndarray
    met01: np.ndarray
    met11: np.ndarray
    #: sqrt(g), 1/sqrt(g) and inv_metdet * inv_jac
    metdet: np.ndarray
    inv_metdet: np.ndarray
    imdj: np.ndarray
    #: Kronecker-lifted GLL derivative operators, (np^2, np^2).  A GLL
    #: derivative is a tiny (np, np) matmul batched over thousands of
    #: planes, which numpy executes as a slow per-plane loop; lifting
    #: the operator to the flattened (i, j) point index turns each
    #: derivative into ONE 2D BLAS GEMM over all elements and levels
    #: (``X.reshape(-1, np^2) @ k__``), ~4x faster at bench shapes.
    #: kda: d/dalpha (X @ Dt); kdb: d/dbeta (D @ X);
    #: kwa: weak-form alpha (X @ D); kwb: weak-form beta (Dt @ X).
    kda: np.ndarray
    kdb: np.ndarray
    kwa: np.ndarray
    kwb: np.ndarray
    #: expanded-plane cache keyed by (array id, target shape)
    _bcache: dict = field(default_factory=dict, repr=False, compare=False)

    def da(self, X: np.ndarray) -> np.ndarray:
        """d/dalpha (``X @ Dt``) of (..., np, np) via one 2D GEMM."""
        nn = self.kda.shape[0]
        return np.matmul(X.reshape(-1, nn), self.kda).reshape(X.shape)

    def db(self, X: np.ndarray) -> np.ndarray:
        """d/dbeta (``D @ X``) of (..., np, np) via one 2D GEMM."""
        nn = self.kdb.shape[0]
        return np.matmul(X.reshape(-1, nn), self.kdb).reshape(X.shape)

    def wa(self, X: np.ndarray) -> np.ndarray:
        """Weak-form alpha transpose (``X @ D``) via one 2D GEMM."""
        nn = self.kwa.shape[0]
        return np.matmul(X.reshape(-1, nn), self.kwa).reshape(X.shape)

    def wb(self, X: np.ndarray) -> np.ndarray:
        """Weak-form beta transpose (``Dt @ X``) via one 2D GEMM."""
        nn = self.kwb.shape[0]
        return np.matmul(X.reshape(-1, nn), self.kwb).reshape(X.shape)

    def bshape(self, geom_arr: np.ndarray, scalar_ref: np.ndarray) -> np.ndarray:
        """Expand a (E, np, np) plane to ``scalar_ref``'s shape; memoized.

        Unlike the batched path's singleton-axis broadcast views, the
        fused kernels contract against **materialized contiguous**
        planes: a strided ``(E, 1, np, np)`` operand forces every
        elementwise op onto numpy's slow per-stride inner loop (~7x the
        contiguous cost at the bench shapes), which would eat the whole
        fusion win.  The expansion is cached per (plane, target shape)
        — a handful of level-replicated copies per mesh.  Callers must
        treat the result as read-only (it is shared across calls).
        """
        extra = scalar_ref.ndim - 3
        if extra <= 0:
            return geom_arr
        target = (geom_arr.shape[0],) + scalar_ref.shape[1:-2] + geom_arr.shape[1:]
        key = (id(geom_arr), target)
        entry = self._bcache.get(key)
        if entry is None:
            shape = (geom_arr.shape[0],) + (1,) * extra + geom_arr.shape[1:]
            out = np.ascontiguousarray(
                np.broadcast_to(geom_arr.reshape(shape), target), dtype=self.dtype
            )
            # Pin the source array: the key is its id(), which could
            # otherwise be recycled after garbage collection.  Only
            # mesh-constant planes may be passed here (the expansion is
            # cached forever and shared across calls).
            entry = (geom_arr, out)
            self._bcache[key] = entry
        return entry[1]

    @property
    def nbytes(self) -> int:
        """Resident bytes of this bundle's unique arrays.

        Counts every ndarray field plus the materialized expansion
        cache (its ``out`` copies are real memory; the pinned sources
        alias planes already counted and are skipped via ``id``).
        """
        import dataclasses

        seen: set[int] = set()
        total = 0
        for f in dataclasses.fields(self):
            v = getattr(self, f.name)
            if isinstance(v, np.ndarray) and id(v) not in seen:
                seen.add(id(v))
                total += int(v.nbytes)
        for _src, out in self._bcache.values():
            if id(out) not in seen:
                seen.add(id(out))
                total += int(out.nbytes)
        return total


def build_fused_operands(t: OperatorTensors, dtype=np.float64) -> FusedOperands:
    """Fold the metric/quadrature factors into contraction operands.

    Assembled in float64 regardless of the target dtype so the float32
    mode carries one rounding (the final cast), not a chain of them.
    """
    dt = np.dtype(dtype)

    def cast(a: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(a, dtype=dt)

    ij = t.inv_jac
    eye = np.eye(t.D.shape[0])
    return FusedOperands(
        dtype=dt,
        D=cast(t.D),
        Dt=cast(t.Dt),
        inv_jac=float(ij),
        mi00j=cast(t.metinv00 * ij),
        mi01j=cast(t.metinv01 * ij),
        mi11j=cast(t.metinv11 * ij),
        wk00=cast(t.wk_fac * t.metinv00 * ij),
        wk01=cast(t.wk_fac * t.metinv01 * ij),
        wk11=cast(t.wk_fac * t.metinv11 * ij),
        wk_out=cast(-(ij * t.inv_spheremp)),
        met00=cast(t.met00),
        met01=cast(t.met01),
        met11=cast(t.met11),
        metdet=cast(t.metdet),
        inv_metdet=cast(t.inv_metdet),
        imdj=cast(t.inv_metdet * ij),
        kda=cast(np.kron(eye, t.Dt)),
        kdb=cast(np.kron(t.Dt, eye)),
        kwa=cast(np.kron(eye, t.D)),
        kwb=cast(np.kron(t.D, eye)),
    )
