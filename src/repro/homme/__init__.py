"""The HOMME / CAM-SE spectral-element dynamical core.

Real numerics for every kernel in the paper's Table 1:

- :mod:`~repro.homme.rhs` — ``compute_and_apply_rhs``: one Runge--Kutta
  stage of the hydrostatic primitive equations on floating Lagrangian
  levels (vector-invariant momentum, layer continuity, thermodynamic
  equation), including the vertical pressure scan the register-
  communication scheme parallelizes;
- :mod:`~repro.homme.euler` — ``euler_step``: SSP-RK2 tracer advection
  with a monotone limiter, subcycled 3x per dynamics step;
- :mod:`~repro.homme.remap` — ``vertical_remap``: conservative monotone
  PPM remap back to reference hybrid levels;
- :mod:`~repro.homme.hypervis` — ``hypervis_dp1/dp2`` and
  ``biharmonic_dp3d``: scalar/vector hyperviscosity via repeated weak
  Laplacians with DSS;
- :mod:`~repro.homme.bndry` — ``bndry_exchangev``: the halo exchange in
  both the classic (pack-buffer, no overlap) and redesigned
  (inner/boundary split, overlap, direct unpack) forms;
- :mod:`~repro.homme.timestep` — ``prim_run``: the full dynamics loop;
- :mod:`~repro.homme.shallow_water` — a shallow-water mode used to
  verify the spectral operators against analytic solutions.
"""

from .element import ElementGeometry, ElementState
from .timestep import PrimitiveEquationModel

__all__ = ["ElementGeometry", "ElementState", "PrimitiveEquationModel"]
