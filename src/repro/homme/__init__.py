"""The HOMME / CAM-SE spectral-element dynamical core.

Real numerics for every kernel in the paper's Table 1:

- :mod:`~repro.homme.rhs` — ``compute_and_apply_rhs``: one Runge--Kutta
  stage of the hydrostatic primitive equations on floating Lagrangian
  levels (vector-invariant momentum, layer continuity, thermodynamic
  equation), including the vertical pressure scan the register-
  communication scheme parallelizes;
- :mod:`~repro.homme.euler` — ``euler_step``: SSP-RK2 tracer advection
  with a monotone limiter, subcycled 3x per dynamics step;
- :mod:`~repro.homme.remap` — ``vertical_remap``: conservative monotone
  PPM remap back to reference hybrid levels;
- :mod:`~repro.homme.hypervis` — ``hypervis_dp1/dp2`` and
  ``biharmonic_dp3d``: scalar/vector hyperviscosity via repeated weak
  Laplacians with DSS;
- :mod:`~repro.homme.bndry` — ``bndry_exchangev``: the halo exchange in
  both the classic (pack-buffer, no overlap) and redesigned
  (inner/boundary split, overlap, direct unpack) forms;
- :mod:`~repro.homme.timestep` — ``prim_run``: the full dynamics loop;
- :mod:`~repro.homme.shallow_water` — a shallow-water mode used to
  verify the spectral operators against analytic solutions.

Execution paths.  The hot path is *element-batched*: every operator in
:mod:`~repro.homme.operators` acts on whole stacked ``(nelem, np, np,
...)`` arrays in single numpy calls, reading precomputed per-mesh
operator tensors cached on the geometry (:mod:`~repro.homme.tensors`,
invalidated by metric-term fingerprint).  :mod:`~repro.homme.looped`
is the per-element dispatch twin — one Python-level call per element,
the analogue of the paper's coarse-grained OpenACC dispatch versus the
Athread whole-stack execution — kept solely so the two paths can be
cross-validated to 1e-12 and benchmarked against each other
(``repro.bench``).  Select a path via
:func:`repro.backends.functional_exec.homme_execution` or the
``exec_path`` argument of the model classes.
"""

from .element import ElementGeometry, ElementState
from .timestep import PrimitiveEquationModel

__all__ = ["ElementGeometry", "ElementState", "PrimitiveEquationModel"]
