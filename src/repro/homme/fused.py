"""Fused BLAS-contraction fast path for the HOMME hot chains.

The batched operators in :mod:`repro.homme.operators` are already
single-dispatch per kernel, but each *chain* (RHS, weak Laplacian,
vector Laplacian, tracer stage) still materializes a full
``(E, ..., np, np)`` intermediate per operator call — ``gradient_sphere``
writes a strided ``(..., 2)`` stack that ``divergence_sphere``
immediately re-reads, the vector Laplacian multiplies by the metric and
then by its inverse, and the metric/Jacobian/quadrature factors are
applied as separate elementwise passes after every derivative matmul.

This module is the Python-level analogue of the paper's fine-grained
Athread rewrite (Section 7.3): each chain becomes **one pass** over the
stacked layout, contracting against per-mesh operands with the scalings
folded in once (:class:`~repro.homme.tensors.FusedOperands`, cached on
``OperatorTensors``), sharing intermediates across the chain
(covariant winds feed both vorticity and kinetic energy; the pressure
derivatives feed both the contravariant and covariant gradients;
``div(v dp)`` is computed once for omega/p and the continuity
tendency), and working on structure-of-arrays component planes
(:class:`StatePack`) instead of trailing-axis ``(..., 2)`` stacks.

Two analytic simplifications keep the operation count down without
changing the math:

- ``k x grad(zeta)`` in the vector Laplacian: the covariant components
  of a contravariant gradient are the bare coordinate derivatives
  (``g . g^{-1}`` cancels), so
  ``(k x grad zeta)^1 = -d_beta(zeta) / (sqrt(g) J)`` and
  ``(k x grad zeta)^2 = +d_alpha(zeta) / (sqrt(g) J)`` — no metric
  round-trip;
- the weak-Laplacian first pass contracts directly against
  ``wk_fac * metinv * inv_jac`` planes.

Everything here is cross-validated against the batched path to 1e-12
(``tests/test_exec_paths.py``) and registered as the third execution
path (``exec_path="fused"``) in
:func:`repro.backends.functional_exec.homme_execution`.

An optional float32 compute mode (``dtype=np.float32``) runs the same
fused contractions in single precision against operands cast once per
mesh; :func:`cross_validate_fused` checks it against float64 (policy in
DESIGN.md §14).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as C
from .element import ElementGeometry, ElementState
from .tensors import FUSED_DTYPES, FusedOperands, OperatorTensors
from .rhs import PTOP

__all__ = [
    "StatePack",
    "advect_qdp_all_fused",
    "advect_qdp_fused",
    "compute_rhs_fused",
    "cross_validate_fused",
    "fold_velocity",
    "laplace_sphere_wk_fused",
    "sw_compute_rhs_fused",
    "vlaplace_sphere_fused",
]


def _operands(
    geom: ElementGeometry,
    tensors: OperatorTensors | None,
    ref: np.ndarray,
    dtype,
) -> FusedOperands:
    """Resolve the fused operand bundle for a call.

    ``dtype=None`` computes in the input field's dtype (float64 for all
    the standard model states); non-float dtypes fall back to float64.
    """
    t = tensors if tensors is not None else geom.tensors
    dt = np.dtype(dtype) if dtype is not None else np.dtype(ref.dtype)
    if dt not in FUSED_DTYPES:
        dt = np.dtype(np.float64)
    return t.fused(dt)


def _as(arr: np.ndarray, f: FusedOperands) -> np.ndarray:
    """View/cast an input field to the bundle's compute dtype."""
    return arr.astype(f.dtype, copy=False)


def _split_v(v: np.ndarray, f: FusedOperands) -> tuple[np.ndarray, np.ndarray]:
    """SoA component planes from a trailing-axis (..., 2) vector field."""
    return (
        np.ascontiguousarray(v[..., 0], dtype=f.dtype),
        np.ascontiguousarray(v[..., 1], dtype=f.dtype),
    )


@dataclass(frozen=True)
class StatePack:
    """Structure-of-arrays pack of the prognostic fields.

    The AoS ``(..., 2)`` wind layout is what forces the batched
    operators into strided reads; packing once per RHS evaluation gives
    every downstream contraction contiguous ``(E, L, np, np)`` planes
    (and performs the single cast of the optional float32 mode).
    """

    v1: np.ndarray
    v2: np.ndarray
    T: np.ndarray
    dp3d: np.ndarray

    @classmethod
    def from_state(cls, state: ElementState, dtype=np.float64) -> "StatePack":
        dt = np.dtype(dtype)
        return cls(
            v1=np.ascontiguousarray(state.v[..., 0], dtype=dt),
            v2=np.ascontiguousarray(state.v[..., 1], dtype=dt),
            T=np.ascontiguousarray(state.T, dtype=dt),
            dp3d=np.ascontiguousarray(state.dp3d, dtype=dt),
        )


# ---------------------------------------------------------------------------
# Fused hyperviscosity kernels
# ---------------------------------------------------------------------------

def laplace_sphere_wk_fused(
    s: np.ndarray,
    geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
    dtype=None,
) -> np.ndarray:
    """Weak Laplacian as one fused contraction pass.

    Matches :func:`repro.homme.operators.laplace_sphere_wk` to roundoff:
    four matmuls plus folded-plane multiply-adds, no gradient stack.
    """
    f = _operands(geom, tensors, s, dtype)
    s = _as(s, f)
    da = f.da(s)
    db = f.db(s)
    w00 = f.bshape(f.wk00, s)
    w01 = f.bshape(f.wk01, s)
    w11 = f.bshape(f.wk11, s)
    G1 = w00 * da
    G1 += w01 * db
    da *= w01
    db *= w11
    da += db
    out = f.wa(G1)
    out += f.wb(da)
    out *= f.bshape(f.wk_out, s)
    return out


def vlaplace_sphere_fused(
    v: np.ndarray,
    geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
    dtype=None,
) -> np.ndarray:
    """Vector Laplacian grad(div v) - k x grad(zeta), fused.

    Shares the covariant wind components between the divergence and the
    vorticity, and uses the analytic cancellation
    ``(k x grad zeta)^i = (-d_beta zeta, +d_alpha zeta) / (sqrt(g) J)``
    instead of the batched path's metric round-trip.
    """
    f = _operands(geom, tensors, v, dtype)
    v1, v2 = _split_v(v, f)
    md = f.bshape(f.metdet, v1)
    m00 = f.bshape(f.met00, v1)
    m01 = f.bshape(f.met01, v1)
    m11 = f.bshape(f.met11, v1)
    imdj = f.bshape(f.imdj, v1)

    vc1 = m00 * v1
    vc1 += m01 * v2
    vc2 = m01 * v1
    vc2 += m11 * v2

    div = md * v1
    div = f.da(div)
    mv2 = md * v2
    div += f.db(mv2)
    div *= imdj
    zeta = f.da(vc2)
    zeta -= f.db(vc1)
    zeta *= imdj

    dda = f.da(div)
    ddb = f.db(div)
    dza = f.da(zeta)
    dzb = f.db(zeta)

    mi00 = f.bshape(f.mi00j, v1)
    mi01 = f.bshape(f.mi01j, v1)
    mi11 = f.bshape(f.mi11j, v1)
    out = np.empty(v1.shape + (2,), dtype=f.dtype)
    o1 = mi00 * dda
    o1 += mi01 * ddb
    dzb *= imdj
    o1 += dzb
    o2 = mi01 * dda
    o2 += mi11 * ddb
    dza *= imdj
    o2 -= dza
    out[..., 0] = o1
    out[..., 1] = o2
    return out


# ---------------------------------------------------------------------------
# Fused RHS chains
# ---------------------------------------------------------------------------

def sw_compute_rhs_fused(
    h: np.ndarray,
    v: np.ndarray,
    geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
    dtype=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shallow-water tendencies in one fused pass.

    The covariant wind components feed vorticity, kinetic energy *and*
    the rotational term ``-(zeta + f) k x v`` (whose contravariant
    components are ``(+vc2, -vc1) / sqrt(g)``), so the metric is applied
    exactly once.
    """
    f = _operands(geom, tensors, h, dtype)
    h = _as(h, f)
    v1, v2 = _split_v(v, f)
    md = f.bshape(f.metdet, h)
    imd = f.bshape(f.inv_metdet, h)
    imdj = f.bshape(f.imdj, h)
    m00 = f.bshape(f.met00, h)
    m01 = f.bshape(f.met01, h)
    m11 = f.bshape(f.met11, h)

    vc1 = m00 * v1
    vc1 += m01 * v2
    vc2 = m01 * v1
    vc2 += m11 * v2

    # Energy E = 0.5 g_ij v^i v^j + g h and its derivatives.
    E = vc1 * v1
    E += vc2 * v2
    E *= 0.5
    E += C.GRAVITY * h
    dEa = f.da(E)
    dEb = f.db(E)

    zeta = f.da(vc2)
    zeta -= f.db(vc1)
    zeta *= imdj

    fcor = geom.fcor if f.dtype == np.float64 else geom.fcor.astype(f.dtype)
    avort = zeta
    avort += fcor
    avort *= imd

    mi00 = f.bshape(f.mi00j, h)
    mi01 = f.bshape(f.mi01j, h)
    mi11 = f.bshape(f.mi11j, h)
    dv = np.empty(v1.shape + (2,), dtype=f.dtype)
    g1 = mi00 * dEa
    g1 += mi01 * dEb
    dEa *= mi01
    dEb *= mi11
    dEa += dEb
    # The covariant winds are free after the gradient assembly: fold
    # the rotational term into them in place.
    vc2 *= avort
    vc2 -= g1
    dv[..., 0] = vc2
    vc1 *= avort
    vc1 += dEa
    np.negative(vc1, out=vc1)
    dv[..., 1] = vc1

    mh = md * h
    dh = mh * v1
    dh = f.da(dh)
    mh *= v2
    dh += f.db(mh)
    dh *= imdj
    np.negative(dh, out=dh)
    return dh, dv


def compute_rhs_fused(
    state: ElementState,
    geom: ElementGeometry,
    phis: np.ndarray | None = None,
    tensors: OperatorTensors | None = None,
    dtype=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Primitive-equation tendencies (dv, dT, ddp) as one fused pass.

    Same math as :func:`repro.homme.rhs.compute_rhs`, restructured so
    shared intermediates are computed once: the three scalar fields
    needing derivatives (E + Phi, p_mid, T) go through the GLL matmuls
    as a single stacked batch; the pressure derivatives serve both the
    contravariant ``grad(p)`` in the momentum equation and the
    covariant ``v . grad(p)`` in omega; ``div(v dp)`` serves both the
    omega column scan and the continuity tendency.
    """
    state.check_consistent()
    f = _operands(geom, tensors, state.T, dtype)
    pk = StatePack.from_state(state, f.dtype)
    v1, v2, T, dp3d = pk.v1, pk.v2, pk.T, pk.dp3d

    md = f.bshape(f.metdet, T)
    imd = f.bshape(f.inv_metdet, T)
    imdj = f.bshape(f.imdj, T)
    m00 = f.bshape(f.met00, T)
    m01 = f.bshape(f.met01, T)
    m11 = f.bshape(f.met11, T)
    mi00 = f.bshape(f.mi00j, T)
    mi01 = f.bshape(f.mi01j, T)
    mi11 = f.bshape(f.mi11j, T)

    # Vertical scans (cheap, column-sequential — the register-communication
    # kernels of Section 7.4), kept in the compute dtype.
    p_mid = np.cumsum(dp3d, axis=1)
    p_mid -= 0.5 * dp3d
    p_mid += PTOP

    # Hydrostatic geopotential, inlined so rt_over_p = R T / p (needed
    # by the momentum equation anyway) is computed once, and the
    # below-level suffix sum comes from one contiguous cumsum
    # (total - inclusive prefix) instead of a flip/cumsum/flip.
    rt_over_p = C.R_DRY * T
    rt_over_p /= p_mid
    rt = rt_over_p * dp3d
    phi = np.cumsum(rt, axis=1)
    total = phi[:, -1:].copy()
    np.subtract(total, phi, out=phi)
    rt *= 0.5
    phi += rt
    if phis is not None:
        phi += f.bshape(phis, T)

    vc1 = m00 * v1
    vc1 += m01 * v2
    vc2 = m01 * v1
    vc2 += m11 * v2

    # E + Phi, p_mid and T share one stacked derivative GEMM per side;
    # phi's buffer becomes E + Phi in place.
    ke = vc1 * v1
    ke += vc2 * v2
    ke *= 0.5
    phi += ke
    S = np.stack([phi, p_mid, T])
    Sa = f.da(S)
    Sb = f.db(S)
    dEa, dpa, dTa = Sa[0], Sa[1], Sa[2]
    dEb, dpb, dTb = Sb[0], Sb[1], Sb[2]

    zeta = f.da(vc2)
    zeta -= f.db(vc1)
    zeta *= imdj
    avort = zeta
    avort += f.bshape(geom.fcor, T)
    avort *= imd

    # div(v dp) once, for both the omega column scan and continuity.
    vdp = v1 * dp3d
    vdp *= md
    divdp = f.da(vdp)
    np.multiply(v2, dp3d, out=vdp)
    vdp *= md
    divdp += f.db(vdp)
    divdp *= imdj

    # omega/p and dT before the pressure/temperature derivatives are
    # consumed in place by the momentum assembly below.
    vgradp = v1 * dpa
    vgradp += v2 * dpb
    vgradp *= f.inv_jac
    above = np.cumsum(divdp, axis=1)
    vgradp -= above
    np.multiply(divdp, 0.5, out=above)
    vgradp += above
    vgradp /= p_mid
    omega_p = vgradp

    v_dot_gradT = v1 * dTa
    v_dot_gradT += v2 * dTb
    v_dot_gradT *= f.inv_jac
    omega_p *= T
    omega_p *= C.KAPPA
    omega_p -= v_dot_gradT
    dT = omega_p

    # Covariant total gradient F = grad(E + Phi) + (R T / p) grad(p):
    # the metinv contraction factors, so apply it once to F.
    dpa *= rt_over_p
    dpa += dEa
    dpb *= rt_over_p
    dpb += dEb
    G1 = mi00 * dpa
    G1 += mi01 * dpb
    dpa *= mi01
    dpb *= mi11
    dpa += dpb
    dv = np.empty(v1.shape + (2,), dtype=f.dtype)
    vc2 *= avort
    vc2 -= G1
    dv[..., 0] = vc2
    vc1 *= avort
    vc1 += dpa
    np.negative(vc1, out=vc1)
    dv[..., 1] = vc1

    ddp = np.negative(divdp, out=divdp)
    return dv, dT, ddp


# ---------------------------------------------------------------------------
# Fused SSP-RK2 tracer stage
# ---------------------------------------------------------------------------

def fold_velocity(
    v: np.ndarray,
    geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
    dtype=None,
) -> tuple[np.ndarray, np.ndarray]:
    """metdet-folded SoA velocity planes ``(sqrt(g) v^1, sqrt(g) v^2)``.

    The flux-form divergence needs ``sqrt(g) v`` per tracer per stage;
    the velocity is stage-constant, so fold the metric in once and
    share the planes across all tracers and both RK stages.
    """
    f = _operands(geom, tensors, v[..., 0], dtype)
    v1, v2 = _split_v(v, f)
    md = f.bshape(f.metdet, v1)
    return md * v1, md * v2


def advect_qdp_all_fused(
    qdp: np.ndarray,
    vm: tuple[np.ndarray, np.ndarray],
    geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Fused flux-form tendency -div(v qdp) for all tracers at once.

    ``qdp`` is (E, Q, L, n, n); ``vm`` the folded planes from
    :func:`fold_velocity`.  No ``(..., 2)`` flux stack is materialized —
    each component plane goes straight into its derivative matmul.
    """
    f = _operands(geom, tensors, qdp, qdp.dtype)
    vm1, vm2 = vm
    flux = vm1[:, None] * qdp
    out = f.da(flux)
    np.multiply(vm2[:, None], qdp, out=flux)
    out += f.db(flux)
    out *= f.bshape(f.imdj, qdp)
    np.negative(out, out=out)
    return out


def advect_qdp_fused(
    qdp_q: np.ndarray,
    v: np.ndarray,
    geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Fused single-tracer tendency -div(v qdp); qdp_q is (E, L, n, n).

    The per-tracer twin of :func:`advect_qdp_all_fused`, used by the
    distributed per-rank euler stages (which advect one tracer per
    task).
    """
    f = _operands(geom, tensors, qdp_q, qdp_q.dtype)
    vm1, vm2 = fold_velocity(v, geom, tensors, qdp_q.dtype)
    flux = vm1 * qdp_q
    out = f.da(flux)
    np.multiply(vm2, qdp_q, out=flux)
    out += f.db(flux)
    out *= f.bshape(f.imdj, qdp_q)
    np.negative(out, out=out)
    return out


# ---------------------------------------------------------------------------
# Cross-validation (float64 fused vs batched, float32 fused vs float64)
# ---------------------------------------------------------------------------

def cross_validate_fused(
    state: ElementState,
    geom: ElementGeometry,
    phis: np.ndarray | None = None,
    rtol64: float = 1e-12,
    rtol32: float = 1e-3,
) -> dict[str, float]:
    """Validate the fused kernels: float64 vs batched, float32 vs float64.

    Returns max relative disagreements per kernel; raises
    :class:`~repro.errors.KernelError` when the float64 fused path
    drifts past ``rtol64`` from batched, or the float32 mode past
    ``rtol32`` from the float64 fused results (policy: f32 is an opt-in
    throughput mode, never the default — DESIGN.md §14).
    """
    from ..errors import KernelError
    from . import operators as op
    from .shallow_water import sw_compute_rhs
    from .rhs import compute_rhs

    def rel(a, b):
        scale = max(float(np.max(np.abs(a))), 1e-300)
        return float(np.max(np.abs(np.asarray(a, dtype=np.float64) - b))) / scale

    def run(dt):
        rhs = compute_rhs_fused(state, geom, phis, dtype=dt)
        return {
            "compute_rhs.dv": rhs[0],
            "compute_rhs.dT": rhs[1],
            "compute_rhs.ddp": rhs[2],
            "laplace_wk": laplace_sphere_wk_fused(state.T, geom, dtype=dt),
            "vlaplace": vlaplace_sphere_fused(state.v, geom, dtype=dt),
        } | dict(
            zip(
                ("sw_rhs.dh", "sw_rhs.dv"),
                sw_compute_rhs_fused(state.T[:, 0], state.v[:, 0], geom, dtype=dt),
            )
        )

    b_rhs = compute_rhs(state, geom, phis)
    batched = {
        "compute_rhs.dv": b_rhs[0],
        "compute_rhs.dT": b_rhs[1],
        "compute_rhs.ddp": b_rhs[2],
        "laplace_wk": op.laplace_sphere_wk(state.T, geom),
        "vlaplace": op.vlaplace_sphere(state.v, geom),
    } | dict(
        zip(("sw_rhs.dh", "sw_rhs.dv"), sw_compute_rhs(state.T[:, 0], state.v[:, 0], geom))
    )
    f64 = run(np.float64)
    f32 = run(np.float32)

    errs: dict[str, float] = {}
    for tag, tol, got, ref in (
        ("f64", rtol64, f64, batched),
        ("f32", rtol32, f32, f64),
    ):
        for name in got:
            errs[f"{tag}.{name}"] = rel(ref[name], got[name])
        worst = max(v for k, v in errs.items() if k.startswith(tag))
        if worst > tol:
            raise KernelError(
                f"fused {tag} cross-validation failed: max rel err "
                f"{worst:.3e} > {tol:.1e} ({errs})"
            )
    return errs
