"""``compute_and_apply_rhs``: one Runge--Kutta stage of the dynamics.

Table 1's most data-dependent kernel: "compute the RHS (right hand
side), accumulate into velocity and apply DSS".  The equations are the
hydrostatic primitive equations on floating Lagrangian layers (the
CAM-SE formulation: no vertical advection terms inside the RK stage;
layers float and :mod:`~repro.homme.remap` restores them):

.. math::

    \\partial_t v &= -(\\zeta + f)\\,\\hat{k}\\times v
                    - \\nabla(E + \\Phi) - \\frac{R T}{p} \\nabla p \\\\
    \\partial_t T &= -v\\cdot\\nabla T + \\frac{\\kappa T \\omega}{p} \\\\
    \\partial_t \\Delta p &= -\\nabla\\cdot(v\\, \\Delta p)

The two **vertical scans** in this kernel — midlevel pressure from
layer thicknesses and the hydrostatic geopotential integral — are the
exact operations the paper parallelizes with register communication
(Section 7.4, Figure 2): sequential along the column, embarrassingly
parallel across it.
"""

from __future__ import annotations

import numpy as np

from .. import constants as C
from ..errors import KernelError
from .element import ElementGeometry, ElementState
from . import operators as op

#: Pressure at the model top [Pa] (CAM uses ~2.19 hPa; we keep a small
#: nonzero lid so log/ratio terms are well defined).
PTOP = 219.0


def compute_pressure(dp3d: np.ndarray, ptop: float = PTOP) -> tuple[np.ndarray, np.ndarray]:
    """Midlevel and interface pressures from layer thicknesses.

    Returns ``(p_mid, p_int)``: p_mid has the layer shape (E, L, n, n),
    p_int has (E, L+1, n, n) with p_int[:, 0] = ptop.  This is the
    column scan of the paper's Figure 2: p_k = p_{k-1} + a_k.
    """
    csum = np.cumsum(dp3d, axis=1)
    E, L = dp3d.shape[0], dp3d.shape[1]
    p_int = np.concatenate(
        [np.full((E, 1) + dp3d.shape[2:], ptop), ptop + csum], axis=1
    )
    p_mid = ptop + csum - 0.5 * dp3d
    return p_mid, p_int


def compute_geopotential(
    T: np.ndarray,
    p_mid: np.ndarray,
    dp3d: np.ndarray,
    phis: np.ndarray | None = None,
) -> np.ndarray:
    """Hydrostatic midlevel geopotential (bottom-up column scan).

    Phi_k = Phi_s + R sum_{l>k} T_l dp_l / p_l + R T_k dp_k / (2 p_k).
    """
    rt = C.R_DRY * T * dp3d / p_mid
    # Reverse cumulative sum below level k (exclusive).
    below = np.flip(np.cumsum(np.flip(rt, axis=1), axis=1), axis=1) - rt
    phi = below + 0.5 * rt
    if phis is not None:
        phi = phi + phis[:, None]
    return phi


def compute_omega_p(
    v: np.ndarray,
    p_mid: np.ndarray,
    dp3d: np.ndarray,
    geom: ElementGeometry,
    tensors=None,
) -> np.ndarray:
    """omega/p = (Dp/Dt)/p at midlevels (for the adiabatic heating term).

    omega_k = v_k . grad(p_k) - [ sum_{l<k} div(v dp)_l + 0.5 div(v dp)_k ].
    """
    grad_p = op.gradient_cov(p_mid, geom, tensors)
    # v . grad p uses contravariant v against covariant gradient.
    vgradp = v[..., 0] * grad_p[..., 0] + v[..., 1] * grad_p[..., 1]
    vdp = v * dp3d[..., None]
    divdp = op.divergence_sphere(vdp, geom, tensors)
    above = np.cumsum(divdp, axis=1) - divdp
    omega = vgradp - (above + 0.5 * divdp)
    return omega / p_mid


def compute_rhs(
    state: ElementState,
    geom: ElementGeometry,
    phis: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Element-local tendencies (dv/dt, dT/dt, d(dp3d)/dt), no DSS.

    Split out from :func:`compute_and_apply_rhs` so RK drivers and the
    execution backends can account the compute phase separately from the
    boundary exchange.  This is the **batched** form — every operator
    acts on the full (E, L, np, np) stack in one shot, with the
    geometric factors fetched once from the memoized tensor cache.  The
    per-element looped twin is
    :func:`repro.homme.looped.compute_rhs_looped`.
    """
    state.check_consistent()
    v, T, dp3d = state.v, state.T, state.dp3d
    t = geom.tensors  # one fingerprint check per RHS evaluation

    p_mid, _ = compute_pressure(dp3d)
    phi = compute_geopotential(T, p_mid, dp3d, phis)
    E = op.kinetic_energy(v, geom, t)
    zeta = op.vorticity_sphere(v, geom, t)
    grad_Ephi = op.gradient_sphere(E + phi, geom, t)
    grad_p = op.gradient_sphere(p_mid, geom, t)
    kxv = op.k_cross(v, geom, t)

    fcor = geom.fcor[:, None]
    abs_vort = (zeta + fcor)[..., None]
    rt_over_p = (C.R_DRY * T / p_mid)[..., None]
    dv = -abs_vort * kxv - grad_Ephi - rt_over_p * grad_p

    # Temperature: horizontal advection + adiabatic heating.
    grad_T_cov = op.gradient_cov(T, geom, t)
    v_dot_gradT = v[..., 0] * grad_T_cov[..., 0] + v[..., 1] * grad_T_cov[..., 1]
    omega_p = compute_omega_p(v, p_mid, dp3d, geom, t)
    dT = -v_dot_gradT + C.KAPPA * T * omega_p

    # Layer continuity.
    vdp = v * dp3d[..., None]
    ddp = -op.divergence_sphere(vdp, geom, t)

    return dv, dT, ddp


def compute_and_apply_rhs(
    state: ElementState,
    base: ElementState,
    geom: ElementGeometry,
    dt: float,
    phis: np.ndarray | None = None,
    rhs_fn=None,
) -> ElementState:
    """One RK stage: new = base + dt * RHS(state), then DSS.

    ``state`` supplies the RHS evaluation point, ``base`` the state the
    increment is added to (they coincide in the first stage).  The
    updated fields are projected onto the continuous basis with DSS —
    in the distributed dycore this is where ``bndry_exchangev`` runs.

    ``rhs_fn`` selects the execution path for the element-local compute
    (defaults to the batched :func:`compute_rhs`; the looped path
    passes :func:`repro.homme.looped.compute_rhs_looped`).  The DSS is
    global either way, so paths differ only in dispatch granularity.
    """
    if dt <= 0:
        raise KernelError(f"dt must be positive, got {dt}")
    dv, dT, ddp = (rhs_fn or compute_rhs)(state, geom, phis)
    out = ElementState(
        v=geom.dss_vector(base.v + dt * dv),
        T=geom.dss(base.T + dt * dT),
        dp3d=geom.dss(base.dp3d + dt * ddp),
        qdp=base.qdp,
    )
    return out
