"""Spectral-element differential operators on the cubed sphere.

All operators act elementwise on **stacked** fields shaped
``(E, ..., np, np)`` (arbitrary middle axes — typically levels, or
tracers x levels) using the GLL derivative matrix along the two
horizontal axes, so one call covers the whole element batch: this is
the batched execution path the paper's Athread redesign motivates
(dispatch the core-group once per kernel, not once per element).  The
per-element *looped* path that dispatches these same kernels one
element at a time lives in :mod:`repro.homme.looped`; the two are
cross-validated in ``tests/test_exec_paths.py``.

Every operator pulls its geometric factors from the memoized
:class:`~repro.homme.tensors.OperatorTensors` bundle on the geometry
(``geom.tensors``) instead of rebuilding them per call — derivative
matrices pre-transposed for ``matmul``, reciprocals of the Jacobian /
metric determinant / spheremp precomputed, metric components unpacked
to contiguous planes.  Kernels that issue many operator calls fetch the
bundle once and pass it through the ``tensors=`` keyword.

Conventions: face coordinate alpha varies along the **last** axis (j),
beta along the second-to-last (i).  Winds are contravariant; covariant
components are obtained with the metric.  Operators return
element-local (discontinuous) results — callers apply DSS where the
continuous projection is required, exactly as HOMME separates
``*_sphere`` operators from the boundary exchange.
"""

from __future__ import annotations

import numpy as np

from .element import ElementGeometry
from .tensors import OperatorTensors


def _bshape(geom_arr: np.ndarray, scalar_ref: np.ndarray) -> np.ndarray:
    """Broadcast a geometry array against a scalar field.

    ``geom_arr`` is (E, np, np) or (E, np, np, 2, 2); ``scalar_ref`` is a
    scalar-shaped field (E, ..., np, np).  Middle axes (levels, tracers)
    are inserted after E so numpy broadcasting lines up.
    """
    extra = scalar_ref.ndim - 3
    if extra <= 0:
        return geom_arr
    shape = (geom_arr.shape[0],) + (1,) * extra + geom_arr.shape[1:]
    return geom_arr.reshape(shape)


def _t(geom: ElementGeometry, tensors: OperatorTensors | None) -> OperatorTensors:
    return tensors if tensors is not None else geom.tensors


def _match_dtype(out: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Cast a result back to the input field's dtype.

    The geometry tensors are float64, so matmuls and metric products
    silently promote float32 fields; every operator casts its return
    through here so dtype is preserved end to end (a no-op for the
    standard float64 states).
    """
    return out if out.dtype == ref.dtype else out.astype(ref.dtype)


def d_dalpha(
    field: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """d(field)/d(alpha): GLL derivative along the last axis.

    ``out[..., i, j] = sum_m D[j, m] field[..., i, m] / J`` — a stacked
    matmul against the pre-transposed derivative matrix.
    """
    t = _t(geom, tensors)
    return _match_dtype(np.matmul(field, t.Dt) * t.inv_jac, field)


def d_dbeta(
    field: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """d(field)/d(beta): GLL derivative along the second-to-last axis."""
    t = _t(geom, tensors)
    return _match_dtype(np.matmul(t.D, field) * t.inv_jac, field)


def gradient_sphere(
    s: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Contravariant gradient of a scalar; output (..., np, np, 2).

    cov_k = d s / d x^k; grad^i = metinv^{ik} cov_k.
    """
    t = _t(geom, tensors)
    da = d_dalpha(s, geom, t)
    db = d_dbeta(s, geom, t)
    mi00 = t.bshape(t.metinv00, s)
    mi01 = t.bshape(t.metinv01, s)
    mi11 = t.bshape(t.metinv11, s)
    out = np.empty(s.shape + (2,), dtype=s.dtype)
    out[..., 0] = mi00 * da + mi01 * db
    out[..., 1] = mi01 * da + mi11 * db
    return out


def gradient_cov(
    s: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Covariant gradient (d s/d alpha, d s/d beta); output (..., np, np, 2)."""
    t = _t(geom, tensors)
    return np.stack([d_dalpha(s, geom, t), d_dbeta(s, geom, t)], axis=-1)


def divergence_sphere(
    v: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Divergence of a contravariant vector field (..., np, np, 2).

    div = (1/sqrt(g)) [ d(sqrt(g) v^1)/d alpha + d(sqrt(g) v^2)/d beta ].
    """
    t = _t(geom, tensors)
    metdet = t.bshape(t.metdet, v[..., 0])
    inv_metdet = t.bshape(t.inv_metdet, v[..., 0])
    f1 = metdet * v[..., 0]
    f2 = metdet * v[..., 1]
    out = (d_dalpha(f1, geom, t) + d_dbeta(f2, geom, t)) * inv_metdet
    return _match_dtype(out, v)


def _vcov(v: np.ndarray, t: OperatorTensors) -> tuple[np.ndarray, np.ndarray]:
    """Covariant components v_i = g_ij v^j of a contravariant field."""
    m00 = t.bshape(t.met00, v[..., 0])
    m01 = t.bshape(t.met01, v[..., 0])
    m11 = t.bshape(t.met11, v[..., 0])
    vcov1 = m00 * v[..., 0] + m01 * v[..., 1]
    vcov2 = m01 * v[..., 0] + m11 * v[..., 1]
    return vcov1, vcov2


def vorticity_sphere(
    v: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Relative vorticity (vertical component) of a contravariant field.

    zeta = (1/sqrt(g)) [ d v_2/d alpha - d v_1/d beta ] with covariant
    v_i = g_ij v^j.
    """
    t = _t(geom, tensors)
    vcov1, vcov2 = _vcov(v, t)
    inv_metdet = t.bshape(t.inv_metdet, v[..., 0])
    out = (d_dalpha(vcov2, geom, t) - d_dbeta(vcov1, geom, t)) * inv_metdet
    return _match_dtype(out, v)


def kinetic_energy(
    v: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """E = 0.5 |v|^2 = 0.5 g_ij v^i v^j for contravariant winds."""
    t = _t(geom, tensors)
    m00 = t.bshape(t.met00, v[..., 0])
    m01 = t.bshape(t.met01, v[..., 0])
    m11 = t.bshape(t.met11, v[..., 0])
    v1, v2 = v[..., 0], v[..., 1]
    out = 0.5 * (m00 * v1 * v1 + 2.0 * (m01 * v1 * v2) + m11 * v2 * v2)
    return _match_dtype(out, v)


def k_cross(
    v: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """(k-hat x v) in contravariant components.

    On a 2-manifold: (k x v)^i = eps^{ij} v_j with eps^{12} = 1/sqrt(g),
    i.e. (k x v)^1 = -v_2/sqrt(g), (k x v)^2 = v_1/sqrt(g).
    """
    t = _t(geom, tensors)
    vcov1, vcov2 = _vcov(v, t)
    inv_metdet = t.bshape(t.inv_metdet, v[..., 0])
    out = np.empty_like(v)
    out[..., 0] = -vcov2 * inv_metdet
    out[..., 1] = vcov1 * inv_metdet
    return out


def laplace_sphere(
    s: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Element-local Laplace--Beltrami operator div(grad s).

    Discontinuous across element edges; hyperviscosity applies DSS
    between the two Laplacian passes (see :mod:`repro.homme.hypervis`).
    """
    t = _t(geom, tensors)
    return divergence_sphere(gradient_sphere(s, geom, t), geom, t)


def laplace_sphere_wk(
    s: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Weak-form Laplacian (HOMME's ``laplace_sphere_wk``), exactly
    conservative under DSS.

    Computes W_ij = -integral over the element of grad(phi_ij) . grad(s)
    by GLL quadrature, then divides by spheremp so that
    ``geom.dss(laplace_sphere_wk(s))`` assembles to the continuous weak
    Laplacian.  Because the test functions phi_ij sum to one, the
    sphere integral of the assembled result is exactly zero — the
    property that keeps hyperviscosity on T and dp3d mass-conserving
    (the strong form div(grad s) leaks O(1e-7) mass per step through
    discontinuous edge fluxes).
    """
    t = _t(geom, tensors)
    grad = gradient_sphere(s, geom, t)  # contravariant g^{kl} d_l s
    fac = t.bshape(t.wk_fac, s)  # metdet * (w_p w_q) * J^2
    G1 = fac * grad[..., 0]
    G2 = fac * grad[..., 1]
    # sum_q G1[..., i, q] D[q, j]  and  sum_p D[p, i] G2[..., p, j]
    W = -(np.matmul(G1, t.D) + np.matmul(t.Dt, G2)) * t.inv_jac
    inv_spheremp = t.bshape(t.inv_spheremp, s)
    return _match_dtype(W * inv_spheremp, s)


def vlaplace_sphere(
    v: np.ndarray, geom: ElementGeometry,
    tensors: OperatorTensors | None = None,
) -> np.ndarray:
    """Vector Laplacian in the HOMME form: grad(div v) - curl(curl v).

    Computed componentwise through scalar identities:
    lap(v) = grad(div v) - k x grad(zeta).
    """
    t = _t(geom, tensors)
    div = divergence_sphere(v, geom, t)
    zeta = vorticity_sphere(v, geom, t)
    g_div = gradient_sphere(div, geom, t)
    g_zeta = gradient_sphere(zeta, geom, t)
    return g_div - k_cross(g_zeta, geom, t)
