"""Spectral-element differential operators on the cubed sphere.

All operators act elementwise on fields shaped ``(E, ..., np, np)``
(arbitrary middle axes, typically the level axis) using the GLL
derivative matrix along the two horizontal axes.  Geometry arrays
(``metdet``, ``metinv``) are shaped ``(E, np, np, ...)`` and broadcast
across the middle axes automatically.

Conventions: face coordinate alpha varies along the **last** axis (j),
beta along the second-to-last (i).  Winds are contravariant; covariant
components are obtained with the metric.  Operators return
element-local (discontinuous) results — callers apply DSS where the
continuous projection is required, exactly as HOMME separates
``*_sphere`` operators from the boundary exchange.
"""

from __future__ import annotations

import numpy as np

from .element import ElementGeometry


def _bshape(geom_arr: np.ndarray, scalar_ref: np.ndarray) -> np.ndarray:
    """Broadcast a geometry array against a scalar field.

    ``geom_arr`` is (E, np, np) or (E, np, np, 2, 2); ``scalar_ref`` is a
    scalar-shaped field (E, ..., np, np).  Middle axes (levels, tracers)
    are inserted after E so numpy broadcasting lines up.
    """
    extra = scalar_ref.ndim - 3
    if extra <= 0:
        return geom_arr
    shape = (geom_arr.shape[0],) + (1,) * extra + geom_arr.shape[1:]
    return geom_arr.reshape(shape)


def d_dalpha(field: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """d(field)/d(alpha): GLL derivative along the last axis."""
    return np.einsum("jm,...im->...ij", geom.D, field) / geom.jac


def d_dbeta(field: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """d(field)/d(beta): GLL derivative along the second-to-last axis."""
    return np.einsum("im,...mj->...ij", geom.D, field) / geom.jac


def gradient_sphere(s: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Contravariant gradient of a scalar; output (..., np, np, 2).

    cov_k = d s / d x^k; grad^i = metinv^{ik} cov_k.
    """
    cov = np.stack([d_dalpha(s, geom), d_dbeta(s, geom)], axis=-1)
    metinv = _bshape(geom.metinv, s)
    return np.einsum("...ik,...k->...i", metinv, cov)


def gradient_cov(s: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Covariant gradient (d s/d alpha, d s/d beta); output (..., np, np, 2)."""
    return np.stack([d_dalpha(s, geom), d_dbeta(s, geom)], axis=-1)


def divergence_sphere(v: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Divergence of a contravariant vector field (..., np, np, 2).

    div = (1/sqrt(g)) [ d(sqrt(g) v^1)/d alpha + d(sqrt(g) v^2)/d beta ].
    """
    metdet = _bshape(geom.metdet, v[..., 0])
    f1 = metdet * v[..., 0]
    f2 = metdet * v[..., 1]
    return (d_dalpha(f1, geom) + d_dbeta(f2, geom)) / metdet


def vorticity_sphere(v: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Relative vorticity (vertical component) of a contravariant field.

    zeta = (1/sqrt(g)) [ d v_2/d alpha - d v_1/d beta ] with covariant
    v_i = g_ij v^j.
    """
    met = _bshape(geom.met, v[..., 0])
    vcov1 = met[..., 0, 0] * v[..., 0] + met[..., 0, 1] * v[..., 1]
    vcov2 = met[..., 1, 0] * v[..., 0] + met[..., 1, 1] * v[..., 1]
    metdet = _bshape(geom.metdet, v[..., 0])
    return (d_dalpha(vcov2, geom) - d_dbeta(vcov1, geom)) / metdet


def kinetic_energy(v: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """E = 0.5 |v|^2 = 0.5 g_ij v^i v^j for contravariant winds."""
    met = _bshape(geom.met, v[..., 0])
    return 0.5 * np.einsum("...kl,...k,...l->...", met, v, v)


def k_cross(v: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """(k-hat x v) in contravariant components.

    On a 2-manifold: (k x v)^i = eps^{ij} v_j with eps^{12} = 1/sqrt(g),
    i.e. (k x v)^1 = -v_2/sqrt(g), (k x v)^2 = v_1/sqrt(g).
    """
    met = _bshape(geom.met, v[..., 0])
    metdet = _bshape(geom.metdet, v[..., 0])
    vcov1 = met[..., 0, 0] * v[..., 0] + met[..., 0, 1] * v[..., 1]
    vcov2 = met[..., 1, 0] * v[..., 0] + met[..., 1, 1] * v[..., 1]
    out = np.empty_like(v)
    out[..., 0] = -vcov2 / metdet
    out[..., 1] = vcov1 / metdet
    return out


def laplace_sphere(s: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Element-local Laplace--Beltrami operator div(grad s).

    Discontinuous across element edges; hyperviscosity applies DSS
    between the two Laplacian passes (see :mod:`repro.homme.hypervis`).
    """
    return divergence_sphere(gradient_sphere(s, geom), geom)


def laplace_sphere_wk(s: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Weak-form Laplacian (HOMME's ``laplace_sphere_wk``), exactly
    conservative under DSS.

    Computes W_ij = -integral over the element of grad(phi_ij) . grad(s)
    by GLL quadrature, then divides by spheremp so that
    ``geom.dss(laplace_sphere_wk(s))`` assembles to the continuous weak
    Laplacian.  Because the test functions phi_ij sum to one, the
    sphere integral of the assembled result is exactly zero — the
    property that keeps hyperviscosity on T and dp3d mass-conserving
    (the strong form div(grad s) leaks O(1e-7) mass per step through
    discontinuous edge fluxes).
    """
    grad = gradient_sphere(s, geom)  # contravariant g^{kl} d_l s
    metdet = _bshape(geom.metdet, s)
    w = geom.mesh.gll_w
    wpwq = w[:, None] * w[None, :]
    fac = metdet * wpwq * geom.jac**2
    G1 = fac * grad[..., 0]
    G2 = fac * grad[..., 1]
    W = -(
        np.einsum("qj,...iq->...ij", geom.D, G1)
        + np.einsum("pi,...pj->...ij", geom.D, G2)
    ) / geom.jac
    spheremp = _bshape(geom.spheremp, s)
    return W / spheremp


def vlaplace_sphere(v: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Vector Laplacian in the HOMME form: grad(div v) - curl(curl v).

    Computed componentwise through scalar identities:
    lap(v) = grad(div v) - k x grad(zeta).
    """
    div = divergence_sphere(v, geom)
    zeta = vorticity_sphere(v, geom)
    g_div = gradient_sphere(div, geom)
    g_zeta = gradient_sphere(zeta, geom)
    return g_div - k_cross(g_zeta, geom)
