"""The per-element **looped** execution path of the HOMME kernels.

Before the paper's redesign, CAM-SE's port dispatched work to the
accelerator one element (and one tracer) at a time — the OpenACC-style
discipline of Algorithm 1 whose per-dispatch overheads and re-reads the
Athread rewrite removes.  This module is that discipline's Python
analogue: each kernel loops over the elements of the domain and invokes
the *same* batched numerics of :mod:`repro.homme.operators` /
:mod:`repro.homme.rhs` on single-element views, paying one Python-level
dispatch per element instead of one per core-group.

It exists for two reasons:

- **cross-validation** — the batched path is only trusted because every
  kernel here agrees with it to 1e-12 (``tests/test_exec_paths.py``);
- **baseline** — ``repro.bench`` times looped vs batched and commits
  the speedup to ``BENCH_homme.json``, reproducing the shape of the
  paper's dispatch-granularity argument on the laptop substrate.

Only element-local compute is looped; DSS is a global assembly and is
applied by the caller exactly as in the batched path, so the two paths
differ purely in kernel dispatch granularity.

Selection between the two paths goes through
:func:`repro.backends.functional_exec.homme_execution`.
"""

from __future__ import annotations

import numpy as np

from .element import ElementGeometry, ElementState
from . import operators as op
from . import rhs as rhs_mod


def _state_view(state: ElementState, e: int) -> ElementState:
    """A single-element view of the prognostic arrays (no copies)."""
    sl = slice(e, e + 1)
    return ElementState(
        v=state.v[sl], T=state.T[sl], dp3d=state.dp3d[sl], qdp=state.qdp[sl]
    )


def compute_rhs_looped(
    state: ElementState,
    geom: ElementGeometry,
    phis: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-element dispatch of :func:`repro.homme.rhs.compute_rhs`.

    Same signature and (to roundoff) same result as the batched form;
    one Python-level kernel launch per element.
    """
    dv = np.empty_like(state.v)
    dT = np.empty_like(state.T)
    ddp = np.empty_like(state.dp3d)
    for e, view in enumerate(geom.element_views()):
        phis_e = None if phis is None else phis[e : e + 1]
        dv_e, dT_e, ddp_e = rhs_mod.compute_rhs(_state_view(state, e), view, phis_e)
        dv[e] = dv_e[0]
        dT[e] = dT_e[0]
        ddp[e] = ddp_e[0]
    return dv, dT, ddp


def sw_compute_rhs_looped(
    h: np.ndarray, v: np.ndarray, geom: ElementGeometry
) -> tuple[np.ndarray, np.ndarray]:
    """Per-element shallow-water RHS (see
    :func:`repro.homme.shallow_water.sw_compute_rhs`)."""
    from .shallow_water import sw_compute_rhs  # local: avoid import cycle

    dh = np.empty_like(h)
    dv = np.empty_like(v)
    for e, view in enumerate(geom.element_views()):
        dh_e, dv_e = sw_compute_rhs(h[e : e + 1], v[e : e + 1], view)
        dh[e] = dh_e[0]
        dv[e] = dv_e[0]
    return dh, dv


def laplace_sphere_wk_looped(s: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Per-element weak Laplacian (hyperviscosity building block)."""
    out = np.empty_like(s)
    for e, view in enumerate(geom.element_views()):
        out[e] = op.laplace_sphere_wk(s[e : e + 1], view)[0]
    return out


def vlaplace_sphere_looped(v: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Per-element vector Laplacian (hyperviscosity building block)."""
    out = np.empty_like(v)
    for e, view in enumerate(geom.element_views()):
        out[e] = op.vlaplace_sphere(v[e : e + 1], view)[0]
    return out
