"""``euler_step``: SSP-RK2 tracer advection.

Table 1: "construct strong stability preserving (SSP) second order
Runge-Kutta method".  Tracer mass qdp is advected in flux form,

.. math:: \\partial_t (q\\,\\Delta p) = -\\nabla\\cdot(v\\, q\\,\\Delta p),

subcycled ``tracer_subcycles`` (3) times per dynamics step — the three
halo exchanges per step the overlap redesign targets (Section 7.6).

The tracer loop over ``q`` is the loop in the paper's Algorithms 1/2:
the OpenACC backend re-reads the shared velocity/metric arrays every
iteration (single ``collapse``, copyin inside the q loop), while the
Athread backend keeps them LDM-resident — see
:mod:`repro.backends.openacc` / :mod:`repro.backends.athread`.

A monotone limiter (clip-and-restore) keeps mixing ratios positive and
preserves element tracer mass, mirroring the sign-preserving limiter in
CAM-SE.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .element import ElementGeometry, ElementState
from . import operators as op


def advect_qdp(
    qdp: np.ndarray, v: np.ndarray, geom: ElementGeometry
) -> np.ndarray:
    """Flux-form tendency -div(v * qdp) for one tracer (E, L, n, n)."""
    flux = v * qdp[..., None]
    return -op.divergence_sphere(flux, geom)


def advect_qdp_all(
    qdp: np.ndarray, v: np.ndarray, geom: ElementGeometry
) -> np.ndarray:
    """Flux-form tendency for **all tracers at once**; qdp (E, Q, L, n, n).

    The velocity broadcasts across the tracer axis, so the whole
    (E, Q, L) stack goes through the divergence in one operator call —
    the batched analogue of Algorithm 2 keeping shared arrays resident
    across the tracer loop instead of re-dispatching per tracer.
    """
    flux = v[:, None] * qdp[..., None]
    return -op.divergence_sphere(flux, geom)


def _dss_all(qdp: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """DSS an (E, Q, L, n, n) stack by folding (Q, L) into one axis."""
    E, Q, L, n, _ = qdp.shape
    return geom.dss(qdp.reshape(E, Q * L, n, n)).reshape(E, Q, L, n, n)


def limit_qdp(
    qdp: np.ndarray, geom: ElementGeometry, global_fixer: bool = True
) -> np.ndarray:
    """Sign-preserving limiter: clip negatives, restore mass.

    Accepts any stack of middle axes: (E, L, n, n) for one tracer or
    (E, Q, L, n, n) for the batched all-tracer path — the element axis
    is first and the GLL axes last, everything between is limited
    independently.

    Stage 1 (elementwise, HOMME's limiter8 idea): clipped mass is
    removed proportionally from positive points of the same element and
    level.  Element-levels whose *total* went negative are zeroed —
    which by itself manufactures mass (spectral ringing around compact
    features makes empty elements slightly negative), so

    Stage 2 (global fixer): a single multiplicative factor per level
    restores the exact global integral, keeping positivity.
    """
    w = geom.spheremp[(slice(None),) + (None,) * (qdp.ndim - 3)]
    mass_before = np.sum(qdp * w, axis=(-2, -1))
    clipped = np.maximum(qdp, 0.0)
    mass_after = np.sum(clipped * w, axis=(-2, -1))
    # Rescale positives to restore mass (only where there is any mass).
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(mass_after > 0, mass_before / mass_after, 0.0)
    scale = np.clip(scale, 0.0, None)
    out = clipped * scale[..., None, None]
    if global_fixer:
        g_before = np.sum(mass_before, axis=0)            # per (tracer,) level
        g_after = np.sum(out * w, axis=(0, -2, -1))
        with np.errstate(divide="ignore", invalid="ignore"):
            g_scale = np.where(g_after > 0, g_before / g_after, 0.0)
        out = out * np.clip(g_scale, 0.0, None)[None, ..., None, None]
    return out


def euler_step(
    state: ElementState,
    geom: ElementGeometry,
    dt: float,
    limiter: bool = True,
    path: str = "batched",
) -> np.ndarray:
    """One SSP-RK2 advection step for all tracers; returns new qdp.

    SSP-RK2 (Heun):  s1 = q + dt L(q);  q_new = (q + s1 + dt L(s1)) / 2,
    with DSS after each stage so stage fields are continuous.

    ``path="batched"`` advects and assembles every tracer in one shot
    (velocity and metric terms touched once per stage);
    ``path="fused"`` additionally folds the metric into the velocity
    planes once per step and skips the ``(..., 2)`` flux stack
    (:mod:`repro.homme.fused`); ``path="looped"`` keeps the historical
    per-tracer loop — the contention point between the paper's
    execution backends, retained for cross-validation and as the
    ``repro.bench`` baseline.
    """
    if dt <= 0:
        raise KernelError(f"dt must be positive, got {dt}")
    v = state.v
    qdp = state.qdp
    if path in ("batched", "fused"):
        if path == "fused":
            from .fused import advect_qdp_all_fused, fold_velocity

            vm = fold_velocity(v, geom)

            def adv(q):
                return advect_qdp_all_fused(q, vm, geom)
        else:
            def adv(q):
                return advect_qdp_all(q, v, geom)

        f0 = adv(qdp)
        s1 = _dss_all(qdp + dt * f0, geom)
        f1 = adv(s1)
        s2 = _dss_all(0.5 * (qdp + s1 + dt * f1), geom)
        if limiter:
            # The elementwise rescale breaks edge continuity; a closing
            # DSS restores it (a positive-weighted average of
            # non-negative values stays non-negative), which keeps the
            # *next* step's flux-form divergence exactly conservative.
            return _dss_all(limit_qdp(s2, geom), geom)
        return s2
    if path != "looped":
        raise KernelError(f"unknown euler path {path!r}")
    nq = qdp.shape[1]
    out = np.empty_like(qdp)
    # Per-tracer loop: the contention point between execution backends.
    for q in range(nq):
        f0 = advect_qdp(qdp[:, q], v, geom)
        s1 = geom.dss(qdp[:, q] + dt * f0)
        f1 = advect_qdp(s1, v, geom)
        s2 = geom.dss(0.5 * (qdp[:, q] + s1 + dt * f1))
        if limiter:
            out[:, q] = geom.dss(limit_qdp(s2, geom))
        else:
            out[:, q] = s2
    return out


def euler_step_subcycled(
    state: ElementState,
    geom: ElementGeometry,
    dt: float,
    subcycles: int = 3,
    limiter: bool = True,
    path: str = "batched",
) -> np.ndarray:
    """Run ``subcycles`` euler_steps of dt/subcycles each; returns new qdp."""
    if subcycles < 1:
        raise KernelError(f"subcycles must be >= 1, got {subcycles}")
    work = state.copy()
    sub_dt = dt / subcycles
    for _ in range(subcycles):
        work.qdp = euler_step(work, geom, sub_dt, limiter=limiter, path=path)
    return work.qdp


def tracer_mass(qdp: np.ndarray, geom: ElementGeometry) -> np.ndarray:
    """Global tracer mass per tracer: integral of qdp over sphere and levels."""
    w = geom.spheremp[:, None, None]
    return np.sum(qdp * w, axis=(0, 2, 3, 4))
