"""Element geometry views and prognostic state containers.

CAM-SE stores its fields per element as (np x np x nlev) blocks (the
``elem(ie)%state`` derived types the paper's Algorithms 1/2 DMA in and
out).  Here the whole local domain is struct-of-arrays:

- winds are **contravariant** components ``v`` of shape
  (nelem, nlev, np, np, 2) — the natural components for the cubed-sphere
  operators; conversion to zonal/meridional wind happens only at
  initialization and diagnostics;
- ``dp3d`` is the pressure thickness of each floating Lagrangian layer;
- ``qdp`` is tracer mass (q * dp3d), the quantity ``euler_step``
  advects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as C
from ..config import ModelConfig
from ..errors import KernelError
from ..mesh.cubed_sphere import CubedSphereMesh
from . import tensors as tensors_mod


class ElementGeometry:
    """Per-element geometric data for a set of elements (a rank's subdomain).

    Wraps slices of the mesh arrays plus the spectral machinery, with
    the Coriolis parameter precomputed.  ``elem_ids=None`` selects the
    whole mesh (the serial dycore).
    """

    def __init__(self, mesh: CubedSphereMesh, elem_ids: np.ndarray | None = None) -> None:
        self.mesh = mesh
        if elem_ids is None:
            self.elem_ids = np.arange(mesh.nelem)
        else:
            self.elem_ids = np.asarray(elem_ids, dtype=np.int64)
        sel = self.elem_ids
        self.nelem = len(sel)
        self.np = mesh.np
        self.metdet = mesh.metdet[sel]
        self.met = mesh.met[sel]
        self.metinv = mesh.metinv[sel]
        self.spheremp = mesh.spheremp[sel]
        self.dss_weight = mesh.dss_weight[sel]
        self.lat = mesh.lat[sel]
        self.lon = mesh.lon[sel]
        self.gid = mesh.gid[sel]
        self.D = mesh.deriv
        self.jac = mesh.jac_ref
        self.radius = mesh.radius
        self.e_cov = mesh.e_cov[sel]
        #: Coriolis parameter f = 2 Omega sin(lat), shape (nelem, np, np);
        #: Omega follows the mesh (scaled on reduced-radius spheres).
        omega = getattr(mesh, "omega", C.EARTH_OMEGA)
        self.fcor = 2.0 * omega * np.sin(self.lat)
        self._tensors: tensors_mod.OperatorTensors | None = None
        self._views: list["ElementGeometry"] | None = None

    # -- memoized operator tensors (batched hot path) --------------------------

    @property
    def tensors(self) -> "tensors_mod.OperatorTensors":
        """The memoized :class:`~repro.homme.tensors.OperatorTensors`.

        Rebuilt automatically whenever the fingerprint of the source
        geometry arrays changes (see :mod:`repro.homme.tensors` for the
        invalidation rule), so in-place mutation of ``metdet``/``met``/
        ``metinv``/``spheremp`` never serves stale tensors.
        """
        token = tensors_mod.geometry_fingerprint(self)
        cached = self._tensors
        if cached is None or cached.token != token:
            self._tensors = tensors_mod.build_tensors(self)
        return self._tensors

    def invalidate_tensors(self) -> None:
        """Drop the memoized operator tensors (and per-element views)."""
        self._tensors = None
        self._views = None

    # -- per-element views (looped execution path) -----------------------------

    def element_view(self, e: int) -> "ElementGeometry":
        """A single-element geometry sharing this geometry's arrays.

        The view's arrays are basic slices (``arr[e:e+1]``) of the
        parent's, so mutations of the parent metric terms propagate and
        re-fingerprint through the view's own tensor cache.  Used by
        the looped execution path (:mod:`repro.homme.looped`), which
        dispatches kernels one element at a time.
        """
        return self.element_views()[e]

    def element_views(self) -> list["ElementGeometry"]:
        """All single-element views, built lazily once and cached."""
        if self._views is None:
            self._views = [self._slice_view(e) for e in range(self.nelem)]
        return self._views

    def _slice_view(self, e: int) -> "ElementGeometry":
        view = object.__new__(ElementGeometry)
        view.mesh = self.mesh
        view.elem_ids = self.elem_ids[e : e + 1]
        view.nelem = 1
        view.np = self.np
        sl = slice(e, e + 1)
        for name in (
            "metdet", "met", "metinv", "spheremp", "dss_weight",
            "lat", "lon", "gid", "e_cov", "fcor",
        ):
            setattr(view, name, getattr(self, name)[sl])
        view.D = self.D
        view.jac = self.jac
        view.radius = self.radius
        view._tensors = None
        view._views = None
        return view

    def dss(self, field: np.ndarray) -> np.ndarray:
        """Serial DSS through the full mesh (only valid for whole-mesh views)."""
        if self.nelem != self.mesh.nelem:
            raise KernelError(
                "serial DSS requires the whole mesh; rank-local domains use "
                "bndry_exchangev"
            )
        # Fields arrive as (E, L, np, np[, K]); mesh.dss wants (E, np, np, K).
        f = np.asarray(field)
        if f.ndim == 3:
            return self.mesh.dss(f)
        if f.ndim == 4:  # (E, L, np, np) -> levels as trailing axis
            out = self.mesh.dss(np.moveaxis(f, 1, -1))
            return np.moveaxis(out, -1, 1)
        if f.ndim == 5:  # (E, L, np, np, K)
            E, L, n, _, K = f.shape
            merged = np.moveaxis(f, 1, -2).reshape(E, n, n, L * K)
            out = self.mesh.dss(merged).reshape(E, n, n, L, K)
            return np.moveaxis(out, -2, 1)
        raise KernelError(f"dss: unsupported field rank {f.ndim}")

    def dss_vector(self, v: np.ndarray) -> np.ndarray:
        """DSS a **contravariant vector** field (E, [L,] np, np, 2).

        Contravariant components live in each face's coordinate frame,
        so they cannot be averaged directly across cube edges (the
        frames differ).  The vector is converted to its global Cartesian
        tangent representation ``w = radius (v^1 e_1 + v^2 e_2)`` —
        frame-free and pole-singularity-free — DSS'd componentwise, and
        projected back via ``v^i = metinv^{ij} (e_j . w) / radius``.
        (HOMME achieves the same by exchanging lat-lon components; the
        Cartesian form avoids the polar special cases.)
        """
        v = np.asarray(v)
        if v.shape[-1] != 2:
            raise KernelError("dss_vector expects trailing contravariant axis of 2")
        has_lev = v.ndim == 5
        e = self.e_cov  # (E, n, n, 3, 2)
        if has_lev:
            e_b = e[:, None]
        elif v.ndim == 4:
            e_b = e
        else:
            raise KernelError(f"dss_vector: unsupported field rank {v.ndim}")
        w = self.radius * np.einsum("...xc,...c->...x", e_b, v)
        # (E, n, n, 3) goes straight to the mesh; (E, L, n, n, 3) through
        # the level-aware path.
        w = self.mesh.dss(w) if not has_lev else self.dss(w)
        cov = self.radius * np.einsum("...xc,...x->...c", e_b, w)
        metinv_b = self.metinv[:, None] if has_lev else self.metinv
        return np.einsum("...ij,...j->...i", metinv_b, cov)


@dataclass
class ElementState:
    """Prognostic state on a set of elements.

    Shapes (E = elements, L = levels, n = np, Q = tracers):

    - ``v``    — (E, L, n, n, 2) contravariant wind [1/s];
    - ``T``    — (E, L, n, n) temperature [K];
    - ``dp3d`` — (E, L, n, n) layer pressure thickness [Pa];
    - ``qdp``  — (E, Q, L, n, n) tracer mass [Pa * kg/kg].
    """

    v: np.ndarray
    T: np.ndarray
    dp3d: np.ndarray
    qdp: np.ndarray

    @classmethod
    def zeros(cls, nelem: int, nlev: int, np_: int, qsize: int) -> "ElementState":
        """An all-zero state with consistent shapes."""
        return cls(
            v=np.zeros((nelem, nlev, np_, np_, 2)),
            T=np.zeros((nelem, nlev, np_, np_)),
            dp3d=np.zeros((nelem, nlev, np_, np_)),
            qdp=np.zeros((nelem, qsize, nlev, np_, np_)),
        )

    @classmethod
    def isothermal_rest(
        cls,
        geom: ElementGeometry,
        cfg: ModelConfig,
        T0: float = 300.0,
        ps0: float = C.P0,
    ) -> "ElementState":
        """An isothermal resting atmosphere on uniform sigma levels."""
        state = cls.zeros(geom.nelem, cfg.nlev, geom.np, cfg.qsize)
        state.T[:] = T0
        dsigma = 1.0 / cfg.nlev
        state.dp3d[:] = dsigma * ps0
        return state

    # -- shape checks & arithmetic helpers (used by RK stages) -----------------

    def check_consistent(self) -> None:
        """Raise KernelError if array shapes disagree."""
        E, L, n = self.T.shape[0], self.T.shape[1], self.T.shape[2]
        if self.v.shape != (E, L, n, n, 2):
            raise KernelError(f"v shape {self.v.shape} inconsistent with T {self.T.shape}")
        if self.dp3d.shape != (E, L, n, n):
            raise KernelError(f"dp3d shape {self.dp3d.shape} inconsistent")
        if self.qdp.shape[0] != E or self.qdp.shape[2:] != (L, n, n):
            raise KernelError(f"qdp shape {self.qdp.shape} inconsistent")

    def copy(self) -> "ElementState":
        """Deep copy of all prognostic arrays."""
        return ElementState(
            self.v.copy(), self.T.copy(), self.dp3d.copy(), self.qdp.copy()
        )

    @property
    def nlev(self) -> int:
        return self.T.shape[1]

    @property
    def qsize(self) -> int:
        return self.qdp.shape[1]

    def ps(self, ptop: float = 0.0) -> np.ndarray:
        """Surface pressure: ptop + sum of layer thicknesses; (E, n, n)."""
        return ptop + self.dp3d.sum(axis=1)

    def q(self) -> np.ndarray:
        """Tracer mixing ratios qdp / dp3d; (E, Q, L, n, n)."""
        return self.qdp / self.dp3d[:, None]
