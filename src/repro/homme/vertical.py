"""CAM's hybrid sigma-pressure vertical coordinate.

The production model defines layer interfaces through hybrid
coefficients,

.. math:: p_{k+1/2} = A_{k+1/2}\\, p_0 + B_{k+1/2}\\, p_s,

pure pressure near the top (A = sigma_ref, B = 0, so levels are flat
where terrain should not wiggle them) blending to pure sigma at the
surface (A = 0, B = 1).  The reproduction's experiments use uniform
sigma for simplicity; this module supplies the real coordinate so the
vertical remap can target CAM-faithful reference levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class HybridCoordinate:
    """Hybrid A/B interface coefficients for ``nlev`` layers.

    ``hyai``/``hybi`` have nlev + 1 entries, index 0 = model top.
    Invariants (validated): A + B monotone increasing in sigma-space,
    B(top) = 0, A(surface) = 0, B(surface) = 1.
    """

    hyai: np.ndarray
    hybi: np.ndarray
    p0: float = 100000.0

    def __post_init__(self) -> None:
        A, B = np.asarray(self.hyai), np.asarray(self.hybi)
        if A.shape != B.shape or A.ndim != 1 or len(A) < 2:
            raise ConfigurationError("hyai/hybi must be equal-length vectors")
        if abs(B[0]) > 1e-12 or abs(A[-1]) > 1e-12 or abs(B[-1] - 1.0) > 1e-12:
            raise ConfigurationError(
                "hybrid coefficients must satisfy B(top)=0, A(sfc)=0, B(sfc)=1"
            )
        if np.any(np.diff(A + B) <= 0):
            raise ConfigurationError("A + B must increase monotonically")

    @property
    def nlev(self) -> int:
        return len(self.hyai) - 1

    @classmethod
    def cam_like(cls, nlev: int, ptop: float = 219.0, p0: float = 100000.0,
                 blend_power: float = 1.8) -> "HybridCoordinate":
        """A smooth CAM-style coefficient set.

        Reference sigma levels are uniform; the B coefficient ramps in
        as sigma^blend_power (terrain-following only near the surface),
        with A carrying the remainder.
        """
        if nlev < 2:
            raise ConfigurationError("nlev must be >= 2")
        sigma = np.linspace(ptop / p0, 1.0, nlev + 1)
        B = ((sigma - sigma[0]) / (1.0 - sigma[0])) ** blend_power
        A = sigma - B  # so A p0 + B p0 = sigma p0 at ps = p0
        # Enforce the exact boundary values against roundoff.
        B[0], A[-1], B[-1] = 0.0, 0.0, 1.0
        return cls(hyai=A, hybi=B, p0=p0)

    # -- evaluation -----------------------------------------------------------

    def interface_pressures(self, ps: np.ndarray) -> np.ndarray:
        """p at interfaces for surface pressures ``ps`` (level axis first)."""
        ps = np.asarray(ps)
        shape = (self.nlev + 1,) + (1,) * ps.ndim
        return self.hyai.reshape(shape) * self.p0 + self.hybi.reshape(shape) * ps

    def reference_dp(self, ps: np.ndarray) -> np.ndarray:
        """Layer thicknesses dp_k(ps) with the level axis FIRST."""
        p_int = self.interface_pressures(ps)
        dp = np.diff(p_int, axis=0)
        if np.any(dp <= 0):
            raise ConfigurationError("non-monotone hybrid levels for given ps")
        return dp

    def reference_dp_elementwise(self, ps: np.ndarray) -> np.ndarray:
        """dp shaped (E, L, n, n) for ps shaped (E, n, n) (dycore layout)."""
        dp = self.reference_dp(ps)          # (L, E, n, n)
        return np.moveaxis(dp, 0, 1)
