"""``vertical_remap``: conservative monotone remap to reference levels.

Table 1: "compute the vertical flux needed to get back to reference
eta-coordinate levels".  After the RK dynamics the Lagrangian layers
have floated; this kernel remaps (u, v, T, q) from the floating
thicknesses ``dp_src`` back to the reference thicknesses
``dp_ref(ps)`` using the piecewise parabolic method (PPM) with the
Colella--Woodward monotonic limiter, mass-conservative by construction
(remapped via the cumulative-integral formulation).

Columns are independent — this is the other kernel class the paper's
8 x 16 layer decomposition (Figure 2) parallelizes across CPE rows.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelError
from .element import ElementState
from .rhs import PTOP


def ppm_edge_values(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Monotone-limited PPM edge values aL, aR per cell.

    ``a`` has layers on the last axis.  Edges use the 4th-order uniform
    formula (the floating Lagrangian grid stays near-uniform in sigma
    between remaps), clamped to the neighbouring cell means to keep the
    reconstruction monotone.
    """
    L = a.shape[-1]
    if L < 2:
        raise KernelError("PPM needs at least 2 layers")
    # Interface estimates a_{k+1/2} for k = 0..L-2 (between cells k, k+1).
    if L >= 4:
        inner = (7.0 * (a[..., 1:-2] + a[..., 2:-1]) - (a[..., 3:] + a[..., :-3])) / 12.0
        first = 0.5 * (a[..., 0] + a[..., 1])
        last = 0.5 * (a[..., -2] + a[..., -1])
        iface = np.concatenate(
            [first[..., None], inner, last[..., None]], axis=-1
        )
    else:
        iface = 0.5 * (a[..., :-1] + a[..., 1:])
    # Clamp interface values between adjacent cell means (monotone edges).
    lo = np.minimum(a[..., :-1], a[..., 1:])
    hi = np.maximum(a[..., :-1], a[..., 1:])
    iface = np.clip(iface, lo, hi)

    aL = np.concatenate([a[..., :1], iface], axis=-1)
    aR = np.concatenate([iface, a[..., -1:]], axis=-1)

    # Colella-Woodward limiter: local extrema become piecewise constant;
    # overshooting parabolas are reset on one side.
    da = aR - aL
    a6 = 6.0 * (a - 0.5 * (aL + aR))
    extrema = (aR - a) * (a - aL) <= 0.0
    aL = np.where(extrema, a, aL)
    aR = np.where(extrema, a, aR)
    da = aR - aL
    a6 = 6.0 * (a - 0.5 * (aL + aR))
    overshoot_l = da * a6 > da * da
    aL = np.where(overshoot_l, 3.0 * a - 2.0 * aR, aL)
    overshoot_r = da * a6 < -da * da
    aR = np.where(overshoot_r, 3.0 * a - 2.0 * aL, aR)
    return aL, aR


def _partial_integral(aL, da, a6, xi):
    """Integral of the PPM parabola over cell fraction [0, xi]."""
    return aL * xi + 0.5 * (da + a6) * xi**2 - a6 * xi**3 / 3.0


def remap_ppm(
    a_src: np.ndarray, dp_src: np.ndarray, dp_tgt: np.ndarray
) -> np.ndarray:
    """Remap cell means from source to target layer grids, conservatively.

    All arrays have layers on the **last** axis; leading axes are
    independent columns.  Source and target grids must span the same
    total (sum of dp equal per column).
    """
    a_src = np.asarray(a_src, dtype=np.float64)
    dp_src = np.asarray(dp_src, dtype=np.float64)
    dp_tgt = np.asarray(dp_tgt, dtype=np.float64)
    if a_src.shape != dp_src.shape or dp_src.shape != dp_tgt.shape:
        raise KernelError("remap arrays must share shapes")
    if np.any(dp_src <= 0) or np.any(dp_tgt <= 0):
        raise KernelError("layer thicknesses must be positive")
    tot_s = dp_src.sum(axis=-1)
    tot_t = dp_tgt.sum(axis=-1)
    if not np.allclose(tot_s, tot_t, rtol=1e-10):
        raise KernelError("source and target grids must span the same column mass")

    L = a_src.shape[-1]
    lead = a_src.shape[:-1]
    ncol = int(np.prod(lead)) if lead else 1
    a = a_src.reshape(ncol, L)
    dps = dp_src.reshape(ncol, L)
    dpt = dp_tgt.reshape(ncol, L)

    zi_s = np.concatenate([np.zeros((ncol, 1)), np.cumsum(dps, axis=1)], axis=1)
    zi_t = np.concatenate([np.zeros((ncol, 1)), np.cumsum(dpt, axis=1)], axis=1)
    # Guard against roundoff: force identical totals.
    zi_t[:, -1] = zi_s[:, -1]

    aL, aR = ppm_edge_values(a)
    da = aR - aL
    a6 = 6.0 * (a - 0.5 * (aL + aR))
    # Cumulative mass at source interfaces.
    cmass = np.concatenate(
        [np.zeros((ncol, 1)), np.cumsum(a * dps, axis=1)], axis=1
    )

    cols = np.arange(ncol)

    def cumulative_at(z):
        """Cumulative mass at positions z (ncol,), via the parabola."""
        # Cell containing z: largest k with zi_s[:, k] <= z, clipped to L-1.
        k = np.clip(
            (zi_s[:, :-1] <= z[:, None]).sum(axis=1) - 1, 0, L - 1
        )
        z0 = zi_s[cols, k]
        dz = dps[cols, k]
        xi = np.clip((z - z0) / dz, 0.0, 1.0)
        return cmass[cols, k] + dz * _partial_integral(
            aL[cols, k], da[cols, k], a6[cols, k], xi
        )

    out = np.empty_like(a)
    m_lo = np.zeros(ncol)
    for kt in range(L):
        m_hi = cmass[:, -1] if kt == L - 1 else cumulative_at(zi_t[:, kt + 1])
        out[:, kt] = (m_hi - m_lo) / dpt[:, kt]
        m_lo = m_hi
    return out.reshape(a_src.shape)


def reference_dp(ps: np.ndarray, nlev: int, ptop: float = PTOP) -> np.ndarray:
    """Reference (uniform-sigma) layer thicknesses for surface pressure ps.

    dp_k = (ps - ptop) / nlev broadcast over the level axis inserted at
    position 1 of ``ps``'s shape (E, n, n) -> (E, L, n, n).
    """
    dp = (ps - ptop) / nlev
    return np.repeat(dp[:, None], nlev, axis=1)


def vertical_remap(state: ElementState, ptop: float = PTOP) -> ElementState:
    """Remap the full state back to reference levels (in place semantics).

    Velocity and temperature remap mass-weighted (conserving momentum
    and internal energy); tracers remap as qdp directly (conserving
    tracer mass).  Returns a new state on the reference grid.
    """
    dp_src = state.dp3d
    ps = state.ps(ptop)
    dp_tgt = reference_dp(ps, state.nlev, ptop)

    # Layers on the last axis for the remap kernel.
    def to_last(x):
        return np.moveaxis(x, 1, -1)

    def from_last(x):
        return np.moveaxis(x, -1, 1)

    dps_l, dpt_l = to_last(dp_src), to_last(dp_tgt)
    new = state.copy()
    new.dp3d = dp_tgt
    new.T = from_last(remap_ppm(to_last(state.T), dps_l, dpt_l))
    for c in range(2):
        new.v[..., c] = from_last(
            remap_ppm(to_last(state.v[..., c]), dps_l, dpt_l)
        )
    for q in range(state.qsize):
        # qdp / dp is the conserved-density form: remap mixing ratio and
        # rebuild qdp on the target grid so tracer mass integrates identically.
        qmix = to_last(state.qdp[:, q]) / dps_l
        new.qdp[:, q] = from_last(remap_ppm(qmix, dps_l, dpt_l) * dpt_l)
    return new
