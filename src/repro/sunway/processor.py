"""The whole SW26010 chip: 4 core groups connected by a network-on-chip.

CAM-SE assigns one MPI rank per CG, so most of the library operates at
CG granularity; :class:`SW26010` exists for whole-node accounting (peak
flops, shared 132 GB/s channel, 32 GB capacity checks) and for the
Figure 6/8 arithmetic that converts process counts into core counts.
"""

from __future__ import annotations

from .core_group import CoreGroup
from .perf import PerfCounters
from .spec import SW26010Spec, DEFAULT_SPEC


class SW26010:
    """One Sunway node: 4 CGs + NoC."""

    def __init__(self, node_id: int = 0, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.node_id = node_id
        self.spec = spec
        self.core_groups = [CoreGroup(i, spec) for i in range(spec.core_groups)]

    @property
    def n_cores(self) -> int:
        """All cores on the node (MPEs + CPEs)."""
        return self.spec.cores_per_processor

    def collect(self, vector_efficiency: float = 1.0) -> PerfCounters:
        """Aggregate PERF counters over all CGs.

        ``cycles`` is the slowest CG (they run one rank each, in
        parallel); traffic and flops sum.
        """
        total = PerfCounters()
        slowest = 0.0
        for cg in self.core_groups:
            p = cg.collect(vector_efficiency)
            slowest = max(slowest, p.cycles)
            p.cycles = 0.0
            total.merge(p)
        total.cycles = slowest
        return total

    def memory_fits(self, bytes_needed: int) -> bool:
        """Whether a per-node working set fits the 32 GB main memory.

        This is the constraint that forces the ne1024 strong-scaling run
        to start at 8,192 processes in the paper's Figure 7.
        """
        return bytes_needed <= self.spec.memory_bytes

    def reset(self) -> None:
        for cg in self.core_groups:
            cg.reset()
