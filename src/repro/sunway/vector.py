"""The SW26010 256-bit vector unit, including the shuffle instruction.

The paper's Athread redesign relies on (a) manual vectorization with
explicitly declared vector types, and (b) the ``Shuffle(a, b, mask)``
instruction to transpose 4x4 sub-matrices entirely in registers
(Section 7.5, Figure 3).  This module implements both functionally:

- :class:`VectorUnit` executes 4-lane double-precision arithmetic on
  numpy rows while counting issued vector instructions, so backends can
  convert instruction counts into cycles;
- :func:`shuffle` is the two-from-a / two-from-b lane selector from the
  paper's figure;
- :func:`transpose4x4` performs the 8-shuffle in-register transposition.
"""

from __future__ import annotations

import numpy as np

from .spec import SW26010Spec, DEFAULT_SPEC

#: Lanes in one vector register (256 bits of doubles).
LANES = 4


def shuffle(a: np.ndarray, b: np.ndarray, mask: tuple[int, int, int, int]) -> np.ndarray:
    """The SW26010 ``Shuffle(a, b, mask)`` instruction.

    ``a`` and ``b`` are 4-lane registers.  The result takes its first two
    lanes from positions ``mask[0]``, ``mask[1]`` of ``a`` and its last
    two lanes from positions ``mask[2]``, ``mask[3]`` of ``b`` — the
    semantics illustrated in the top-left of the paper's Figure 3.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != (LANES,) or b.shape != (LANES,):
        raise ValueError(f"shuffle operands must be 4-lane registers, got {a.shape}, {b.shape}")
    if len(mask) != 4 or any(not (0 <= m < LANES) for m in mask):
        raise ValueError(f"mask must be 4 lane indices in [0,4), got {mask}")
    return np.array([a[mask[0]], a[mask[1]], b[mask[2]], b[mask[3]]], dtype=a.dtype)


def transpose4x4(m: np.ndarray) -> tuple[np.ndarray, int]:
    """Transpose a 4x4 matrix with 8 shuffle instructions (paper Fig. 3).

    Rows of ``m`` are treated as vector registers.  Returns the transposed
    matrix and the shuffle-instruction count (always 8), which backends
    charge as vector-op cycles.

    The classic two-stage butterfly:
      stage 1 interleaves row pairs (lo/hi unpack),
      stage 2 recombines across the pairs.
    """
    m = np.asarray(m)
    if m.shape != (LANES, LANES):
        raise ValueError(f"transpose4x4 expects a 4x4 matrix, got {m.shape}")
    r0, r1, r2, r3 = (m[i] for i in range(4))
    # Stage 1: unpack low/high pairs.  t0 = [a0, b0, a1, b1] etc.
    t0 = shuffle(r0, r1, (0, 1, 0, 1))        # a0 a1 b0 b1
    t1 = shuffle(r0, r1, (2, 3, 2, 3))        # a2 a3 b2 b3
    t2 = shuffle(r2, r3, (0, 1, 0, 1))        # c0 c1 d0 d1
    t3 = shuffle(r2, r3, (2, 3, 2, 3))        # c2 c3 d2 d3
    # Stage 2: pick even/odd lanes across pair results.
    o0 = shuffle(t0, t2, (0, 2, 0, 2))        # a0 b0 c0 d0
    o1 = shuffle(t0, t2, (1, 3, 1, 3))        # a1 b1 c1 d1
    o2 = shuffle(t1, t3, (0, 2, 0, 2))        # a2 b2 c2 d2
    o3 = shuffle(t1, t3, (1, 3, 1, 3))        # a3 b3 c3 d3
    return np.stack([o0, o1, o2, o3]), 8


class VectorUnit:
    """Functional 4-lane DP vector ALU with instruction accounting.

    Operations act on arrays whose trailing dimension is padded to a
    multiple of 4 lanes; each group of 4 lanes is one vector instruction.
    ``vector_efficiency`` models how well a kernel's data layout feeds the
    unit: irregular layouts (the original CAM code, Section 7.3) achieve
    well under 1.0, while the redesigned layouts approach it.
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec
        self.instructions = 0
        self.flops = 0
        self.shuffles = 0

    def _count(self, n_elements: int, flops_per_element: int) -> None:
        n_instr = -(-n_elements // LANES)  # ceil-div: partial vectors still issue
        self.instructions += n_instr
        self.flops += n_elements * flops_per_element

    def add(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Lanewise add; one flop per element."""
        res = np.add(a, b, out=out)
        self._count(res.size, 1)
        return res

    def mul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Lanewise multiply; one flop per element."""
        res = np.multiply(a, b, out=out)
        self._count(res.size, 1)
        return res

    def fmadd(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Fused multiply-add a*b + c; two flops per element, one instruction."""
        res = np.multiply(a, b, out=out)
        res = np.add(res, c, out=res if out is not None else None)
        self._count(np.asarray(res).size, 2)
        return res

    def transpose_block(self, m: np.ndarray) -> np.ndarray:
        """Transpose a 4x4 block in registers, counting 8 shuffles."""
        out, n = transpose4x4(m)
        self.shuffles += n
        self.instructions += n
        return out

    def cycles(self, vector_efficiency: float = 1.0) -> float:
        """Cycles to issue the counted instructions at the given efficiency."""
        if not (0.0 < vector_efficiency <= 1.0):
            raise ValueError(f"vector_efficiency must be in (0,1], got {vector_efficiency}")
        return self.instructions / vector_efficiency

    def reset(self) -> None:
        """Zero instruction/flop counters."""
        self.instructions = 0
        self.flops = 0
        self.shuffles = 0
