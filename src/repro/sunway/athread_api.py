"""An Athread-style programming interface over the simulated cluster.

The real Athread library (paper Section 5.3) exposes spawn/join over
the 64 CPEs plus synchronization; OpenACC compiles down to it.  This
module provides the same shape against :class:`~repro.sunway.core_group.CoreGroup`:

    rt = AthreadRuntime(CoreGroup())
    results = rt.spawn(kernel_fn, payload)   # fn(ctx, payload) per CPE
    elapsed = rt.join()                      # slowest-CPE seconds

Kernel functions receive a :class:`CPEContext` with the CPE's mesh
coordinates, its LDM/DMA/vector units, and helpers for row/column
barriers — enough to write the paper's kernels "natively" against the
simulator (see the tests for a 64-CPE element-parallel example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import KernelError
from .core_group import CoreGroup
from .cpe import CPE

#: Cycles for a full-cluster synchronization (athread_syn ~ hundreds).
SYNC_CYCLES = 260.0


@dataclass
class CPEContext:
    """What a spawned kernel sees on its CPE."""

    cpe: CPE
    row: int
    col: int
    cpe_id: int
    n_cpes: int

    @property
    def ldm(self):
        return self.cpe.ldm

    @property
    def dma(self):
        return self.cpe.dma

    @property
    def vector(self):
        return self.cpe.vector

    def my_slice(self, n_items: int) -> range:
        """Block-cyclic ownership of ``n_items`` work units."""
        return range(self.cpe_id, n_items, self.n_cpes)


class AthreadRuntime:
    """spawn/join over one core group's CPE cluster."""

    def __init__(self, cg: CoreGroup | None = None) -> None:
        self.cg = cg or CoreGroup()
        self._spawned = False
        self._results: list[Any] = []
        self.spawn_count = 0
        self.sync_count = 0

    def spawn(
        self, fn: Callable[[CPEContext, Any], Any], payload: Any = None
    ) -> "AthreadRuntime":
        """Run ``fn`` on every CPE (simulated concurrently).

        Each CPE's work is executed with its own context; per-CPE cycle
        counters accumulate independently, so :meth:`join` can report
        the cluster's critical path.
        """
        if self._spawned:
            raise KernelError("previous spawn not joined (athread_join missing)")
        spec = self.cg.spec
        self._results = []
        for cid, cpe in enumerate(self.cg.cpes):
            ctx = CPEContext(
                cpe=cpe,
                row=cpe.row,
                col=cpe.col,
                cpe_id=cid,
                n_cpes=self.cg.n_cpes,
            )
            self._results.append(fn(ctx, payload))
        self._spawned = True
        self.spawn_count += 1
        return self

    def join(self, vector_efficiency: float = 1.0) -> float:
        """Wait for the cluster; returns the slowest CPE's seconds."""
        if not self._spawned:
            raise KernelError("join without spawn")
        self._spawned = False
        slowest = max(
            cpe.total_cycles(vector_efficiency) for cpe in self.cg.cpes
        )
        return self.cg.spec.cycles_to_seconds(slowest)

    def results(self) -> list[Any]:
        """Per-CPE return values of the last spawn."""
        return list(self._results)

    def sync(self) -> None:
        """Full-cluster barrier: every CPE pays the sync cost."""
        for cpe in self.cg.cpes:
            cpe.charge_scalar(SYNC_CYCLES)
        self.sync_count += 1

    def reset(self) -> None:
        """Clear all CPE counters (between kernels)."""
        self.cg.reset()
        self._spawned = False
        self._results = []
