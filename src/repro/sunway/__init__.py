"""Functional + performance-model simulator of the SW26010 many-core CPU.

The SW26010 (paper Section 5.2) has 4 core groups (CGs); each CG has one
management processing element (MPE), an 8x8 mesh of computing processing
elements (CPEs) with 64 KB user-managed scratchpads (LDM), a memory
controller, and register communication along CPE rows/columns.

This subpackage models the pieces the paper's redesign exploits:

- :mod:`~repro.sunway.spec` — the architecture description;
- :mod:`~repro.sunway.ldm` — the scratchpad allocator (capacity enforced);
- :mod:`~repro.sunway.dma` — the DMA engine with a block-size/stride
  efficiency model and double buffering;
- :mod:`~repro.sunway.regcomm` — row/column register communication,
  functional (values actually move) with cycle accounting;
- :mod:`~repro.sunway.vector` — the 256-bit vector unit including the
  ``shuffle`` instruction used by the transposition scheme;
- :mod:`~repro.sunway.cpe`, :mod:`~repro.sunway.core_group`,
  :mod:`~repro.sunway.processor` — the composition hierarchy;
- :mod:`~repro.sunway.perf` — PERF-style hardware counters.
"""

from .spec import SW26010Spec, DEFAULT_SPEC
from .ldm import LDM, LDMArray, LDMBlock
from .dma import DMAEngine, DMARequest
from .regcomm import CPEMeshComm
from .vector import VectorUnit, shuffle, transpose4x4
from .cpe import CPE
from .core_group import CoreGroup
from .processor import SW26010
from .perf import PerfCounters

__all__ = [
    "SW26010Spec",
    "DEFAULT_SPEC",
    "LDM",
    "LDMArray",
    "LDMBlock",
    "DMAEngine",
    "DMARequest",
    "CPEMeshComm",
    "VectorUnit",
    "shuffle",
    "transpose4x4",
    "CPE",
    "CoreGroup",
    "SW26010",
    "PerfCounters",
]
