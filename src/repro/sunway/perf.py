"""PERF-style hardware counters for the simulated machine.

The paper counts double-precision flops three ways (Section 8.1.1):
manual assembly counting, the Sunway PERF hardware monitor, and PAPI on
an Intel run of the same code.  :class:`PerfCounters` plays the role of
PERF: retired DP-flop and DMA-byte counters that kernels increment and
experiments read.  :mod:`repro.perf.flops` implements the other two
methods so the three can be cross-checked like the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PerfCounters:
    """Retired-instruction counters for one core group.

    Attributes mirror the events the paper reads from the Sunway PERF
    monitor: retired double-precision arithmetic on the CPE cluster plus
    the memory-traffic events that dominate the bandwidth-bound analysis.
    """

    dp_flops: int = 0
    vector_instructions: int = 0
    dma_bytes_get: int = 0
    dma_bytes_put: int = 0
    regcomm_transfers: int = 0
    ldm_high_water: int = 0
    cycles: float = 0.0
    #: Cluster slowdown from failed CPEs (1.0 = all 64 healthy).
    degradation: float = 1.0

    def add_flops(self, n: int) -> None:
        """Retire ``n`` double-precision arithmetic operations."""
        if n < 0:
            raise ValueError("flop count cannot be negative")
        self.dp_flops += n

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Aggregate counters from another core group / kernel region."""
        self.dp_flops += other.dp_flops
        self.vector_instructions += other.vector_instructions
        self.dma_bytes_get += other.dma_bytes_get
        self.dma_bytes_put += other.dma_bytes_put
        self.regcomm_transfers += other.regcomm_transfers
        self.ldm_high_water = max(self.ldm_high_water, other.ldm_high_water)
        self.cycles += other.cycles
        self.degradation = max(self.degradation, other.degradation)
        return self

    @property
    def dma_bytes(self) -> int:
        """Total DMA traffic in both directions."""
        return self.dma_bytes_get + self.dma_bytes_put

    def flop_rate(self, seconds: float) -> float:
        """Sustained flop rate [flop/s] over ``seconds`` of execution."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.dp_flops / seconds

    def arithmetic_intensity(self) -> float:
        """Flops per DMA byte (the roofline x-axis)."""
        return self.dp_flops / self.dma_bytes if self.dma_bytes else float("inf")

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view for experiment logs."""
        return {
            "dp_flops": self.dp_flops,
            "vector_instructions": self.vector_instructions,
            "dma_bytes_get": self.dma_bytes_get,
            "dma_bytes_put": self.dma_bytes_put,
            "regcomm_transfers": self.regcomm_transfers,
            "ldm_high_water": self.ldm_high_water,
            "cycles": self.cycles,
            "degradation": self.degradation,
        }
