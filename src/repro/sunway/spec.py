"""Architecture description of the SW26010 processor.

All simulator components take a :class:`SW26010Spec` so tests can build
reduced machines (fewer CPEs, smaller LDM) and ablations can vary
hardware parameters (e.g. "what if the LDM were 128 KB?").
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants as C


@dataclass(frozen=True)
class SW26010Spec:
    """Parameters of one SW26010 processor.

    Defaults reproduce the published chip; see :data:`DEFAULT_SPEC`.
    """

    core_groups: int = C.SW_CORE_GROUPS
    cpe_rows: int = C.SW_CPE_MESH_ROWS
    cpe_cols: int = C.SW_CPE_MESH_COLS
    clock_hz: float = C.SW_CLOCK_HZ
    ldm_bytes: int = C.SW_LDM_BYTES
    vector_dp_lanes: int = C.SW_VECTOR_DP_LANES
    flops_per_cycle: int = C.SW_CPE_FLOPS_PER_CYCLE
    memory_bandwidth: float = C.SW_MEMORY_BANDWIDTH
    memory_bytes: int = C.SW_MEMORY_BYTES
    regcomm_latency_cycles: int = C.SW_REGCOMM_LATENCY_CYCLES
    regcomm_bytes: int = C.SW_REGCOMM_BYTES
    dma_startup_cycles: int = C.SW_DMA_STARTUP_CYCLES
    dma_peak_efficiency: float = C.SW_DMA_PEAK_EFFICIENCY

    def __post_init__(self) -> None:
        if self.core_groups < 1:
            raise ValueError("core_groups must be >= 1")
        if self.cpe_rows < 1 or self.cpe_cols < 1:
            raise ValueError("CPE mesh dimensions must be >= 1")
        if self.ldm_bytes < 1024:
            raise ValueError("ldm_bytes unrealistically small")
        if not (0.0 < self.dma_peak_efficiency <= 1.0):
            raise ValueError("dma_peak_efficiency must be in (0, 1]")

    @property
    def cpes_per_cg(self) -> int:
        """CPEs in one core group (mesh rows x cols)."""
        return self.cpe_rows * self.cpe_cols

    @property
    def cores_per_processor(self) -> int:
        """All cores: per CG, the MPE plus the CPE cluster."""
        return self.core_groups * (self.cpes_per_cg + 1)

    @property
    def cpe_peak_flops(self) -> float:
        """Peak DP flop rate of one CPE [flop/s]."""
        return self.flops_per_cycle * self.clock_hz

    @property
    def cg_peak_flops(self) -> float:
        """Peak DP flop rate of one core group's CPE cluster [flop/s]."""
        return self.cpes_per_cg * self.cpe_peak_flops

    @property
    def processor_peak_flops(self) -> float:
        """Peak DP flop rate of the whole chip [flop/s]."""
        return self.core_groups * self.cg_peak_flops

    @property
    def cg_memory_bandwidth(self) -> float:
        """Main-memory bandwidth available to one CG [bytes/s]."""
        return self.memory_bandwidth / self.core_groups

    @property
    def cycle_time(self) -> float:
        """Seconds per CPE clock cycle."""
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the CPE clock."""
        return cycles / self.clock_hz


#: The published SW26010 configuration.
DEFAULT_SPEC = SW26010Spec()
