"""Register communication on the 8x8 CPE mesh.

The SW26010 has no coherent cache among CPEs; instead, CPEs on the same
row or the same column can exchange 256-bit register payloads directly
between LDMs "within tens of cycles" (paper Section 7.4).  The paper uses
this for:

- the three-stage parallel scan of vertical pressure accumulation
  (Figure 2), and
- the inter-CPE phase of the array transposition scheme (Figure 3).

:class:`CPEMeshComm` is a functional mailbox model: values actually move
between per-CPE queues, constraints (same row or same column only) are
enforced, and cycles are charged per transfer.  The collective helpers
implement the patterns the paper builds on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import RegCommError
from .spec import SW26010Spec, DEFAULT_SPEC


@dataclass
class RegMessage:
    """One in-flight register payload."""

    src: tuple[int, int]
    dst: tuple[int, int]
    payload: np.ndarray


class CPEMeshComm:
    """Mailbox-based register communication for one CPE cluster.

    Each (row, col) CPE has a receive queue per sender.  Sends enforce the
    hardware constraint that source and destination share a row or a
    column.  Payloads are at most 4 doubles (one 256-bit register) per
    transfer; larger arrays are charged as multiple transfers.
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.spec = spec
        self.rows = spec.cpe_rows
        self.cols = spec.cpe_cols
        self._queues: dict[
            tuple[tuple[int, int], tuple[int, int]], deque[np.ndarray]
        ] = {}
        self.transfer_count = 0
        self.total_cycles = 0.0

    # -- validation ------------------------------------------------------------

    def _check_coord(self, coord: tuple[int, int]) -> None:
        r, c = coord
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise RegCommError(f"CPE coordinate {coord} outside {self.rows}x{self.cols} mesh")

    def _check_route(self, src: tuple[int, int], dst: tuple[int, int]) -> None:
        self._check_coord(src)
        self._check_coord(dst)
        if src == dst:
            raise RegCommError(f"CPE {src} cannot register-send to itself")
        if src[0] != dst[0] and src[1] != dst[1]:
            raise RegCommError(
                f"register communication requires same row or column: {src} -> {dst}"
            )

    # -- point to point ----------------------------------------------------------

    def send(self, src: tuple[int, int], dst: tuple[int, int], payload: np.ndarray) -> float:
        """Send ``payload`` from CPE ``src`` to CPE ``dst``.  Returns cycles.

        Payload is chunked into 256-bit (4-double) register transfers.
        """
        self._check_route(src, dst)
        payload = np.atleast_1d(np.asarray(payload, dtype=np.float64))
        lanes = self.spec.vector_dp_lanes
        n_transfers = max(1, -(-payload.size // lanes))  # ceil-div
        cycles = n_transfers * self.spec.regcomm_latency_cycles
        self._queues.setdefault((src, dst), deque()).append(payload.copy())
        self.transfer_count += n_transfers
        self.total_cycles += cycles
        return cycles

    def recv(self, dst: tuple[int, int], src: tuple[int, int]) -> np.ndarray:
        """Blocking receive at ``dst`` of the oldest payload from ``src``."""
        self._check_route(src, dst)
        q = self._queues.get((src, dst))
        if not q:
            raise RegCommError(f"no pending register message {src} -> {dst}")
        return q.popleft()

    def pending(self, dst: tuple[int, int], src: tuple[int, int]) -> int:
        """Number of undelivered payloads on the src->dst route."""
        return len(self._queues.get((src, dst), ()))

    # -- collectives used by the paper's schemes ----------------------------------

    def column_scan(self, values: np.ndarray) -> tuple[np.ndarray, float]:
        """Exclusive prefix-scan down each mesh column.

        ``values[r, c]`` is CPE (r, c)'s local partial sum; the result
        ``out[r, c]`` is the sum of values from rows 0..r-1 in column c —
        exactly the "Partial Sum Exchange" stage of the paper's
        three-stage accumulation (Section 7.4, Figure 2).

        Returns (offsets, cycles).  Cycles model the serial chain down the
        column (each row waits for its predecessor), which is the critical
        path of stage 2; columns proceed in parallel.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.rows, self.cols):
            raise RegCommError(
                f"column_scan expects shape {(self.rows, self.cols)}, got {values.shape}"
            )
        out = np.zeros_like(values)
        # Functional: route real messages down each column.
        for c in range(self.cols):
            carry = 0.0
            for r in range(self.rows):
                out[r, c] = carry
                carry += values[r, c]
                if r + 1 < self.rows:
                    self.send((r, c), (r + 1, c), np.array([carry]))
                    received = self.recv((r + 1, c), (r, c))
                    carry = float(received[0])
        # Critical path: rows-1 hops, columns in parallel.
        chain_cycles = (self.rows - 1) * self.spec.regcomm_latency_cycles
        return out, float(chain_cycles)

    def row_broadcast(self, row_values: np.ndarray) -> tuple[np.ndarray, float]:
        """Broadcast column-0 values across each row (used to share
        element-level constants).  Returns (full mesh values, cycles)."""
        row_values = np.asarray(row_values, dtype=np.float64)
        if row_values.shape != (self.rows,):
            raise RegCommError(f"row_broadcast expects shape ({self.rows},)")
        out = np.repeat(row_values[:, None], self.cols, axis=1)
        for r in range(self.rows):
            for c in range(1, self.cols):
                self.send((r, 0), (r, c), np.array([row_values[r]]))
                self.recv((r, c), (r, 0))
        # Pipelined along the row: cols-1 hops.
        cycles = (self.cols - 1) * self.spec.regcomm_latency_cycles
        return out, float(cycles)

    def exchange_phase(
        self,
        blocks: dict[int, np.ndarray],
        phase: int,
        along: str = "row",
    ) -> tuple[dict[int, np.ndarray], float]:
        """One XOR-phase pairwise exchange among n CPEs on a row (or column).

        The transposition scheme (Section 7.5, Figure 3) runs phases
        k = 1..n-1; in phase k CPE i exchanges a sub-matrix with CPE
        i XOR k, a collision-free pairing.  ``blocks[i]`` is the block CPE
        i contributes this phase; the result maps i to the block received.
        """
        width = self.cols if along == "row" else self.rows
        n = len(blocks)
        if n < 2 or n > width:
            raise RegCommError(f"need 2..{width} participating CPEs, got {n}")
        if set(blocks) != set(range(n)):
            raise RegCommError(f"blocks must cover CPEs 0..{n - 1}")
        if phase < 1 or phase >= n:
            raise RegCommError(f"phase must be in [1, {n - 1}], got {phase}")
        out: dict[int, np.ndarray] = {}
        max_cycles = 0.0
        for i in range(n):
            j = i ^ phase
            if j >= n:
                raise RegCommError(
                    f"phase {phase} pairs CPE {i} with {j}, outside 0..{n - 1}; "
                    "XOR exchange requires power-of-two mesh width"
                )
            if i < j:
                a = (i, 0) if along == "column" else (0, i)
                b = (j, 0) if along == "column" else (0, j)
                c1 = self.send(a, b, blocks[i].reshape(-1))
                c2 = self.send(b, a, blocks[j].reshape(-1))
                self.recv(b, a)
                self.recv(a, b)
                out[j] = blocks[i].copy()
                out[i] = blocks[j].copy()
                max_cycles = max(max_cycles, c1, c2)
        return out, max_cycles
