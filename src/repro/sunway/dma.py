"""The CPE DMA engine: main-memory <-> LDM transfers with a cost model.

On the SW26010, CPEs access main memory through explicit DMA (gld/gst
direct loads are catastrophically slow).  The redesign in the paper lives
or dies on DMA behaviour:

- bandwidth efficiency depends strongly on block size and contiguity —
  small or strided transfers waste most of the 132 GB/s;
- per-descriptor startup latency makes "many tiny gets" a losing pattern;
- double buffering overlaps the next tile's transfer with computation.

:class:`DMAEngine` is functional (bytes really move between numpy
buffers) and charges cycles to its core group's memory-channel model.
Transfers are tracked per engine so the backends can report total traffic
— this is how we verify the paper's "data transfer decreased to 10% of
the OpenACC solution" claim (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DMAError
from ..obs.tracer import NULL_TRACER
from .spec import SW26010Spec, DEFAULT_SPEC


@dataclass
class DMARequest:
    """One queued DMA descriptor (for double-buffered operation)."""

    nbytes: int
    cycles: float
    tag: str = ""
    completed: bool = False


def dma_efficiency(block_bytes: int, stride_bytes: int = 0) -> float:
    """Fraction of peak memory bandwidth achieved by one DMA transfer.

    Measured SW26010 behaviour (Xu et al., "Benchmarking SW26010"):
    efficiency ramps with block size, saturating near peak around 1-4 KB
    contiguous blocks; strided (non-unit row) transfers pay an extra
    penalty because each burst touches a fresh DRAM row.

    The curve below is a smooth fit with the right asymptotes:
    ~12% at 32 B, ~50% at 256 B, ~80% at 1 KB, ~90% (peak efficiency)
    beyond 4 KB.
    """
    if block_bytes <= 0:
        raise DMAError(f"block size must be positive, got {block_bytes}")
    # Saturating ramp: eff = peak * b / (b + b_half), b_half = 256 B.
    eff = 0.9 * block_bytes / (block_bytes + 256.0)
    if stride_bytes > block_bytes:
        # Strided bursts: derate by how sparse the access is, floor at 25%.
        sparsity = block_bytes / stride_bytes
        eff *= max(0.25, sparsity ** 0.25)
    return min(eff, 0.9)


class DMAEngine:
    """Per-CPE DMA engine with cost accounting and double buffering.

    Parameters
    ----------
    spec:
        Machine description (startup cycles, bandwidth).
    bandwidth_share:
        Fraction of the CG memory bandwidth this engine can use.  When all
        64 CPEs stream simultaneously each sees ~1/64th of the channel;
        backends set this from their concurrency model.
    tracer / track:
        Observability hook (:mod:`repro.obs`): when a real tracer is
        passed, every transfer becomes a span on ``track``, timed on the
        engine's own cycle counter converted to seconds (the engine has
        no SimClock; its timeline is cumulative busy time).
    """

    def __init__(
        self,
        spec: SW26010Spec = DEFAULT_SPEC,
        bandwidth_share: float = 1.0 / 64.0,
        faults=None,
        tracer=None,
        track: str = "dma",
    ) -> None:
        if not (0.0 < bandwidth_share <= 1.0):
            raise DMAError(f"bandwidth_share must be in (0,1], got {bandwidth_share}")
        self.spec = spec
        self.bandwidth_share = bandwidth_share
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.track = track
        #: Optional FaultInjector whose scheduled bit flips corrupt the
        #: destination buffer of a transfer (silent data corruption).
        self.faults = faults
        self.bytes_get = 0
        self.bytes_put = 0
        self.transfer_count = 0
        self.total_cycles = 0.0
        self.corrupted_transfers = 0
        self._pending: list[DMARequest] = []

    # -- cost model ----------------------------------------------------------

    @property
    def bandwidth(self) -> float:
        """This engine's share of the CG memory channel [bytes/s]."""
        return self.spec.cg_memory_bandwidth * self.bandwidth_share

    def transfer_cycles(self, nbytes: int, stride_bytes: int = 0) -> float:
        """Cycles for one transfer of ``nbytes`` (startup + streaming)."""
        if nbytes <= 0:
            raise DMAError(f"transfer size must be positive, got {nbytes}")
        eff = dma_efficiency(nbytes, stride_bytes)
        stream_s = nbytes / (self.bandwidth * eff / self.spec.dma_peak_efficiency)
        return self.spec.dma_startup_cycles + stream_s * self.spec.clock_hz

    def _trace_transfer(self, name: str, nbytes: int, cycles: float, tag: str) -> None:
        """Record a transfer span on the engine's cycle timeline."""
        t1 = self.total_cycles / self.spec.clock_hz
        t0 = (self.total_cycles - cycles) / self.spec.clock_hz
        self.tracer.span_at(self.track, name, t0, t1, cat="dma",
                            nbytes=nbytes, tag=tag)

    # -- functional transfers --------------------------------------------------

    def get(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        stride_bytes: int = 0,
        tag: str = "",
    ) -> float:
        """DMA-get: main memory ``src`` -> LDM ``dst``.  Returns cycles."""
        if src.nbytes != dst.nbytes:
            raise DMAError(
                f"size mismatch: src {src.nbytes} B vs dst {dst.nbytes} B ({tag})"
            )
        np.copyto(dst.reshape(-1), src.reshape(-1).astype(dst.dtype, copy=False))
        if self.faults is not None and self.faults.on_dma(dst):
            self.corrupted_transfers += 1
        cycles = self.transfer_cycles(src.nbytes, stride_bytes)
        self.bytes_get += src.nbytes
        self.transfer_count += 1
        self.total_cycles += cycles
        if self.tracer.enabled:
            self._trace_transfer("dma.get", src.nbytes, cycles, tag)
        return cycles

    def put(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        stride_bytes: int = 0,
        tag: str = "",
    ) -> float:
        """DMA-put: LDM ``src`` -> main memory ``dst``.  Returns cycles."""
        if src.nbytes != dst.nbytes:
            raise DMAError(
                f"size mismatch: src {src.nbytes} B vs dst {dst.nbytes} B ({tag})"
            )
        np.copyto(dst.reshape(-1), src.reshape(-1).astype(dst.dtype, copy=False))
        if self.faults is not None and self.faults.on_dma(dst):
            self.corrupted_transfers += 1
        cycles = self.transfer_cycles(src.nbytes, stride_bytes)
        self.bytes_put += src.nbytes
        self.transfer_count += 1
        self.total_cycles += cycles
        if self.tracer.enabled:
            self._trace_transfer("dma.put", src.nbytes, cycles, tag)
        return cycles

    # -- accounting-only interface (perf-model paths without real arrays) -----

    def charge_get(self, nbytes: int, stride_bytes: int = 0, tag: str = "") -> float:
        """Account for a get without moving data (performance-model path)."""
        cycles = self.transfer_cycles(nbytes, stride_bytes)
        self.bytes_get += nbytes
        self.transfer_count += 1
        self.total_cycles += cycles
        if self.tracer.enabled:
            self._trace_transfer("dma.get", nbytes, cycles, tag)
        return cycles

    def charge_put(self, nbytes: int, stride_bytes: int = 0, tag: str = "") -> float:
        """Account for a put without moving data (performance-model path)."""
        cycles = self.transfer_cycles(nbytes, stride_bytes)
        self.bytes_put += nbytes
        self.transfer_count += 1
        self.total_cycles += cycles
        if self.tracer.enabled:
            self._trace_transfer("dma.put", nbytes, cycles, tag)
        return cycles

    # -- double buffering ------------------------------------------------------

    def prefetch(self, nbytes: int, stride_bytes: int = 0, tag: str = "") -> DMARequest:
        """Issue an asynchronous get whose cost may overlap computation.

        Returns a request to pass to :meth:`overlap_cost`.
        """
        cycles = self.transfer_cycles(nbytes, stride_bytes)
        req = DMARequest(nbytes, cycles, tag)
        self.bytes_get += nbytes
        self.transfer_count += 1
        self._pending.append(req)
        return req

    def overlap_cost(self, req: DMARequest, compute_cycles: float) -> float:
        """Resolve a prefetch against overlapping computation.

        Returns the *visible* cycles: ``max(transfer, compute)`` — the
        essence of double buffering.  The engine's ``total_cycles``
        records the visible time, so backend timings include overlap.
        """
        if req.completed:
            raise DMAError("DMA request already completed")
        req.completed = True
        self._pending.remove(req)
        visible = max(req.cycles, compute_cycles)
        self.total_cycles += visible
        if self.tracer.enabled:
            self._trace_transfer("dma.prefetch", req.nbytes, visible, req.tag)
        return visible

    # -- reporting ---------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in both directions."""
        return self.bytes_get + self.bytes_put

    def reset_counters(self) -> None:
        """Zero traffic and cycle counters (between kernels)."""
        self.bytes_get = 0
        self.bytes_put = 0
        self.transfer_count = 0
        self.total_cycles = 0.0
        self.corrupted_transfers = 0
        self._pending.clear()
