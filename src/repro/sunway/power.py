"""Power and energy model for TaihuLight runs.

The paper highlights the machine's 6.06 GFlops/W system efficiency
(Section 5.1) and the SW26010's 10 GFlops/W chip efficiency (Section
5.2).  This module converts simulated runs into energy figures so
experiments can report "science per megawatt" — the quantity Exascale
procurement actually optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants as C
from .spec import DEFAULT_SPEC

#: Whole-system power of TaihuLight under load [W] (15.37 MW Linpack).
TAIHULIGHT_SYSTEM_POWER = 15.37e6

#: One SW26010 processor's TDP [W] (~3 TFlops at 10 GFlops/W).
PROCESSOR_POWER = 310.0

#: Node overhead beyond the processor (memory, board, share of
#: cooling/network) [W]: system power / 40,960 nodes - processor.
NODE_OVERHEAD_POWER = TAIHULIGHT_SYSTEM_POWER / C.TAIHULIGHT_NODES - PROCESSOR_POWER

#: Idle fraction: power draw of an idle-but-allocated node relative to load.
IDLE_FRACTION = 0.55


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one run."""

    nodes: int
    seconds: float
    flops: float
    joules: float

    @property
    def megawatts(self) -> float:
        return self.joules / self.seconds / 1e6 if self.seconds > 0 else 0.0

    @property
    def gflops_per_watt(self) -> float:
        if self.joules <= 0:
            return 0.0
        return self.flops / self.joules / 1e9

    @property
    def megawatt_hours(self) -> float:
        return self.joules / 3.6e9


def node_power(utilization: float = 1.0) -> float:
    """One node's draw [W] at the given compute utilization."""
    if not (0.0 <= utilization <= 1.0):
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    full = PROCESSOR_POWER + NODE_OVERHEAD_POWER
    return full * (IDLE_FRACTION + (1.0 - IDLE_FRACTION) * utilization)


def run_energy(
    nproc: int,
    seconds: float,
    flops: float,
    utilization: float = 1.0,
) -> EnergyReport:
    """Energy of a run on ``nproc`` core groups for ``seconds``.

    Four core groups share a node; partially-filled nodes still burn
    whole-node power (allocation granularity).
    """
    if nproc < 1 or seconds <= 0 or flops < 0:
        raise ValueError("invalid run parameters")
    nodes = -(-nproc // C.SW_CORE_GROUPS)
    joules = nodes * node_power(utilization) * seconds
    return EnergyReport(nodes=nodes, seconds=seconds, flops=flops, joules=joules)


def machine_efficiency_check() -> dict[str, float]:
    """The paper's headline: 6.06 GFlops/W at Linpack scale.

    Linpack: 93 PFlops at 15.37 MW -> 6.05 GFlops/W; our constants must
    reproduce it (consistency check used by the tests).
    """
    gfw = C.TAIHULIGHT_LINPACK_FLOPS / TAIHULIGHT_SYSTEM_POWER / 1e9
    return {
        "linpack_gflops_per_watt": gfw,
        "paper_value": 6.06,
        "chip_gflops_per_watt": DEFAULT_SPEC.processor_peak_flops
        / PROCESSOR_POWER
        / 1e9,
    }
