"""One core group (CG): an MPE, an 8x8 CPE cluster, a memory controller.

On TaihuLight, "each CG corresponds to one MPI process" (paper Section
5.3); the backends execute one rank's kernel work on one
:class:`CoreGroup`.  The CG aggregates CPE cycle/traffic counters into
:class:`~repro.sunway.perf.PerfCounters`, enforces the shared memory
channel (all 64 CPEs divide ~33 GB/s), and models the MPE as the
management core that drives MPI and runs serial sections.
"""

from __future__ import annotations

from .. import constants as C
from ..errors import ResilienceError
from .cpe import CPE
from .perf import PerfCounters
from .regcomm import CPEMeshComm
from .spec import SW26010Spec, DEFAULT_SPEC


class CoreGroup:
    """One MPE + one CPE cluster sharing a memory controller."""

    def __init__(self, cg_id: int = 0, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        self.cg_id = cg_id
        self.spec = spec
        self.cpes = [
            CPE(r, c, spec)
            for r in range(spec.cpe_rows)
            for c in range(spec.cpe_cols)
        ]
        self.mesh = CPEMeshComm(spec)
        self.mpe_cycles = 0.0
        self._failed: set[tuple[int, int]] = set()

    # -- lookup ------------------------------------------------------------

    def cpe(self, row: int, col: int) -> CPE:
        """The CPE at mesh position (row, col)."""
        return self.cpes[row * self.spec.cpe_cols + col]

    @property
    def n_cpes(self) -> int:
        return len(self.cpes)

    # -- graceful degradation ---------------------------------------------

    def disable_cpe(self, row: int, col: int) -> None:
        """Mark the CPE at (row, col) failed: it takes no further work."""
        self.cpe(row, col)  # bounds check
        self._failed.add((row, col))
        if not self.healthy_cpes:
            raise ResilienceError(
                f"core group {self.cg_id}: all CPEs disabled"
            )

    def disable_cpes(self, n: int) -> None:
        """Fail ``n`` CPEs (highest mesh positions first)."""
        if not (0 <= n < self.n_cpes - len(self._failed) + 1):
            raise ResilienceError(
                f"cannot disable {n} of {self.n_cpes - len(self._failed)} "
                "healthy CPEs"
            )
        alive = [c for c in reversed(self.cpes) if c.coord not in self._failed]
        for cpe in alive[:n]:
            self.disable_cpe(*cpe.coord)

    @property
    def healthy_cpes(self) -> list[CPE]:
        """CPEs still accepting work."""
        return [c for c in self.cpes if c.coord not in self._failed]

    @property
    def n_healthy(self) -> int:
        return len(self.healthy_cpes)

    @property
    def degradation(self) -> float:
        """Cluster slowdown from failed CPEs (1.0 = fully healthy).

        Work re-tiles evenly over the survivors, so a cluster with k of
        64 CPEs alive runs its compute-bound kernels 64/k slower.
        """
        return self.n_cpes / self.n_healthy

    # -- MPE model -----------------------------------------------------------

    def mpe_scalar_seconds(self, flops: float) -> float:
        """Seconds for the MPE to execute ``flops`` of scalar work.

        The MPE is a full RISC core but much weaker than a Xeon core for
        numerics; Table 1 shows MPE-only kernels 2-10x slower than one
        Intel core.  We model it as a fraction of the Intel core's
        *achieved* kernel rate.
        """
        intel_rate = C.INTEL_CORE_PEAK_FLOPS * C.INTEL_KERNEL_EFFICIENCY
        mpe_rate = intel_rate * C.SW_MPE_RELATIVE_SCALAR_SPEED
        return flops / mpe_rate

    def charge_mpe(self, seconds: float) -> None:
        """Charge seconds of MPE time (serial sections, MPI driving)."""
        if seconds < 0:
            raise ValueError("seconds cannot be negative")
        self.mpe_cycles += seconds * self.spec.clock_hz

    # -- aggregation -----------------------------------------------------------

    def collect(self, vector_efficiency: float = 1.0) -> PerfCounters:
        """Aggregate all CPE counters into one CG-level PERF snapshot.

        ``cycles`` is the *slowest healthy CPE's* busy time (the cluster
        advances at the pace of its critical lane), plus MPE time and
        mesh communication time.  Counters accumulated on a CPE before
        it failed still count — its work was real — but its lane no
        longer gates the cluster, and the snapshot reports the
        :attr:`degradation` factor of the surviving configuration.
        """
        perf = PerfCounters()
        slowest = 0.0
        healthy = self.healthy_cpes
        for cpe in self.cpes:
            perf.dp_flops += cpe.vector.flops
            perf.vector_instructions += cpe.vector.instructions
            perf.dma_bytes_get += cpe.dma.bytes_get
            perf.dma_bytes_put += cpe.dma.bytes_put
            perf.ldm_high_water = max(perf.ldm_high_water, cpe.ldm.high_water)
        for cpe in healthy:
            slowest = max(slowest, cpe.total_cycles(vector_efficiency))
        perf.regcomm_transfers = self.mesh.transfer_count
        perf.cycles = slowest + self.mpe_cycles + self.mesh.total_cycles
        perf.degradation = self.degradation
        return perf

    def elapsed_seconds(self, vector_efficiency: float = 1.0) -> float:
        """Wall time of the CG's work so far, at the CPE clock."""
        return self.collect(vector_efficiency).cycles / self.spec.clock_hz

    def bandwidth_bound_seconds(self, bytes_moved: float) -> float:
        """Lower bound on time from the shared memory channel alone.

        This is the paper's "projected performance upper bound based on
        the memory capacities (assuming bandwidth as the major
        constraint)" applied to one CG.
        """
        return bytes_moved / self.spec.cg_memory_bandwidth

    def reset(self) -> None:
        """Clear all CPE and mesh state (failed CPEs stay failed)."""
        for cpe in self.cpes:
            cpe.reset()
        self.mesh = CPEMeshComm(self.spec)
        self.mpe_cycles = 0.0
