"""One computing processing element (CPE): LDM + DMA + vector unit.

A CPE is a user-mode-only RISC core.  In this simulator it owns a
scratchpad (:class:`~repro.sunway.ldm.LDM`), a DMA engine, and a vector
unit, and knows its (row, col) position on the 8x8 mesh for register
communication.
"""

from __future__ import annotations

from .dma import DMAEngine
from .ldm import LDM
from .spec import SW26010Spec, DEFAULT_SPEC
from .vector import VectorUnit


class CPE:
    """A single computing processing element."""

    def __init__(
        self,
        row: int,
        col: int,
        spec: SW26010Spec = DEFAULT_SPEC,
        dma_bandwidth_share: float | None = None,
    ) -> None:
        if not (0 <= row < spec.cpe_rows and 0 <= col < spec.cpe_cols):
            raise ValueError(f"CPE coordinate ({row},{col}) outside mesh")
        self.row = row
        self.col = col
        self.spec = spec
        self.ldm = LDM(spec.ldm_bytes)
        share = dma_bandwidth_share
        if share is None:
            share = 1.0 / (spec.cpe_rows * spec.cpe_cols)
        self.dma = DMAEngine(spec, bandwidth_share=share)
        self.vector = VectorUnit(spec)
        self.scalar_cycles = 0.0

    @property
    def coord(self) -> tuple[int, int]:
        """(row, col) position on the CPE mesh."""
        return (self.row, self.col)

    def charge_scalar(self, cycles: float) -> None:
        """Charge non-vector (scalar pipeline) cycles."""
        if cycles < 0:
            raise ValueError("cycles cannot be negative")
        self.scalar_cycles += cycles

    def total_cycles(self, vector_efficiency: float = 1.0) -> float:
        """All cycles this CPE has accumulated: compute + DMA + scalar.

        DMA cycles recorded through double buffering already reflect
        overlap, so a straight sum is the CPE's busy time.
        """
        return (
            self.vector.cycles(vector_efficiency)
            + self.dma.total_cycles
            + self.scalar_cycles
        )

    def reset(self) -> None:
        """Clear all state and counters (between kernel invocations)."""
        self.ldm.reset()
        self.dma.reset_counters()
        self.vector.reset()
        self.scalar_cycles = 0.0
