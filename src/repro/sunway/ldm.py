"""The CPE Local Data Memory (LDM): a 64 KB user-managed scratchpad.

The paper's central memory-management problem is fitting kernel working
sets into this 64 KB buffer ("the cache is replaced by a user-controlled
scratchpad memory").  The allocator enforces capacity exactly: any tiling
plan produced by :mod:`repro.core.tiling` must allocate successfully here
or the plan is invalid.

Allocation is a simple first-fit free-list over a byte range — the same
discipline Athread programmers use when laying out LDM manually — with a
high-water mark so tests can assert peak usage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LDMAllocationError, LDMOverflowError
from ..obs.tracer import NULL_TRACER

#: SW26010 vector loads require 32-byte alignment; every allocation is
#: rounded up to this before it is fitted against the free list.
LDM_ALIGN = 32


def _aligned(nbytes: int) -> int:
    """Round an allocation request up to the LDM alignment."""
    return (nbytes + LDM_ALIGN - 1) & ~(LDM_ALIGN - 1)


class LDMArray(np.ndarray):
    """An ndarray view of scratchpad bytes that owns its backing block.

    Holding the :class:`LDMBlock` on the array itself (rather than in a
    driver-side ``id(arr)``-keyed map) ties the block's bookkeeping to
    the array's lifetime: CPython recycles object ids, so an id-keyed
    map could be fooled into freeing the wrong block after the original
    array was garbage-collected.
    """

    _ldm_block = None

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self._ldm_block = getattr(obj, "_ldm_block", None)


@dataclass
class LDMBlock:
    """A live allocation in the scratchpad.

    ``data`` is a real numpy buffer so functional kernels can stage values
    through the LDM exactly the way DMA'd tiles are used on hardware.
    """

    offset: int
    size: int
    label: str
    data: np.ndarray

    def __post_init__(self) -> None:
        self._freed = False

    @property
    def freed(self) -> bool:
        return self._freed


class LDM:
    """First-fit scratchpad allocator with exact capacity enforcement.

    ``tracer``/``track`` (:mod:`repro.obs`) turn alloc/free traffic into
    an occupancy counter series.  The LDM has no clock, so samples are
    stamped with the allocator's own operation sequence number — the
    resulting Chrome counter track shows occupancy per operation.
    """

    def __init__(self, capacity: int = 64 * 1024, tracer=None,
                 track: str = "ldm") -> None:
        if capacity <= 0:
            raise ValueError("LDM capacity must be positive")
        self.capacity = capacity
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.track = track
        self._free: list[tuple[int, int]] = [(0, capacity)]  # (offset, size)
        self._blocks: dict[int, LDMBlock] = {}
        self._used = 0
        self._high_water = 0
        self._alloc_count = 0
        self._op_seq = 0
        self._array_blocks: dict[int, LDMBlock] = {}

    def _sample_occupancy(self) -> None:
        """Emit one occupancy counter sample (op-sequence timeline)."""
        self.tracer.counter(self.track, "ldm.used", float(self._op_seq),
                            float(self._used))
        self._op_seq += 1

    # -- queries -------------------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes currently free (may be fragmented)."""
        return self.capacity - self._used

    @property
    def high_water(self) -> int:
        """Peak bytes ever simultaneously allocated."""
        return self._high_water

    @property
    def largest_free_block(self) -> int:
        """Largest single free extent (limits the next allocation)."""
        return max((s for _, s in self._free), default=0)

    def would_fit(self, nbytes: int) -> bool:
        """Whether ``alloc(nbytes)`` would currently succeed.

        Exact iff-equivalence with :meth:`alloc`: the request is rounded
        up to the 32-byte alignment *before* it is compared against the
        largest free extent (``would_fit(33)`` is False when only 48
        contiguous bytes remain, because ``alloc(33)`` needs 64), and
        non-positive sizes — which ``alloc`` rejects — report False.
        """
        if nbytes <= 0:
            return False
        return _aligned(nbytes) <= self.largest_free_block

    # -- allocation ----------------------------------------------------------

    def alloc(self, nbytes: int, label: str = "") -> LDMBlock:
        """Allocate ``nbytes``; raises :class:`LDMOverflowError` if it
        does not fit in any free extent."""
        if nbytes <= 0:
            raise LDMAllocationError(f"allocation size must be positive, got {nbytes}")
        aligned = _aligned(nbytes)
        for i, (off, size) in enumerate(self._free):
            if size >= aligned:
                if size == aligned:
                    del self._free[i]
                else:
                    self._free[i] = (off + aligned, size - aligned)
                block = LDMBlock(off, aligned, label, np.zeros(aligned, dtype=np.uint8))
                self._blocks[off] = block
                self._used += aligned
                self._high_water = max(self._high_water, self._used)
                self._alloc_count += 1
                if self.tracer.enabled:
                    self._sample_occupancy()
                return block
        raise LDMOverflowError(aligned, self.largest_free_block, label)

    def alloc_array(
        self, shape: tuple[int, ...] | int, dtype=np.float64, label: str = ""
    ) -> np.ndarray:
        """Allocate an ndarray view backed by scratchpad bytes.

        The returned :class:`LDMArray` carries its backing block for its
        whole lifetime (id-recycling-proof); use :meth:`free_array` to
        release it.
        """
        shape_t = (shape,) if isinstance(shape, int) else tuple(shape)
        nbytes = int(np.prod(shape_t)) * np.dtype(dtype).itemsize
        block = self.alloc(nbytes, label)
        arr = block.data[:nbytes].view(dtype).reshape(shape_t).view(LDMArray)
        arr._ldm_block = block
        # Bookkeeping keyed by block *offset* — stable for the block's
        # lifetime, unlike id(arr), which CPython recycles after GC.
        self._array_blocks[block.offset] = block
        return arr

    def free(self, block: LDMBlock) -> None:
        """Release a block; raises on double free."""
        if block.offset not in self._blocks or self._blocks[block.offset] is not block:
            raise LDMAllocationError(f"unknown or already freed block {block.label!r}")
        if block.freed:
            raise LDMAllocationError(f"double free of block {block.label!r}")
        block._freed = True
        del self._blocks[block.offset]
        self._array_blocks.pop(block.offset, None)
        self._used -= block.size
        self._insert_free(block.offset, block.size)
        if self.tracer.enabled:
            self._sample_occupancy()

    def free_array(self, arr: np.ndarray) -> None:
        """Release an array obtained from :meth:`alloc_array`.

        The block travels on the array itself, so a foreign ndarray —
        even one whose ``id`` happens to match a collected LDM array's —
        can never free somebody else's block.
        """
        block = getattr(arr, "_ldm_block", None)
        if block is None:
            raise LDMAllocationError("array was not allocated from this LDM")
        if self._blocks.get(block.offset) is not block:
            raise LDMAllocationError(
                f"array block {block.label!r} is not live in this LDM "
                "(already freed, reset, or foreign)"
            )
        self.free(block)

    def reset(self) -> None:
        """Free everything (end of a kernel invocation)."""
        self._free = [(0, self.capacity)]
        for b in self._blocks.values():
            b._freed = True
        self._blocks.clear()
        self._array_blocks.clear()
        self._used = 0
        if self.tracer.enabled:
            self._sample_occupancy()

    # -- internals -----------------------------------------------------------

    def _insert_free(self, offset: int, size: int) -> None:
        """Insert a free extent, coalescing with neighbours."""
        self._free.append((offset, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self._free = merged
