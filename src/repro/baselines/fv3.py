"""FV3 (GFDL finite-volume cubed-sphere) cost model.

Discretization facts used by the model:

- cubed-sphere of C``N`` resolution: ``6 N^2`` columns, grid spacing
  ~ 10,000 km / N (C768 ~ 13 km, C3072 ~ 3.25 km);
- vertically-Lagrangian finite volume with ~127 levels and an acoustic
  sub-stepped dynamics; the large timestep scales with dx;
- 2D domain decomposition with wide (3-4 cell) halos — relatively more
  halo traffic per cell than spectral elements, so strong-scaling
  efficiency falls faster at the 3-km scale.

The per-(cell, level, step) cost constant is calibrated once against
the published NGGPS 13-km benchmark throughput; the 3-km entry of the
paper's Table 3 is then a prediction of this model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import BaselineError

#: Calibrated cost per (cell, level, large-step) on one NGGPS-era core
#: [core-seconds], including the acoustic substeps.
FV3_CELL_COST = 1.83e-6

#: Granularity floor: per-step seconds that do not shrink with ranks
#: (halo latency, load imbalance of the wide stencils).
FV3_STEP_FLOOR = 1.76e-2

#: Vertical levels in the NGGPS configuration.
FV3_NLEV = 127


@dataclass(frozen=True)
class FV3Model:
    """Time-to-solution model for FV3 on an NGGPS workload."""

    resolution_km: float
    nproc: int

    def __post_init__(self) -> None:
        if self.resolution_km <= 0:
            raise BaselineError("resolution must be positive")
        if self.nproc < 1:
            raise BaselineError("nproc must be >= 1")

    @property
    def n_c(self) -> int:
        """Cubed-sphere N for this resolution (~10,000 km / N spacing)."""
        return int(round(10000.0 / self.resolution_km))

    @property
    def cells(self) -> int:
        return 6 * self.n_c * self.n_c

    @property
    def dt_seconds(self) -> float:
        """Large (vertically-Lagrangian) timestep, ~ dx-limited.

        FV3 runs ~112.5 s at 13 km (NGGPS configuration), scaling
        linearly with grid spacing.
        """
        return 112.5 * self.resolution_km / 13.0

    def steps(self, forecast_seconds: float) -> int:
        return max(1, math.ceil(forecast_seconds / self.dt_seconds))

    def step_seconds(self) -> float:
        """Wall seconds per large step."""
        work = self.cells * FV3_NLEV * FV3_CELL_COST / self.nproc
        return work + FV3_STEP_FLOOR

    def time_to_solution(self, forecast_seconds: float) -> float:
        """Wall seconds for a forecast of the given length."""
        if forecast_seconds <= 0:
            raise BaselineError("forecast length must be positive")
        return self.steps(forecast_seconds) * self.step_seconds()
