"""MPAS (Model for Prediction Across Scales) cost model.

Discretization facts used by the model:

- quasi-uniform spherical centroidal Voronoi tessellation: cell count
  ~ 5.1e8 km^2 / dx^2 (the full sphere at the nominal spacing);
- C-grid staggered, split-explicit time integration whose large step is
  smaller than FV3's at equal dx (~ 4.5 dx seconds/km in the NGGPS
  configuration), with more expensive per-cell reconstruction on the
  unstructured mesh;
- indirect-addressed unstructured halos cost more per cell and scale
  worse, which is why MPAS trails in both Table 3 rows.

Constants calibrated against the NGGPS 13-km throughput; the 3-km row
is a prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import BaselineError

#: Earth surface area [km^2] used for Voronoi cell counts.
EARTH_AREA_KM2 = 5.101e8

#: Calibrated cost per (cell, level, step) [core-seconds]; higher than
#: FV3's per-step constant because of indirect addressing.
MPAS_CELL_COST = 6.74e-6

#: Per-step floor (unstructured halo latency + imbalance).
MPAS_STEP_FLOOR = 1.60e-2

#: Vertical levels in the NGGPS configuration.
MPAS_NLEV = 55


@dataclass(frozen=True)
class MPASModel:
    """Time-to-solution model for MPAS on an NGGPS workload."""

    resolution_km: float
    nproc: int

    def __post_init__(self) -> None:
        if self.resolution_km <= 0:
            raise BaselineError("resolution must be positive")
        if self.nproc < 1:
            raise BaselineError("nproc must be >= 1")

    @property
    def cells(self) -> int:
        return int(EARTH_AREA_KM2 / self.resolution_km**2)

    @property
    def dt_seconds(self) -> float:
        """Split-explicit large step (~4.5 s per km of spacing)."""
        return 4.5 * self.resolution_km

    def steps(self, forecast_seconds: float) -> int:
        return max(1, math.ceil(forecast_seconds / self.dt_seconds))

    def step_seconds(self) -> float:
        work = self.cells * MPAS_NLEV * MPAS_CELL_COST / self.nproc
        return work + MPAS_STEP_FLOOR

    def time_to_solution(self, forecast_seconds: float) -> float:
        if forecast_seconds <= 0:
            raise BaselineError("forecast length must be positive")
        return self.steps(forecast_seconds) * self.step_seconds()
