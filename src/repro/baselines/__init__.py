"""Baseline dynamical cores for the NGGPS comparison (paper Table 3).

The paper compares its redesigned HOMME against FV3 (GFDL's
finite-volume cubed-sphere core) and MPAS (NCAR's unstructured Voronoi
C-grid core) on the Next Generation Global Prediction System benchmark
workloads.  We cannot run the real codes, so each baseline is an
algorithmic cost model grounded in its discretization (cell counts,
timestep laws, per-cell work, halo pattern) with per-core constants
calibrated against the published NGGPS 13-km results; the 3-km rows are
then *predictions* checked against the paper's Table 3.
"""

from .fv3 import FV3Model
from .mpas import MPASModel
from .nggps import NGGPSBenchmark, NGGPS_WORKLOADS

__all__ = ["FV3Model", "MPASModel", "NGGPSBenchmark", "NGGPS_WORKLOADS"]
