"""The NGGPS benchmark harness (paper Table 3).

Two fixed prediction workloads at the published process counts:

- 12.5 km, 2-hour forecast: ours 131,072 procs, FV3 110,592, MPAS 96,000;
- 3 km, 30-minute forecast: ours 131,072, FV3 110,592, MPAS 131,072.

"Our work" is the redesigned HOMME evaluated by
:class:`~repro.perf.scaling.HommePerfModel`; FV3 and MPAS come from
their calibrated cost models.  Absolute seconds live in our simulated
time base; the comparison criterion is the *ratio* structure the paper
reports (HOMME fastest; FV3 ~1.3x at 12.5 km growing to ~2.1x at 3 km;
MPAS ~2.8x growing to ~4.5x).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.scaling import HommePerfModel
from .fv3 import FV3Model
from .mpas import MPASModel

#: Table 3 rows: (label, resolution_km, forecast_seconds, our ne,
#: (ours, fv3, mpas) process counts, paper times (s)).
NGGPS_WORKLOADS = (
    {
        "label": "12.5 km / 2-hour prediction",
        "resolution_km": 12.5,
        "forecast_seconds": 2 * 3600.0,
        "ne": 256,
        "nproc": {"ours": 131072, "fv3": 110592, "mpas": 96000},
        "paper_seconds": {"ours": 2.712, "fv3": 3.56, "mpas": 7.56},
    },
    {
        "label": "3 km / 30-min prediction",
        "resolution_km": 3.0,
        "forecast_seconds": 30 * 60.0,
        "ne": 1024,
        "nproc": {"ours": 131072, "fv3": 110592, "mpas": 131072},
        "paper_seconds": {"ours": 14.379, "fv3": 30.31, "mpas": 64.80},
    },
)


@dataclass
class NGGPSRow:
    """One regenerated Table-3 row."""

    label: str
    seconds: dict[str, float]
    paper_seconds: dict[str, float]

    def ratio(self, model: str) -> float:
        """Measured time of ``model`` relative to ours."""
        return self.seconds[model] / self.seconds["ours"]

    def paper_ratio(self, model: str) -> float:
        return self.paper_seconds[model] / self.paper_seconds["ours"]


class NGGPSBenchmark:
    """Regenerates Table 3 from the three models."""

    def run(self) -> list[NGGPSRow]:
        rows = []
        for wl in NGGPS_WORKLOADS:
            homme = HommePerfModel(wl["ne"], wl["nproc"]["ours"])
            steps = wl["forecast_seconds"] / homme.cfg.dt_dynamics
            ours = steps * homme.step_seconds
            fv3 = FV3Model(wl["resolution_km"], wl["nproc"]["fv3"]).time_to_solution(
                wl["forecast_seconds"]
            )
            mpas = MPASModel(wl["resolution_km"], wl["nproc"]["mpas"]).time_to_solution(
                wl["forecast_seconds"]
            )
            rows.append(
                NGGPSRow(
                    wl["label"],
                    {"ours": ours, "fv3": fv3, "mpas": mpas},
                    dict(wl["paper_seconds"]),
                )
            )
        return rows
