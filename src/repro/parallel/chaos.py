"""Chaos harness: deterministic worker-fault scenarios with a bitwise
serial oracle.

The supervision layer (:mod:`repro.parallel.supervisor`, DESIGN.md §12)
claims that any worker fault — crash, hang, late result, corrupted
result — is recovered locally while the trajectory stays **bitwise
identical** to the serial run.  This module makes that claim testable
the way :class:`~repro.resilience.faults.FaultInjector` makes network
faults testable: every scenario is a seeded, deterministic
:class:`~repro.parallel.supervisor.ChaosSpec` plus the engine knobs
that make the fault observable fast, and :func:`run_scenario` executes
the faulty parallel integration next to a fault-free serial one and
compares the gathered states byte for byte.

Scenarios (all keyed to task ids in the run's first RK stage, so they
fire mid-batch in both plain and pipelined dispatch):

- ``kill-worker`` — a worker self-SIGKILLs before computing; the
  supervisor sees the crash, respawns the slot, redistributes.
- ``stall-heartbeat`` — a worker stops heartbeating and sleeps; the
  supervisor declares it hung past ``heartbeat_timeout`` and replaces
  it.
- ``delay-result`` — a worker computes, then sleeps past the batch's
  ``result_timeout``; the driver treats it as overdue and re-issues its
  tasks.
- ``corrupt-result`` — one bit of a result array flips after the CRC
  stamp; the driver's integrity check rejects it and re-executes.
- ``mixed`` — one kill plus one corrupted result in the same run.

Use from tests, ``examples/self_healing_run.py``, and the CI
``chaos-smoke`` job::

    report = run_scenario("kill-worker", workers=2, seed=0)
    assert report["bitwise_identical"]
    assert report["recovery"]["respawns"] >= 1
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from ..errors import KernelError
from .supervisor import ChaosSpec

__all__ = ["SCENARIOS", "scenario_spec", "run_scenario"]

#: Scenario name -> (fault counts for :meth:`ChaosSpec.seeded`, engine
#: keyword overrides that make the fault detectable quickly).  Timeouts
#: are deliberately generous against the fault's own duration so slow
#: CI machines classify the fault the same way fast ones do.
SCENARIOS: dict[str, tuple[dict, dict]] = {
    "kill-worker": (
        {"kills": 1},
        {},
    ),
    "stall-heartbeat": (
        {"stalls": 1, "stall_seconds": 60.0},
        {"heartbeat_timeout": 1.5},
    ),
    "delay-result": (
        {"delays": 1, "delay_seconds": 45.0},
        {"result_timeout": 3.0},
    ),
    "corrupt-result": (
        {"corruptions": 1},
        {},
    ),
    "mixed": (
        {"kills": 1, "corruptions": 1},
        {},
    ),
}


def scenario_spec(name: str, workers: int, nranks: int,
                  seed: int = 0) -> tuple[ChaosSpec, dict]:
    """Build the seeded spec and engine overrides for one scenario.

    Task ids are drawn from ``[workers, workers + nranks)``: the
    engine's start-up ping takes ids ``0..workers-1``, and the next
    ``nranks`` ids are the first RK stage's per-rank tasks — dispatched
    as one batch in plain mode and as the (never-empty) boundary batch
    in pipelined mode, so the same spec lands mid-batch in both.
    """
    try:
        counts, overrides = SCENARIOS[name]
    except KeyError:
        raise KernelError(
            f"unknown chaos scenario {name!r}; "
            f"pick one of {sorted(SCENARIOS)}"
        ) from None
    spec = ChaosSpec.seeded(
        seed, first_task=workers, last_task=workers + nranks, **counts
    )
    return spec, dict(overrides)


def run_scenario(
    name: str,
    *,
    ne: int = 2,
    nranks: int = 4,
    steps: int = 2,
    workers: int = 2,
    pipeline: bool = False,
    seed: int = 0,
    faults=None,
    tracer=None,
) -> dict:
    """Run one chaos scenario against the shallow-water model and its
    serial oracle; return a JSON-friendly report.

    The faulty run uses ``workers`` pool workers with the scenario's
    seeded :class:`ChaosSpec` injected; the oracle is the same model at
    ``workers=0``.  The report's ``bitwise_identical`` is the byte-level
    comparison of the two gathered final states — the acceptance
    property — alongside the engine's recovery tallies and degrade
    history so a scenario can also assert *how* it survived (e.g. a
    kill recovers via respawn, never via whole-pool degrade).
    """
    from ..homme.distributed import DistributedShallowWater
    from ..mesh.cubed_sphere import CubedSphereMesh

    spec, overrides = scenario_spec(name, workers, nranks, seed)
    mesh = CubedSphereMesh(ne, 4)
    with DistributedShallowWater(mesh, nranks=nranks) as serial:
        serial.run_steps(steps)
        ref = serial.gather_state()
    with DistributedShallowWater(
        mesh, nranks=nranks, workers=workers, pipeline=pipeline,
        tracer=tracer,
        engine_kwargs={"chaos": spec, "faults": faults, **overrides},
    ) as chaotic:
        chaotic.run_steps(steps)
        got = chaotic.gather_state()
        desc = chaotic.engine.describe()
        health = chaotic.engine.health().to_json()
    identical = bool(
        np.array_equal(ref.h, got.h) and np.array_equal(ref.v, got.v)
    )
    return {
        "scenario": name,
        "seed": seed,
        "spec": asdict(spec),
        "ne": ne,
        "nranks": nranks,
        "steps": steps,
        "workers": workers,
        "pipeline": pipeline,
        "engine_overrides": overrides,
        "bitwise_identical": identical,
        "pool_active_at_end": desc["active"],
        "recovery": desc["recovery"],
        "degrade_reasons": desc["degrade_reasons"],
        "health": health,
        "fault_events": faults.summary() if faults is not None else {},
    }
