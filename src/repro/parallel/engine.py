"""The process-parallel execution engine behind ``repro.parallel``.

:class:`ParallelEngine` owns a persistent pool of forked worker
processes and a set of ``multiprocessing.shared_memory`` blocks through
which the element arrays travel to the workers.  One engine serves
many calls: the per-task input blocks are allocated once and grown on
demand, so a steady-state dispatch is one memcpy into shared memory
plus one queue round-trip per task (results, whose shapes only the
task function knows, return through the result queue).

Execution model
---------------

``run(fn, payloads)`` executes ``fn(meta, *arrays)`` once per payload
and returns the results **in payload order** — never in completion
order — which is the fixed rank-ordered combine that makes parallel
execution bitwise identical to serial.  ``fn`` must be a module-level
function (it is pickled by reference into the workers) returning a
tuple of ndarrays.

``submit(fn, payloads)`` is the non-blocking half of the same
contract: it queues the batch and returns a :class:`PendingRun` whose
``wait()`` yields the payload-ordered results later.  Up to two
batches may be in flight at once (double-buffered shared-memory
banks), which is what lets a driver overlap its combine work for
batch *k* with worker compute of batch *k+1* — the pipelined
execution mode of the distributed models.

Large read-only context (element geometries, meshes) never crosses a
queue: it is published via :func:`register_context` *before* the pool
forks, so every worker inherits it copy-on-write through ``fork``.

Fallback
--------

The engine degrades to in-process serial execution of the same task
functions when ``workers <= 1``, when the platform lacks the ``fork``
start method, when the pool fails its start-up ping, or after any
worker dies mid-run.  ``engine.active`` reports which mode is live.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..errors import KernelError
from ..obs.tracer import NULL_TRACER

__all__ = [
    "ParallelEngine",
    "PendingRun",
    "SERIAL_ENGINE",
    "WorkerStats",
    "available_cores",
    "register_context",
    "get_context",
    "worker_track",
]

#: Seconds the driver waits for a single task result before declaring
#: the pool dead and finishing the call serially.
RESULT_TIMEOUT = 120.0

#: Seconds allowed for the start-up ping that proves the pool works.
PING_TIMEOUT = 30.0

#: Shared-memory banks for pipelined dispatch.  Two banks = double
#: buffering: batch k+1 packs into the other bank while workers may
#: still be reading batch k's blocks, so at most two batches may be in
#: flight at once.
PIPELINE_BANKS = 2

#: Read-only objects published to workers.  Entries registered before a
#: pool starts are inherited by its forked workers copy-on-write;
#: lookups in the driver (serial fallback) read the same dict.
_CONTEXT: dict[str, object] = {}


def available_cores() -> int:
    """Usable core count (cgroup-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def worker_track(worker: int) -> str:
    """Canonical trace-track name for pool worker ``worker``."""
    return f"worker/{worker}"


def register_context(key: str, obj: object) -> str:
    """Publish a read-only object to (future) workers under ``key``.

    Must be called *before* the engine that needs it starts its pool —
    forked workers snapshot the registry at fork time.  Returns the key
    for convenience.
    """
    _CONTEXT[key] = obj
    return key


def get_context(key: str) -> object:
    """Fetch a registered context object (driver or worker side)."""
    try:
        return _CONTEXT[key]
    except KeyError:
        raise KernelError(
            f"parallel context {key!r} was not registered before the pool "
            "forked; register_context must run before ParallelEngine()"
        ) from None


def unregister_context(key: str) -> None:
    """Drop a registered context object (driver side only)."""
    _CONTEXT.pop(key, None)


@dataclass
class WorkerStats:
    """Per-worker tallies maintained by the driver."""

    worker: int
    tasks: int = 0
    busy_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    errors: int = 0


@dataclass
class _Block:
    """One shared-memory block plus its current capacity."""

    shm: shared_memory.SharedMemory
    capacity: int

    def close(self, unlink: bool) -> None:
        try:
            self.shm.close()
            if unlink:
                self.shm.unlink()
        except (FileNotFoundError, OSError):  # already gone
            pass


def _pack(block: _Block | None, arrays: tuple, make) -> tuple[_Block, tuple]:
    """Copy ``arrays`` into a (possibly grown) block; return descriptors.

    The layout is a flat concatenation at 64-byte-aligned offsets; the
    descriptor carries (offset, shape, dtype) per array so the peer can
    rebuild zero-copy views.
    """
    offsets, metas, need = [], [], 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        need = (need + 63) & ~63
        offsets.append(need)
        metas.append((need, a.shape, a.dtype.str))
        need += a.nbytes
    if block is None or block.capacity < need:
        if block is not None:
            block.close(unlink=True)
        block = make(max(need, 1))
    for a, off in zip(arrays, offsets):
        a = np.ascontiguousarray(a)
        dst = np.ndarray(a.shape, dtype=a.dtype, buffer=block.shm.buf, offset=off)
        dst[...] = a
    return block, (block.shm.name, tuple(metas))


def _unpack(shm: shared_memory.SharedMemory, metas: tuple) -> tuple[np.ndarray, ...]:
    """Zero-copy views into a peer's block (copy before the next reuse!)."""
    return tuple(
        np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf, offset=off)
        for off, shape, dt in metas
    )


def _ping_task(meta: dict, arr: np.ndarray) -> tuple[np.ndarray]:
    """Start-up health check: echo the payload."""
    return (arr + meta.get("add", 0.0),)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Pool worker loop: attach inputs, compute, send results back.

    Inputs arrive through the driver-owned shared-memory blocks;
    results (whose shapes only the task function knows) return through
    the result queue.  The driver double-buffers its input blocks per
    *bank*: a bank's blocks are not repacked until every task of the
    batch that used them has been collected, so reading from the
    attached views is race-free even with two batches in flight.
    """
    attached: dict[str, shared_memory.SharedMemory] = {}
    try:
        while True:
            item = task_q.get()
            if item is None:
                break
            idx, fn, meta, in_desc = item
            t0 = time.perf_counter()
            try:
                ins: tuple = ()
                if in_desc is not None:
                    name, metas = in_desc
                    shm = attached.get(name)
                    if shm is None:
                        # Forked workers share the driver's resource
                        # tracker, whose cache is a set — this attach-
                        # side registration is a no-op and the driver's
                        # unlink-on-close retires the name exactly once.
                        shm = shared_memory.SharedMemory(name=name)
                        attached[name] = shm
                    ins = _unpack(shm, metas)
                outs = fn(meta, *ins)
                if not isinstance(outs, (tuple, list)):
                    outs = (outs,)
                outs = tuple(np.ascontiguousarray(o) for o in outs)
                result_q.put(
                    (idx, worker_id, "ok", outs, t0, time.perf_counter(),
                     getattr(fn, "__name__", str(fn)))
                )
            except BaseException:
                result_q.put(
                    (idx, worker_id, "err", traceback.format_exc(), t0,
                     time.perf_counter(), getattr(fn, "__name__", str(fn)))
                )
    finally:
        for shm in attached.values():
            try:
                shm.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------


class PendingRun:
    """A dispatched batch awaiting collection.

    Returned by :meth:`ParallelEngine.submit`.  The batch's tasks are
    already queued to the workers (or earmarked for serial execution on
    an inactive engine); :meth:`wait` blocks until every result is in
    and returns them **in payload order** — the same deterministic
    combine contract as :meth:`ParallelEngine.run`.

    Between ``submit`` and ``wait`` the driver is free to do other work
    (reassembly, DSS accumulation, further submits) — that window is
    the pipeline's computation/communication overlap.  The payload
    arrays must not be mutated until ``wait`` returns: the serial
    fallback recomputes from them if the pool dies mid-flight.
    """

    def __init__(self, engine: "ParallelEngine", fn, payloads,
                 bank: int, parallel: bool) -> None:
        self.engine = engine
        self.fn = fn
        self.payloads = payloads
        self.bank = bank
        self.parallel = parallel
        self.overlapped = False
        self.submitted_at = time.perf_counter()
        self.timeout = RESULT_TIMEOUT
        self.validate = engine.validate  # per-batch override (ping skips)
        self.results: list[tuple | None] = [None] * len(payloads)
        self.remaining = 0  # parallel tasks still in flight
        self.failures: list[str] = []
        self.done = False

    def wait(self) -> list[tuple]:
        """Collect the batch's results, in payload order."""
        return self.engine._wait(self)


class ParallelEngine:
    """A persistent multi-core task pool with a serial twin.

    Parameters
    ----------
    workers:
        Requested worker count.  ``<= 1`` means serial execution (no
        processes are ever started).
    validate:
        When true, every parallel ``run`` is recomputed serially on the
        driver and compared **bitwise** — the ``repro.parallel``
        mirror of the batched/looped 1e-12 dispatch check
        (:func:`repro.backends.functional_exec.cross_validate_paths`).
        Costs a full serial execution per call; meant for tests, CI
        smoke jobs, and paranoid runs.
    tracer:
        :mod:`repro.obs` tracer.  When enabled, each task becomes a
        span on the ``worker/<i>`` track of the worker that ran it,
        stamped in wall-clock seconds since the engine started (these
        are *real* execution spans — the one place the observability
        layer shows wall time rather than simulated time).
    label:
        Name used in log lines and trace spans.
    """

    def __init__(
        self,
        workers: int = 0,
        validate: bool = False,
        tracer=None,
        label: str = "parallel",
    ) -> None:
        self.workers = max(0, int(workers))
        self.validate = bool(validate)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.label = label
        self.active = False
        self.fallback_reason: str | None = None
        self.stats: list[WorkerStats] = []
        self.calls = 0
        self.tasks_parallel = 0
        self.tasks_serial = 0
        self.validations = 0
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        #: Shared-memory input blocks, keyed by (bank, payload index).
        self._in_blocks: dict[tuple[int, int], _Block] = {}
        self._task_seq = 0
        self._inflight: dict[int, tuple[PendingRun, int]] = {}
        self._outstanding: list[PendingRun] = []
        # Pipeline tallies (see collect_parallel_engine / describe()).
        self.pipeline_batches = 0
        self.pipeline_max_depth = 0
        self.pipeline_overlap_seconds = 0.0
        self.pipeline_wait_seconds = 0.0
        self._t0 = time.perf_counter()
        if self.workers > 1:
            self._try_start()

    # -- lifecycle ----------------------------------------------------------

    def _try_start(self) -> None:
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            self.fallback_reason = "no fork start method on this platform"
            return
        ctx = mp.get_context("fork")
        try:
            # The resource tracker must exist *before* the fork so parent
            # and workers share one tracker (whose cache is a set, making
            # the workers' attach-side registrations no-ops).  Otherwise
            # each worker lazily spawns its own tracker, which warns about
            # "leaked" blocks the driver already unlinked.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            self._task_q = ctx.SimpleQueue()
            self._result_q = ctx.SimpleQueue()
            self._procs = [
                ctx.Process(
                    target=_worker_main,
                    args=(w, self._task_q, self._result_q),
                    daemon=True,
                    name=f"{self.label}-worker-{w}",
                )
                for w in range(self.workers)
            ]
            for p in self._procs:
                p.start()
            self.stats = [WorkerStats(w) for w in range(self.workers)]
            self.active = True
            self._ping()
        except Exception as exc:  # noqa: BLE001 - any start-up failure => serial
            self.fallback_reason = f"pool start failed: {exc!r}"
            self._shutdown_pool()
            self.active = False

    def _ping(self) -> None:
        """Prove every queue direction works before trusting the pool."""
        probe = np.arange(4.0)
        pend = self._submit(_ping_task,
                            [({"add": 1.0}, (probe,))] * self.workers)
        pend.timeout = PING_TIMEOUT
        pend.validate = False
        outs = pend.wait()
        if not self.active:
            raise KernelError(
                f"parallel pool ping failed: {self.fallback_reason}")
        for (out,) in outs:
            if not np.array_equal(out, probe + 1.0):
                raise KernelError("parallel pool ping returned wrong data")

    def close(self) -> None:
        """Stop the workers and release every shared-memory block."""
        self._shutdown_pool()
        self.active = False

    def _shutdown_pool(self) -> None:
        self._inflight.clear()
        for p in self._outstanding:
            p.remaining = 0  # missing results are computed serially at wait()
        self._outstanding.clear()
        if self._task_q is not None:
            try:
                for _ in self._procs:
                    self._task_q.put(None)
            except (OSError, ValueError):
                pass
        for p in self._procs:
            p.join(timeout=5.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        self._procs = []
        for blk in self._in_blocks.values():
            blk.close(unlink=True)
        self._in_blocks.clear()
        self._task_q = None
        self._result_q = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort tidy-up
        try:
            self._shutdown_pool()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass

    # -- execution ----------------------------------------------------------

    def run(self, fn, payloads: list[tuple[dict, tuple]]) -> list[tuple]:
        """Execute ``fn(meta, *arrays)`` per payload; results in order.

        ``payloads`` is a list of ``(meta, arrays)`` with ``meta`` a
        small picklable dict and ``arrays`` a tuple of ndarrays shipped
        through shared memory.  Returns one tuple of arrays per
        payload, in payload order (the deterministic combine).
        """
        self.calls += 1
        if not payloads:
            return []
        if not self.active:
            return self._run_serial(fn, payloads)
        return self._submit(fn, payloads).wait()

    def submit(self, fn, payloads: list[tuple[dict, tuple]]) -> PendingRun:
        """Dispatch a batch without blocking; collect via ``.wait()``.

        The pipelining primitive: tasks are packed into this batch's
        shared-memory *bank* and queued to the workers immediately, and
        the driver keeps running — overlapping its combine work (and
        further submits) with worker compute.  Double buffering bounds
        the depth: at most :data:`PIPELINE_BANKS` batches may be in
        flight, so a bank is never repacked while its previous batch's
        workers could still be reading it.  On an inactive engine the
        batch is executed serially inside ``wait()`` — same results,
        no overlap.
        """
        self.calls += 1
        return self._submit(fn, payloads)

    def _submit(self, fn, payloads) -> PendingRun:
        payloads = list(payloads)
        if not self.active or not payloads:
            return PendingRun(self, fn, payloads, bank=-1, parallel=False)
        if len(self._outstanding) >= PIPELINE_BANKS:
            raise KernelError(
                f"pipeline depth exceeded: at most {PIPELINE_BANKS} batches "
                "may be in flight (double-buffered shared-memory banks)"
            )
        used = {p.bank for p in self._outstanding}
        bank = next(b for b in range(PIPELINE_BANKS) if b not in used)
        pend = PendingRun(self, fn, payloads, bank=bank, parallel=True)
        pend.overlapped = bool(self._inflight)
        self._outstanding.append(pend)

        def make_in(capacity: int) -> _Block:
            return _Block(
                shared_memory.SharedMemory(create=True, size=capacity),
                capacity,
            )

        try:
            for idx, (meta, arrays) in enumerate(payloads):
                desc = None
                if arrays:
                    block, desc = _pack(
                        self._in_blocks.get((bank, idx)), tuple(arrays), make_in
                    )
                    self._in_blocks[(bank, idx)] = block
                tid = self._task_seq
                self._task_seq += 1
                self._task_q.put((tid, fn, meta, desc))
                self._inflight[tid] = (pend, idx)
                pend.remaining += 1
        except Exception as exc:  # noqa: BLE001 - dispatch failure => pool death
            self._degrade(f"parallel dispatch failed: {exc!r}")
            return pend
        self.pipeline_max_depth = max(self.pipeline_max_depth, len(self._inflight))
        if pend.overlapped:
            self.pipeline_batches += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "pipeline", f"submit:{getattr(fn, '__name__', fn)}",
                    pend.submitted_at - self._t0, cat="pipeline",
                    tasks=len(payloads), depth=len(self._inflight),
                )
        return pend

    def _wait(self, pend: PendingRun) -> list[tuple]:
        """Drain results for ``pend`` (routing other batches' results to
        their owners), finish serially on pool death, raise on task
        failure, cross-validate when asked.  Fixed payload order."""
        if pend.done:
            raise KernelError("PendingRun.wait() called twice")
        t_entry = time.perf_counter()
        if pend.overlapped:
            # Driver-side work done since submit = the overlap window.
            self.pipeline_overlap_seconds += t_entry - pend.submitted_at
        deadline = time.monotonic() + pend.timeout
        try:
            while pend.remaining:
                tw = time.perf_counter()
                item = self._result_get(deadline - time.monotonic(),
                                        pend.timeout)
                if pend.overlapped:
                    self.pipeline_wait_seconds += time.perf_counter() - tw
                self._route(item)
        except KernelError as exc:
            # Pool death (timeout, closed pipe): degrade every
            # outstanding batch; missing results are computed serially.
            self._degrade(str(exc))
        if pend in self._outstanding:
            self._outstanding.remove(pend)
        self._finish_serial(pend)
        pend.done = True
        if pend.overlapped and self.tracer.enabled:
            self.tracer.span_at(
                "pipeline", f"wait:{getattr(pend.fn, '__name__', pend.fn)}",
                t_entry - self._t0, time.perf_counter() - self._t0,
                cat="pipeline", tasks=len(pend.payloads),
            )
        if pend.failures:
            raise KernelError(
                "parallel task failed:\n" + "\n".join(pend.failures)
            )
        results = [tuple(r) for r in pend.results]  # type: ignore[arg-type]
        if pend.validate and pend.parallel and self.active:
            self._cross_validate(pend.fn, pend.payloads, results)
        return results

    def _route(self, item) -> None:
        """Deliver one result-queue item to the batch that owns it."""
        tid, worker_id, status, data, t0, t1, fn_name = item
        owner = self._inflight.pop(tid, None)
        if owner is None:
            return  # stale result from a batch already degraded to serial
        pend, idx = owner
        st = self.stats[worker_id]
        st.tasks += 1
        st.busy_seconds += max(0.0, t1 - t0)
        pend.remaining -= 1
        if status == "err":
            st.errors += 1
            pend.failures.append(f"task {idx} on worker {worker_id}:\n{data}")
            return
        pend.results[idx] = tuple(data)
        st.bytes_out += sum(a.nbytes for a in data)
        meta_in = pend.payloads[idx][0]
        st.bytes_in += sum(np.asarray(a).nbytes for a in pend.payloads[idx][1])
        self.tasks_parallel += 1
        if self.tracer.enabled:
            self.tracer.span_at(
                worker_track(worker_id), fn_name,
                t0 - self._t0, t1 - self._t0, cat="parallel",
                task=idx, **{k: v for k, v in meta_in.items()
                             if isinstance(v, (int, float, str, bool))},
            )

    def _degrade(self, reason: str) -> None:
        """Pool death: record why, stop the pool, finish pending work
        serially (``_shutdown_pool`` zeroes every ``remaining``)."""
        self.fallback_reason = reason
        pending = list(self._outstanding)
        self._shutdown_pool()
        self.active = False
        for p in pending:
            self._finish_serial(p)

    def _finish_serial(self, pend: PendingRun) -> None:
        """Compute any still-missing results of ``pend`` in-process."""
        for i, (meta, arrays) in enumerate(pend.payloads):
            if pend.results[i] is not None:
                continue
            try:
                res = pend.fn(meta, *arrays)
            except Exception:  # noqa: BLE001 - surface as a task failure
                pend.failures.append(
                    f"task {i} (serial fallback):\n{traceback.format_exc()}"
                )
                continue
            if not isinstance(res, (tuple, list)):
                res = (res,)
            pend.results[i] = tuple(np.asarray(a) for a in res)
            self.tasks_serial += 1
        pend.remaining = 0

    def _run_serial(self, fn, payloads) -> list[tuple]:
        self.tasks_serial += len(payloads)
        out = []
        for meta, arrays in payloads:
            res = fn(meta, *arrays)
            if not isinstance(res, (tuple, list)):
                res = (res,)
            out.append(tuple(np.asarray(a) for a in res))
        return out

    def _result_get(self, remaining: float, timeout: float = RESULT_TIMEOUT):
        """Result-queue get with a liveness-aware timeout."""
        import select

        if remaining <= 0:
            raise KernelError(f"parallel pool timed out ({self.label})")
        reader = self._result_q._reader  # SimpleQueue's underlying pipe
        ready, _, _ = select.select([reader], [], [], remaining)
        if not ready:
            raise KernelError(
                f"parallel pool timed out after {timeout:.0f}s "
                f"({self.label}); falling back to serial"
            )
        return self._result_q.get()

    def overlap_fraction(self) -> float:
        """Fraction of pipelined driver time spent doing useful work
        (combines, submits) rather than blocked waiting on workers."""
        total = self.pipeline_overlap_seconds + self.pipeline_wait_seconds
        return self.pipeline_overlap_seconds / total if total > 0 else 0.0

    # -- validation ---------------------------------------------------------

    def _cross_validate(self, fn, payloads, results) -> None:
        """Bitwise-compare parallel results against a serial recompute."""
        self.validations += 1
        serial = self._run_serial(fn, payloads)
        self.tasks_serial -= len(payloads)  # recompute is bookkeeping-neutral
        for idx, (par, ser) in enumerate(zip(results, serial)):
            for k, (a, b) in enumerate(zip(par, ser)):
                if not np.array_equal(a, b):
                    scale = max(float(np.max(np.abs(b))), 1e-300)
                    err = float(np.max(np.abs(a - b))) / scale
                    raise KernelError(
                        f"parallel/serial cross-validation failed for "
                        f"{getattr(fn, '__name__', fn)} task {idx} output {k}: "
                        f"max rel err {err:.3e} (required: bitwise identical)"
                    )

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        """JSON-friendly status snapshot (mode, fallback reason, tallies)."""
        return {
            "workers": self.workers,
            "active": self.active,
            "fallback_reason": self.fallback_reason,
            "calls": self.calls,
            "tasks_parallel": self.tasks_parallel,
            "tasks_serial": self.tasks_serial,
            "validations": self.validations,
            "pipeline": {
                "batches": self.pipeline_batches,
                "max_depth": self.pipeline_max_depth,
                "overlap_seconds": self.pipeline_overlap_seconds,
                "wait_seconds": self.pipeline_wait_seconds,
                "overlap_fraction": self.overlap_fraction(),
            },
            "per_worker": [
                {"worker": s.worker, "tasks": s.tasks,
                 "busy_seconds": s.busy_seconds, "bytes_in": s.bytes_in,
                 "bytes_out": s.bytes_out, "errors": s.errors}
                for s in self.stats
            ],
        }


#: The shared always-serial engine: the default everywhere a
#: ``workers=`` knob is absent or 0 — zero processes, zero overhead.
SERIAL_ENGINE = ParallelEngine(workers=0, label="serial")
