"""The process-parallel execution engine behind ``repro.parallel``.

:class:`ParallelEngine` owns a persistent pool of forked worker
processes and a set of ``multiprocessing.shared_memory`` blocks through
which the element arrays travel to the workers.  One engine serves
many calls: the per-task input blocks are allocated once and grown on
demand, so a steady-state dispatch is one memcpy into shared memory
plus one queue round-trip per task (results, whose shapes only the
task function knows, return through the result queue).

Execution model
---------------

``run(fn, payloads)`` executes ``fn(meta, *arrays)`` once per payload
and returns the results **in payload order** — never in completion
order — which is the fixed rank-ordered combine that makes parallel
execution bitwise identical to serial.  ``fn`` must be a module-level
function (it is pickled by reference into the workers) returning a
tuple of ndarrays.

Large read-only context (element geometries, meshes) never crosses a
queue: it is published via :func:`register_context` *before* the pool
forks, so every worker inherits it copy-on-write through ``fork``.

Fallback
--------

The engine degrades to in-process serial execution of the same task
functions when ``workers <= 1``, when the platform lacks the ``fork``
start method, when the pool fails its start-up ping, or after any
worker dies mid-run.  ``engine.active`` reports which mode is live.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..errors import KernelError
from ..obs.tracer import NULL_TRACER

__all__ = [
    "ParallelEngine",
    "SERIAL_ENGINE",
    "WorkerStats",
    "available_cores",
    "register_context",
    "get_context",
    "worker_track",
]

#: Seconds the driver waits for a single task result before declaring
#: the pool dead and finishing the call serially.
RESULT_TIMEOUT = 120.0

#: Seconds allowed for the start-up ping that proves the pool works.
PING_TIMEOUT = 30.0

#: Read-only objects published to workers.  Entries registered before a
#: pool starts are inherited by its forked workers copy-on-write;
#: lookups in the driver (serial fallback) read the same dict.
_CONTEXT: dict[str, object] = {}


def available_cores() -> int:
    """Usable core count (cgroup-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def worker_track(worker: int) -> str:
    """Canonical trace-track name for pool worker ``worker``."""
    return f"worker/{worker}"


def register_context(key: str, obj: object) -> str:
    """Publish a read-only object to (future) workers under ``key``.

    Must be called *before* the engine that needs it starts its pool —
    forked workers snapshot the registry at fork time.  Returns the key
    for convenience.
    """
    _CONTEXT[key] = obj
    return key


def get_context(key: str) -> object:
    """Fetch a registered context object (driver or worker side)."""
    try:
        return _CONTEXT[key]
    except KeyError:
        raise KernelError(
            f"parallel context {key!r} was not registered before the pool "
            "forked; register_context must run before ParallelEngine()"
        ) from None


def unregister_context(key: str) -> None:
    """Drop a registered context object (driver side only)."""
    _CONTEXT.pop(key, None)


@dataclass
class WorkerStats:
    """Per-worker tallies maintained by the driver."""

    worker: int
    tasks: int = 0
    busy_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    errors: int = 0


@dataclass
class _Block:
    """One shared-memory block plus its current capacity."""

    shm: shared_memory.SharedMemory
    capacity: int

    def close(self, unlink: bool) -> None:
        try:
            self.shm.close()
            if unlink:
                self.shm.unlink()
        except (FileNotFoundError, OSError):  # already gone
            pass


def _pack(block: _Block | None, arrays: tuple, make) -> tuple[_Block, tuple]:
    """Copy ``arrays`` into a (possibly grown) block; return descriptors.

    The layout is a flat concatenation at 64-byte-aligned offsets; the
    descriptor carries (offset, shape, dtype) per array so the peer can
    rebuild zero-copy views.
    """
    offsets, metas, need = [], [], 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        need = (need + 63) & ~63
        offsets.append(need)
        metas.append((need, a.shape, a.dtype.str))
        need += a.nbytes
    if block is None or block.capacity < need:
        if block is not None:
            block.close(unlink=True)
        block = make(max(need, 1))
    for a, off in zip(arrays, offsets):
        a = np.ascontiguousarray(a)
        dst = np.ndarray(a.shape, dtype=a.dtype, buffer=block.shm.buf, offset=off)
        dst[...] = a
    return block, (block.shm.name, tuple(metas))


def _unpack(shm: shared_memory.SharedMemory, metas: tuple) -> tuple[np.ndarray, ...]:
    """Zero-copy views into a peer's block (copy before the next reuse!)."""
    return tuple(
        np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf, offset=off)
        for off, shape, dt in metas
    )


def _ping_task(meta: dict, arr: np.ndarray) -> tuple[np.ndarray]:
    """Start-up health check: echo the payload."""
    return (arr + meta.get("add", 0.0),)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Pool worker loop: attach inputs, compute, send results back.

    Inputs arrive through the driver-owned shared-memory blocks;
    results (whose shapes only the task function knows) return through
    the result queue.  The driver's per-task input block is not reused
    until the driver has collected this task's result, so reading from
    the attached views is race-free.
    """
    attached: dict[str, shared_memory.SharedMemory] = {}
    try:
        while True:
            item = task_q.get()
            if item is None:
                break
            idx, fn, meta, in_desc = item
            t0 = time.perf_counter()
            try:
                ins: tuple = ()
                if in_desc is not None:
                    name, metas = in_desc
                    shm = attached.get(name)
                    if shm is None:
                        # Forked workers share the driver's resource
                        # tracker, whose cache is a set — this attach-
                        # side registration is a no-op and the driver's
                        # unlink-on-close retires the name exactly once.
                        shm = shared_memory.SharedMemory(name=name)
                        attached[name] = shm
                    ins = _unpack(shm, metas)
                outs = fn(meta, *ins)
                if not isinstance(outs, (tuple, list)):
                    outs = (outs,)
                outs = tuple(np.ascontiguousarray(o) for o in outs)
                result_q.put(
                    (idx, worker_id, "ok", outs, t0, time.perf_counter(),
                     getattr(fn, "__name__", str(fn)))
                )
            except BaseException:
                result_q.put(
                    (idx, worker_id, "err", traceback.format_exc(), t0,
                     time.perf_counter(), getattr(fn, "__name__", str(fn)))
                )
    finally:
        for shm in attached.values():
            try:
                shm.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------


class ParallelEngine:
    """A persistent multi-core task pool with a serial twin.

    Parameters
    ----------
    workers:
        Requested worker count.  ``<= 1`` means serial execution (no
        processes are ever started).
    validate:
        When true, every parallel ``run`` is recomputed serially on the
        driver and compared **bitwise** — the ``repro.parallel``
        mirror of the batched/looped 1e-12 dispatch check
        (:func:`repro.backends.functional_exec.cross_validate_paths`).
        Costs a full serial execution per call; meant for tests, CI
        smoke jobs, and paranoid runs.
    tracer:
        :mod:`repro.obs` tracer.  When enabled, each task becomes a
        span on the ``worker/<i>`` track of the worker that ran it,
        stamped in wall-clock seconds since the engine started (these
        are *real* execution spans — the one place the observability
        layer shows wall time rather than simulated time).
    label:
        Name used in log lines and trace spans.
    """

    def __init__(
        self,
        workers: int = 0,
        validate: bool = False,
        tracer=None,
        label: str = "parallel",
    ) -> None:
        self.workers = max(0, int(workers))
        self.validate = bool(validate)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.label = label
        self.active = False
        self.fallback_reason: str | None = None
        self.stats: list[WorkerStats] = []
        self.calls = 0
        self.tasks_parallel = 0
        self.tasks_serial = 0
        self.validations = 0
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._in_blocks: dict[int, _Block] = {}
        self._t0 = time.perf_counter()
        if self.workers > 1:
            self._try_start()

    # -- lifecycle ----------------------------------------------------------

    def _try_start(self) -> None:
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            self.fallback_reason = "no fork start method on this platform"
            return
        ctx = mp.get_context("fork")
        try:
            # The resource tracker must exist *before* the fork so parent
            # and workers share one tracker (whose cache is a set, making
            # the workers' attach-side registrations no-ops).  Otherwise
            # each worker lazily spawns its own tracker, which warns about
            # "leaked" blocks the driver already unlinked.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            self._task_q = ctx.SimpleQueue()
            self._result_q = ctx.SimpleQueue()
            self._procs = [
                ctx.Process(
                    target=_worker_main,
                    args=(w, self._task_q, self._result_q),
                    daemon=True,
                    name=f"{self.label}-worker-{w}",
                )
                for w in range(self.workers)
            ]
            for p in self._procs:
                p.start()
            self.stats = [WorkerStats(w) for w in range(self.workers)]
            self.active = True
            self._ping()
        except Exception as exc:  # noqa: BLE001 - any start-up failure => serial
            self.fallback_reason = f"pool start failed: {exc!r}"
            self._shutdown_pool()
            self.active = False

    def _ping(self) -> None:
        """Prove every queue direction works before trusting the pool."""
        probe = np.arange(4.0)
        outs = self._run_parallel(
            _ping_task, [({"add": 1.0}, (probe,))] * self.workers,
            timeout=PING_TIMEOUT,
        )
        for (out,) in outs:
            if not np.array_equal(out, probe + 1.0):
                raise KernelError("parallel pool ping returned wrong data")

    def close(self) -> None:
        """Stop the workers and release every shared-memory block."""
        self._shutdown_pool()
        self.active = False

    def _shutdown_pool(self) -> None:
        if self._task_q is not None:
            try:
                for _ in self._procs:
                    self._task_q.put(None)
            except (OSError, ValueError):
                pass
        for p in self._procs:
            p.join(timeout=5.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        self._procs = []
        for blk in self._in_blocks.values():
            blk.close(unlink=True)
        self._in_blocks.clear()
        self._task_q = None
        self._result_q = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort tidy-up
        try:
            self._shutdown_pool()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass

    # -- execution ----------------------------------------------------------

    def run(self, fn, payloads: list[tuple[dict, tuple]]) -> list[tuple]:
        """Execute ``fn(meta, *arrays)`` per payload; results in order.

        ``payloads`` is a list of ``(meta, arrays)`` with ``meta`` a
        small picklable dict and ``arrays`` a tuple of ndarrays shipped
        through shared memory.  Returns one tuple of arrays per
        payload, in payload order (the deterministic combine).
        """
        self.calls += 1
        if not payloads:
            return []
        if not self.active:
            return self._run_serial(fn, payloads)
        try:
            results = self._run_parallel(fn, payloads, timeout=RESULT_TIMEOUT)
        except KernelError as exc:
            if "task failed" in str(exc):
                raise  # a *task* error is the caller's bug, not pool health
            # Pool died (timeout, closed pipe): degrade and finish serially.
            self.fallback_reason = str(exc)
            self._shutdown_pool()
            self.active = False
            return self._run_serial(fn, payloads)
        if self.validate:
            self._cross_validate(fn, payloads, results)
        return results

    def _run_serial(self, fn, payloads) -> list[tuple]:
        self.tasks_serial += len(payloads)
        out = []
        for meta, arrays in payloads:
            res = fn(meta, *arrays)
            if not isinstance(res, (tuple, list)):
                res = (res,)
            out.append(tuple(np.asarray(a) for a in res))
        return out

    def _run_parallel(self, fn, payloads, timeout: float) -> list[tuple]:
        for idx, (meta, arrays) in enumerate(payloads):
            desc = None
            if arrays:
                block = self._in_blocks.get(idx)

                def make_in(capacity: int) -> _Block:
                    return _Block(
                        shared_memory.SharedMemory(create=True, size=capacity),
                        capacity,
                    )

                block, desc = _pack(block, tuple(arrays), make_in)
                self._in_blocks[idx] = block
            try:
                self._task_q.put((idx, fn, meta, desc))
            except Exception as exc:  # noqa: BLE001
                raise KernelError(f"parallel dispatch failed: {exc!r}") from exc
        results: list[tuple | None] = [None] * len(payloads)
        failures: list[str] = []
        deadline = time.monotonic() + timeout
        for _ in range(len(payloads)):
            remaining = deadline - time.monotonic()
            item = self._result_get(remaining)
            idx, worker_id, status, data, t0, t1, fn_name = item
            st = self.stats[worker_id]
            st.tasks += 1
            st.busy_seconds += max(0.0, t1 - t0)
            if status == "err":
                st.errors += 1
                failures.append(f"task {idx} on worker {worker_id}:\n{data}")
                continue
            results[idx] = tuple(data)
            st.bytes_out += sum(a.nbytes for a in data)
            meta_in = payloads[idx][0]
            st.bytes_in += sum(np.asarray(a).nbytes for a in payloads[idx][1])
            self.tasks_parallel += 1
            if self.tracer.enabled:
                self.tracer.span_at(
                    worker_track(worker_id), fn_name,
                    t0 - self._t0, t1 - self._t0, cat="parallel",
                    task=idx, **{k: v for k, v in meta_in.items()
                                 if isinstance(v, (int, float, str, bool))},
                )
        if failures:
            raise KernelError(
                "parallel task failed:\n" + "\n".join(failures)
            )
        return results  # type: ignore[return-value]

    def _result_get(self, remaining: float):
        """Result-queue get with a liveness-aware timeout."""
        import select

        if remaining <= 0:
            raise KernelError(f"parallel pool timed out ({self.label})")
        reader = self._result_q._reader  # SimpleQueue's underlying pipe
        ready, _, _ = select.select([reader], [], [], remaining)
        if not ready:
            raise KernelError(
                f"parallel pool timed out after {RESULT_TIMEOUT:.0f}s "
                f"({self.label}); falling back to serial"
            )
        return self._result_q.get()

    # -- validation ---------------------------------------------------------

    def _cross_validate(self, fn, payloads, results) -> None:
        """Bitwise-compare parallel results against a serial recompute."""
        self.validations += 1
        serial = self._run_serial(fn, payloads)
        self.tasks_serial -= len(payloads)  # recompute is bookkeeping-neutral
        for idx, (par, ser) in enumerate(zip(results, serial)):
            for k, (a, b) in enumerate(zip(par, ser)):
                if not np.array_equal(a, b):
                    scale = max(float(np.max(np.abs(b))), 1e-300)
                    err = float(np.max(np.abs(a - b))) / scale
                    raise KernelError(
                        f"parallel/serial cross-validation failed for "
                        f"{getattr(fn, '__name__', fn)} task {idx} output {k}: "
                        f"max rel err {err:.3e} (required: bitwise identical)"
                    )

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        """JSON-friendly status snapshot (mode, fallback reason, tallies)."""
        return {
            "workers": self.workers,
            "active": self.active,
            "fallback_reason": self.fallback_reason,
            "calls": self.calls,
            "tasks_parallel": self.tasks_parallel,
            "tasks_serial": self.tasks_serial,
            "validations": self.validations,
            "per_worker": [
                {"worker": s.worker, "tasks": s.tasks,
                 "busy_seconds": s.busy_seconds, "bytes_in": s.bytes_in,
                 "bytes_out": s.bytes_out, "errors": s.errors}
                for s in self.stats
            ],
        }


#: The shared always-serial engine: the default everywhere a
#: ``workers=`` knob is absent or 0 — zero processes, zero overhead.
SERIAL_ENGINE = ParallelEngine(workers=0, label="serial")
