"""The process-parallel execution engine behind ``repro.parallel``.

:class:`ParallelEngine` owns a persistent pool of forked worker
processes and a set of ``multiprocessing.shared_memory`` blocks through
which the element arrays travel to the workers.  One engine serves
many calls: the per-task input blocks are allocated once and grown on
demand, so a steady-state dispatch is one memcpy into shared memory
plus one queue round-trip per task (results, whose shapes only the
task function knows, return through the result queue).

Execution model
---------------

``run(fn, payloads)`` executes ``fn(meta, *arrays)`` once per payload
and returns the results **in payload order** — never in completion
order — which is the fixed rank-ordered combine that makes parallel
execution bitwise identical to serial.  ``fn`` must be a module-level
function (it is pickled by reference into the workers) returning a
tuple of ndarrays.

``submit(fn, payloads)`` is the non-blocking half of the same
contract: it queues the batch and returns a :class:`PendingRun` whose
``wait()`` yields the payload-ordered results later.  Up to two
batches may be in flight at once (double-buffered shared-memory
banks), which is what lets a driver overlap its combine work for
batch *k* with worker compute of batch *k+1* — the pipelined
execution mode of the distributed models.

Large read-only context (element geometries, meshes) never crosses a
queue: it is published via :func:`register_context` *before* the pool
forks, so every worker inherits it copy-on-write through ``fork``.

Self-healing (DESIGN.md §12)
----------------------------

Each worker owns a private task queue and stamps a heartbeat into a
shared block (:mod:`repro.parallel.supervisor`).  While the driver
waits on results it also supervises: a worker whose process exits is a
*crash*, one whose heartbeat goes stale is a *hang*, and one sitting
on a result past the batch deadline is *overdue*.  Any of the three
triggers the same local recovery — respawn the slot (the fork inherits
the registered context exactly as the original did) and re-dispatch
only the failed worker's in-flight task ids to the survivors.  Results
carry a CRC32 the driver re-verifies (plus an optional NaN/Inf guard),
so a corrupted result is re-executed rather than combined.  Because
tasks are pure functions of payloads the driver still owns, and the
rank-ordered combine never moves off the driver, every recovery path
reproduces the serial trajectory bit for bit.

Fallback
--------

The engine degrades to in-process serial execution of the same task
functions when ``workers <= 1``, when the platform lacks the ``fork``
start method, when the pool fails its start-up ping, or when recovery
itself is exhausted (the respawn budget runs out or no live worker is
left to dispatch to).  ``engine.active`` reports which mode is live,
``fallback_reason`` the newest reason, and ``degrade_kinds`` a
labelled tally of every degrade this engine ever took.
"""

from __future__ import annotations

import time
import traceback
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..errors import KernelError, ParallelError
from ..obs.telemetry import TelemetrySpec, quantile
from ..obs.tracer import NULL_TRACER
from .supervisor import (
    HEARTBEAT_TIMEOUT,
    SUPERVISION_TICK,
    ChaosSpec,
    WorkerSupervisor,
    result_crc,
)
from .supervisor import _unpack  # noqa: F401  (re-export for back-compat)

__all__ = [
    "ParallelEngine",
    "ParallelError",
    "PendingRun",
    "SERIAL_ENGINE",
    "WorkerStats",
    "available_cores",
    "context_nbytes",
    "register_context",
    "get_context",
    "touched_context_bytes",
    "unregister_context",
    "worker_track",
]

#: Seconds the driver waits for a single batch's results before
#: escalating — under supervision that means killing and respawning the
#: overdue workers; without it (``supervise=False`` or budget
#: exhausted) the pool is declared dead and the call finishes serially.
RESULT_TIMEOUT = 120.0

#: Seconds allowed for the start-up ping that proves the pool works.
PING_TIMEOUT = 30.0

#: Shared-memory banks for pipelined dispatch.  Two banks = double
#: buffering: batch k+1 packs into the other bank while workers may
#: still be reading batch k's blocks, so at most two batches may be in
#: flight at once.
PIPELINE_BANKS = 2

#: Attempts per task before a repeatedly corrupted result becomes a
#: task failure instead of another re-execution.
MAX_TASK_ATTEMPTS = 3

#: Read-only objects published to workers.  Entries registered before a
#: pool starts are inherited by its forked workers copy-on-write;
#: lookups in the driver (serial fallback) read the same dict.  A
#: *respawned* worker forks from the current driver, so it re-inherits
#: whatever is registered at respawn time — which is why contexts stay
#: registered for the life of the model, not just through pool start.
_CONTEXT: dict[str, object] = {}

#: Engines whose fork pool is currently live.  ``register_context``
#: consults this set: registering while any pool is live is a protocol
#: error (the live workers forked from an older registry snapshot and
#: would never see the new entry).
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()

#: Bytes of distinct context entries resolved by *this* process (driver
#: or forked worker), keyed by context key at first ``get_context``.  In
#: a worker this approximates the copy-on-write context pages the worker
#: actually touches — the per-worker memory the sharded-ownership model
#: is designed to shrink.
_CTX_TOUCHED: dict[str, int] = {}

#: Attribute names skipped by :func:`context_nbytes`: references back to
#: driver-resident shared structures (the full mesh) and caches of views
#: that alias arrays counted elsewhere.
_SIZER_SKIP_ATTRS = frozenset({"mesh", "_views"})


def context_nbytes(obj: object) -> int:
    """Approximate resident bytes of a context object's own arrays.

    Walks ndarrays, containers, and object ``__dict__``\\ s,
    deduplicating by ``id``.  Objects exposing an integer ``nbytes``
    (:class:`~repro.homme.tensors.OperatorTensors`,
    :class:`~repro.homme.tensors.FusedOperands`) report through it,
    which keeps broadcast views from being double-counted.  Attributes
    in :data:`_SIZER_SKIP_ATTRS` are excluded, so the result is the
    *shard-owned* footprint — the quantity the per-worker memory
    accounting compares between sharded and replicated ownership.
    """
    seen: set[int] = set()

    def walk(o: object) -> int:
        if o is None or isinstance(o, (bool, int, float, complex, str, bytes)):
            return 0
        oid = id(o)
        if oid in seen:
            return 0
        seen.add(oid)
        if isinstance(o, np.ndarray):
            return int(o.nbytes)
        if isinstance(o, dict):
            return sum(walk(v) for v in o.values())
        if isinstance(o, (list, tuple, set, frozenset)):
            return sum(walk(v) for v in o)
        nb = getattr(o, "nbytes", None)
        if isinstance(nb, (int, np.integer)):
            return int(nb)
        d = getattr(o, "__dict__", None)
        if d is not None:
            return sum(walk(v) for k, v in d.items() if k not in _SIZER_SKIP_ATTRS)
        return 0

    return walk(obj)


def touched_context_bytes() -> int:
    """Total bytes of context entries this process has resolved."""
    return sum(_CTX_TOUCHED.values())


def available_cores() -> int:
    """Usable core count (cgroup-aware where the platform exposes it)."""
    import os

    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def worker_track(worker: int) -> str:
    """Canonical trace-track name for pool worker ``worker``."""
    return f"worker/{worker}"


def _live_pool_labels() -> list[str]:
    return sorted(e.label for e in _LIVE_POOLS if getattr(e, "active", False))


def register_context(key: str, obj: object) -> str:
    """Publish a read-only object to (future) workers under ``key``.

    Must be called *before* the engine that needs it starts its pool —
    forked workers snapshot the registry at fork time.  Returns the key
    for convenience.

    Registering a *new* key while some other engine's pool is live is
    fine (the pool that will use it forks later and inherits it), but
    **overwriting an existing key** while any pool is live raises
    :class:`~repro.errors.ParallelError`: live workers keep the
    fork-time object, so they would silently compute with stale data
    while the driver sees the new one.  The companion guard — a task
    dispatched to a pool whose fork predates its context key — fires in
    :meth:`ParallelEngine._dispatch_task`, so both halves of the
    stale-registry hazard fail loudly at the misuse site instead of as
    a confusing worker-side lookup error later.
    """
    if key in _CONTEXT:
        live = _live_pool_labels()
        if live:
            raise ParallelError(
                f"register_context({key!r}) would overwrite an existing "
                f"entry while worker pool(s) [{', '.join(live)}] are live: "
                "forked workers keep the fork-time object, so they would "
                "silently compute with stale data. Close the live engine "
                "(or use a fresh key) first."
            )
    _CONTEXT[key] = obj
    return key


def get_context(key: str) -> object:
    """Fetch a registered context object (driver or worker side)."""
    try:
        obj = _CONTEXT[key]
    except KeyError:
        raise KernelError(
            f"parallel context {key!r} was not registered before the pool "
            "forked; register_context must run before ParallelEngine()"
        ) from None
    if key not in _CTX_TOUCHED:
        _CTX_TOUCHED[key] = context_nbytes(obj)
    return obj


def unregister_context(key: str) -> None:
    """Drop a registered context object (driver side only)."""
    _CONTEXT.pop(key, None)
    _CTX_TOUCHED.pop(key, None)


@dataclass
class WorkerStats:
    """Per-worker-slot tallies maintained by the driver.

    A slot's stats accumulate across respawns — the slot is the stable
    identity, the process behind it may be generation 0, 1, 2, ...
    """

    worker: int
    tasks: int = 0
    busy_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    errors: int = 0
    respawns: int = 0
    generation: int = 0
    queue_peak: int = 0


@dataclass
class _Block:
    """One shared-memory block plus its current capacity."""

    shm: shared_memory.SharedMemory
    capacity: int
    owner: set | None = None  # engine's owned-name set, for leak tracking

    def close(self, unlink: bool) -> None:
        try:
            self.shm.close()
            if unlink:
                self.shm.unlink()
                if self.owner is not None:
                    self.owner.discard(self.shm.name)
        except (FileNotFoundError, OSError):  # already gone
            if self.owner is not None:
                self.owner.discard(self.shm.name)


@dataclass
class _TaskRecord:
    """Driver-side record of one dispatched task.

    Everything needed to re-dispatch the task after a worker failure
    (``fn``/``meta``/``desc`` — the shared-memory input block stays
    valid until the whole batch is collected) and to route its result
    back (``pend``/``idx``).  ``slot`` tracks the worker currently
    responsible; ``attempt`` counts dispatches, and chaos hooks only
    fire on attempt 0 so recovery always replays clean.
    """

    pend: "PendingRun"
    idx: int
    fn: object
    meta: dict
    desc: tuple | None
    attempt: int = 0
    slot: int = -1


def _pack(block: _Block | None, arrays: tuple, make) -> tuple[_Block, tuple]:
    """Copy ``arrays`` into a (possibly grown) block; return descriptors.

    The layout is a flat concatenation at 64-byte-aligned offsets; the
    descriptor carries (offset, shape, dtype) per array so the peer can
    rebuild zero-copy views.
    """
    offsets, metas, need = [], [], 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        need = (need + 63) & ~63
        offsets.append(need)
        metas.append((need, a.shape, a.dtype.str))
        need += a.nbytes
    if block is None or block.capacity < need:
        if block is not None:
            block.close(unlink=True)
        block = make(max(need, 1))
    for a, off in zip(arrays, offsets):
        a = np.ascontiguousarray(a)
        dst = np.ndarray(a.shape, dtype=a.dtype, buffer=block.shm.buf, offset=off)
        dst[...] = a
    return block, (block.shm.name, tuple(metas))


def _ping_task(meta: dict, arr: np.ndarray) -> tuple[np.ndarray]:
    """Start-up health check: echo the payload."""
    return (arr + meta.get("add", 0.0),)


class PendingRun:
    """A dispatched batch awaiting collection.

    Returned by :meth:`ParallelEngine.submit`.  The batch's tasks are
    already queued to the workers (or earmarked for serial execution on
    an inactive engine); :meth:`wait` blocks until every result is in
    and returns them **in payload order** — the same deterministic
    combine contract as :meth:`ParallelEngine.run`.

    Between ``submit`` and ``wait`` the driver is free to do other work
    (reassembly, DSS accumulation, further submits) — that window is
    the pipeline's computation/communication overlap.  The payload
    arrays must not be mutated until ``wait`` returns: worker recovery
    re-dispatches from them, and the serial fallback recomputes from
    them if the pool dies mid-flight.
    """

    def __init__(self, engine: "ParallelEngine", fn, payloads,
                 bank: int, parallel: bool) -> None:
        self.engine = engine
        self.fn = fn
        self.payloads = payloads
        self.bank = bank
        self.parallel = parallel
        self.overlapped = False
        self.submitted_at = time.perf_counter()
        self.timeout = engine.result_timeout
        self.validate = engine.validate  # per-batch override (ping skips)
        self.results: list[tuple | None] = [None] * len(payloads)
        self.remaining = 0  # parallel tasks still in flight
        self.failures: list[str] = []
        self.done = False

    def wait(self) -> list[tuple]:
        """Collect the batch's results, in payload order."""
        return self.engine._wait(self)


class ParallelEngine:
    """A persistent multi-core task pool with a serial twin.

    Parameters
    ----------
    workers:
        Requested worker count.  ``<= 1`` means serial execution (no
        processes are ever started).
    validate:
        When true, every parallel ``run`` is recomputed serially on the
        driver and compared **bitwise** — the ``repro.parallel``
        mirror of the batched/looped 1e-12 dispatch check
        (:func:`repro.backends.functional_exec.cross_validate_paths`).
        Costs a full serial execution per call; meant for tests, CI
        smoke jobs, and paranoid runs.
    tracer:
        :mod:`repro.obs` tracer.  When enabled, each task becomes a
        span on the ``worker/<i>`` track of the worker that ran it, and
        recovery actions (crashes, hangs, respawns, corrupt results)
        become instants on the ``supervisor`` track — all stamped in
        wall-clock seconds since the engine started.
    label:
        Name used in log lines and trace spans.
    supervise:
        Enable the self-healing layer (default).  ``False`` restores
        the all-or-nothing behaviour: any worker fault degrades the
        whole pool to serial.
    heartbeat_timeout:
        Seconds of heartbeat silence before a live worker is declared
        hung and respawned.
    result_timeout:
        Seconds a batch may wait on results before the driver escalates
        (kill + respawn + redistribute under supervision; pool death
        otherwise).  Becomes each :class:`PendingRun`'s ``timeout``.
    max_respawns:
        Total respawn budget for this engine's lifetime; exhausted
        means the machine is sick, so the pool degrades to serial.
        Defaults to ``max(4, 2 * workers)``.
    chaos:
        A :class:`~repro.parallel.supervisor.ChaosSpec` of deterministic
        injected worker faults (kill / stall / delay / corrupt), keyed
        by global task id.  Test-only knob driven by
        :mod:`repro.parallel.chaos`.
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`; every
        recovery-worthy observation (worker crash/hang, overdue result,
        corrupt result) is appended to its event log so one injector
        narrates the whole faulty run.
    integrity:
        Verify the worker-computed CRC32 on every result (default).  A
        mismatch re-executes the task instead of combining garbage.
    guard_nonfinite:
        Additionally treat NaN/Inf in returned float arrays as
        corruption and re-execute once; a recomputed non-finite result
        is accepted (it is the function's true output — the serial path
        would produce it too).
    """

    def __init__(
        self,
        workers: int = 0,
        validate: bool = False,
        tracer=None,
        label: str = "parallel",
        *,
        supervise: bool = True,
        heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
        result_timeout: float = RESULT_TIMEOUT,
        max_respawns: int | None = None,
        chaos: ChaosSpec | None = None,
        faults=None,
        integrity: bool = True,
        guard_nonfinite: bool = False,
        telemetry: TelemetrySpec | bool | None = None,
        profile_hz: float = 0.0,
    ) -> None:
        self.workers = max(0, int(workers))
        self.validate = bool(validate)
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.label = label
        # Cross-process telemetry (DESIGN.md §13).  ``None`` means
        # "follow the tracer": an enabled tracer (or a requested
        # profiler) turns worker-side measurement on; otherwise the
        # workers ship ``None`` packets and measure nothing — the
        # NULL_TRACER-style zero-cost default.
        if telemetry is None:
            spec = TelemetrySpec(
                enabled=self.tracer.enabled or profile_hz > 0,
                profile_hz=float(profile_hz),
            )
        elif isinstance(telemetry, TelemetrySpec):
            spec = telemetry
        else:
            spec = TelemetrySpec(enabled=bool(telemetry),
                                 profile_hz=float(profile_hz))
        self.telemetry: TelemetrySpec | None = spec if spec.live else None
        #: Driver-side aggregate of the metric deltas worker packets
        #: carried (``parallel.worker.<i>.compute.seconds``, ...).
        self.telemetry_metrics = None
        if self.telemetry is not None:
            from ..obs.metrics import MetricsRegistry

            self.telemetry_metrics = MetricsRegistry(f"{label}.telemetry")
        self.telemetry_packets = 0
        #: Aggregated profiler frames: frame -> (self, cumulative).
        self.profile_frames: dict[str, tuple[int, int]] = {}
        self.profile_samples = 0
        #: Worker-side heartbeat ages sampled at each result send.
        self._hb_samples: list[float] = []
        #: In-flight tasks per worker slot (the queue-depth counters).
        self._queue_depth: dict[int, int] = {}
        #: Context keys each worker slot has been asked to touch —
        #: the basis of the sharded-ownership memory accounting.
        self.context_keys_by_slot: dict[int, set[str]] = {}
        self.supervise = bool(supervise)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.result_timeout = float(result_timeout)
        self.max_respawns = (
            max(4, 2 * self.workers) if max_respawns is None else int(max_respawns)
        )
        self.chaos = chaos
        self.faults = faults
        self.integrity = bool(integrity)
        self.guard_nonfinite = bool(guard_nonfinite)
        self.active = False
        self.fallback_reason: str | None = None
        #: Labelled tally of every degrade this engine took
        #: (``startup`` / ``platform`` / ``timeout`` / ``dispatch`` /
        #: ``respawn-budget`` / ``worker-loss``).
        self.degrade_kinds: dict[str, int] = {}
        #: Recovery tallies (mirrored into ``parallel.recovery.*``).
        self.recovery: dict[str, int] = {
            "respawns": 0,
            "crashes": 0,
            "hangs": 0,
            "timeouts": 0,
            "redistributed_tasks": 0,
            "reexecuted_tasks": 0,
            "corrupt_results": 0,
            "nonfinite_results": 0,
            "pool_degrades": 0,
        }
        self.stats: list[WorkerStats] = []
        self.calls = 0
        self.tasks_parallel = 0
        self.tasks_serial = 0
        self.validations = 0
        self.supervisor: WorkerSupervisor | None = None
        self._result_q = None
        #: Shared-memory input blocks, keyed by (bank, payload index).
        self._in_blocks: dict[tuple[int, int], _Block] = {}
        #: Names of every shared-memory block this engine created and
        #: has not yet unlinked — the leak-tracking ledger behind
        #: :meth:`leaked_shm`.
        self._owned_shm: set[str] = set()
        self._task_seq = 0
        self._rr = 0  # round-robin cursor over live worker slots
        #: Registry keys present when the pool forked (``None`` while no
        #: pool is live).  Workers snapshot ``_CONTEXT`` at fork time, so
        #: dispatching a task whose context key postdates the fork would
        #: fail with a confusing worker-side lookup error — the dispatch
        #: guard in :meth:`_dispatch_task` turns that into an immediate
        #: :class:`~repro.errors.ParallelError`.
        self._fork_keys: frozenset[str] | None = None
        self._tasks: dict[int, _TaskRecord] = {}
        self._outstanding: list[PendingRun] = []
        self._closed = False
        # Pipeline tallies (see collect_parallel_engine / describe()).
        self.pipeline_batches = 0
        self.pipeline_max_depth = 0
        self.pipeline_overlap_seconds = 0.0
        self.pipeline_wait_seconds = 0.0
        self._t0 = time.perf_counter()
        if self.workers > 1:
            self._try_start()

    # -- lifecycle ----------------------------------------------------------

    def _record_degrade(self, kind: str, reason: str) -> None:
        self.fallback_reason = reason
        self.degrade_kinds[kind] = self.degrade_kinds.get(kind, 0) + 1

    def _try_start(self) -> None:
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            self._record_degrade(
                "platform", "no fork start method on this platform")
            return
        ctx = mp.get_context("fork")
        try:
            # The resource tracker must exist *before* the fork so parent
            # and workers share one tracker (whose cache is a set, making
            # the workers' attach-side registrations no-ops).  Otherwise
            # each worker lazily spawns its own tracker, which warns about
            # "leaked" blocks the driver already unlinked.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            self._result_q = ctx.SimpleQueue()
            self.supervisor = WorkerSupervisor(
                ctx, self.workers, self._result_q, self.label,
                chaos=self.chaos, telemetry=self.telemetry,
            )
            self._owned_shm.add(self.supervisor.shm_name)
            for w in range(self.workers):
                self.supervisor.spawn(w)
                self._register_worker_pid(w)
            self.stats = [WorkerStats(w) for w in range(self.workers)]
            self.active = True
            self._ping()
            self._fork_keys = frozenset(_CONTEXT)
            _LIVE_POOLS.add(self)
        except Exception as exc:  # noqa: BLE001 - any start-up failure => serial
            self._record_degrade("startup", f"pool start failed: {exc!r}")
            self._shutdown_pool()
            self.active = False

    def _register_worker_pid(self, slot: int) -> None:
        """Map ``worker/<slot>``'s trace track to the live process's pid
        so the Chrome export renders one process group per worker."""
        if not self.tracer.enabled or self.tracer.recorder is None:
            return
        handle = self.supervisor.handles[slot]
        if handle is None or handle.proc.pid is None:
            return
        self.tracer.recorder.set_process(
            worker_track(slot), handle.proc.pid,
            f"{self.label}-worker-{slot}",
        )

    def _ping(self) -> None:
        """Prove every queue direction works before trusting the pool."""
        probe = np.arange(4.0)
        pend = self._submit(_ping_task,
                            [({"add": 1.0}, (probe,))] * self.workers)
        pend.timeout = PING_TIMEOUT
        pend.validate = False
        outs = pend.wait()
        if not self.active:
            raise KernelError(
                f"parallel pool ping failed: {self.fallback_reason}")
        for (out,) in outs:
            if not np.array_equal(out, probe + 1.0):
                raise KernelError("parallel pool ping returned wrong data")

    def close(self) -> None:
        """Stop the workers and release every shared-memory block.

        Idempotent: closing twice (or letting ``__del__`` run after an
        explicit close) is a no-op.  Outstanding :class:`PendingRun`\\ s
        are detached — their ``wait()`` completes serially — and no
        shared-memory block survives (:meth:`leaked_shm` returns ``[]``).
        """
        if self._closed:
            return
        self._flush_profile()
        self._shutdown_pool()
        self.active = False
        self._closed = True

    def _flush_profile(self) -> None:
        """Emit the aggregated profiler frames as ``profile`` counters.

        One counter event per frame (value = self samples), stamped at
        close time — the Perfetto-visible rendering of the statistical
        profile; the exact counts stay queryable via
        ``engine.profile_frames``.
        """
        if not self.tracer.enabled or not self.profile_frames:
            return
        now = time.perf_counter() - self._t0
        for frame, (self_n, _cum) in sorted(self.profile_frames.items()):
            self.tracer.counter("profile", frame, now, self_n)

    def _shutdown_pool(self) -> None:
        _LIVE_POOLS.discard(self)
        self._fork_keys = None
        self._tasks.clear()
        for p in self._outstanding:
            p.remaining = 0  # missing results are computed serially at wait()
        self._outstanding.clear()
        if self.supervisor is not None:
            name = self.supervisor.shm_name
            self.supervisor.shutdown()
            self._owned_shm.discard(name)
            self.supervisor = None
        for blk in self._in_blocks.values():
            blk.close(unlink=True)
        self._in_blocks.clear()
        if self._result_q is not None:
            try:
                self._result_q.close()
            except (OSError, AttributeError):
                pass
            self._result_q = None

    def leaked_shm(self) -> list[str]:
        """Names of shared-memory blocks this engine created but never
        unlinked — the resource-tracker assertion for tests; must be
        empty after :meth:`close`."""
        leaked = []
        for name in sorted(self._owned_shm):
            try:
                probe = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            probe.close()
            leaked.append(name)
        return leaked

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort tidy-up
        if getattr(self, "_closed", True):
            return  # already closed explicitly — nothing to do
        try:
            self._shutdown_pool()
        except Exception:  # noqa: BLE001 - interpreter may be tearing down
            pass

    # -- execution ----------------------------------------------------------

    def run(self, fn, payloads: list[tuple[dict, tuple]]) -> list[tuple]:
        """Execute ``fn(meta, *arrays)`` per payload; results in order.

        ``payloads`` is a list of ``(meta, arrays)`` with ``meta`` a
        small picklable dict and ``arrays`` a tuple of ndarrays shipped
        through shared memory.  Returns one tuple of arrays per
        payload, in payload order (the deterministic combine).
        """
        self.calls += 1
        if not payloads:
            return []
        if not self.active:
            return self._run_serial(fn, payloads)
        return self._submit(fn, payloads).wait()

    def submit(self, fn, payloads: list[tuple[dict, tuple]]) -> PendingRun:
        """Dispatch a batch without blocking; collect via ``.wait()``.

        The pipelining primitive: tasks are packed into this batch's
        shared-memory *bank* and queued to the workers immediately, and
        the driver keeps running — overlapping its combine work (and
        further submits) with worker compute.  Double buffering bounds
        the depth: at most :data:`PIPELINE_BANKS` batches may be in
        flight, so a bank is never repacked while its previous batch's
        workers could still be reading it.  On an inactive engine the
        batch is executed serially inside ``wait()`` — same results,
        no overlap.
        """
        self.calls += 1
        return self._submit(fn, payloads)

    def _dispatch_task(self, tid: int) -> None:
        """Queue task ``tid`` to a live worker.

        A task whose meta carries a ``"shard"`` index is pinned to
        ``shard % len(live_slots)`` — shard affinity: every task of a
        rank group lands on the same worker, so each worker only faults
        in its own shard's context pages and the per-slot context
        accounting stays meaningful.  Tasks without a shard use the
        round-robin cursor.  Affinity degrades gracefully under
        respawn because the modulus runs over *live* slots.
        """
        rec = self._tasks[tid]
        slots = self.supervisor.live_slots()
        if not slots:
            raise KernelError(
                f"no live workers left to dispatch to ({self.label})")
        shard = rec.meta.get("shard") if isinstance(rec.meta, dict) else None
        if shard is not None:
            slot = slots[int(shard) % len(slots)]
        else:
            slot = slots[self._rr % len(slots)]
            self._rr += 1
        rec.slot = slot
        ctx = rec.meta.get("ctx") if isinstance(rec.meta, dict) else None
        if ctx is not None:
            if self._fork_keys is not None and ctx not in self._fork_keys:
                raise ParallelError(
                    f"task context {ctx!r} was registered after engine "
                    f"{self.label!r} forked its worker pool; live workers "
                    "hold the fork-time registry snapshot and cannot "
                    "resolve it. Register every context before creating "
                    "the ParallelEngine that will use it."
                )
            self.context_keys_by_slot.setdefault(slot, set()).add(ctx)
        self.supervisor.handles[slot].task_q.put(
            (tid, rec.attempt, rec.fn, rec.meta, rec.desc))
        depth = self._queue_depth.get(slot, 0) + 1
        self._queue_depth[slot] = depth
        if 0 <= slot < len(self.stats):
            self.stats[slot].queue_peak = max(self.stats[slot].queue_peak, depth)
        if self.tracer.enabled:
            self.tracer.counter(
                "health", f"queue.depth.w{slot}",
                time.perf_counter() - self._t0, depth,
            )

    def _submit(self, fn, payloads) -> PendingRun:
        payloads = list(payloads)
        if not self.active or not payloads:
            return PendingRun(self, fn, payloads, bank=-1, parallel=False)
        if len(self._outstanding) >= PIPELINE_BANKS:
            raise KernelError(
                f"pipeline depth exceeded: at most {PIPELINE_BANKS} batches "
                "may be in flight (double-buffered shared-memory banks)"
            )
        used = {p.bank for p in self._outstanding}
        bank = next(b for b in range(PIPELINE_BANKS) if b not in used)
        pend = PendingRun(self, fn, payloads, bank=bank, parallel=True)
        pend.overlapped = bool(self._tasks)
        self._outstanding.append(pend)

        def make_in(capacity: int) -> _Block:
            blk = _Block(
                shared_memory.SharedMemory(create=True, size=capacity),
                capacity,
                owner=self._owned_shm,
            )
            self._owned_shm.add(blk.shm.name)
            return blk

        try:
            for idx, (meta, arrays) in enumerate(payloads):
                desc = None
                if arrays:
                    block, desc = _pack(
                        self._in_blocks.get((bank, idx)), tuple(arrays), make_in
                    )
                    self._in_blocks[(bank, idx)] = block
                tid = self._task_seq
                self._task_seq += 1
                self._tasks[tid] = _TaskRecord(pend, idx, fn, meta, desc)
                self._dispatch_task(tid)
                pend.remaining += 1
        except ParallelError:
            # Protocol misuse (context registered after fork) must surface
            # to the caller, not silently degrade to serial — but still
            # tear the pool down so no half-dispatched batch lingers.
            self._degrade("parallel protocol misuse", kind="dispatch")
            raise
        except Exception as exc:  # noqa: BLE001 - dispatch failure => pool death
            self._degrade(f"parallel dispatch failed: {exc!r}", kind="dispatch")
            return pend
        self.pipeline_max_depth = max(self.pipeline_max_depth, len(self._tasks))
        if pend.overlapped:
            self.pipeline_batches += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "pipeline", f"submit:{getattr(fn, '__name__', fn)}",
                    pend.submitted_at - self._t0, cat="pipeline",
                    tasks=len(payloads), depth=len(self._tasks),
                )
        return pend

    def _supervised(self) -> bool:
        return self.supervise and self.active and self.supervisor is not None

    def _wait(self, pend: PendingRun) -> list[tuple]:
        """Drain results for ``pend`` (routing other batches' results to
        their owners), supervising the workers while blocked: crashes,
        hangs, and overdue results trigger respawn + redistribution of
        only the failed worker's tasks; the pool dies (and the call
        finishes serially) only when recovery is off or exhausted.
        Raise on task failure, cross-validate when asked.  Fixed
        payload order."""
        if pend.done:
            raise KernelError("PendingRun.wait() called twice")
        t_entry = time.perf_counter()
        if pend.overlapped:
            # Driver-side work done since submit = the overlap window.
            self.pipeline_overlap_seconds += t_entry - pend.submitted_at
        deadline = time.monotonic() + pend.timeout
        try:
            while pend.remaining:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    if self._recover_overdue(pend):
                        deadline = time.monotonic() + pend.timeout
                        continue
                    raise KernelError(
                        f"parallel pool timed out after {pend.timeout:.0f}s "
                        f"({self.label}); falling back to serial"
                    )
                tick = min(SUPERVISION_TICK, budget) if self._supervised() \
                    else budget
                tw = time.perf_counter()
                item = self._poll_result(tick)
                if pend.overlapped:
                    self.pipeline_wait_seconds += time.perf_counter() - tw
                if item is not None:
                    self._route(item)
                    continue
                if self._supervised():
                    if self._supervise_tick():
                        deadline = time.monotonic() + pend.timeout
                    if not self.active:
                        break  # recovery degraded the pool; remaining = 0
        except KernelError as exc:
            # Pool death (timeout, closed pipe): degrade every
            # outstanding batch; missing results are computed serially.
            self._degrade(str(exc), kind="timeout")
        if pend in self._outstanding:
            self._outstanding.remove(pend)
        self._finish_serial(pend)
        pend.done = True
        if pend.overlapped and self.tracer.enabled:
            t_done = time.perf_counter() - self._t0
            self.tracer.span_at(
                "pipeline", f"wait:{getattr(pend.fn, '__name__', pend.fn)}",
                t_entry - self._t0, t_done,
                cat="pipeline", tasks=len(pend.payloads),
            )
            self.tracer.counter(
                "pipeline", "overlap.fraction", t_done,
                self.overlap_fraction())
        if pend.failures:
            raise KernelError(
                "parallel task failed:\n" + "\n".join(pend.failures)
            )
        results = [tuple(r) for r in pend.results]  # type: ignore[arg-type]
        if pend.validate and pend.parallel and self.active:
            self._cross_validate(pend.fn, pend.payloads, results)
        return results

    # -- supervision & recovery ---------------------------------------------

    def _supervise_tick(self) -> bool:
        """One liveness sweep; returns True if any recovery happened."""
        recovered = False
        for slot, kind, detail in self.supervisor.failures(self.heartbeat_timeout):
            if not self.active:
                break
            recovered = self._recover_worker(slot, kind, detail) or recovered
        return recovered

    def _recover_overdue(self, pend: PendingRun) -> bool:
        """Batch deadline hit: treat the workers owning ``pend``'s
        still-missing tasks as stalled and recover them.  Returns True
        if recovery ran and the pool survived (the caller re-arms the
        deadline); False routes to the legacy pool-death path."""
        if not self._supervised():
            return False
        slots = sorted({
            r.slot for r in self._tasks.values() if r.pend is pend
        })
        if not slots:
            return False
        self.recovery["timeouts"] += 1
        recovered = False
        for slot in slots:
            if not self.active:
                break
            recovered = self._recover_worker(
                slot, "overdue",
                f"worker {slot} holds results overdue past "
                f"{pend.timeout:.1f}s",
            ) or recovered
        return recovered and self.active

    def _recover_worker(self, slot: int, kind: str, detail: str) -> bool:
        """Local recovery: respawn ``slot`` and redistribute its tasks.

        The failed worker's in-flight task ids — and only those — are
        re-dispatched (attempt + 1, so chaos hooks stay quiet) to the
        surviving workers, the fresh respawn included.  Unaffected
        payloads never notice.  Returns False when the respawn budget
        is exhausted, which degrades the whole pool instead.
        """
        counter = {"crash": "crashes", "hang": "hangs"}.get(kind)
        if counter is not None:
            self.recovery[counter] += 1
        if self.faults is not None:
            self.faults.record(f"worker_{kind}", worker=slot, detail=detail)
        if self.tracer.enabled:
            self.tracer.instant(
                "supervisor", f"{kind}:{worker_track(slot)}",
                time.perf_counter() - self._t0, cat="recovery",
                worker=slot, detail=detail,
            )
        if self.supervisor.respawns >= self.max_respawns:
            self._degrade(
                f"{detail}; respawn budget ({self.max_respawns}) exhausted",
                kind="respawn-budget",
            )
            return False
        lost = sorted(
            tid for tid, r in self._tasks.items() if r.slot == slot
        )
        try:
            # A crashed worker is already out of live_slots(), so its
            # tasks can be redistributed to the survivors *before*
            # paying the respawn fork — the recompute starts
            # immediately and the fork overlaps it.  A hung/overdue
            # worker is still alive (and would be a redistribution
            # target), so it must be killed-and-replaced first; same
            # when no survivor is left.
            live = self.supervisor.live_slots()
            respawn_first = slot in live or not live
            self._queue_depth[slot] = 0  # its queue died with the worker
            if respawn_first:
                self._respawn_slot(slot, len(lost))
            for tid in lost:
                self._tasks[tid].attempt += 1
                self._dispatch_task(tid)
                self.recovery["redistributed_tasks"] += 1
            if not respawn_first:
                self._respawn_slot(slot, len(lost))
        except KernelError as exc:
            self._degrade(
                f"redistribution after worker {slot} {kind} failed: {exc}",
                kind="worker-loss",
            )
            return False
        return True

    def _respawn_slot(self, slot: int, redistributed: int) -> None:
        self.supervisor.respawn(slot)
        self._register_worker_pid(slot)
        self.recovery["respawns"] += 1
        if 0 <= slot < len(self.stats):
            self.stats[slot].respawns += 1
            handle = self.supervisor.handles[slot]
            if handle is not None:
                self.stats[slot].generation = handle.generation
        if self.tracer.enabled:
            self.tracer.instant(
                "supervisor", f"respawn:{worker_track(slot)}",
                time.perf_counter() - self._t0, cat="recovery",
                worker=slot, redistributed=redistributed,
            )

    def _reexecute(self, tid: int, why: str) -> None:
        """Re-dispatch a task whose result failed an integrity check."""
        rec = self._tasks[tid]
        rec.attempt += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "supervisor", f"reexecute:task{tid}",
                time.perf_counter() - self._t0, cat="recovery",
                task=tid, why=why, attempt=rec.attempt,
            )
        try:
            self._dispatch_task(tid)
            self.recovery["reexecuted_tasks"] += 1
        except KernelError as exc:
            self._degrade(
                f"re-execution of task {tid} ({why}) failed: {exc}",
                kind="worker-loss",
            )

    def _route(self, item) -> None:
        """Deliver one result-queue item to the batch that owns it,
        verifying integrity (CRC32, optional NaN/Inf guard) before
        accepting — a failed check re-executes the task instead."""
        tid, slot, status, data, crc, t0, t1, fn_name = item[:8]
        packet = item[8] if len(item) > 8 else None
        rec = self._tasks.get(tid)
        if rec is None:
            return  # stale result from a batch already degraded/recovered
        if packet is not None:
            self._ingest_packet(slot, packet, t1)
        if self._queue_depth.get(slot, 0) > 0:
            self._queue_depth[slot] -= 1
            if self.tracer.enabled:
                self.tracer.counter(
                    "health", f"queue.depth.w{slot}",
                    time.perf_counter() - self._t0, self._queue_depth[slot],
                )
        pend, idx = rec.pend, rec.idx
        st = self.stats[slot] if 0 <= slot < len(self.stats) else WorkerStats(slot)
        if status == "err":
            st.tasks += 1
            st.busy_seconds += max(0.0, t1 - t0)
            st.errors += 1
            del self._tasks[tid]
            pend.remaining -= 1
            pend.failures.append(f"task {idx} on worker {slot}:\n{data}")
            return
        data = tuple(data)
        if self.integrity and crc is not None and result_crc(data) != crc:
            self.recovery["corrupt_results"] += 1
            if self.faults is not None:
                self.faults.record("result_corrupt", task=tid, worker=slot)
            if rec.attempt + 1 >= MAX_TASK_ATTEMPTS:
                del self._tasks[tid]
                pend.remaining -= 1
                pend.failures.append(
                    f"task {idx} on worker {slot}: result CRC mismatch on "
                    f"{rec.attempt + 1} attempts"
                )
                return
            self._reexecute(tid, "crc-mismatch")
            return
        if self.guard_nonfinite and rec.attempt == 0 and any(
            np.issubdtype(a.dtype, np.floating) and not np.isfinite(a).all()
            for a in data
        ):
            # Attempt 0 only: a *recomputed* non-finite result is the
            # function's true output (serial would produce it too).
            self.recovery["nonfinite_results"] += 1
            if self.faults is not None:
                self.faults.record("result_nonfinite", task=tid, worker=slot)
            self._reexecute(tid, "nonfinite")
            return
        del self._tasks[tid]
        st.tasks += 1
        st.busy_seconds += max(0.0, t1 - t0)
        pend.remaining -= 1
        pend.results[idx] = data
        st.bytes_out += sum(a.nbytes for a in data)
        meta_in = pend.payloads[idx][0]
        st.bytes_in += sum(np.asarray(a).nbytes for a in pend.payloads[idx][1])
        self.tasks_parallel += 1
        if self.tracer.enabled:
            self.tracer.span_at(
                worker_track(slot), fn_name,
                t0 - self._t0, t1 - self._t0, cat="parallel",
                task=idx, **{k: v for k, v in meta_in.items()
                             if isinstance(v, (int, float, str, bool))},
            )

    def _ingest_packet(self, slot: int, packet: dict, t1: float) -> None:
        """Merge one worker telemetry packet into the driver's view.

        Re-records the in-worker sub-spans on the worker's trace track
        (worker ``perf_counter`` stamps are driver-comparable on Linux:
        both read ``CLOCK_MONOTONIC`` across the fork), folds metric
        deltas and profiler frames into the engine aggregates, and
        samples the worker-reported heartbeat age as a counter on the
        ``health`` track.
        """
        self.telemetry_packets += 1
        hb_age = packet.get("hb_age")
        if hb_age is not None and len(self._hb_samples) < 65536:
            self._hb_samples.append(float(hb_age))
        if 0 <= slot < len(self.stats):
            self.stats[slot].generation = max(
                self.stats[slot].generation, packet.get("gen", 0))
        if self.telemetry_metrics is not None:
            for key, delta in packet.get("metrics", {}).items():
                self.telemetry_metrics.inc(
                    f"parallel.worker.{slot}.{key}", delta)
        profile = packet.get("profile")
        if profile:
            from ..obs.profiler import merge_profiles

            merge_profiles(self.profile_frames, profile)
        self.profile_samples += packet.get("samples", 0)
        if self.tracer.enabled:
            track = worker_track(slot)
            for name, s0, s1 in packet.get("spans", ()):
                self.tracer.span_at(track, name, s0 - self._t0, s1 - self._t0,
                                    cat="telemetry")
            if hb_age is not None:
                self.tracer.counter(
                    "health", f"heartbeat.age.w{slot}", t1 - self._t0, hb_age)

    def _degrade(self, reason: str, kind: str = "worker-loss") -> None:
        """Pool death: record why, stop the pool, finish pending work
        serially (``_shutdown_pool`` zeroes every ``remaining``)."""
        self._record_degrade(kind, reason)
        self.recovery["pool_degrades"] += 1
        if self.faults is not None:
            self.faults.record("pool_degrade", kind=kind, reason=reason)
        if self.tracer.enabled:
            self.tracer.instant(
                "supervisor", f"degrade:{kind}",
                time.perf_counter() - self._t0, cat="recovery", reason=reason,
            )
        pending = list(self._outstanding)
        self._shutdown_pool()
        self.active = False
        for p in pending:
            self._finish_serial(p)

    def _finish_serial(self, pend: PendingRun) -> None:
        """Compute any still-missing results of ``pend`` in-process."""
        for i, (meta, arrays) in enumerate(pend.payloads):
            if pend.results[i] is not None:
                continue
            try:
                res = pend.fn(meta, *arrays)
            except Exception:  # noqa: BLE001 - surface as a task failure
                pend.failures.append(
                    f"task {i} (serial fallback):\n{traceback.format_exc()}"
                )
                continue
            if not isinstance(res, (tuple, list)):
                res = (res,)
            pend.results[i] = tuple(np.asarray(a) for a in res)
            self.tasks_serial += 1
        pend.remaining = 0

    def _run_serial(self, fn, payloads) -> list[tuple]:
        self.tasks_serial += len(payloads)
        out = []
        for meta, arrays in payloads:
            res = fn(meta, *arrays)
            if not isinstance(res, (tuple, list)):
                res = (res,)
            out.append(tuple(np.asarray(a) for a in res))
        return out

    def _poll_result(self, timeout: float):
        """Result-queue poll: one item, or None after ``timeout``.

        Under supervision the select also watches every live worker's
        process *sentinel*, so a crash wakes the driver immediately —
        detection latency is the OS reap, not the supervision tick.
        (Hangs have no such signal; they wait for the heartbeat
        deadline.)  A sentinel firing returns None: the caller's
        supervision sweep classifies and recovers it.
        """
        import select

        reader = self._result_q._reader  # SimpleQueue's underlying pipe
        fds = [reader]
        if self._supervised():
            for h in self.supervisor.handles:
                if h is None:
                    continue
                try:
                    fds.append(h.proc.sentinel)
                except ValueError:  # process object already closed
                    pass
        ready, _, _ = select.select(fds, [], [], max(0.0, timeout))
        if reader in ready:
            return self._result_q.get()
        return None

    def overlap_fraction(self) -> float:
        """Fraction of pipelined driver time spent doing useful work
        (combines, submits) rather than blocked waiting on workers."""
        total = self.pipeline_overlap_seconds + self.pipeline_wait_seconds
        return self.pipeline_overlap_seconds / total if total > 0 else 0.0

    # -- validation ---------------------------------------------------------

    def _cross_validate(self, fn, payloads, results) -> None:
        """Bitwise-compare parallel results against a serial recompute."""
        self.validations += 1
        serial = self._run_serial(fn, payloads)
        self.tasks_serial -= len(payloads)  # recompute is bookkeeping-neutral
        for idx, (par, ser) in enumerate(zip(results, serial)):
            for k, (a, b) in enumerate(zip(par, ser)):
                if not np.array_equal(a, b):
                    scale = max(float(np.max(np.abs(b))), 1e-300)
                    err = float(np.max(np.abs(a - b))) / scale
                    raise KernelError(
                        f"parallel/serial cross-validation failed for "
                        f"{getattr(fn, '__name__', fn)} task {idx} output {k}: "
                        f"max rel err {err:.3e} (required: bitwise identical)"
                    )

    # -- sharded-context accounting -----------------------------------------

    def context_bytes_by_slot(self) -> dict[int, int]:
        """Resident bytes of the context entries each worker slot was
        asked to touch (still-registered entries only).

        Under sharded ownership with shard affinity each slot maps to a
        disjoint set of per-shard keys, so the per-slot totals are the
        per-worker context footprints.
        """
        return {
            slot: sum(
                context_nbytes(_CONTEXT[k]) for k in keys if k in _CONTEXT
            )
            for slot, keys in self.context_keys_by_slot.items()
        }

    def peak_context_bytes(self) -> int:
        """Largest per-slot context footprint — the sharded per-worker peak."""
        return max(self.context_bytes_by_slot().values(), default=0)

    def total_context_bytes(self) -> int:
        """Bytes of every context entry dispatched through this engine —
        what *each* worker would fault in under replicated ownership
        (the pre-shard model, where one global key held all shards and
        round-robin dispatch touched it from every worker)."""
        if not self.context_keys_by_slot:
            return 0
        keys: set[str] = set().union(*self.context_keys_by_slot.values())
        return sum(context_nbytes(_CONTEXT[k]) for k in keys if k in _CONTEXT)

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        """JSON-friendly status snapshot (mode, fallback reason, tallies)."""
        return {
            "workers": self.workers,
            "active": self.active,
            "supervised": self.supervise,
            "fallback_reason": self.fallback_reason,
            "degrade_reasons": dict(self.degrade_kinds),
            "recovery": dict(self.recovery),
            "calls": self.calls,
            "tasks_parallel": self.tasks_parallel,
            "tasks_serial": self.tasks_serial,
            "validations": self.validations,
            "pipeline": {
                "batches": self.pipeline_batches,
                "max_depth": self.pipeline_max_depth,
                "overlap_seconds": self.pipeline_overlap_seconds,
                "wait_seconds": self.pipeline_wait_seconds,
                "overlap_fraction": self.overlap_fraction(),
            },
            "telemetry": {
                "enabled": self.telemetry is not None,
                "packets": self.telemetry_packets,
                "profile_samples": self.profile_samples,
                "profile_frames": len(self.profile_frames),
                "heartbeat_age_max": max(self._hb_samples, default=0.0),
                "heartbeat_age_p99": quantile(self._hb_samples, 0.99),
            },
            "context": {
                "per_slot_bytes": {
                    str(k): v for k, v in sorted(self.context_bytes_by_slot().items())
                },
                "peak_bytes": self.peak_context_bytes(),
                "total_bytes": self.total_context_bytes(),
            },
            "per_worker": [
                {"worker": s.worker, "tasks": s.tasks,
                 "busy_seconds": s.busy_seconds, "bytes_in": s.bytes_in,
                 "bytes_out": s.bytes_out, "errors": s.errors,
                 "respawns": s.respawns, "generation": s.generation,
                 "queue_peak": s.queue_peak}
                for s in self.stats
            ],
        }

    def health(self, monitor=None):
        """Evaluate the run health rules over this engine's state.

        Returns a :class:`~repro.obs.health.HealthReport` (verdict
        ``ok``/``warn``/``critical`` plus findings) computed from
        ``describe()`` and the telemetry heartbeat samples — see
        DESIGN.md §13 for the rules.
        """
        from ..obs.health import HealthMonitor

        return (monitor or HealthMonitor()).evaluate_engine(self)


#: The shared always-serial engine: the default everywhere a
#: ``workers=`` knob is absent or 0 — zero processes, zero overhead.
SERIAL_ENGINE = ParallelEngine(workers=0, label="serial")
