"""``repro.parallel``: real multi-core execution for the reproduction.

Everything else in this codebase models parallelism — simulated rank
clocks, simulated CPE clusters — while executing on one Python process.
This package is where the reproduction finally *runs* on multiple
cores: a persistent ``multiprocessing`` worker pool with
``shared_memory``-backed element arrays executes the per-rank compute
of the distributed models and the element-batched HOMME kernels across
real cores, while SimMPI's deterministic simulated clocks remain the
timing model.

The contract (DESIGN.md §10):

- **Determinism.** Workers only ever compute *independent* work units
  (one simulated rank's tendencies, one contiguous element chunk).
  Every cross-rank reduction — DSS accumulation, allreduce, the
  chunk-concatenation combine — happens on the driver process in a
  fixed rank/chunk order, so parallel results are **bitwise identical**
  to serial execution.
- **Fallback.** ``workers <= 1``, an unavailable ``fork`` start
  method, or any pool start-up failure silently degrades to in-process
  serial execution of the very same task functions.
- **Validation.** ``validate=True`` mirrors the 1e-12 dispatch check
  of :func:`repro.backends.functional_exec.cross_validate_paths`:
  every parallel result is recomputed serially and compared bitwise.
- **Self-healing.** Supervised engines (the default) recover worker
  crashes, hangs, overdue results, and corrupted result blocks locally
  — respawn the slot, redistribute only its in-flight tasks, re-execute
  integrity failures — without giving up the pool or the bitwise
  contract (DESIGN.md §12).  :mod:`repro.parallel.chaos` proves it with
  seeded fault scenarios against a serial oracle.
"""

from .engine import (  # noqa: F401
    ParallelEngine,
    ParallelError,
    PendingRun,
    SERIAL_ENGINE,
    WorkerStats,
    available_cores,
    context_nbytes,
    register_context,
    unregister_context,
    worker_track,
)
from .supervisor import (  # noqa: F401
    ChaosSpec,
    WorkerSupervisor,
    result_crc,
)
from .chaos import (  # noqa: F401
    SCENARIOS,
    run_scenario,
    scenario_spec,
)
from .dycore import (  # noqa: F401
    ParallelHommeKernels,
    cross_validate_parallel,
    parallel_homme_execution,
)

__all__ = [
    "ParallelEngine",
    "ParallelError",
    "PendingRun",
    "SERIAL_ENGINE",
    "WorkerStats",
    "available_cores",
    "context_nbytes",
    "register_context",
    "unregister_context",
    "worker_track",
    "ChaosSpec",
    "WorkerSupervisor",
    "result_crc",
    "SCENARIOS",
    "run_scenario",
    "scenario_spec",
    "ParallelHommeKernels",
    "cross_validate_parallel",
    "parallel_homme_execution",
]
