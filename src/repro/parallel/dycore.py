"""Task functions and kernel wrappers that put the dycore on real cores.

Two layers live here:

1. **Per-rank tasks** for the distributed models: the element-local
   tendency / laplacian / tracer-advection work of one simulated rank,
   packaged as module-level functions the engine can ship to a worker.
   The driver (``repro.homme.distributed``) routes *both* the serial
   and the parallel path through these same functions, so the two modes
   execute identical float64 streams — bitwise identity by
   construction, with all DSS reductions staying on the driver in fixed
   rank order.

2. **Element-chunked kernels** (:class:`ParallelHommeKernels`): the
   batched HOMME kernels of :mod:`repro.homme.operators` /
   :mod:`repro.homme.rhs` split into contiguous element chunks, one
   chunk per worker, concatenated back in chunk order.  Every operator
   is element-local, so a chunk computes exactly the rows it owns and
   the concatenation is bitwise equal to the full-stack call (asserted
   by :func:`cross_validate_parallel`).

Geometry never crosses a queue: the driver registers the per-rank (or
per-chunk) :class:`~repro.homme.element.ElementGeometry` objects in the
fork-inherited context registry *before* the pool starts.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..errors import KernelError
from .engine import ParallelEngine, get_context, register_context, unregister_context

__all__ = [
    "ParallelHommeKernels",
    "cross_validate_parallel",
    "parallel_homme_execution",
]

_ctx_counter = itertools.count()


def fresh_context_key(prefix: str) -> str:
    """A process-unique context key (ids recycle; the counter doesn't)."""
    return f"{prefix}:{next(_ctx_counter)}"


def shard_context_key(base: str, shard: int) -> str:
    """The per-shard context key derived from a model's base key."""
    return f"{base}/s{shard}"


def _task_geom(meta, index_key: str = "rank"):
    """Resolve the geometry a task should compute with.

    Under sharded ownership (the default) ``meta["ctx"]`` names a
    per-shard context entry holding exactly one
    :class:`~repro.homme.element.ElementGeometry` — the only geometry
    this worker's shard ever touches.  A list/tuple entry is the legacy
    replicated layout (one global key holding every shard), still
    resolved through ``meta[index_key]`` so external payloads keep
    working.
    """
    obj = get_context(meta["ctx"])
    if isinstance(obj, (list, tuple)):
        return obj[meta[index_key]]
    return obj


def _path_kernels(meta):
    """Resolve the execution path named in a task meta.

    Tasks default to the batched kernels when no ``"path"`` key is
    present, so pre-existing payloads (and the bitwise parallel==serial
    guarantee for the default path) are unchanged.
    """
    from ..backends.functional_exec import homme_execution

    return homme_execution(meta.get("path", "batched"))


def _advect_fn(meta):
    """Single-tracer advection kernel for the path named in a task meta."""
    if meta.get("path") == "fused":
        from ..homme.fused import advect_qdp_fused

        return advect_qdp_fused
    from ..homme.euler import advect_qdp

    return advect_qdp


# ---------------------------------------------------------------------------
# Per-rank tasks for the distributed models
# ---------------------------------------------------------------------------


def sw_stage_task(meta, base_h, base_v, point_h, point_v):
    """One rank's shallow-water RK-stage update (pre-DSS).

    Returns ``(base + dt * tendency)`` for h and v, evaluated with the
    rank's geometry from the registered context.
    """
    geom = _task_geom(meta)
    dh, dv = _path_kernels(meta).sw_rhs(point_h, point_v, geom)
    dt = meta["dt"]
    return base_h + dt * dh, base_v + dt * dv


def prim_stage_task(meta, base_v, base_T, base_dp, point_v, point_T, point_dp):
    """One rank's primitive-equation RK-stage update (pre-DSS)."""
    from ..homme.element import ElementState

    geom = _task_geom(meta)
    E, L, n = point_T.shape[0], point_T.shape[1], point_T.shape[2]
    point = ElementState(
        v=point_v, T=point_T, dp3d=point_dp, qdp=np.zeros((E, 1, L, n, n))
    )
    dv, dT, ddp = _path_kernels(meta).compute_rhs(point, geom)
    dt = meta["dt"]
    return base_v + dt * dv, base_T + dt * dT, base_dp + dt * ddp


def prim_laplace_task(meta, T, v, dp):
    """One rank's hyperviscosity laplacians for all three fields."""
    geom = _task_geom(meta)
    ex = _path_kernels(meta)
    return (
        ex.laplace_wk(T, geom),
        ex.vlaplace(v, geom),
        ex.laplace_wk(dp, geom),
    )


def prim_laplace_wk_task(meta, f):
    """One rank's scalar weak laplacian of a single field.

    The per-field twin of :func:`prim_laplace_task`, used by the
    pipelined hyperviscosity chain: splitting the fused three-field
    task lets the driver's DSS of field *f* overlap worker compute of
    field *f+1* (values are unchanged — each field's laplacian is
    computed by the same operator on the same inputs).
    """
    geom = _task_geom(meta)
    return (_path_kernels(meta).laplace_wk(f, geom),)


def prim_vlaplace_task(meta, v):
    """One rank's vector laplacian of a single field (pipelined twin)."""
    geom = _task_geom(meta)
    return (_path_kernels(meta).vlaplace(v, geom),)


def prim_euler_stage1_task(meta, qdp_q, v):
    """Tracer SSP-RK2 stage 1 (pre-DSS): qdp + sdt * advect(qdp)."""
    geom = _task_geom(meta)
    advect = _advect_fn(meta)
    return (qdp_q + meta["sdt"] * advect(qdp_q, v, geom),)


def prim_euler_stage2_task(meta, qdp_q, st1, v):
    """Tracer SSP-RK2 stage 2 (pre-DSS): 0.5 (qdp + st1 + sdt advect(st1))."""
    geom = _task_geom(meta)
    advect = _advect_fn(meta)
    return (0.5 * (qdp_q + st1 + meta["sdt"] * advect(st1, v, geom)),)


def prim_limit_task(meta, st2):
    """One rank's limiter pass plus its local mass sums.

    Returns ``(limited, before_r, after_r)``; the driver allreduces the
    per-level mass sums across ranks in fixed rank order and applies
    the global fixer scale.
    """
    from ..homme.euler import limit_qdp

    geom = _task_geom(meta)
    limited = limit_qdp(st2, geom, global_fixer=False)
    w = geom.spheremp[:, None]
    before = np.sum(st2 * w, axis=(0, 2, 3))
    after = np.sum(limited * w, axis=(0, 2, 3))
    return limited, before, after


# ---------------------------------------------------------------------------
# Element-chunked batched kernels
# ---------------------------------------------------------------------------


def chunk_sw_rhs_task(meta, h, v):
    geom = _task_geom(meta, "chunk")
    return _path_kernels(meta).sw_rhs(h, v, geom)


def chunk_prim_rhs_task(meta, v, T, dp3d):
    from ..homme.element import ElementState

    geom = _task_geom(meta, "chunk")
    E, L, n = T.shape[0], T.shape[1], T.shape[2]
    state = ElementState(v=v, T=T, dp3d=dp3d, qdp=np.zeros((E, 1, L, n, n)))
    return _path_kernels(meta).compute_rhs(state, geom)


def chunk_laplace_wk_task(meta, f):
    geom = _task_geom(meta, "chunk")
    return (_path_kernels(meta).laplace_wk(f, geom),)


def chunk_vlaplace_task(meta, v):
    geom = _task_geom(meta, "chunk")
    return (_path_kernels(meta).vlaplace(v, geom),)


class ParallelHommeKernels:
    """Element-chunked execution of the batched HOMME kernels.

    Splits the element stack of ``geom`` into ``workers`` contiguous
    chunks, registers per-chunk geometries, and starts (or adopts) a
    :class:`~repro.parallel.engine.ParallelEngine`.  Each kernel call
    fans the chunks out across the pool and concatenates the results in
    chunk order — bitwise identical to the single-call batched kernel
    because every operator is element-local.

    Use as a context manager or call :meth:`close` to stop the pool.
    """

    def __init__(
        self,
        geom,
        workers: int = 0,
        validate: bool = False,
        tracer=None,
        engine: ParallelEngine | None = None,
        engine_kwargs: dict | None = None,
        exec_path: str = "batched",
    ) -> None:
        from ..backends.functional_exec import homme_execution
        from ..homme.element import ElementGeometry

        homme_execution(exec_path)  # fail fast on unknown paths
        self.exec_path = exec_path
        self.geom = geom
        nchunks = max(1, int(workers)) if engine is None else max(1, engine.workers)
        nchunks = min(nchunks, geom.nelem)
        bounds = np.linspace(0, geom.nelem, nchunks + 1).astype(int)
        self.chunks = [
            (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        chunk_geoms = [
            ElementGeometry(geom.mesh, geom.elem_ids[lo:hi]) for lo, hi in self.chunks
        ]
        # Warm the tensor caches now so forked workers inherit them.
        for g in chunk_geoms:
            g.tensors  # noqa: B018 - memoizing property access
            if exec_path == "fused":
                g.tensors.fused()
        # One context entry per chunk (sharded ownership): with shard
        # affinity each worker only ever resolves its own chunk's
        # geometry, so its copy-on-write footprint is one chunk, not
        # the whole element stack.
        base = fresh_context_key("homme-chunks")
        self._ctx_key = base
        self._shard_keys = [
            register_context(shard_context_key(base, c), g)
            for c, g in enumerate(chunk_geoms)
        ]
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else ParallelEngine(
            workers=workers, validate=validate, tracer=tracer,
            label="homme-kernels", **(engine_kwargs or {}),
        )

    # -- kernel surface (matches HommeExecution's callables) ----------------

    def _fanout(self, task, arrays_of: list[np.ndarray]) -> list[tuple]:
        payloads = [
            ({"ctx": self._shard_keys[c], "chunk": c, "shard": c,
              "path": self.exec_path},
             tuple(a[lo:hi] for a in arrays_of))
            for c, (lo, hi) in enumerate(self.chunks)
        ]
        return self.engine.run(task, payloads)

    def sw_rhs(self, h, v, geom=None):
        outs = self._fanout(chunk_sw_rhs_task, [h, v])
        return (
            np.concatenate([o[0] for o in outs]),
            np.concatenate([o[1] for o in outs]),
        )

    def compute_rhs(self, state, geom=None, phis=None):
        if phis is not None:
            raise KernelError("parallel compute_rhs does not take phis yet")
        outs = self._fanout(chunk_prim_rhs_task, [state.v, state.T, state.dp3d])
        return tuple(np.concatenate([o[k] for o in outs]) for k in range(3))

    def laplace_wk(self, f, geom=None):
        outs = self._fanout(chunk_laplace_wk_task, [f])
        return np.concatenate([o[0] for o in outs])

    def vlaplace(self, v, geom=None):
        outs = self._fanout(chunk_vlaplace_task, [v])
        return np.concatenate([o[0] for o in outs])

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()
        for key in self._shard_keys:
            unregister_context(key)

    def __enter__(self) -> "ParallelHommeKernels":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def parallel_homme_execution(geom, workers: int = 0, validate: bool = False,
                             exec_path: str = "batched"):
    """A :class:`~repro.backends.functional_exec.HommeExecution`-shaped
    bundle running the selected kernels across real cores.

    Returns ``(execution, kernels)``; close ``kernels`` when done.
    ``exec_path`` selects the element-local kernels each chunk runs
    (``"batched"`` default, or ``"fused"``/``"looped"``).  The tracer
    path follows ``exec_path`` — per-chunk tracer parallelism belongs
    to the distributed models' per-rank engine.
    """
    from ..backends.functional_exec import HommeExecution

    kernels = ParallelHommeKernels(geom, workers=workers, validate=validate,
                                   exec_path=exec_path)
    ex = HommeExecution(
        name=f"parallel[{kernels.engine.workers if kernels.engine.active else 1}]",
        compute_rhs=lambda state, g, phis=None: kernels.compute_rhs(state, g, phis),
        sw_rhs=lambda h, v, g: kernels.sw_rhs(h, v, g),
        laplace_wk=lambda f, g: kernels.laplace_wk(f, g),
        vlaplace=lambda v, g: kernels.vlaplace(v, g),
        euler_path=exec_path,
    )
    return ex, kernels


def cross_validate_parallel(state, geom, workers: int = 2, rtol: float = 1e-12):
    """Run every chunked kernel against its serial batched twin.

    The ``repro.parallel`` mirror of
    :func:`repro.backends.functional_exec.cross_validate_paths`: same
    report shape (max relative disagreement per kernel), same ``rtol``
    gate — but the expectation here is stronger, and the returned
    errors are asserted to be **exactly zero** before the 1e-12 gate is
    even consulted, because chunking must not change a single bit.
    """
    from ..homme import operators as _op
    from ..homme import rhs as _rhs
    from ..homme.shallow_water import williamson2_initial, sw_compute_rhs

    def rel(a, c):
        scale = max(float(np.max(np.abs(c))), 1e-300)
        return float(np.max(np.abs(a - c))) / scale

    errs: dict[str, float] = {}
    bitwise = True
    with ParallelHommeKernels(geom, workers=workers) as par:
        dv_p, dT_p, ddp_p = par.compute_rhs(state, geom)
        dv_s, dT_s, ddp_s = _rhs.compute_rhs(state, geom)
        for name, a, c in (
            ("compute_rhs.dv", dv_p, dv_s),
            ("compute_rhs.dT", dT_p, dT_s),
            ("compute_rhs.ddp", ddp_p, ddp_s),
            ("laplace_wk.T", par.laplace_wk(state.T), _op.laplace_sphere_wk(state.T, geom)),
            ("vlaplace.v", par.vlaplace(state.v), _op.vlaplace_sphere(state.v, geom)),
        ):
            errs[name] = rel(a, c)
            bitwise = bitwise and bool(np.array_equal(a, c))
        sw = williamson2_initial(geom.mesh)
        h, v = sw.h[geom.elem_ids], sw.v[geom.elem_ids]
        dh_p, dvv_p = par.sw_rhs(h, v)
        dh_s, dvv_s = sw_compute_rhs(h, v, geom)
        errs["sw_rhs.dh"] = rel(dh_p, dh_s)
        errs["sw_rhs.dv"] = rel(dvv_p, dvv_s)
        bitwise = bitwise and np.array_equal(dh_p, dh_s) and np.array_equal(dvv_p, dvv_s)
    worst = max(errs.values())
    if not bitwise or worst > rtol:
        raise KernelError(
            f"parallel/serial cross-validation failed: bitwise={bitwise}, "
            f"max rel err {worst:.3e} > {rtol:.1e} ({errs})"
        )
    return errs
