"""Worker supervision: heartbeats, liveness, respawn, and chaos hooks.

The engine's original fault story was all-or-nothing: any worker fault
killed the whole pool and degraded every outstanding batch to serial,
throwing away the multi-core speedup for the rest of the run.  The
full-machine runs the paper (and the 40-million-core follow-on, Duan
et al.) describe survive *because* a failed node is handled locally:
detect, replace, re-issue the lost work, keep going.

This module is the driver-side half of that story plus everything that
runs *inside* a worker process:

- **Heartbeats.**  Every worker runs a daemon thread that stamps
  ``time.monotonic()`` into its slot of a driver-owned shared-memory
  heartbeat block every :data:`HEARTBEAT_INTERVAL` seconds.  On Linux
  ``CLOCK_MONOTONIC`` is system-wide, so the driver can compare worker
  stamps against its own clock directly.
- **Liveness.**  :meth:`WorkerSupervisor.failures` classifies each
  worker as *crashed* (``Process.exitcode`` is set — the OS reaped it)
  or *hung* (alive but its heartbeat is older than the deadline — a
  stuck or stalled process).  The engine decides what to do about it.
- **Respawn.**  :meth:`WorkerSupervisor.respawn` replaces a failed
  worker in the same slot with a fresh fork (generation + 1).  The
  fork-inherited context registry (:func:`repro.parallel.engine
  .register_context`) still holds every geometry the driver registered,
  so the replacement worker re-inherits the exact same read-only
  context the original had — no re-registration protocol needed.
- **Chaos hooks.**  :class:`ChaosSpec` is the deterministic fault
  schedule the chaos harness (:mod:`repro.parallel.chaos`) injects:
  self-SIGKILL, heartbeat stall, result delay, and result bit-flips,
  all keyed by the engine's global task id.  Hooks only fire on a
  task's *first* dispatch (``attempt == 0``) — mirroring the
  fire-exactly-once rule of
  :meth:`repro.resilience.faults.FaultInjector.state_flips_at` — so a
  redistributed task re-executes clean and recovery converges.

Result integrity rides along: :func:`result_crc` is the CRC32 the
worker stamps on every result tuple and the driver re-computes before
accepting it, which is what turns a bit flipped in transit into a
detected-and-re-executed task instead of a silently corrupted combine.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "HEARTBEAT_INTERVAL",
    "HEARTBEAT_TIMEOUT",
    "SUPERVISION_TICK",
    "ChaosSpec",
    "WorkerHandle",
    "WorkerSupervisor",
    "result_crc",
]

#: Seconds between heartbeat stamps inside each worker.
HEARTBEAT_INTERVAL = 0.1

#: Default driver-side deadline: a worker whose newest heartbeat is
#: older than this is declared hung.  Generous — the heartbeat thread
#: keeps beating through long kernels (numpy releases the GIL, and the
#: interpreter context-switches pure-Python code every few ms), so only
#: a genuinely wedged process goes quiet this long.
HEARTBEAT_TIMEOUT = 10.0

#: Seconds between supervision checks while the driver waits on
#: results.  Bounds fault-detection latency; costs nothing while
#: results are flowing (the poll returns as soon as data is ready).
SUPERVISION_TICK = 0.2


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic worker-fault schedule, keyed by global task id.

    Task ids are assigned by the driver in dispatch order (the ping
    batch takes ids ``0..workers-1``), so a spec names exact points in
    the run the way :class:`~repro.resilience.faults.BitFlip` names the
    Nth DMA transfer.  Every hook fires only on a task's first dispatch
    (``attempt == 0``): once the engine redistributes or re-executes a
    task, the replay is clean.

    ``kill_tasks`` self-deliver ``SIGKILL`` before computing (the crash
    lands mid-batch, never mid-queue-write, so the shared result pipe
    stays intact — the same reason real chaos tools kill between
    I/O operations).  ``stall_tasks`` stop the worker's heartbeat
    thread and sleep, modeling a wedged process the driver can only
    detect by silence.  ``delay_tasks`` sleep *after* computing but
    before replying — a healthy worker whose result misses the batch
    deadline.  ``corrupt_tasks`` flip one bit of the first float64
    result array *after* the integrity CRC is computed, modeling
    corruption in transit.
    """

    kill_tasks: tuple[int, ...] = ()
    stall_tasks: tuple[int, ...] = ()
    stall_seconds: float = 30.0
    delay_tasks: tuple[tuple[int, float], ...] = ()
    corrupt_tasks: tuple[int, ...] = ()
    corrupt_word: int = 0
    corrupt_bit: int = 63

    @staticmethod
    def seeded(
        seed: int,
        first_task: int,
        last_task: int,
        kills: int = 0,
        stalls: int = 0,
        delays: int = 0,
        corruptions: int = 0,
        stall_seconds: float = 30.0,
        delay_seconds: float = 3.0,
    ) -> "ChaosSpec":
        """Draw a reproducible schedule over ``[first_task, last_task)``.

        Two calls with the same arguments build the identical spec (the
        same seeded-RNG contract as :class:`FaultInjector`); distinct
        task ids are drawn for every fault so no task is double-booked.
        """
        need = kills + stalls + delays + corruptions
        span = last_task - first_task
        if need > span:
            raise ValueError(
                f"cannot schedule {need} faults over {span} task ids"
            )
        rng = np.random.default_rng(seed)
        picks = first_task + rng.permutation(span)[:need]
        k, s, d = kills, kills + stalls, kills + stalls + delays
        return ChaosSpec(
            kill_tasks=tuple(int(t) for t in picks[:k]),
            stall_tasks=tuple(int(t) for t in picks[k:s]),
            stall_seconds=stall_seconds,
            delay_tasks=tuple((int(t), delay_seconds) for t in picks[s:d]),
            corrupt_tasks=tuple(int(t) for t in picks[d:need]),
        )


def result_crc(arrays: tuple) -> int:
    """CRC32 over every result array's bytes, in tuple order."""
    crc = 0
    for a in arrays:
        crc = zlib.crc32(np.ascontiguousarray(a).data, crc)
    return crc & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _unpack(shm: shared_memory.SharedMemory, metas: tuple) -> tuple[np.ndarray, ...]:
    """Zero-copy views into a peer's block (copy before the next reuse!)."""
    return tuple(
        np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf, offset=off)
        for off, shape, dt in metas
    )


def _heartbeat_loop(hb_view: np.ndarray, slot: int, stop: threading.Event) -> None:
    while not stop.is_set():
        hb_view[slot] = time.monotonic()
        stop.wait(HEARTBEAT_INTERVAL)


def _chaos_pre(spec: ChaosSpec | None, tid: int, attempt: int,
               hb_stop: threading.Event) -> None:
    """Faults that fire before the task function runs (kill, stall)."""
    if spec is None or attempt > 0:
        return
    if tid in spec.kill_tasks:
        os.kill(os.getpid(), signal.SIGKILL)
    if tid in spec.stall_tasks:
        hb_stop.set()  # go silent: the driver can only see missed beats
        time.sleep(spec.stall_seconds)


def _chaos_post(spec: ChaosSpec | None, tid: int, attempt: int,
                outs: tuple) -> None:
    """Faults that fire after compute (delay, corrupt-after-CRC)."""
    if spec is None or attempt > 0:
        return
    for t, seconds in spec.delay_tasks:
        if t == tid:
            time.sleep(seconds)
    if tid in spec.corrupt_tasks:
        from ..resilience.faults import flip_bit

        for o in outs:
            if o.dtype == np.float64 and o.size:
                flip_bit(o, spec.corrupt_word, spec.corrupt_bit)
                break


def _worker_main(slot: int, generation: int, task_q, result_q,
                 hb_desc: tuple[str, int], chaos: ChaosSpec | None,
                 telemetry=None) -> None:
    """Pool worker loop: attach inputs, compute, send results back.

    Inputs arrive through the driver-owned shared-memory blocks;
    results (whose shapes only the task function knows) return through
    the result queue with a CRC32 stamp over their bytes.  The driver
    double-buffers its input blocks per *bank*: a bank's blocks are not
    repacked until every task of the batch that used them has been
    collected, so reading from the attached views is race-free even
    with two batches in flight — and a *redistributed* task can re-read
    the very same block from a different worker.

    A daemon heartbeat thread stamps ``time.monotonic()`` into this
    worker's slot of the shared heartbeat block; the driver declares
    the worker hung when the stamp goes stale.

    With a live :class:`~repro.obs.telemetry.TelemetrySpec`, every
    result carries a telemetry packet (in-worker ``unpack``/``compute``
    sub-spans, metric deltas, profiler frames, the worker's own
    heartbeat age) as a ninth tuple field; without one the field is
    ``None`` and nothing extra is measured — the NULL_TRACER-style
    zero-cost default.
    """
    attached: dict[str, shared_memory.SharedMemory] = {}
    hb_name, nslots = hb_desc
    hb = shared_memory.SharedMemory(name=hb_name)
    hb_view = np.ndarray((nslots,), dtype=np.float64, buffer=hb.buf)
    hb_stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop, args=(hb_view, slot, hb_stop),
        daemon=True, name=f"heartbeat-{slot}",
    ).start()
    tel = None
    if telemetry is not None and getattr(telemetry, "live", False):
        from ..obs.telemetry import WorkerTelemetry

        tel = WorkerTelemetry(telemetry, slot, generation, hb_view)
    # Lazy import: engine imports this module at load time, so the
    # reverse import must wait until the worker body actually runs.
    from .engine import touched_context_bytes

    ctx_reported = 0.0
    try:
        while True:
            item = task_q.get()
            if item is None:
                break
            tid, attempt, fn, meta, in_desc = item
            t0 = time.perf_counter()
            try:
                _chaos_pre(chaos, tid, attempt, hb_stop)
                ins: tuple = ()
                if in_desc is not None:
                    name, metas = in_desc
                    shm = attached.get(name)
                    if shm is None:
                        # Forked workers share the driver's resource
                        # tracker, whose cache is a set — this attach-
                        # side registration is a no-op and the driver's
                        # unlink-on-close retires the name exactly once.
                        shm = shared_memory.SharedMemory(name=name)
                        attached[name] = shm
                    ins = _unpack(shm, metas)
                tc0 = time.perf_counter()
                outs = fn(meta, *ins)
                tc1 = time.perf_counter()
                if not isinstance(outs, (tuple, list)):
                    outs = (outs,)
                outs = tuple(np.ascontiguousarray(o) for o in outs)
                crc = result_crc(outs)
                _chaos_post(chaos, tid, attempt, outs)
                packet = None
                if tel is not None:
                    # context.bytes ships as a delta (packets are folded
                    # additively driver-side): first touch of a shard's
                    # context raises it once, steady state adds zero.
                    ctx_now = float(touched_context_bytes())
                    packet = tel.packet(
                        spans=(("unpack", t0, tc0), ("compute", tc0, tc1)),
                        metrics={"unpack.seconds": tc0 - t0,
                                 "compute.seconds": tc1 - tc0,
                                 "context.bytes": ctx_now - ctx_reported,
                                 "tasks": 1.0},
                    )
                    ctx_reported = ctx_now
                result_q.put(
                    (tid, slot, "ok", outs, crc, t0, time.perf_counter(),
                     getattr(fn, "__name__", str(fn)), packet)
                )
            except BaseException:
                result_q.put(
                    (tid, slot, "err", traceback.format_exc(), None, t0,
                     time.perf_counter(), getattr(fn, "__name__", str(fn)),
                     tel.packet(metrics={"errors": 1.0})
                     if tel is not None else None)
                )
    finally:
        hb_stop.set()
        if tel is not None:
            tel.close()
        for shm in attached.values():
            try:
                shm.close()
            except OSError:
                pass
        try:
            hb.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------


@dataclass
class WorkerHandle:
    """One worker slot: the live process and its private task queue.

    Each worker owns a dedicated task queue (instead of the original
    shared queue) so the driver always knows which in-flight tasks die
    with a worker — the redistribution set — and so a worker killed
    mid-``get`` can only poison its *own* queue, which is discarded at
    respawn along with the process.
    """

    slot: int
    generation: int
    proc: object
    task_q: object


class WorkerSupervisor:
    """Owns the worker processes of one engine: spawn, watch, respawn.

    The supervisor holds the heartbeat shared-memory block (one float64
    stamp per slot) and the per-slot :class:`WorkerHandle` list.  It
    makes *observations* (:meth:`failures`) and carries out *actions*
    (:meth:`respawn`, :meth:`shutdown`); the recovery policy — what to
    redistribute, when to give up and degrade — stays in the engine.
    """

    def __init__(self, ctx, nslots: int, result_q, label: str,
                 chaos: ChaosSpec | None = None, telemetry=None) -> None:
        self.ctx = ctx
        self.nslots = nslots
        self.result_q = result_q
        self.label = label
        self.chaos = chaos
        #: Optional :class:`~repro.obs.telemetry.TelemetrySpec`, handed
        #: to every (re)spawned worker — picklable, so it crosses the
        #: fork as a plain process argument.
        self.telemetry = telemetry
        self.hb = shared_memory.SharedMemory(create=True, size=8 * max(1, nslots))
        self.hb_view = np.ndarray((nslots,), dtype=np.float64, buffer=self.hb.buf)
        self.handles: list[WorkerHandle | None] = [None] * nslots
        self.respawns = 0
        self._closed = False

    @property
    def shm_name(self) -> str:
        return self.hb.name

    # -- lifecycle ----------------------------------------------------------

    def spawn(self, slot: int) -> WorkerHandle:
        """Start a fresh worker in ``slot`` (generation bumps on reuse)."""
        old = self.handles[slot]
        generation = old.generation + 1 if old is not None else 0
        task_q = self.ctx.SimpleQueue()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(slot, generation, task_q, self.result_q,
                  (self.hb.name, self.nslots), self.chaos, self.telemetry),
            daemon=True,
            name=f"{self.label}-worker-{slot}.g{generation}",
        )
        # Stamp the slot *before* the fork so a fresh worker is never
        # declared hung in the window before its first own heartbeat.
        self.hb_view[slot] = time.monotonic()
        proc.start()
        handle = WorkerHandle(slot, generation, proc, task_q)
        self.handles[slot] = handle
        return handle

    def respawn(self, slot: int) -> WorkerHandle:
        """Replace the worker in ``slot``: reap the old, fork a new.

        The old worker's private task queue dies with it — the engine
        redistributes its in-flight tasks explicitly.  The replacement
        forks from the *current* driver, so it inherits the context
        registry exactly as registered (copy-on-write), same as the
        original pool start.
        """
        old = self.handles[slot]
        if old is not None:
            self._reap(old)
        handle = self.spawn(slot)
        self.respawns += 1
        return handle

    def _reap(self, handle: WorkerHandle) -> None:
        proc = handle.proc
        try:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        try:
            handle.task_q.close()
        except (OSError, AttributeError):
            pass
        try:
            proc.close()
        except (OSError, ValueError, AttributeError):
            pass

    def shutdown(self) -> None:
        """Stop every worker and release the heartbeat block."""
        if self._closed:
            return
        self._closed = True
        for handle in self.handles:
            if handle is None:
                continue
            try:
                handle.task_q.put(None)
            except (OSError, ValueError):
                pass
        for handle in self.handles:
            if handle is None:
                continue
            try:
                handle.proc.join(timeout=5.0)
            except (OSError, ValueError):
                pass
            self._reap(handle)
        self.handles = [None] * self.nslots
        self.hb_view = None
        try:
            self.hb.close()
            self.hb.unlink()
        except (FileNotFoundError, OSError):
            pass

    # -- observation --------------------------------------------------------

    def heartbeat_age(self, slot: int) -> float:
        """Seconds since ``slot``'s worker last stamped its heartbeat."""
        return time.monotonic() - float(self.hb_view[slot])

    def live_slots(self) -> list[int]:
        """Slots whose worker process is currently running."""
        return [
            h.slot for h in self.handles
            if h is not None and h.proc.exitcode is None
        ]

    def failures(self, heartbeat_timeout: float) -> list[tuple[int, str, str]]:
        """Classify every unhealthy worker as ``(slot, kind, detail)``.

        ``kind`` is ``"crash"`` (the OS reaped the process) or
        ``"hang"`` (alive but heartbeat older than the deadline).
        """
        out: list[tuple[int, str, str]] = []
        for h in self.handles:
            if h is None:
                continue
            code = h.proc.exitcode
            if code is not None:
                out.append((
                    h.slot, "crash",
                    f"worker {h.slot} (gen {h.generation}) exited with "
                    f"code {code}",
                ))
                continue
            age = self.heartbeat_age(h.slot)
            if age > heartbeat_timeout:
                out.append((
                    h.slot, "hang",
                    f"worker {h.slot} (gen {h.generation}) missed heartbeats "
                    f"for {age:.1f}s (deadline {heartbeat_timeout:.1f}s)",
                ))
        return out
