"""Analytic warm-core tropical-cyclone vortex (Reed--Jablonowski style).

A gradient-wind-balanced axisymmetric vortex planted on the sphere:

- surface pressure depression  dp(r) = dp0 * exp(-(r/rp)^1.5);
- tangential wind from a modified Rankine profile
  v(r) = vmax * (r/rm) * exp((1 - (r/rm)^b)/b), decaying with height;
- a warm-core temperature anomaly consistent with the hydrostatic
  weakening of the depression aloft;
- near-saturated moisture in the core (fuel for the RJ physics).

Used by the Katrina experiment to initialize the storm at the observed
genesis position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as C
from ..homme.element import ElementGeometry, ElementState
from ..physics.kessler import saturation_mixing_ratio


@dataclass(frozen=True)
class VortexParameters:
    """Tunable vortex structure (defaults ~ RJ2012 / Katrina genesis)."""

    center_lat_deg: float = 23.1
    center_lon_deg: float = -75.1
    dp0: float = 2500.0          # legacy central deficit [Pa] (unused when balanced)
    rp: float = 150.0e3          # pressure/moisture-profile radius [m]
    vmax: float = 15.0           # initial max tangential wind [m/s]
    rm: float = 60.0e3           # radius of maximum wind [m]
    b: float = 0.7               # Rankine shape exponent
    warm_core_k: float = 2.5     # core temperature anomaly [K]
    depth_sigma: float = 0.45    # vertical decay scale (in sigma)
    core_rh: float = 0.95        # relative humidity inside the core


def great_circle(lat1, lon1, lat2, lon2, radius):
    """Distance [m] and initial bearing [rad] from point 1 to point 2."""
    dlon = lon2 - lon1
    s = np.arccos(
        np.clip(
            np.sin(lat1) * np.sin(lat2)
            + np.cos(lat1) * np.cos(lat2) * np.cos(dlon),
            -1.0,
            1.0,
        )
    )
    # Bearing from the vortex center toward each point.
    y = np.sin(dlon) * np.cos(lat2)
    x = np.cos(lat1) * np.sin(lat2) - np.sin(lat1) * np.cos(lat2) * np.cos(dlon)
    return s * radius, np.arctan2(y, x)


def tangential_wind(r: np.ndarray, p: VortexParameters) -> np.ndarray:
    """Modified-Rankine tangential wind profile v(r) [m/s]."""
    x = np.maximum(r, 1.0) / p.rm
    return p.vmax * x * np.exp((1.0 - x**p.b) / p.b)


def plant_vortex(
    state: ElementState,
    geom: ElementGeometry,
    params: VortexParameters | None = None,
    qv_index: int = 0,
) -> ElementState:
    """Superpose the vortex on ``state`` (modifies a copy; returns it).

    The surface-pressure deficit enters through dp3d (every sigma layer
    thins proportionally), the wind field through the contravariant
    velocity, the warm core through T, and the moist core through the
    ``qv_index`` tracer.
    """
    p = params or VortexParameters()
    out = state.copy()
    lat0 = np.deg2rad(p.center_lat_deg)
    lon0 = np.mod(np.deg2rad(p.center_lon_deg), 2 * np.pi)

    r, bearing = great_circle(lat0, lon0, geom.lat, geom.lon, geom.radius)

    # Surface pressure depression in gradient-wind balance with the
    # tangential wind profile:  dp/dr = rho (v^2/r + f v), integrated
    # inward from the far field.  An unbalanced (wind, pressure) pair
    # collapses in the first few steps of the primitive equations; the
    # balanced pair survives the adjustment (RJ2012's construction).
    omega = getattr(geom.mesh, "omega", C.EARTH_OMEGA)
    f0 = 2.0 * omega * np.sin(lat0)
    rho0 = C.P0 / (C.R_DRY * 290.0)
    r_max = max(10.0 * p.rm, 6.0 * p.rp)
    r_grid = np.linspace(1.0, r_max, 4000)
    v_grid = tangential_wind(r_grid, p)
    integrand = rho0 * (v_grid**2 / r_grid + abs(f0) * v_grid)
    # Cumulative integral from r to infinity (trapezoid, reversed).
    dr = r_grid[1] - r_grid[0]
    tail = np.concatenate(
        [np.cumsum((integrand[::-1][:-1] + integrand[::-1][1:]) * 0.5 * dr)[::-1], [0.0]]
    )
    dps = -np.interp(np.clip(r, 1.0, r_max), r_grid, tail)  # (E, n, n)

    # Sigma profile for vertical decay of wind and warm core.
    nlev = out.nlev
    sigma = (np.arange(nlev) + 0.5) / nlev               # 0 top .. 1 surface
    vert = np.exp(-((1.0 - sigma) / p.depth_sigma) ** 2)  # max at surface

    # Distribute the mass deficit with the same vertical decay as the
    # wind, so the pressure gradient vanishes aloft where the wind does
    # (a barotropic deficit under a sheared vortex is unbalanced and
    # collapses in the first few steps).
    w_lev = vert / vert.sum()
    out.dp3d += dps[:, None] * w_lev[None, :, None, None]

    # Tangential wind: cyclonic (counterclockwise in the NH) around the
    # center.  The azimuthal direction at each point is perpendicular to
    # the bearing *from the center*: east/north components.
    # With bearing theta measured from north (clockwise toward east),
    # the cyclonic (NH counterclockwise) azimuthal unit vector at a
    # point is (-cos(theta), sin(theta)) in (east, north) components.
    vt = tangential_wind(r, p)
    u = -vt * np.cos(bearing)
    v = vt * np.sin(bearing)
    # Convert on the full mesh (the conversion matrices live there).
    full = geom.mesh
    uu = np.zeros((full.nelem,) + full.lat.shape[1:])
    vv = np.zeros_like(uu)
    uu[geom.elem_ids] = u
    vv[geom.elem_ids] = v
    vc = full.spherical_to_contravariant(uu, vv)[geom.elem_ids]
    out.v += vc[:, None] * vert[None, :, None, None, None]

    # Warm core, peaked in the mid troposphere.
    core_vert = np.exp(-(((sigma - 0.35) / 0.3) ** 2))
    dT = p.warm_core_k * np.exp(-((r / p.rp) ** 2))
    out.T += dT[:, None] * core_vert[None, :, None, None]

    # Moist core: relative humidity core_rh inside 2 rp, decaying out.
    from ..homme.rhs import compute_pressure

    p_mid, _ = compute_pressure(out.dp3d)
    qvs = saturation_mixing_ratio(out.T, p_mid)
    rh_bg = 0.5
    rh = rh_bg + (p.core_rh - rh_bg) * np.exp(-((r / (2 * p.rp)) ** 2))
    out.qdp[:, qv_index] = rh[:, None] * qvs * out.dp3d
    return out
