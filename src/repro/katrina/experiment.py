"""The Katrina twin experiment: coarse vs fine resolution (Figure 9).

The paper's finding is resolution sensitivity: the ne30 (100 km) run
"failed to simulate hurricane Katrina" while ne120 (25 km) captured
structure, track, and intensity.  We reproduce it on a reduced-radius
("small Earth") sphere — the DCMIP device that scales grid spacing and
timestep together by a factor X so a laptop mesh reaches TC-resolving
effective resolution with identical dynamics:

- the **coarse** member's effective spacing stays above the ~50 km
  threshold the TC literature gives for resolving intensification
  (Figure 9a: no storm);
- the **fine** member drops well below it (Figure 9b-d: storm).

Both members start from the same analytic Katrina-genesis vortex in a
tropical environment with an easterly-then-poleward steering flow, run
the full dycore + RJ simple physics, and are tracked; the experiment
reports intensification, track, and the coarse/fine contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as C
from ..config import ModelConfig
from ..homme.element import ElementGeometry, ElementState
from ..homme.timestep import PrimitiveEquationModel
from ..mesh.cubed_sphere import CubedSphereMesh
from ..physics.simple_physics import SimplePhysics
from .besttrack import KATRINA_BEST_TRACK
from .track import VortexTracker
from .vortex import VortexParameters, plant_vortex


@dataclass
class MemberResult:
    """Outcome of one resolution member."""

    label: str
    effective_resolution_km: float
    tracker: VortexTracker
    initial_msw: float
    peak_msw: float
    late_msw: float
    final_min_ps: float

    @property
    def intensified(self) -> bool:
        """Did the storm strengthen beyond its initial intensity?"""
        return self.peak_msw > self.initial_msw * 1.15

    @property
    def retention(self) -> float:
        """Late-window wind relative to the initial wind (1 = kept)."""
        return self.late_msw / max(self.initial_msw, 1e-9)

    @property
    def retained(self) -> bool:
        """Did the member keep a coherent storm (late wind near initial)?

        The paper's Figure 9a/9b contrast: the coarse grid cannot
        propagate the cyclone it was handed — the vortex decays — while
        the fine grid maintains the warm-core storm.
        """
        return self.retention >= 0.7


class KatrinaExperiment:
    """Coarse-vs-fine twin runs of the Katrina vortex.

    Parameters
    ----------
    coarse_ne / fine_ne:
        Mesh resolutions of the two members.
    small_earth_factor:
        Radius reduction X; effective resolution = nominal / X.
    nlev:
        Vertical levels (kept modest for laptop runtimes).
    hours:
        Simulated hours per member.
    """

    def __init__(
        self,
        coarse_ne: int = 4,
        fine_ne: int = 12,
        small_earth_factor: float = 10.0,
        nlev: int = 10,
        hours: float = 24.0,
        seed_params: VortexParameters | None = None,
        steering_u: float = -4.0,
    ) -> None:
        self.coarse_ne = coarse_ne
        self.fine_ne = fine_ne
        self.x = small_earth_factor
        self.nlev = nlev
        self.hours = hours
        self.params = seed_params or VortexParameters()
        #: Environmental steering flow [m/s]: the easterly trades that
        #: carried Katrina west across the Gulf (Figure 9c); poleward
        #: motion comes from the vortex's own beta drift.
        self.steering_u = steering_u

    def _build_member(self, ne: int) -> tuple[PrimitiveEquationModel, VortexTracker]:
        cfg = ModelConfig(ne=ne, nlev=self.nlev, qsize=1)
        mesh = CubedSphereMesh(ne, radius=C.EARTH_RADIUS / self.x)
        geom = ElementGeometry(mesh)
        state = ElementState.isothermal_rest(geom, cfg, T0=300.0)
        # Tropical stratification: warm below, cooler aloft.
        sigma = (np.arange(self.nlev) + 0.5) / self.nlev
        state.T[:] = 300.0 - 55.0 * (1.0 - sigma)[None, :, None, None]
        # Environmental steering: a solid-body zonal flow u = U cos(lat)
        # WITH its balancing surface-pressure tilt (the exact steady
        # state of the PE system for isothermal T; near-balanced for the
        # stratified profile).  An unbalanced background flow under the
        # X-scaled Coriolis sheds inertia-gravity waves that swamp the
        # vortex.
        U = self.steering_u
        if U != 0.0:
            taper = np.cos(geom.lat)
            vc_env = mesh.spherical_to_contravariant(
                U * taper, np.zeros_like(taper)
            )
            state.v += vc_env[:, None]
            T_mean = float(state.T.mean())
            omega = mesh.omega
            tilt = np.exp(
                -(mesh.radius * omega * U + 0.5 * U**2)
                * np.sin(geom.lat) ** 2
                / (C.R_DRY * T_mean)
            )
            state.dp3d *= tilt[:, None]
        state = plant_vortex(state, geom, self.params)
        # DARE (diabatic acceleration and rescaling): on the X-times
        # smaller, X-times faster-rotating planet, diabatic processes
        # run X times faster so the moist feedback keeps pace with the
        # accelerated dynamics; momentum drag stays physical.
        physics = SimplePhysics(sst=302.15, thermo_acceleration=self.x)
        # Gravity-wave CFL on the reduced sphere: dt = 0.4 dx / c with
        # c ~ 340 m/s the fastest internal wave.
        dx = 2 * np.pi * mesh.radius / (4 * ne * (C.NP - 1))
        dt = 0.4 * dx / 340.0
        model = PrimitiveEquationModel(
            cfg, mesh=mesh, init=state, forcing=physics, dt=dt
        )
        # Radii follow the storm size (the planet is reduced, the storm
        # parameters are physical): search within ~8 rm, measure MSW
        # within ~4 rm of the fix.
        tracker = VortexTracker(
            geom,
            self.params.center_lat_deg,
            self.params.center_lon_deg,
            search_radius_m=8.0 * self.params.rm,
            storm_radius_m=4.0 * self.params.rm,
        )
        return model, tracker

    def run_member(self, ne: int, label: str) -> MemberResult:
        """Run one member, tracking every simulated hour."""
        model, tracker = self._build_member(ne)
        first = tracker.fix(model.state, 0.0)
        steps_per_hour = max(1, int(round(3600.0 / model.dt)))
        n_hours = int(self.hours)
        for h in range(1, n_hours + 1):
            model.run_steps(steps_per_hour)
            tracker.fix(model.state, float(h))
        msw = tracker.msw_series()
        late = msw[-max(1, len(msw) // 3):]
        return MemberResult(
            label=label,
            effective_resolution_km=C.ne_resolution_km(ne) / self.x,
            tracker=tracker,
            initial_msw=float(first.msw_ms),
            peak_msw=float(msw.max()),
            late_msw=float(late.mean()),
            final_min_ps=float(tracker.min_ps_series().min()),
        )

    def run(self) -> dict[str, MemberResult]:
        """Run both members; returns {'coarse': ..., 'fine': ...}."""
        return {
            "coarse": self.run_member(self.coarse_ne, "coarse (ne30-class)"),
            "fine": self.run_member(self.fine_ne, "fine (ne120-class)"),
        }

    @staticmethod
    def observed_peak_msw() -> float:
        """Katrina's observed peak MSW [m/s] (150 kt)."""
        return max(p.max_wind_ms for p in KATRINA_BEST_TRACK)
