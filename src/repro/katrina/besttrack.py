"""NHC best track of Hurricane Katrina (abridged HURDAT2 values).

Six-hourly positions and intensities from 1800 UTC 23 August (tropical
depression near the Bahamas) to 0600 UTC 31 August 2005 (remnant low
over the Ohio valley) — the observation series behind the paper's
Figure 9 panels (c) track and (d) maximum sustained wind.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BestTrackPoint:
    """One best-track fix."""

    hours: float          # hours since 1800 UTC 23 Aug 2005
    lat: float            # degrees north
    lon: float            # degrees east (negative = west)
    max_wind_kt: float    # maximum sustained wind [knots]
    min_pressure_hpa: float

    @property
    def max_wind_ms(self) -> float:
        """Maximum sustained wind [m/s]."""
        return self.max_wind_kt * 0.514444


#: (hours, lat, lon, max wind kt, central pressure hPa).
_RAW = (
    (0, 23.1, -75.1, 30, 1008),
    (6, 23.4, -75.7, 30, 1007),
    (12, 23.8, -76.2, 30, 1007),
    (18, 24.5, -76.5, 35, 1006),
    (24, 25.4, -76.9, 40, 1003),
    (30, 26.0, -77.7, 45, 1000),
    (36, 26.1, -78.4, 50, 997),
    (42, 26.2, -79.0, 55, 994),
    (48, 26.2, -79.6, 60, 988),
    (54, 25.9, -80.3, 70, 983),
    (60, 25.4, -81.3, 65, 987),
    (66, 25.1, -82.0, 75, 979),
    (72, 24.9, -82.6, 85, 968),
    (78, 24.6, -83.3, 90, 959),
    (84, 24.4, -84.0, 100, 950),
    (90, 24.4, -84.7, 100, 942),
    (96, 24.5, -85.3, 100, 948),
    (102, 24.8, -85.9, 100, 941),
    (108, 25.2, -86.7, 125, 930),
    (114, 25.7, -87.7, 145, 909),
    (120, 26.3, -88.6, 150, 902),
    (126, 27.2, -89.2, 140, 905),
    (132, 28.2, -89.6, 125, 913),
    (138, 29.5, -89.6, 110, 923),
    (144, 31.1, -89.6, 80, 948),
    (150, 32.6, -89.1, 50, 961),
    (156, 34.1, -88.6, 40, 978),
    (162, 35.6, -88.0, 30, 985),
    (168, 37.0, -87.0, 30, 990),
    (174, 38.6, -85.3, 30, 994),
    (180, 40.1, -82.9, 25, 996),
)

#: The full lifecycle series.
KATRINA_BEST_TRACK: tuple[BestTrackPoint, ...] = tuple(
    BestTrackPoint(*row) for row in _RAW
)

#: Genesis fix (the initial condition of the experiment).
GENESIS = KATRINA_BEST_TRACK[0]

#: Peak intensity fix (1800 UTC 28 August, 150 kt / 902 hPa).
PEAK = max(KATRINA_BEST_TRACK, key=lambda p: p.max_wind_kt)


def observed_track() -> tuple[tuple[float, float], ...]:
    """(lat, lon) series for track comparison."""
    return tuple((p.lat, p.lon) for p in KATRINA_BEST_TRACK)


def observed_msw_ms() -> tuple[float, ...]:
    """Maximum-sustained-wind series [m/s]."""
    return tuple(p.max_wind_ms for p in KATRINA_BEST_TRACK)
