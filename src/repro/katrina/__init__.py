"""The Hurricane Katrina experiment (paper Section 9, Figure 9).

The paper performs "the first simulation of the complete lifecycle of
hurricane Katrina" with a global model, showing that 25-km resolution
(ne120) captures the storm's structure, track and intensity while
100-km (ne30) fails.  We reproduce the *resolution-sensitivity*
finding with the pieces we built:

- :mod:`~repro.katrina.besttrack` — the NHC best track of Katrina
  (Aug 23 - Aug 31 2005), embedded as data;
- :mod:`~repro.katrina.vortex` — a Reed--Jablonowski-style analytic
  warm-core vortex in gradient-wind balance, planted at Katrina's
  genesis position;
- :mod:`~repro.katrina.track` — a minimum-surface-pressure vortex
  tracker with maximum-sustained-wind diagnosis;
- :mod:`~repro.katrina.experiment` — the coarse-vs-fine twin runs on a
  reduced-radius ("small Earth") sphere, the standard DCMIP device that
  makes TC-resolving grid spacings laptop-affordable while preserving
  the dynamics; resolution sensitivity (fine run intensifies and
  tracks; coarse run cannot) is the reproduced result.
"""

from .besttrack import KATRINA_BEST_TRACK, BestTrackPoint
from .vortex import plant_vortex, VortexParameters
from .track import VortexTracker, TrackPoint
from .experiment import KatrinaExperiment

__all__ = [
    "KATRINA_BEST_TRACK",
    "BestTrackPoint",
    "plant_vortex",
    "VortexParameters",
    "VortexTracker",
    "TrackPoint",
    "KatrinaExperiment",
]
