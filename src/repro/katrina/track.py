"""Vortex tracker: center fixes and maximum sustained wind.

The standard TC-tracking recipe: the center is the minimum of the
(lightly smoothed) surface pressure within a search radius of the
previous fix; the maximum sustained wind (MSW) is the largest
lowest-level wind speed within the storm radius — the quantities the
paper compares against the NHC observations in Figure 9 (c)/(d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..homme.element import ElementGeometry, ElementState
from ..homme.rhs import PTOP
from ..homme import operators as op
from .vortex import great_circle


@dataclass(frozen=True)
class TrackPoint:
    """One tracker fix."""

    hours: float
    lat: float            # degrees
    lon: float            # degrees east (negative west)
    msw_ms: float         # maximum sustained wind [m/s]
    min_ps_hpa: float     # central surface pressure [hPa]


class VortexTracker:
    """Tracks one storm through a sequence of model states."""

    def __init__(
        self,
        geom: ElementGeometry,
        first_guess_lat: float,
        first_guess_lon: float,
        search_radius_m: float = 1.2e6,
        storm_radius_m: float = 5.0e5,
    ) -> None:
        self.geom = geom
        self.last_lat = np.deg2rad(first_guess_lat)
        self.last_lon = np.mod(np.deg2rad(first_guess_lon), 2 * np.pi)
        self.search_radius = search_radius_m
        self.storm_radius = storm_radius_m
        self.fixes: list[TrackPoint] = []

    def fix(self, state: ElementState, hours: float) -> TrackPoint:
        """Locate the storm in ``state`` and append a track point."""
        geom = self.geom
        ps = state.ps(PTOP)
        r, _ = great_circle(
            self.last_lat, self.last_lon, geom.lat, geom.lon, geom.radius
        )
        search = r <= self.search_radius
        if not np.any(search):
            raise ValueError("search radius contains no grid points")
        masked = np.where(search, ps, np.inf)
        idx = np.unravel_index(np.argmin(masked), ps.shape)
        clat, clon = geom.lat[idx], geom.lon[idx]

        # MSW: lowest-level wind within the storm radius of the new fix.
        speed = np.sqrt(2.0 * op.kinetic_energy(state.v[:, -1], geom))
        r2, _ = great_circle(clat, clon, geom.lat, geom.lon, geom.radius)
        storm = r2 <= self.storm_radius
        msw = float(np.max(np.where(storm, speed, 0.0)))

        self.last_lat, self.last_lon = float(clat), float(clon)
        lon_deg = np.rad2deg(float(clon))
        if lon_deg > 180.0:
            lon_deg -= 360.0
        pt = TrackPoint(
            hours=hours,
            lat=float(np.rad2deg(clat)),
            lon=lon_deg,
            msw_ms=msw,
            min_ps_hpa=float(ps[idx]) / 100.0,
        )
        self.fixes.append(pt)
        return pt

    # -- skill metrics -------------------------------------------------------

    def track_error_km(
        self, observed: list[tuple[float, float]], radius: float
    ) -> float:
        """Mean great-circle error [km] against (lat, lon) observations.

        Compares pairwise over the first min(len) fixes.
        """
        n = min(len(self.fixes), len(observed))
        if n == 0:
            raise ValueError("no fixes to compare")
        errs = []
        for fx, (olat, olon) in zip(self.fixes[:n], observed[:n]):
            d, _ = great_circle(
                np.deg2rad(fx.lat),
                np.deg2rad(fx.lon % 360.0),
                np.array(np.deg2rad(olat)),
                np.array(np.deg2rad(olon % 360.0)),
                radius,
            )
            errs.append(float(d) / 1e3)
        return float(np.mean(errs))

    def msw_series(self) -> np.ndarray:
        return np.array([p.msw_ms for p in self.fixes])

    def min_ps_series(self) -> np.ndarray:
        return np.array([p.min_ps_hpa for p in self.fixes])
