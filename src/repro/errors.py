"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LDMOverflowError(ReproError):
    """Raised when an allocation does not fit in a CPE's 64 KB scratchpad."""

    def __init__(self, requested: int, available: int, label: str = "") -> None:
        self.requested = requested
        self.available = available
        self.label = label
        super().__init__(
            f"LDM overflow{f' for {label}' if label else ''}: "
            f"requested {requested} B, only {available} B free"
        )


class LDMAllocationError(ReproError):
    """Raised on invalid scratchpad free/read (double free, unknown handle)."""


class RegCommError(ReproError):
    """Raised on invalid register-communication usage (off-mesh target,
    non-row/column destination, payload size mismatch)."""


class DMAError(ReproError):
    """Raised on malformed DMA descriptors (negative size, bad stride)."""


class TopologyError(ReproError):
    """Raised for invalid network topology queries (unknown node id)."""


class SimMPIError(ReproError):
    """Raised on simulated-MPI protocol misuse (wait on completed request,
    mismatched message sizes, unknown rank)."""


class SimMPITimeoutError(SimMPIError):
    """Raised when a receive exhausts its retry budget: the matching
    message was dropped and every retransmission was dropped too."""


class ResilienceError(ReproError):
    """Raised when fault recovery fails (rollback budget exhausted,
    no healthy CPEs left in a core group, unrecoverable state)."""


class CheckpointCorruptError(ResilienceError):
    """Raised when a checkpoint fails its CRC32 integrity check on load."""


class MeshError(ReproError):
    """Raised for invalid mesh construction or connectivity queries."""


class PartitionError(ReproError):
    """Raised when a domain decomposition request is infeasible
    (more ranks than elements, empty rank)."""


class ConfigurationError(ReproError):
    """Raised for inconsistent model/run configurations."""


class KernelError(ReproError):
    """Raised when a kernel is invoked with inconsistent state shapes."""


class ParallelError(KernelError):
    """Raised on parallel-engine protocol misuse (registering a context
    while a forked worker pool is live, dispatch to an empty pool)."""


class TranslationError(ReproError):
    """Raised by the source-to-source loop translator on untransformable IR."""


class FootprintError(ReproError):
    """Raised by the memory-footprint analyzer on unresolvable access sets."""


class BaselineError(ReproError):
    """Raised by the FV3/MPAS baseline models on unsupported configurations."""
