"""``python -m repro`` — run the experiment drivers from the command line.

Delegates to :mod:`repro.experiments.runner`; see its docstring for
usage (``python -m repro --all``, ``python -m repro table1 figure7``,
``--quick`` to shorten the simulation-backed experiments).
"""

from .experiments.runner import main

raise SystemExit(main())
