"""Physical and hardware constants for the CAM-SE-on-Sunway reproduction.

Hardware numbers come from the paper (Section 5) and public SW26010
documentation; physical constants follow the values used by CAM/HOMME.
All units are SI unless the name says otherwise.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Physical constants (CAM / HOMME conventions)
# --------------------------------------------------------------------------

#: Earth radius [m] (HOMME ``rearth``).
EARTH_RADIUS = 6.376e6

#: Earth angular velocity [rad/s].
EARTH_OMEGA = 7.292e-5

#: Gravitational acceleration [m/s^2].
GRAVITY = 9.80616

#: Gas constant for dry air [J/(kg K)].
R_DRY = 287.04

#: Specific heat of dry air at constant pressure [J/(kg K)].
CP_DRY = 1004.64

#: R/cp for dry air (kappa).
KAPPA = R_DRY / CP_DRY

#: Reference surface pressure [Pa].
P0 = 100000.0

#: Latent heat of vaporization [J/kg] (Kessler microphysics).
LATENT_HEAT_VAP = 2.5e6

#: Gas constant for water vapour [J/(kg K)].
R_VAPOR = 461.5

#: Seconds per simulated day.
SECONDS_PER_DAY = 86400.0

#: Days per simulated year (CAM uses a 365-day calendar).
DAYS_PER_YEAR = 365.0

# --------------------------------------------------------------------------
# SW26010 processor (paper Section 5.2)
# --------------------------------------------------------------------------

#: Core groups per SW26010 processor.
SW_CORE_GROUPS = 4

#: Computing processing elements per core group (8 x 8 mesh).
SW_CPES_PER_CG = 64

#: CPE mesh dimensions.
SW_CPE_MESH_ROWS = 8
SW_CPE_MESH_COLS = 8

#: Management processing elements per core group.
SW_MPES_PER_CG = 1

#: Total cores per processor: 4 * (64 + 1).
SW_CORES_PER_PROCESSOR = SW_CORE_GROUPS * (SW_CPES_PER_CG + SW_MPES_PER_CG)

#: CPE / MPE clock frequency [Hz].
SW_CLOCK_HZ = 1.45e9

#: Local Data Memory (scratchpad) per CPE [bytes].
SW_LDM_BYTES = 64 * 1024

#: L1 instruction cache per CPE [bytes].
SW_CPE_ICACHE_BYTES = 16 * 1024

#: MPE caches [bytes].
SW_MPE_L1I_BYTES = 32 * 1024
SW_MPE_L1D_BYTES = 32 * 1024
SW_MPE_L2_BYTES = 256 * 1024

#: Vector register width [bits] and double-precision lanes.
SW_VECTOR_BITS = 256
SW_VECTOR_DP_LANES = 4

#: Double-precision flops per cycle per CPE (FMA on 4 lanes = 8 flops).
SW_CPE_FLOPS_PER_CYCLE = 8

#: Peak DP performance of one CPE [flop/s].
SW_CPE_PEAK_FLOPS = SW_CPE_FLOPS_PER_CYCLE * SW_CLOCK_HZ

#: Peak DP performance of one processor (the paper: "over 3 TFlops").
SW_PROCESSOR_PEAK_FLOPS = (
    SW_CORE_GROUPS * SW_CPES_PER_CG * SW_CPE_PEAK_FLOPS
)

#: Main memory per processor [bytes] (32 GB).
SW_MEMORY_BYTES = 32 * 1024**3

#: Memory bandwidth per processor [bytes/s] (132 GB/s, shared by 4 CGs).
SW_MEMORY_BANDWIDTH = 132e9

#: Memory bandwidth available to one core group [bytes/s].
SW_CG_MEMORY_BANDWIDTH = SW_MEMORY_BANDWIDTH / SW_CORE_GROUPS

#: Register-communication latency between CPEs on a row/column [cycles].
#: The paper: "within tens of cycles"; public microbenchmarks measure ~10-11.
SW_REGCOMM_LATENCY_CYCLES = 11

#: Register communication payload per transfer [bytes] (256-bit register).
SW_REGCOMM_BYTES = 32

#: DMA startup latency [cycles] per descriptor (public microbenchmarks ~25 cycles
#: issue + ~230 ns round trip; we model the round-trip as cycles at CPE clock).
SW_DMA_STARTUP_CYCLES = 330

#: DMA achieves near-peak bandwidth only for block sizes >= 256 bytes and
#: row-contiguous access; see sunway/dma.py for the efficiency curve.
SW_DMA_PEAK_EFFICIENCY = 0.9

#: MPE scalar throughput relative to one Intel Haswell core. Table 1 shows
#: MPE-only runs 2-10x slower than one Intel core across kernels; the MPE
#: backend combines this factor with kernel memory behaviour.
SW_MPE_RELATIVE_SCALAR_SPEED = 0.22

# --------------------------------------------------------------------------
# Intel Xeon E5-2680 v3 reference platform (Table 1 / Figure 5 baseline)
# --------------------------------------------------------------------------

#: Haswell core clock [Hz] (2.5 GHz base).
INTEL_CLOCK_HZ = 2.5e9

#: DP flops/cycle/core with AVX2 FMA (2 ports x 4 lanes x 2).
INTEL_FLOPS_PER_CYCLE = 16

#: Peak DP per core [flop/s].
INTEL_CORE_PEAK_FLOPS = INTEL_FLOPS_PER_CYCLE * INTEL_CLOCK_HZ

#: Achievable per-core memory bandwidth [bytes/s] in a loaded socket.
INTEL_CORE_BANDWIDTH = 5.5e9

#: Cores per Xeon E5-2680 v3.
INTEL_CORES_PER_SOCKET = 12

#: Typical achieved fraction of peak for SE kernels on Haswell.
INTEL_KERNEL_EFFICIENCY = 0.12

# --------------------------------------------------------------------------
# Sunway TaihuLight system (paper Sections 5.1)
# --------------------------------------------------------------------------

#: Nodes (= SW26010 processors) in the full machine.
TAIHULIGHT_NODES = 40960

#: Total cores.
TAIHULIGHT_TOTAL_CORES = TAIHULIGHT_NODES * SW_CORES_PER_PROCESSOR

#: Nodes per supernode (fully connected via customized network board).
TAIHULIGHT_NODES_PER_SUPERNODE = 256

#: Peak performance of the machine [flop/s] ("over 125 PFlops").
TAIHULIGHT_PEAK_FLOPS = 125.4e15

#: Linpack performance [flop/s].
TAIHULIGHT_LINPACK_FLOPS = 93e15

#: MPI point-to-point latency within a supernode [s].
NET_LATENCY_INTRA_SUPERNODE = 1.0e-6

#: MPI point-to-point latency across supernodes (through central switch) [s].
NET_LATENCY_INTER_SUPERNODE = 2.2e-6

#: Node injection bandwidth [bytes/s] (~12 GB/s usable of 16 GB/s link).
NET_NODE_BANDWIDTH = 12e9

#: Bandwidth tax when crossing the central switch under load.
NET_INTER_SUPERNODE_BW_FACTOR = 0.7

# --------------------------------------------------------------------------
# CAM-SE / HOMME model configuration constants
# --------------------------------------------------------------------------

#: GLL points per element edge (CAM-SE production configuration).
NP = 4

#: Vertical levels used in the paper's scaling experiments.
NLEV_PAPER = 128

#: Vertical levels in the CAM validation runs (CAM5 suite).
NLEV_CAM = 30

#: Number of advected tracers in the CAM5-like configuration.
QSIZE_CAM = 25

#: Tracer-advection subcycles per dynamics step (RK-SSP in euler_step).
TRACER_SUBCYCLES = 3

#: Dynamics steps per physics step (CAM-SE se_nsplit-like factor).
DYN_STEPS_PER_PHYS = 4

#: Approximate horizontal resolution [km] for an ne value:
#: the cubed sphere has 4*ne elements around the equator, each with np-1=3
#: intervals, so resolution ~ 40075 km / (4 * ne * 3).
def ne_resolution_km(ne: int) -> float:
    """Average equatorial grid spacing in km for a cubed sphere of size ne."""
    return 40075.0 / (4.0 * ne * (NP - 1))
