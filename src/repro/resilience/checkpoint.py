"""Checkpoint/restart for the distributed models.

Multi-day full-machine integrations are only as durable as their
checkpoints: the journey to 40-million-core climate runs (Duan et al.)
reports restart capability as a first-class engineering cost.  The
:class:`Checkpointer` here gives the reproduction the same contract the
real model has:

- **bitwise restart** — ``restore()`` reproduces the continued
  trajectory bit-for-bit (float64 arrays round-trip exactly through
  ``.npz``);
- **integrity** — every checkpoint embeds a CRC32 over all payload
  bytes; a corrupted file raises
  :class:`~repro.errors.CheckpointCorruptError` instead of silently
  resurrecting garbage;
- **atomicity** — files are written to a temporary name and
  ``os.replace``d into place, so a crash mid-write can never leave a
  half-checkpoint that looks valid;
- **rotation** — only the newest ``keep`` checkpoints are retained.

Any model exposing ``snapshot() -> dict[str, ndarray]`` and
``restore_snapshot(dict)`` can be checkpointed; both distributed HOMME
models (:class:`~repro.homme.distributed.DistributedShallowWater`,
:class:`~repro.homme.distributed.DistributedPrimitiveEquations`) do.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..errors import CheckpointCorruptError, ResilienceError


def snapshot_crc(snap: dict[str, np.ndarray]) -> int:
    """CRC32 over every array's bytes, in sorted key order."""
    crc = 0
    for key in sorted(snap):
        crc = zlib.crc32(key.encode(), crc)
        crc = zlib.crc32(np.ascontiguousarray(snap[key]).tobytes(), crc)
    return crc & 0xFFFFFFFF


class Checkpointer:
    """Cadenced, integrity-checked snapshots of a distributed model.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created if missing).
    cadence:
        ``maybe(model)`` writes a checkpoint every ``cadence`` steps.
    keep:
        Retain at most this many checkpoints (oldest deleted first).
    """

    def __init__(self, directory: str | Path, cadence: int = 5, keep: int = 3) -> None:
        if cadence < 1:
            raise ResilienceError(f"cadence must be >= 1, got {cadence}")
        if keep < 1:
            raise ResilienceError(f"keep must be >= 1, got {keep}")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.cadence = cadence
        self.keep = keep
        self.saved = 0
        self.restored = 0

    # -- paths --------------------------------------------------------------

    def _path(self, step: int) -> Path:
        return self.dir / f"ckpt_{step:08d}.npz"

    def checkpoints(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        return sorted(self.dir.glob("ckpt_*.npz"))

    def latest(self) -> Path | None:
        """Newest checkpoint file, or None."""
        cks = self.checkpoints()
        return cks[-1] if cks else None

    # -- writing ------------------------------------------------------------

    def save(self, model) -> Path:
        """Write one checkpoint of ``model`` atomically; returns its path."""
        snap = model.snapshot()
        snap["_crc"] = np.array([snapshot_crc(snap)], dtype=np.uint64)
        path = self._path(int(model.step_count))
        tmp = path.with_suffix(".tmp.npz")
        with open(tmp, "wb") as fh:
            np.savez(fh, **snap)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.saved += 1
        self._rotate()
        return path

    def maybe(self, model) -> Path | None:
        """Checkpoint if the model's step count hits the cadence."""
        if model.step_count % self.cadence == 0:
            return self.save(model)
        return None

    def _rotate(self) -> None:
        for old in self.checkpoints()[: -self.keep]:
            old.unlink()

    # -- reading ------------------------------------------------------------

    def load(self, path: str | Path) -> dict[str, np.ndarray]:
        """Read and integrity-check one checkpoint file."""
        try:
            with np.load(path) as data:
                snap = {k: data[k] for k in data.files}
        except (OSError, ValueError, zipfile.BadZipFile, KeyError, EOFError) as err:
            # Byte-level damage can break the zip container or the npy
            # headers before the CRC is even reachable; that is the same
            # condition the CRC guards against.
            raise CheckpointCorruptError(f"{path}: unreadable ({err})") from err
        stored = snap.pop("_crc", None)
        if stored is None:
            raise CheckpointCorruptError(f"{path}: missing integrity record")
        actual = snapshot_crc(snap)
        if int(stored[0]) != actual:
            raise CheckpointCorruptError(
                f"{path}: CRC mismatch (stored {int(stored[0]):#010x}, "
                f"computed {actual:#010x})"
            )
        return snap

    def restore(self, model, path: str | Path | None = None) -> int:
        """Reset ``model`` from a checkpoint (newest good one by default).

        When scanning backwards, corrupt files are skipped with the next
        older checkpoint tried instead; only if *no* checkpoint survives
        does this raise.  Returns the restored step count.
        """
        candidates = [Path(path)] if path is not None else self.checkpoints()[::-1]
        last_err: Exception | None = None
        for cand in candidates:
            try:
                snap = self.load(cand)
            except CheckpointCorruptError as err:
                last_err = err
                continue
            model.restore_snapshot(snap)
            self.restored += 1
            return int(model.step_count)
        if last_err is not None:
            raise CheckpointCorruptError(
                f"no intact checkpoint in {self.dir}: {last_err}"
            )
        raise ResilienceError(f"no checkpoint found in {self.dir}")
