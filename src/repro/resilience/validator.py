"""State validation: catching silent data corruption before it spreads.

A flipped bit in a DMA transfer does not crash anything — it quietly
poisons one layer thickness, and three timesteps later the whole column
is NaN.  The defence the big runs use is cheap invariant checking after
every step: prognostic fields must be finite, and layer pressure
thickness ``dp3d`` must stay positive (a negative thickness is
unphysical and the vertical remap's death sentence).

:class:`StateValidator` implements those checks against the per-rank
states of either distributed model.  It reports *where* the violation
lives (rank and field), which the resilient runner logs before rolling
back to the last good checkpoint.
"""

from __future__ import annotations

import numpy as np

from ..errors import ResilienceError


class StateValidator:
    """Post-step invariant checks for distributed model states.

    Parameters
    ----------
    check_positive:
        Field names that must be strictly positive everywhere
        (``dp3d`` for the primitive equations, ``h`` for shallow water).
    """

    DEFAULT_POSITIVE = ("dp3d", "h")

    def __init__(self, check_positive: tuple[str, ...] = DEFAULT_POSITIVE) -> None:
        self.check_positive = tuple(check_positive)
        self.checks = 0
        self.violations = 0

    def _fields(self, state) -> dict[str, np.ndarray]:
        out = {}
        for name in ("h", "v", "T", "dp3d", "qdp"):
            arr = getattr(state, name, None)
            if arr is not None:
                out[name] = arr
        return out

    def problems(self, model) -> list[str]:
        """All invariant violations in ``model.states``, human-readable."""
        found: list[str] = []
        for r, state in enumerate(model.states):
            for name, arr in self._fields(state).items():
                bad = ~np.isfinite(arr)
                if bad.any():
                    found.append(
                        f"rank {r}: {name} has {int(bad.sum())} non-finite value(s)"
                    )
                elif name in self.check_positive and (arr <= 0).any():
                    found.append(
                        f"rank {r}: {name} has {int((arr <= 0).sum())} "
                        "non-positive value(s)"
                    )
        self.checks += 1
        if found:
            self.violations += 1
        return found

    def check(self, model) -> bool:
        """True if the state is healthy."""
        return not self.problems(model)

    def require(self, model) -> None:
        """Raise :class:`ResilienceError` on any violation."""
        found = self.problems(model)
        if found:
            raise ResilienceError(
                "state validation failed: " + "; ".join(found)
            )
