"""Resilience subsystem: fault injection, checkpoint/restart, self-healing.

The paper's full-machine runs (10.6 M cores for multi-day Katrina
integrations) and the follow-up 40-million-core work both treat
resilience as a first-class engineering cost: nodes slow down, messages
get lost, DMA transfers flip bits, CPEs fail.  This package gives the
simulated machine the same survival kit:

- :class:`~repro.resilience.faults.FaultInjector` — one seeded,
  deterministic source for every injected fault (message drops/delays,
  laggard ranks, DMA and state bit flips, dead CPEs);
- :class:`~repro.resilience.checkpoint.Checkpointer` — CRC32-checked,
  atomically written, bitwise-restoring snapshots of the distributed
  models;
- :class:`~repro.resilience.validator.StateValidator` — post-step
  NaN/Inf/negative-thickness detection;
- :class:`~repro.resilience.runner.ResilientRunner` — checkpoint,
  validate, roll back, re-execute; the faulty run's final state matches
  the fault-free trajectory bitwise.

The network layer cooperates: :class:`~repro.network.simmpi.SimMPI`
retransmits dropped messages with exponential backoff from the sender's
posted copy, and the Sunway layer degrades gracefully when CPEs die
(:meth:`~repro.sunway.core_group.CoreGroup.disable_cpes`).
"""

from .checkpoint import Checkpointer, snapshot_crc
from .faults import BitFlip, FaultEvent, FaultInjector, flip_bit
from .runner import ResilientRunner, RunReport
from .validator import StateValidator

__all__ = [
    "BitFlip",
    "Checkpointer",
    "FaultEvent",
    "FaultInjector",
    "ResilientRunner",
    "RunReport",
    "StateValidator",
    "flip_bit",
    "snapshot_crc",
]
