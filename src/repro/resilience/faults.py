"""Deterministic fault injection for the simulated machine.

The full-machine runs the paper reports (10.6 M cores for days) only
finish because the software tolerates the machine misbehaving: nodes
run slow, messages get lost, DRAM and DMA transfers flip bits, CPEs
die.  :class:`FaultInjector` is the single source of truth for every
injected fault in the reproduction — the network layer, the Sunway DMA
engines, and the resilient runner all consult the same injector, so a
whole faulty run is reproducible from one seed.

Faults come in two flavours:

- **scheduled** — fire at an exact event index (the 3rd message sent,
  the 12th DMA transfer, model step 5), which is what the tests and the
  acceptance criteria use;
- **random** — fire with a configured probability from a seeded
  :class:`numpy.random.Generator`, for soak-style runs.

Every decision the injector takes is appended to :attr:`events`, so a
run can print exactly which faults fired and when.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class BitFlip:
    """One scheduled single-bit corruption.

    ``transfer`` targets the Nth DMA transfer (0-based, counted across
    all engines sharing the injector); ``step`` targets the model state
    after step N of a :class:`~repro.resilience.runner.ResilientRunner`.
    Exactly one of the two should be set.  ``word`` and ``bit`` pick the
    float64 element (flattened index, modulo the array size) and the bit
    within its 64-bit pattern.  Bit 63 is the IEEE-754 sign bit — the
    classic silent-data-corruption that turns a layer thickness
    negative; bits 52-62 hit the exponent and typically produce huge
    values or Inf/NaN.
    """

    transfer: int | None = None
    step: int | None = None
    field_name: str = "dp3d"
    rank: int = 0
    word: int = 0
    bit: int = 63


@dataclass
class FaultEvent:
    """One fault that actually fired (for logs and assertions)."""

    kind: str  # "drop" | "delay" | "retransmit_drop" | "bitflip" | "laggard"
    detail: dict = field(default_factory=dict)


def flip_bit(arr: np.ndarray, word: int, bit: int) -> None:
    """Flip ``bit`` of float64 element ``word`` (flattened, wrapped) in place."""
    if arr.dtype != np.float64:
        raise ValueError(f"bit flips model float64 SDC, got dtype {arr.dtype}")
    if not (0 <= bit < 64):
        raise ValueError(f"bit must be in 0..63, got {bit}")
    flat = arr.reshape(-1)
    idx = word % flat.size
    bits = flat[idx : idx + 1].view(np.uint64)
    bits ^= np.uint64(1) << np.uint64(bit)


class FaultInjector:
    """Seeded, deterministic source of every injected fault.

    Parameters
    ----------
    seed:
        Seed for the probabilistic faults.  Two injectors built with the
        same arguments take identical decisions.
    drop_messages:
        Send indices (0-based, in posting order) whose message is lost
        in flight.  The sender's copy survives for retransmission.
    drop_probability:
        Additionally drop any message with this probability.
    drop_retransmits:
        If True, retransmissions are dropped too (drives the receiver to
        :class:`~repro.errors.SimMPITimeoutError`).
    delay_messages:
        Mapping of send index -> extra in-flight seconds (a congested or
        rerouted path; the payload still arrives intact).
    laggards:
        Mapping of rank -> compute slowdown factor (>= 1).  A factor of
        4.0 models the "one slow node" that dominates full-machine jobs.
    bitflips:
        :class:`BitFlip` schedule for DMA transfers and model state.
    disabled_cpes:
        Mapping of core-group id -> number of CPEs that have failed.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_messages: tuple[int, ...] | list[int] = (),
        drop_probability: float = 0.0,
        drop_retransmits: bool = False,
        delay_messages: dict[int, float] | None = None,
        laggards: dict[int, float] | None = None,
        bitflips: tuple[BitFlip, ...] | list[BitFlip] = (),
        disabled_cpes: dict[int, int] | None = None,
    ) -> None:
        if not (0.0 <= drop_probability < 1.0):
            raise ValueError(f"drop_probability must be in [0,1), got {drop_probability}")
        for r, f in (laggards or {}).items():
            if f < 1.0:
                raise ValueError(f"laggard factor for rank {r} must be >= 1, got {f}")
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.drop_messages = frozenset(int(i) for i in drop_messages)
        self.drop_probability = float(drop_probability)
        self.drop_retransmits = bool(drop_retransmits)
        self.delay_messages = {int(k): float(v) for k, v in (delay_messages or {}).items()}
        self.laggards = dict(laggards or {})
        self.bitflips = tuple(bitflips)
        self.disabled_cpes = dict(disabled_cpes or {})
        self.events: list[FaultEvent] = []
        self.send_index = 0
        self.dma_index = 0
        self._fired_steps: set[int] = set()

    # -- network hooks ------------------------------------------------------

    def on_send(self, src: int, dst: int, tag: int, nbytes: int) -> tuple[str, float]:
        """Decide the fate of the next posted message.

        Returns ``("deliver", 0.0)``, ``("drop", 0.0)`` or
        ``("delay", extra_seconds)``.
        """
        i = self.send_index
        self.send_index += 1
        if i in self.drop_messages or (
            self.drop_probability > 0.0 and self.rng.random() < self.drop_probability
        ):
            self.events.append(
                FaultEvent("drop", {"index": i, "src": src, "dst": dst, "tag": tag})
            )
            return ("drop", 0.0)
        if i in self.delay_messages:
            dt = self.delay_messages[i]
            self.events.append(
                FaultEvent("delay", {"index": i, "src": src, "dst": dst, "extra": dt})
            )
            return ("delay", dt)
        return ("deliver", 0.0)

    def on_retransmit(self, src: int, dst: int, tag: int, attempt: int) -> bool:
        """Whether retransmission ``attempt`` (1-based) gets through."""
        if self.drop_retransmits:
            self.events.append(
                FaultEvent(
                    "retransmit_drop",
                    {"src": src, "dst": dst, "tag": tag, "attempt": attempt},
                )
            )
            return False
        return True

    def compute_factor(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (1.0 = healthy)."""
        return self.laggards.get(rank, 1.0)

    # -- Sunway hooks -------------------------------------------------------

    def on_dma(self, buffer: np.ndarray) -> bool:
        """Called per DMA transfer; corrupts ``buffer`` in place if this
        transfer index is scheduled for a bit flip.  Returns True if a
        flip fired."""
        i = self.dma_index
        self.dma_index += 1
        fired = False
        for bf in self.bitflips:
            if bf.transfer == i and buffer.dtype == np.float64 and buffer.size:
                flip_bit(buffer, bf.word, bf.bit)
                self.events.append(
                    FaultEvent("bitflip", {"transfer": i, "word": bf.word, "bit": bf.bit})
                )
                fired = True
        return fired

    def healthy_cpes(self, cg_id: int, total: int) -> int:
        """Surviving CPE count for core group ``cg_id`` out of ``total``."""
        return max(0, total - self.disabled_cpes.get(cg_id, 0))

    # -- model-state hooks --------------------------------------------------

    def state_flips_at(self, step: int) -> list[BitFlip]:
        """Scheduled state corruptions firing after model step ``step``.

        Each step's flips fire exactly once — after a rollback the
        re-executed step is clean, which is what lets the resilient
        runner converge.
        """
        if step in self._fired_steps:
            return []
        flips = [bf for bf in self.bitflips if bf.step == step]
        if flips:
            self._fired_steps.add(step)
            self.events.append(
                FaultEvent("bitflip", {"step": step, "count": len(flips)})
            )
        return flips

    # -- external observations ----------------------------------------------

    def record(self, kind: str, **detail) -> FaultEvent:
        """Append an externally observed fault to the event log.

        The supervised parallel engine reports what it *saw* — worker
        crashes, hangs, overdue results, corrupt result blocks — through
        the same injector that scheduled the chaos, so one ``summary()``
        narrates cause and effect of a whole faulty run.
        """
        ev = FaultEvent(kind, detail)
        self.events.append(ev)
        return ev

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Count of fired faults by kind."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out
