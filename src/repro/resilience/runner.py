"""The self-healing driver: detect, roll back, retry, complete.

:class:`ResilientRunner` ties the subsystem together around either
distributed model:

1. checkpoint on a cadence (:class:`~repro.resilience.checkpoint.Checkpointer`);
2. after every step, apply any scheduled silent-data-corruption from the
   :class:`~repro.resilience.faults.FaultInjector` (the simulated DMA
   bit flip landing in model state), then run the
   :class:`~repro.resilience.validator.StateValidator`;
3. on a violation, restore the newest intact checkpoint and re-execute
   the lost steps — the re-run is clean because scheduled faults fire
   exactly once;
4. give up with :class:`~repro.errors.ResilienceError` only after
   ``max_rollbacks`` recoveries.

Because every recovery path (retransmitted messages, restored
checkpoints, re-executed steps) reproduces the exact float64 stream of
the healthy run, a faulty run's final state matches the fault-free
trajectory bitwise — the property the acceptance tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ResilienceError
from ..obs.tracer import NULL_TRACER
from .checkpoint import Checkpointer
from .faults import FaultInjector, flip_bit
from .validator import StateValidator


@dataclass
class RunReport:
    """What happened during one resilient integration."""

    steps: int = 0
    rollbacks: int = 0
    checkpoints: int = 0
    resteps: int = 0           # steps re-executed after rollbacks
    fault_summary: dict = field(default_factory=dict)
    #: ``engine.recovery`` snapshot when the model runs on a supervised
    #: parallel pool (worker respawns, redistributed tasks, ...); empty
    #: for serial models.
    engine_recovery: dict = field(default_factory=dict)
    #: :class:`repro.obs.health.HealthReport` as JSON when the model
    #: exposes a pool engine (``verdict``/``findings``/``stats``);
    #: empty for serial models.
    health: dict = field(default_factory=dict)
    log: list[str] = field(default_factory=list)


class ResilientRunner:
    """Run a distributed model to completion through injected faults.

    Parameters
    ----------
    model:
        Anything with ``step()``, ``step_count``, ``states``,
        ``snapshot()`` and ``restore_snapshot()`` — both distributed
        HOMME models qualify.
    checkpointer:
        Where and how often to checkpoint.
    validator:
        Post-step invariant checks (a default one is built if omitted).
    faults:
        The injector whose ``step``-scheduled :class:`BitFlip` entries
        corrupt model state.  Usually the same injector wired into the
        model's SimMPI so one seed governs the whole run.
    max_rollbacks:
        Recovery budget for a single :meth:`run` call.
    tracer:
        Observability tracer (:mod:`repro.obs`): fault injections,
        rollbacks, and checkpoint writes appear as instant events on
        the "resilience" track, stamped with the model's simulated time
        (``max_rank_time``) when available, the step count otherwise.
    """

    def __init__(
        self,
        model,
        checkpointer: Checkpointer,
        validator: StateValidator | None = None,
        faults: FaultInjector | None = None,
        max_rollbacks: int = 3,
        tracer=None,
    ) -> None:
        if max_rollbacks < 0:
            raise ResilienceError(f"max_rollbacks must be >= 0, got {max_rollbacks}")
        self.model = model
        self.checkpointer = checkpointer
        self.validator = validator or StateValidator()
        self.faults = faults
        self.max_rollbacks = max_rollbacks
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.report = RunReport()

    def _trace_now(self) -> float:
        """Simulated timestamp for resilience events."""
        max_rank_time = getattr(self.model, "max_rank_time", None)
        if max_rank_time is not None:
            return float(max_rank_time())
        return float(self.model.step_count)

    # -- fault application ----------------------------------------------------

    def _apply_state_faults(self) -> None:
        if self.faults is None:
            return
        for bf in self.faults.state_flips_at(self.model.step_count):
            state = self.model.states[bf.rank % len(self.model.states)]
            arr = getattr(state, bf.field_name, None)
            if arr is None:
                raise ResilienceError(
                    f"bit-flip targets unknown field {bf.field_name!r}"
                )
            flip_bit(arr, bf.word, bf.bit)
            self.report.log.append(
                f"step {self.model.step_count}: SDC injected in rank "
                f"{bf.rank} {bf.field_name} (word {bf.word}, bit {bf.bit})"
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    "resilience", "fault.sdc", self._trace_now(), cat="fault",
                    step=self.model.step_count, rank=bf.rank,
                    field=bf.field_name, word=bf.word, bit=bf.bit,
                )

    # -- driving ---------------------------------------------------------------

    def run(self, nsteps: int) -> RunReport:
        """Advance ``nsteps`` healthy steps, recovering as needed."""
        if self.checkpointer.latest() is None:
            self.checkpointer.save(self.model)  # step-0 safety net
        target = self.model.step_count + nsteps
        max_seen = self.model.step_count
        while self.model.step_count < target:
            self.model.step()
            self.report.steps += 1
            if self.model.step_count <= max_seen:
                self.report.resteps += 1
            max_seen = max(max_seen, self.model.step_count)
            self._apply_state_faults()
            problems = self.validator.problems(self.model)
            if problems:
                self._rollback(problems)
                continue
            if self.checkpointer.maybe(self.model) is not None:
                self.report.checkpoints += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "resilience", "checkpoint", self._trace_now(),
                        cat="resilience", step=self.model.step_count,
                    )
        if self.faults is not None:
            self.report.fault_summary = self.faults.summary()
        engine = getattr(self.model, "engine", None)
        if engine is not None:
            self.report.engine_recovery = dict(engine.recovery)
            self.report.health = engine.health().to_json()
        return self.report

    def _rollback(self, problems: list[str]) -> None:
        self.report.rollbacks += 1
        if self.report.rollbacks > self.max_rollbacks:
            raise ResilienceError(
                f"rollback budget ({self.max_rollbacks}) exhausted; "
                "last violations: " + "; ".join(problems)
            )
        restored = self.checkpointer.restore(self.model)
        self.report.log.append(
            f"validation failed ({'; '.join(problems)}); "
            f"rolled back to step {restored}"
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "resilience", "rollback", self._trace_now(), cat="fault",
                restored_step=restored, problems="; ".join(problems),
            )
