"""CLI: run the benchmark suite, write baselines, gate regressions.

Usage::

    python -m repro.bench                                  # run + print
    python -m repro.bench --out BENCH_homme.json           # write baseline
    python -m repro.bench --quick --compare BENCH_homme.json   # CI gate
    python -m repro.bench --quick --compare BENCH_homme.json \\
        --out bench_current.json --threshold 0.25

Exit status: 0 when no gate was requested or the gate passed, 1 on a
regression (wall-clock beyond threshold in calibrated units, simulated
drift beyond 1%, or a derived speedup below its committed floor), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from .compare import compare_reports, load_report
from .suite import run_suite, render_report


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Deterministic benchmark runner for the HOMME hot path "
                    "(batched vs looped execution, Table-1 kernels).",
    )
    p.add_argument("--quick", action="store_true",
                   help="fewer repeats (the CI-gate configuration)")
    p.add_argument("--repeats", type=int, default=None, metavar="N",
                   help="override the repeat count for wall-clock benchmarks")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the report JSON to PATH")
    p.add_argument("--compare", default=None, metavar="BASELINE",
                   help="gate against a committed BENCH_*.json baseline")
    p.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                   help="wall-clock regression threshold in calibrated units "
                        "(default 0.25 = 25%%)")
    return p


def main(argv: list[str] | None = None) -> int:
    ns = _parser().parse_args(sys.argv[1:] if argv is None else argv)
    report = run_suite(quick=ns.quick, repeats=ns.repeats)
    print(render_report(report))
    if ns.out:
        with open(ns.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"\n[bench] wrote {ns.out}")
    if ns.compare:
        try:
            baseline = load_report(ns.compare)
        except (OSError, ValueError) as e:
            print(f"\n[bench] cannot load baseline: {e}")
            return 2
        ok, lines = compare_reports(report, baseline, wall_threshold=ns.threshold)
        print(f"\n[bench] comparison against {ns.compare}:")
        for line in lines:
            print(f"  {line}")
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
