"""Timing primitives and result containers for ``repro.bench``.

Wall-clock numbers are noisy; the harness fights that three ways:

- **min-of-repeats** — each benchmark runs ``repeats`` times after a
  warmup and reports the minimum, the standard low-noise estimator for
  compute-bound kernels;
- **deterministic workloads** — every benchmark builds its inputs from
  fixed seeds, so two runs time the same arithmetic;
- **machine calibration** — a fixed numpy workload is timed alongside
  the suite and stored in the report; comparisons divide wall times by
  it, so a committed baseline from one machine gates a CI run on
  another (both speed up or slow down together).

Simulated-clock benchmarks bypass all three: the backend cost models
are pure functions of the workload, bit-stable across machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["BenchResult", "time_wall", "machine_calibration"]

#: Report schema identifier written into every BENCH_*.json.
SCHEMA = "repro.bench/1"


@dataclass
class BenchResult:
    """One benchmark measurement.

    ``clock`` is ``"wall"`` (seconds of real time, calibration-
    normalizable) or ``"simulated"`` (deterministic model seconds).
    ``floor``/``ceiling`` optionally bound a *derived* metric (e.g. the
    batched/looped speedup must stay >= its floor for the gate to
    pass).
    """

    name: str
    clock: str
    seconds: float
    repeats: int = 1
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        d = {"name": self.name, "clock": self.clock, "seconds": self.seconds,
             "repeats": self.repeats}
        if self.meta:
            d["meta"] = self.meta
        return d

    @classmethod
    def from_json(cls, d: dict) -> "BenchResult":
        return cls(
            name=d["name"], clock=d["clock"], seconds=float(d["seconds"]),
            repeats=int(d.get("repeats", 1)), meta=dict(d.get("meta", {})),
        )


def time_wall(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
    setup: Callable[[], object] | None = None,
) -> float:
    """Min-of-``repeats`` wall time of ``fn()`` in seconds.

    ``setup`` (untimed) runs before every timed call — used to reset
    mutated state so each repeat times identical work.
    """
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def machine_calibration(repeats: int = 9) -> float:
    """Wall time of a fixed reference workload on this machine.

    A mix of the operations the suite actually times (stacked 4x4
    matmuls, elementwise arithmetic, reductions) over a deterministic
    array.  Stored in every report; comparisons work in calibrated
    units (``seconds / calibration``), making baselines portable
    across machines of different speed.
    """
    rng = np.random.default_rng(12345)
    a = rng.standard_normal((2048, 8, 4, 4))
    d = rng.standard_normal((4, 4))

    def work():
        x = np.matmul(a, d)
        y = np.matmul(d, a)
        z = x * y + 0.5 * a
        return float(z.sum())

    return time_wall(work, repeats=repeats, warmup=1)
