"""Baseline comparison and regression gating for ``repro.bench``.

The gate applies three rules to a (current, baseline) report pair:

- **wall clock** — fail when a benchmark regresses by more than
  ``wall_threshold`` (default 25%, the CI gate) under **both** the raw
  ratio and the *calibrated* ratio (seconds divided by each report's
  machine-calibration time).  Same machine: raw is exact and
  calibration jitter is ignored.  Different machine: raw shifts by the
  hardware ratio but calibrated does not.  A genuine regression moves
  both together, so gating on the smaller of the two suppresses the
  false positives without opening a hole.  Wall entries whose
  ``meta.gated`` is false (the interpreter-noise-dominated looped
  reference path) are reported but never fail the gate — their
  regressions only matter through the derived speedup floors.
- **simulated clock** — the backend cost models are deterministic, so
  any drift beyond ``sim_threshold`` (default 1%) means the
  performance model changed; that must be a deliberate, reviewed
  change, so the gate fails.
- **derived floors** — each derived speedup must stay at or above its
  committed floor (``suite.SPEEDUP_FLOORS``): the batched path must
  remain >= 3x the looped path on the ne8 shallow-water RK step
  regardless of how both drift in absolute terms.

Benchmarks present in only one report are reported as added/removed
but do not fail the gate (the suite is allowed to grow).
"""

from __future__ import annotations

import json

__all__ = ["load_report", "compare_reports"]


def load_report(path: str) -> dict:
    """Load a BENCH_*.json report and sanity-check its schema."""
    with open(path) as f:
        report = json.load(f)
    schema = report.get("schema", "")
    if not schema.startswith("repro.bench/"):
        raise ValueError(f"{path}: not a repro.bench report (schema={schema!r})")
    for key in ("benchmarks", "derived", "calibration_s"):
        if key not in report:
            raise ValueError(f"{path}: missing report key {key!r}")
    return report


def compare_reports(
    current: dict,
    baseline: dict,
    wall_threshold: float = 0.25,
    sim_threshold: float = 0.01,
) -> tuple[bool, list[str]]:
    """Gate ``current`` against ``baseline``; returns (ok, report lines)."""
    lines: list[str] = []
    ok = True
    cur = {b["name"]: b for b in current["benchmarks"]}
    base = {b["name"]: b for b in baseline["benchmarks"]}
    cal_cur = float(current["calibration_s"])
    cal_base = float(baseline["calibration_s"])
    lines.append(
        f"calibration: current {cal_cur * 1e3:.2f} ms, "
        f"baseline {cal_base * 1e3:.2f} ms "
        f"(machine speed ratio {cal_cur / cal_base:.2f})"
    )

    for name in sorted(set(cur) & set(base)):
        c, b = cur[name], base[name]
        if c["clock"] != b["clock"]:
            ok = False
            lines.append(f"FAIL {name}: clock changed {b['clock']} -> {c['clock']}")
            continue
        if c["clock"] == "simulated":
            drift = abs(c["seconds"] - b["seconds"]) / max(b["seconds"], 1e-300)
            status = "ok" if drift <= sim_threshold else "FAIL"
            ok = ok and drift <= sim_threshold
            lines.append(
                f"{status:4} {name}: simulated {c['seconds']:.6g}s "
                f"(baseline {b['seconds']:.6g}s, drift {drift * 100:.2f}%)"
            )
        else:
            raw_ratio = c["seconds"] / max(b["seconds"], 1e-300)
            cal_ratio = (c["seconds"] / cal_cur) / (b["seconds"] / cal_base)
            ratio = min(raw_ratio, cal_ratio)
            gated = bool(c.get("meta", {}).get("gated", True))
            regressed = gated and ratio > 1.0 + wall_threshold
            status = "FAIL" if regressed else ("ok" if gated else "info")
            ok = ok and not regressed
            bound = (
                f"gate <= {1 + wall_threshold:.2f}" if gated else "not gated"
            )
            lines.append(
                f"{status:4} {name}: wall {c['seconds'] * 1e3:.3f} ms "
                f"(baseline {b['seconds'] * 1e3:.3f} ms, "
                f"raw x{raw_ratio:.2f}, calibrated x{cal_ratio:.2f}, "
                f"{bound})"
            )

    for name in sorted(set(cur) - set(base)):
        lines.append(f"new  {name}: no baseline entry (not gated)")
    for name in sorted(set(base) - set(cur)):
        lines.append(f"gone {name}: baseline entry not measured (not gated)")

    floors = {**baseline.get("floors", {}), **current.get("floors", {})}
    for name, val in sorted(current.get("derived", {}).items()):
        floor = floors.get(name)
        base_val = baseline.get("derived", {}).get(name)
        # A derived entry without a baseline counterpart is informational
        # (the suite is allowed to grow) — but its floor still applies.
        note = (
            f" (baseline {base_val:.2f}x)" if base_val is not None
            else " (new, no baseline entry)"
        )
        if floor is not None and val < floor:
            ok = False
            lines.append(f"FAIL {name}: {val:.2f}x below floor {floor:.1f}x{note}")
        else:
            bound = f", floor {floor:.1f}x" if floor is not None else ""
            lines.append(f"ok   {name}: {val:.2f}x{bound}{note}")
    for name in sorted(set(baseline.get("derived", {})) - set(current.get("derived", {}))):
        lines.append(f"gone {name}: derived entry not measured (not gated)")
    for name, reason in sorted(current.get("skipped", {}).items()):
        lines.append(f"skip {name}: {reason}")

    lines.append("gate: " + ("PASS" if ok else "REGRESSION DETECTED"))
    return ok, lines
