"""repro.bench — the deterministic performance-baseline harness.

The paper's core claim is throughput (3.4 SYPD at ne120, a 10x+ kernel
speedup from the Athread redesign) — so this reproduction tracks its
own performance as a first-class, committed artifact.  ``repro.bench``
times the HOMME hot path on two clocks:

- **wall clock** — the batched vs looped execution paths
  (:func:`repro.backends.functional_exec.homme_execution`) on the ne8
  shallow-water RK step, the primitive-equation RHS, and the
  all-tracer euler step: min-of-repeats ``time.perf_counter`` timings,
  normalized by a fixed machine-calibration workload so baselines
  survive hardware changes;
- **simulated clock** — the Table-1 kernels through the
  Intel/MPE/OpenACC/Athread backend models: exactly deterministic, so
  any drift is a real model change.

``python -m repro.bench`` runs the suite, writes ``BENCH_homme.json``
(schema in DESIGN.md §9), and with ``--compare`` gates against a
committed baseline — CI fails on >25% normalized wall-clock regression,
>1% simulated drift, or the batched/looped speedup dropping below its
floor.  Entry points::

    python -m repro.bench --out BENCH_homme.json          # new baseline
    python -m repro.bench --quick --compare BENCH_homme.json   # CI gate

Layout: :mod:`~repro.bench.harness` (timing + result containers),
:mod:`~repro.bench.suite` (the benchmark definitions),
:mod:`~repro.bench.compare` (baseline comparison and gating).
"""

from .harness import BenchResult, machine_calibration, time_wall
from .suite import run_suite
from .compare import compare_reports, load_report

__all__ = [
    "BenchResult",
    "machine_calibration",
    "time_wall",
    "run_suite",
    "compare_reports",
    "load_report",
]
