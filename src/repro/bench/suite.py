"""The benchmark definitions behind ``BENCH_homme.json``.

Wall-clock benchmarks time the same kernel through all three execution
paths (:mod:`repro.backends.functional_exec`), so every entry comes
with derived ``speedup`` entries — the quantities the tentpole claims
live in (batched must stay >= 3x looped on the ne8 shallow-water RK
step; the fused contraction path must stay >= 1.5x batched on the
primitive-equation RHS chain).  Simulated-clock benchmarks rerun the
Table-1
kernels through the four backend models; they are exactly
deterministic and drift only when the performance model itself changes.

Only the *batched* and *fused* wall entries carry
``meta.gated = True``.  The looped reference path is dominated by
Python interpreter dispatch, whose wall time jitters far more than the
25% gate between otherwise identical runs; it is recorded for the
derived speedups (which have committed floors) but is not individually
gated.
"""

from __future__ import annotations

import numpy as np

from ..backends import ALL_BACKENDS, table1_workloads
from ..config import ModelConfig
from ..homme.element import ElementGeometry, ElementState
from ..homme.euler import euler_step
from ..homme.shallow_water import ShallowWaterModel, williamson2_initial
from ..mesh.cubed_sphere import CubedSphereMesh
from .harness import SCHEMA, BenchResult, machine_calibration, time_wall

#: Derived speedup floors enforced by the comparison gate.  The ne8
#: shallow-water RK-step floor is the acceptance criterion of the
#: batched-execution tentpole; the others are guardrails against the
#: batched path silently degenerating to per-element dispatch.
SPEEDUP_FLOORS = {
    "sw_rk_step.ne8.speedup": 3.0,
    "prim_rhs.ne4.speedup": 2.0,
    # Fused-contraction fast path (DESIGN.md §14): the acceptance floor
    # lives on the primitive-equation RHS chain (measured ~2.2-2.7x on
    # the committed-baseline machine, >= 2.2x even at repeats=1); the
    # euler floor is a guardrail against the fused tracer stage
    # degenerating to batched-equivalent cost.  The ne8 SW RK step's
    # fused speedup is reported but not floored: the step is DSS-
    # dominated, and its repeats=1 spread (1.0-1.3x) sits on top of any
    # meaningful floor.
    "prim_rhs.ne4.fused_speedup": 1.5,
    "euler_step.ne4.fused_speedup": 1.1,
    "dist_sw_step.ne8.parallel_speedup": 1.3,
    "dist_sw_step.ne8.pipelined_speedup": 1.15,
    # Recovery overhead gate (DESIGN.md §12): one injected worker kill
    # may cost at most 50% wall time over the fault-free parallel step,
    # i.e. recovery_speedup = parallel/recovery >= 1/1.5.
    "dist_sw_step.ne8.recovery_speedup": 1.0 / 1.5,
    # Telemetry overhead gate (DESIGN.md §13): the fully instrumented
    # parallel step (tracing + in-worker packets + sampling profiler)
    # may cost at most 10% wall time over the telemetry-off run.
    "dist_sw_step.ne8.telemetry_speedup": 1.0 / 1.10,
    # Sharded-ownership gate (DESIGN.md §15): with one shard context per
    # rank group and shard-affinity dispatch, the sum of all shard
    # contexts over the largest single worker's share must stay >= 2x —
    # i.e. no worker holds more than half the geometry the old
    # replicate-everything scheme shipped to every worker.  With 4 ranks
    # on 4 workers the ideal ratio is 4.0.
    "dist_sw_step.ne8.context_replication_ratio": 2.0,
}

#: Worker count for the parallel-vs-serial distributed section; the
#: section is skipped (with a logged reason in ``report["skipped"]``)
#: on machines with fewer usable cores.
PARALLEL_BENCH_WORKERS = 4

#: Steps in the recovery-overhead run: one worker kill amortized over a
#: short run, the way a real job amortizes a node failure.
RECOVERY_STEPS = 3


def _prim_state(ne: int = 4, nlev: int = 8, qsize: int = 4, seed: int = 7):
    """A deterministic, dynamically active primitive-equation state."""
    mesh = CubedSphereMesh(ne, 4)
    geom = ElementGeometry(mesh)
    cfg = ModelConfig(ne=ne, nlev=nlev, qsize=qsize)
    state = ElementState.isothermal_rest(geom, cfg)
    rng = np.random.default_rng(seed)
    state.v += 1e-5 * rng.standard_normal(state.v.shape)
    state.T += rng.standard_normal(state.T.shape)
    state.qdp[:] = (0.5 + rng.random(state.qdp.shape)) * state.dp3d[:, None]
    return state, geom


def run_suite(quick: bool = False, repeats: int | None = None) -> dict:
    """Run every benchmark; returns the JSON-ready report dict.

    ``quick`` lowers the repeat count (CI gate); an explicit
    ``repeats`` overrides both modes (tests use ``repeats=1``).
    """
    # The wall kernels are a few ms each, so repeats are cheap; min-of-3
    # proved too fragile against ambient load spikes (its run-to-run
    # spread is ~3x that of min-of-9), hence the generous counts.
    if repeats is None:
        repeats = 7 if quick else 11
    results: list[BenchResult] = []

    # -- wall clock: ne8 shallow-water RK step, three exec paths -----------
    mesh8 = CubedSphereMesh(8, 4)
    init8 = williamson2_initial(mesh8)
    for path in ("batched", "looped", "fused"):
        model = ShallowWaterModel(mesh8, state=init8.copy(), exec_path=path)

        def reset(model=model):
            model.state = init8.copy()

        secs = time_wall(model.step, repeats=repeats, setup=reset)
        results.append(BenchResult(
            name=f"sw_rk_step.ne8.{path}", clock="wall", seconds=secs,
            repeats=repeats,
            meta={"ne": 8, "nelem": mesh8.nelem, "kernel": "sw RK3 step",
                  "gated": path != "looped"},
        ))

    # -- wall clock: primitive-equation RHS, three exec paths --------------
    from ..backends.functional_exec import homme_execution

    state, geom = _prim_state()
    for path in ("batched", "looped", "fused"):
        ex = homme_execution(path)
        secs = time_wall(lambda: ex.compute_rhs(state, geom), repeats=repeats)
        results.append(BenchResult(
            name=f"prim_rhs.ne4.{path}", clock="wall", seconds=secs,
            repeats=repeats,
            meta={"ne": 4, "nlev": state.nlev, "kernel": "compute_rhs",
                  "gated": path != "looped"},
        ))

    # -- wall clock: all-tracer euler step, three exec paths ---------------
    for path in ("batched", "looped", "fused"):
        secs = time_wall(
            lambda: euler_step(state, geom, 60.0, path=path), repeats=repeats
        )
        results.append(BenchResult(
            name=f"euler_step.ne4.{path}", clock="wall", seconds=secs,
            repeats=repeats,
            meta={"ne": 4, "qsize": state.qsize, "kernel": "euler_step",
                  "gated": path != "looped"},
        ))

    # -- wall clock: ne8 distributed SW step, serial vs real cores ---------
    # The first section measuring the reproduction on real hardware
    # parallelism: the same distributed step, once with the per-rank
    # compute in-process and once fanned across a worker pool.  The
    # trajectory is bitwise identical either way (tested); only the
    # wall clock may differ.
    from ..homme.distributed import DistributedShallowWater
    from ..parallel import available_cores

    skipped: dict[str, str] = {}
    cores = available_cores()
    if cores < PARALLEL_BENCH_WORKERS:
        skipped["dist_sw_step.ne8"] = (
            f"needs {PARALLEL_BENCH_WORKERS} cores for the parallel-vs-serial "
            f"section, machine has {cores}"
        )
        skipped["dist_sw_step.ne8.pipelined_speedup"] = (
            f"pipelined-vs-parallel floor needs {PARALLEL_BENCH_WORKERS} "
            f"cores, machine has {cores}"
        )
        skipped["dist_sw_step.ne8.telemetry_speedup"] = (
            f"telemetry-overhead floor needs {PARALLEL_BENCH_WORKERS} "
            f"cores, machine has {cores}"
        )
        skipped["dist_sw_step.ne8.context_replication_ratio"] = (
            f"shard-memory floor needs a {PARALLEL_BENCH_WORKERS}-worker "
            f"pool, machine has {cores} cores"
        )
    else:
        dist_repeats = min(repeats, 5)  # a distributed step is ~100x a kernel
        for variant, nworkers, pipe, instrumented in (
            ("serial", 0, False, False),
            ("parallel", PARALLEL_BENCH_WORKERS, False, False),
            ("pipelined", PARALLEL_BENCH_WORKERS, True, False),
            # Fully instrumented parallel step: driver tracing plus
            # in-worker telemetry packets and the sampling profiler
            # (DESIGN.md §13).  Gated against the telemetry-off
            # "parallel" entry via telemetry_speedup.
            ("telemetry", PARALLEL_BENCH_WORKERS, False, True),
        ):
            tracer = None
            engine_kwargs = None
            if instrumented:
                from ..obs import PROFILE_HZ, Tracer

                tracer = Tracer("bench-telemetry")
                engine_kwargs = {"profile_hz": PROFILE_HZ}
            model = DistributedShallowWater(
                mesh8, nranks=PARALLEL_BENCH_WORKERS, workers=nworkers,
                pipeline=pipe, tracer=tracer, engine_kwargs=engine_kwargs,
            )
            snap = model.snapshot()
            secs = time_wall(
                model.step, repeats=dist_repeats,
                setup=lambda m=model, s=snap: m.restore_snapshot(s),
            )
            meta = {"ne": 8, "nranks": PARALLEL_BENCH_WORKERS,
                    "workers": nworkers, "pipeline": pipe,
                    "kernel": "distributed SW step",
                    "pool_active": bool(model.engine.active),
                    "gated": False}
            if instrumented:
                meta["telemetry_packets"] = model.engine.telemetry_packets
                meta["profile_samples"] = model.engine.profile_samples
            if variant == "parallel":
                # Sharded-ownership accounting (DESIGN.md §15): the
                # largest single worker's context footprint vs the sum
                # of every shard — what the old replicate-everything
                # scheme would have shipped to *each* worker.  Read
                # before close(): close() unregisters the shard keys.
                meta["context_bytes_peak"] = model.engine.peak_context_bytes()
                meta["context_bytes_total"] = model.engine.total_context_bytes()
            results.append(BenchResult(
                name=f"dist_sw_step.ne8.{variant}", clock="wall", seconds=secs,
                repeats=dist_repeats, meta=meta,
            ))
            model.close()

        # Recovery overhead: a short parallel *run* (RECOVERY_STEPS
        # steps) absorbing one seeded worker kill, gated against the
        # same run fault-free.  Chaos fires only on a task's first
        # dispatch, so this is a single-shot measurement (repeats=1) of
        # crash detection + respawn + redistribution amortized the way
        # a real job amortizes a node failure.  The kill is scheduled
        # into the second step: the first dispatch of the untimed
        # warmup step pays the one-time block-allocation costs, same as
        # the other entries.
        from ..parallel import ChaosSpec

        tasks_per_step = 3 * PARALLEL_BENCH_WORKERS  # 3 RK stages x ranks
        kill_tid = PARALLEL_BENCH_WORKERS + tasks_per_step + 2
        model = DistributedShallowWater(
            mesh8, nranks=PARALLEL_BENCH_WORKERS,
            workers=PARALLEL_BENCH_WORKERS,
            engine_kwargs={"chaos": ChaosSpec(kill_tasks=(kill_tid,))},
        )
        secs = time_wall(lambda: model.run_steps(RECOVERY_STEPS),
                         repeats=1, warmup=0, setup=model.step)
        results.append(BenchResult(
            name="dist_sw_step.ne8.recovery", clock="wall", seconds=secs,
            repeats=1,
            meta={"ne": 8, "nranks": PARALLEL_BENCH_WORKERS,
                  "workers": PARALLEL_BENCH_WORKERS, "steps": RECOVERY_STEPS,
                  "kernel": "distributed SW run + worker kill",
                  "kill_task": kill_tid,
                  "respawns": model.engine.recovery["respawns"],
                  "pool_degrades": model.engine.recovery["pool_degrades"],
                  "pool_active": bool(model.engine.active),
                  "gated": False},
        ))
        model.close()

    # -- simulated clock: Table-1 kernels through the backend models -------
    workloads = table1_workloads()
    backends = {name: cls() for name, cls in ALL_BACKENDS.items()}
    for kernel, wl in workloads.items():
        for bname, backend in backends.items():
            results.append(BenchResult(
                name=f"table1.{kernel}.{bname}", clock="simulated",
                seconds=backend.execute(wl).seconds,
                meta={"kernel": kernel, "backend": bname},
            ))

    # -- simulated clock: prim nranks sweep (Table-4 SYPD curve) -----------
    # The scaling-study entries: the full primitive-equation step
    # distributed over a sweep of simulated rank counts, once with the
    # flat recursive-doubling allreduce and once with the hierarchical
    # node/supernode/central-switch combine tree.  The trajectory is
    # bitwise identical across combine algorithms and rank counts; the
    # simulated clocks (comm measured through SimMPI plus the calibrated
    # per-element compute charge, so SYPD reflects a full step) are
    # exactly deterministic, so these entries gate at the 1%
    # simulated-drift tolerance like the table1 section.
    from ..homme.distributed import (
        DistributedPrimitiveEquations,
        charge_calibrated_compute,
    )

    scaling_dt = 300.0
    scaling_nranks = (4, 16) if quick else (4, 16, 64)
    prim_state4, _ = _prim_state()
    mesh4 = CubedSphereMesh(4, 4)
    cfg4 = ModelConfig(ne=4, nlev=prim_state4.nlev, qsize=prim_state4.qsize)
    for nranks in scaling_nranks:
        for combine in ("flat", "hierarchical"):
            model = DistributedPrimitiveEquations(
                cfg4, mesh4, prim_state4, nranks=nranks, dt=scaling_dt,
                combine=combine,
            )
            model.step()
            charge_calibrated_compute(model, steps=1)
            t_machine = model.max_rank_time()
            sypd = scaling_dt / (365.0 * t_machine) if t_machine > 0 else 0.0
            results.append(BenchResult(
                name=f"scaling.prim_ne4.nranks{nranks}.{combine}",
                clock="simulated", seconds=t_machine,
                meta={"ne": 4, "nranks": nranks, "combine": combine,
                      "dt": scaling_dt, "sypd": sypd,
                      "hierarchical_allreduces":
                          model.mpi.hierarchical_allreduces,
                      "kernel": "distributed prim step"},
            ))
            model.close()

    # -- derived speedups --------------------------------------------------
    # Tolerant of missing members: a skipped or not-yet-measured section
    # simply contributes no derived entry (the comparison gate treats
    # absent entries as informational, never as failures).
    by_name = {r.name: r for r in results}
    derived: dict[str, float] = {}
    for group, num, den in (
        ("sw_rk_step.ne8", "looped", "batched"),
        ("prim_rhs.ne4", "looped", "batched"),
        ("euler_step.ne4", "looped", "batched"),
    ):
        a = by_name.get(f"{group}.{num}")
        b = by_name.get(f"{group}.{den}")
        if a is not None and b is not None:
            derived[f"{group}.speedup"] = a.seconds / b.seconds
        # Fused-path gain over the batched baseline (the tentpole claim
        # of the fused-contraction fast path).
        c = by_name.get(f"{group}.fused")
        if b is not None and c is not None:
            derived[f"{group}.fused_speedup"] = b.seconds / c.seconds
    ser = by_name.get("dist_sw_step.ne8.serial")
    par = by_name.get("dist_sw_step.ne8.parallel")
    pipe = by_name.get("dist_sw_step.ne8.pipelined")
    if ser is not None and par is not None:
        if par.meta.get("pool_active"):
            derived["dist_sw_step.ne8.parallel_speedup"] = ser.seconds / par.seconds
        else:
            skipped["dist_sw_step.ne8.parallel_speedup"] = (
                "worker pool fell back to serial; speedup floor not applicable"
            )
    # The pipelined floor is *relative to the synchronous parallel run*:
    # overlapping driver combines with worker compute must buy >= 1.15x
    # on top of the plain fan-out, not just beat serial.
    if par is not None and pipe is not None:
        if par.meta.get("pool_active") and pipe.meta.get("pool_active"):
            derived["dist_sw_step.ne8.pipelined_speedup"] = (
                par.seconds / pipe.seconds
            )
        else:
            skipped["dist_sw_step.ne8.pipelined_speedup"] = (
                "worker pool fell back to serial; speedup floor not applicable"
            )
    # Telemetry gate: >= 1/1.10 means full instrumentation (tracing,
    # per-result packets, sampling profiler) cost <= 10% wall time over
    # the telemetry-off parallel step.
    tel = by_name.get("dist_sw_step.ne8.telemetry")
    if par is not None and tel is not None:
        if par.meta.get("pool_active") and tel.meta.get("pool_active"):
            derived["dist_sw_step.ne8.telemetry_speedup"] = (
                par.seconds / tel.seconds
            )
        else:
            skipped["dist_sw_step.ne8.telemetry_speedup"] = (
                "worker pool fell back to serial; overhead floor "
                "not applicable"
            )
    # Shard-memory gate: total context bytes across all shard contexts
    # over the busiest worker's share.  >= 2.0 means sharded ownership
    # actually landed distinct shards on distinct workers (4.0 ideal at
    # 4 ranks / 4 workers); 1.0 would mean one worker touched every
    # shard, i.e. the replicated-geometry memory profile.
    if par is not None and par.meta.get("pool_active"):
        peak = par.meta.get("context_bytes_peak", 0)
        total = par.meta.get("context_bytes_total", 0)
        if peak > 0:
            derived["dist_sw_step.ne8.context_replication_ratio"] = (
                total / peak
            )
        else:
            skipped["dist_sw_step.ne8.context_replication_ratio"] = (
                "no per-slot context bytes recorded; ratio not applicable"
            )
    elif par is not None:
        skipped["dist_sw_step.ne8.context_replication_ratio"] = (
            "worker pool fell back to serial; shard-memory floor "
            "not applicable"
        )
    # Recovery gate: >= 1/1.5 means the injected kill cost <= 50% wall
    # time over the equivalent fault-free parallel run (the per-step
    # parallel time scaled to the recovery run's step count).  Only
    # meaningful when the recovery run actually recovered (respawned,
    # pool survived).
    rec = by_name.get("dist_sw_step.ne8.recovery")
    if par is not None and rec is not None:
        if (par.meta.get("pool_active") and rec.meta.get("pool_active")
                and rec.meta.get("respawns", 0) >= 1):
            derived["dist_sw_step.ne8.recovery_speedup"] = (
                par.seconds * rec.meta["steps"] / rec.seconds
            )
        else:
            skipped["dist_sw_step.ne8.recovery_speedup"] = (
                "recovery run degraded or never respawned; "
                "overhead floor not applicable"
            )

    return {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "calibration_s": machine_calibration(),
        "benchmarks": [r.to_json() for r in results],
        "derived": derived,
        "floors": SPEEDUP_FLOORS,
        "skipped": skipped,
    }


def render_report(report: dict) -> str:
    """Human-readable summary of a suite report."""
    lines = [
        f"repro.bench report (schema {report['schema']}, "
        f"repeats={report['repeats']}, "
        f"calibration={report['calibration_s'] * 1e3:.2f} ms)",
        "",
        f"{'benchmark':<42} {'clock':<10} {'seconds':>12}",
        "-" * 66,
    ]
    for b in report["benchmarks"]:
        lines.append(f"{b['name']:<42} {b['clock']:<10} {b['seconds']:>12.6f}")
    lines.append("")
    for name, val in report["derived"].items():
        floor = report.get("floors", {}).get(name)
        # `is not None`, not truthiness: a 0.0 floor (or any fractional
        # overhead floor rounding to 0) must still render.
        bound = f"  (floor {floor:.2f}x)" if floor is not None else ""
        lines.append(f"{name:<42} {val:>10.2f}x{bound}")
    for name, reason in report.get("skipped", {}).items():
        lines.append(f"skipped {name}: {reason}")
    return "\n".join(lines)
