"""Run configurations (namelist-like) for model and experiment setups.

The paper's experiments are driven by the CAM-SE resolution parameter
``ne`` (spectral elements along each cube-face edge; Table 2 of the
paper), a vertical level count, a tracer count, and the process layout.
:class:`ModelConfig` captures these, provides the derived quantities
(element counts, timestep sizes, per-process work), and validates
consistency.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from . import constants as C
from .errors import ConfigurationError

# Paper Table 2: meshsize configurations.  ``ne`` -> total element count is
# always 6 * ne^2 horizontally; the paper uses 128 vertical levels.
PAPER_MESH_TABLE = {
    "ne64": 64,
    "ne256": 256,
    "ne512": 512,
    "ne1024": 1024,
    "ne2048": 2048,
    "ne4096": 4096,
}

#: CAM production resolutions referenced in the paper's SYPD results.
NAMED_RESOLUTIONS = {
    "ne30": 30,    # 100 km
    "ne120": 120,  # 25 km
    "ne256": 256,  # 12.5 km (NGGPS workload)
    "ne1024": 1024,  # ~3 km   (NGGPS extreme workload)
    "ne4096": 4096,  # ~750 m  (full-machine run)
}


def elements_for_ne(ne: int) -> int:
    """Total spectral elements on a cubed sphere with ``ne`` per face edge."""
    if ne < 2:
        raise ConfigurationError(f"ne must be >= 2, got {ne}")
    return 6 * ne * ne


def dt_dynamics_seconds(ne: int) -> float:
    """CFL-limited dynamics timestep [s] for resolution ``ne``.

    CAM-SE uses ~300 s at ne30 and scales timestep inversely with
    resolution (dt ~ dx).  This matches the configurations behind the
    paper's SYPD numbers (ne30: 21.5 SYPD, ne120: 3.4 SYPD).
    """
    return 300.0 * 30.0 / ne


@dataclass(frozen=True)
class ModelConfig:
    """A CAM-SE model configuration.

    Parameters
    ----------
    ne:
        Spectral elements along each cube-face edge.
    nlev:
        Vertical levels (128 in the paper's dycore experiments, 30 in the
        CAM validation runs).
    qsize:
        Number of advected tracers.
    np:
        GLL points per element edge (4 in production CAM-SE).
    tracer_subcycles:
        Tracer advection subcycles per dynamics step (3 in HOMME RK-SSP).
    physics:
        Whether the physics suite runs (whole-CAM experiments) or the
        configuration is dynamics-only (HOMME scaling experiments).
    """

    ne: int
    nlev: int = C.NLEV_PAPER
    qsize: int = C.QSIZE_CAM
    np: int = C.NP
    tracer_subcycles: int = C.TRACER_SUBCYCLES
    physics: bool = False

    def __post_init__(self) -> None:
        if self.ne < 2:
            raise ConfigurationError(f"ne must be >= 2, got {self.ne}")
        if self.nlev < 1:
            raise ConfigurationError(f"nlev must be >= 1, got {self.nlev}")
        if self.qsize < 0:
            raise ConfigurationError(f"qsize must be >= 0, got {self.qsize}")
        if self.np < 2:
            raise ConfigurationError(f"np must be >= 2, got {self.np}")
        if self.tracer_subcycles < 1:
            raise ConfigurationError(
                f"tracer_subcycles must be >= 1, got {self.tracer_subcycles}"
            )

    # -- derived sizes -----------------------------------------------------

    @property
    def nelem(self) -> int:
        """Total spectral elements (6 * ne^2)."""
        return elements_for_ne(self.ne)

    @property
    def columns(self) -> int:
        """Unique physics columns on the sphere.

        Each cube face contributes (ne*(np-1))^2 unique GLL columns after
        removing shared element edges; globally this is
        6*(ne*(np-1))^2 + 2 (the cube corners collapse).
        """
        n = self.ne * (self.np - 1)
        return 6 * n * n + 2

    @property
    def resolution_km(self) -> float:
        """Approximate equatorial grid spacing [km]."""
        return C.ne_resolution_km(self.ne)

    @property
    def dt_dynamics(self) -> float:
        """Dynamics timestep [s]."""
        return dt_dynamics_seconds(self.ne)

    @property
    def dt_physics(self) -> float:
        """Physics timestep [s] (DYN_STEPS_PER_PHYS dynamics steps)."""
        return self.dt_dynamics * C.DYN_STEPS_PER_PHYS

    @property
    def steps_per_day(self) -> int:
        """Dynamics steps per simulated day."""
        return int(round(C.SECONDS_PER_DAY / self.dt_dynamics))

    def dofs(self) -> int:
        """Total prognostic degrees of freedom (state variables x points)."""
        pts = self.nelem * self.np * self.np * self.nlev
        # u, v, T, dp3d plus qsize tracers
        return pts * (4 + self.qsize)

    # -- process layout ----------------------------------------------------

    def elements_per_process(self, nproc: int) -> int:
        """Elements on the busiest rank for an SFC partition over nproc."""
        if nproc < 1:
            raise ConfigurationError(f"nproc must be >= 1, got {nproc}")
        if nproc > self.nelem:
            raise ConfigurationError(
                f"{nproc} processes exceed {self.nelem} elements (ne={self.ne})"
            )
        return math.ceil(self.nelem / nproc)

    def with_(self, **kwargs) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class RunConfig:
    """A single experiment run: a model configuration plus machine layout.

    ``nproc`` is the number of MPI processes; on TaihuLight each process
    maps to one core group (1 MPE + 64 CPEs), so the core count is
    ``nproc * 65`` — matching the paper's "155,000 processes =
    10,075,000 cores" arithmetic.
    """

    model: ModelConfig
    nproc: int
    backend: str = "athread"
    simulated_days: float = 7.0

    def __post_init__(self) -> None:
        if self.nproc < 1:
            raise ConfigurationError(f"nproc must be >= 1, got {self.nproc}")
        if self.nproc > self.model.nelem:
            raise ConfigurationError(
                f"{self.nproc} processes exceed {self.model.nelem} elements"
            )
        if self.backend not in ("intel", "mpe", "openacc", "athread"):
            raise ConfigurationError(f"unknown backend {self.backend!r}")
        if self.simulated_days <= 0:
            raise ConfigurationError("simulated_days must be positive")

    @property
    def total_cores(self) -> int:
        """Sunway cores engaged: 65 per process (1 MPE + 64 CPEs)."""
        return self.nproc * (C.SW_CPES_PER_CG + C.SW_MPES_PER_CG)

    @property
    def nodes(self) -> int:
        """SW26010 nodes engaged (4 CGs per node)."""
        return math.ceil(self.nproc / C.SW_CORE_GROUPS)
