"""Performance models: flop counting, SYPD, and the scaling models.

- :mod:`~repro.perf.flops` — the paper's three flop-counting methods
  (static/assembly, PERF hardware counters, PAPI-on-Intel) and their
  cross-check;
- :mod:`~repro.perf.sypd` — simulated-years-per-day arithmetic;
- :mod:`~repro.perf.scaling` — the HOMME step-time model over real
  partitions (Figures 7/8) and the whole-CAM model (Figure 6);
- :mod:`~repro.perf.report` — paper-vs-measured comparison records.
"""

from .flops import FlopCount, count_static, count_perf, count_papi_intel
from .sypd import sypd_from_step_time, step_time_for_sypd
from .scaling import HommePerfModel, CAMPerfModel
from .report import ExperimentRecord, ComparisonTable

__all__ = [
    "FlopCount",
    "count_static",
    "count_perf",
    "count_papi_intel",
    "sypd_from_step_time",
    "step_time_for_sypd",
    "HommePerfModel",
    "CAMPerfModel",
    "ExperimentRecord",
    "ComparisonTable",
]
