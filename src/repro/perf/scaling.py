"""Step-time and scaling models for HOMME and the whole CAM.

:class:`HommePerfModel` predicts the simulated time of one dynamics
step for a (ne, nproc, backend) configuration:

    step = kernel_roofline x OVERHEAD + MPE_SERIAL + comm_visible

- the kernel term comes from the calibrated Table-1 backend models
  (:mod:`repro.backends`) evaluated at this run's elements/process;
- ``OVERHEAD`` covers the non-kernel work of prim_run (DSS bookkeeping,
  pack/unpack, limiters, diagnostics) — calibrated once against the
  paper's weak-scaling sustained rate (~22 GF/s per CG at 768
  elements/process) and reused everywhere;
- ``MPE_SERIAL`` is the per-step serial section on the management core
  (time-step control, MPI progress) — the granularity floor that bends
  the ne256 strong-scaling curve exactly as in Figure 7;
- communication uses the real SFC partition's halo statistics where the
  mesh is buildable, and the analytic surface-to-volume law beyond,
  with the overlap discipline of the redesigned bndry_exchangev.

:class:`CAMPerfModel` wraps the dynamics model with the physics-suite
cost and the serial/I-O terms of the full model (Figure 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import constants as C
from ..backends import ALL_BACKENDS
from ..backends.workloads import KERNELS, workload_for
from ..config import ModelConfig
from ..errors import ConfigurationError
from ..mesh.partition import SFCPartition
from ..network.costmodel import NetworkCostModel
from ..network.topology import TaihuLightTopology
from .sypd import sypd_from_step_time

#: Non-kernel fraction of prim_run (calibrated: 22 GF/s per CG sustained
#: at 768 elements/process, paper Figure 7 ne1024 at 8,192 processes).
HOMME_OVERHEAD_FACTOR = 3.2

#: Per-step serial MPE time [s] (time-step control, MPI progress,
#: bookkeeping) — sets the strong-scaling floor of Figure 7.
MPE_SERIAL_PER_STEP = 3.8e-3

#: MPE-side pack/unpack + DSS-weighting cost per boundary element per
#: step [s]: the MPE assembles all 11 exchange rounds' edge buffers
#: (~190 KB per boundary element) through its scalar cache path.
BOUNDARY_PACK_SECONDS = 1.0e-4

#: Per-doubling load-imbalance/jitter growth (OS noise, MPI stack) —
#: the slow weak-scaling efficiency decay of Figure 8.
JITTER_PER_DOUBLING = 0.010

#: Halo-exchange rounds per dynamics step: 3 RK DSS + 3x2 tracer stages
#: + 2 hyperviscosity sweeps (the "3 sub-cycles edge packing/unpacking
#: and boundary exchange" of Section 7.3 plus the rest of the step).
EXCHANGE_ROUNDS = 11

#: Field-levels exchanged per step: 3 RK x 4 state fields + 6 x Q
#: tracers + 2 x 5 hyperviscosity fields.
def _fields_per_step(qsize: int) -> float:
    return 12.0 + 6.0 * qsize + 10.0

#: Full-CAM per-element memory footprint [bytes] at 128 levels (state +
#: physics buffers + halo storage); reproduces the paper's observation
#: that ne1024 cannot start below 8,192 processes on 32 GB nodes.
BYTES_PER_ELEMENT_128LEV = 7.0e6

#: Exact-partition threshold: meshes up to this many elements build the
#: real SFC partition; larger ones use the analytic halo law.
EXACT_PARTITION_LIMIT = 1_600_000


@dataclass(frozen=True)
class HaloStats:
    """Per-rank halo summary used by the communication model."""

    boundary_edges: float      # element edges cut per rank (max-ish)
    neighbor_ranks: float      # neighbor rank count
    boundary_fraction: float   # fraction of local elements on the boundary


@lru_cache(maxsize=32)
def halo_stats(ne: int, nproc: int) -> HaloStats:
    """Halo statistics, exact (SFC partition) or analytic.

    The analytic law is the compact-patch surface-to-volume estimate: a
    rank with E elements exposes about ``4 sqrt(E)`` cut edges to about
    8 neighbor ranks.  Validated against exact partitions in the tests.
    """
    nelem = 6 * ne * ne
    if nproc > nelem:
        raise ConfigurationError(f"{nproc} ranks exceed {nelem} elements")
    E = nelem / nproc
    if nelem <= EXACT_PARTITION_LIMIT and nproc <= nelem:
        part = SFCPartition(ne, nproc)
        edges = np.mean(
            [sum(e for e, _ in h.neighbors.values()) for h in part.halos()]
        )
        nbrs = part.mean_neighbor_count()
        bfrac = part.mean_boundary_fraction()
        return HaloStats(float(edges), float(nbrs), float(bfrac))
    # Analytic laws fitted to exact SFC partitions (stable in E alone):
    # edges ~ 4.62 sqrt(E), boundary fraction ~ 4.3 / sqrt(E).
    edges = min(4.0 * E, 4.62 * math.sqrt(E))
    bfrac = min(1.0, 4.3 / math.sqrt(max(E, 1.0)))
    return HaloStats(edges, 7.0, bfrac)


class HommePerfModel:
    """Simulated per-step time of the HOMME dynamical core."""

    def __init__(
        self,
        ne: int,
        nproc: int,
        nlev: int = 128,
        qsize: int = 4,
        backend: str = "athread",
        overlap: bool = True,
        topology: TaihuLightTopology | None = None,
    ) -> None:
        if backend not in ALL_BACKENDS:
            raise ConfigurationError(f"unknown backend {backend!r}")
        self.cfg = ModelConfig(ne=ne, nlev=nlev, qsize=qsize)
        if nproc > self.cfg.nelem:
            raise ConfigurationError(
                f"{nproc} processes exceed {self.cfg.nelem} elements"
            )
        self.ne = ne
        self.nproc = nproc
        self.backend_name = backend
        self.backend = ALL_BACKENDS[backend]()
        self.overlap = overlap
        nodes = max(1, math.ceil(nproc / C.SW_CORE_GROUPS))
        if topology is None:
            topology = TaihuLightTopology(nodes=max(nodes, 1))
        self.net = NetworkCostModel(topology)

        self._check_memory()
        self.elems_per_proc = math.ceil(self.cfg.nelem / nproc)
        self.halo = halo_stats(ne, nproc)
        self._kernel_seconds = self._compute_kernel_seconds()

    # -- feasibility ---------------------------------------------------------

    def _check_memory(self) -> None:
        """The 32 GB/node constraint (Figure 7's ne1024 start at 8,192)."""
        elems_per_node = self.cfg.nelem / max(1, self.nproc) * C.SW_CORE_GROUPS
        bytes_per_elem = BYTES_PER_ELEMENT_128LEV * self.cfg.nlev / 128.0
        needed = elems_per_node * bytes_per_elem
        if needed > C.SW_MEMORY_BYTES:
            raise ConfigurationError(
                f"ne{self.ne} at {self.nproc} processes needs "
                f"{needed / 1e9:.0f} GB per node (> 32 GB); increase nproc"
            )

    # -- components ------------------------------------------------------------

    def _compute_kernel_seconds(self) -> float:
        total = 0.0
        for k in KERNELS:
            wl = workload_for(k, self.cfg, self.elems_per_proc, steps=1)
            total += self.backend.execute(wl).seconds
        return total

    @property
    def compute_seconds(self) -> float:
        """Per-step compute including the non-kernel overhead factor."""
        return self._kernel_seconds * HOMME_OVERHEAD_FACTOR

    @property
    def comm_bytes_per_step(self) -> float:
        """Halo bytes one rank sends per dynamics step."""
        per_edge = self.cfg.np * self.cfg.nlev * 8.0
        return self.halo.boundary_edges * per_edge * _fields_per_step(self.cfg.qsize)

    @property
    def comm_seconds_raw(self) -> float:
        """Un-overlapped communication time per step."""
        if self.nproc == 1:
            return 0.0
        bw = self.net.beta(2 if self.nproc > 1024 else 1)
        t_bw = self.comm_bytes_per_step / bw
        alpha = self.net.alpha(2 if self.nproc > 1024 else 1)
        t_lat = EXCHANGE_ROUNDS * alpha * max(1.0, self.halo.neighbor_ranks / 2.0)
        t_allreduce = self.net.allreduce_time(self.nproc, 8)
        return t_bw + t_lat + t_allreduce

    @property
    def boundary_elements(self) -> float:
        """Boundary elements per rank (pack/unpack workload)."""
        return self.halo.boundary_fraction * self.elems_per_proc

    @property
    def pack_seconds(self) -> float:
        """MPE-side edge pack/unpack + DSS weighting per step.

        The classic bndry_exchangev pays the redundant pack-buffer copy
        (2x); the redesigned direct unpack pays it once (Section 7.6).
        """
        per = BOUNDARY_PACK_SECONDS * self.boundary_elements
        return per if self.overlap else 2.0 * per

    @property
    def comm_seconds_visible(self) -> float:
        """Communication cost after (optional) overlap with inner work."""
        raw = self.comm_seconds_raw
        if not self.overlap:
            # Classic bndry_exchangev: network time fully exposed.
            return raw + self.pack_seconds
        inner = self.compute_seconds * (1.0 - self.halo.boundary_fraction)
        return max(0.0, raw - inner) + self.pack_seconds

    @property
    def jitter_factor(self) -> float:
        """Load-imbalance / jitter multiplier, growing with scale."""
        return 1.0 + JITTER_PER_DOUBLING * math.log2(max(2, self.nproc))

    @property
    def step_seconds(self) -> float:
        """Wall seconds per dynamics step (the slowest rank)."""
        base = self.compute_seconds + MPE_SERIAL_PER_STEP + self.comm_seconds_visible
        return base * self.jitter_factor

    # -- headline numbers ---------------------------------------------------------

    @property
    def flops_per_step(self) -> float:
        """Retired DP flops per step over all ranks (PERF counting)."""
        per_rank = sum(
            workload_for(k, self.cfg, self.elems_per_proc, steps=1).flops
            for k in KERNELS
        )
        # The last rank may own fewer elements; count actual totals.
        return per_rank / self.elems_per_proc * self.cfg.nelem

    @property
    def sustained_flops(self) -> float:
        """Sustained flop rate [flop/s] of the whole run."""
        return self.flops_per_step / self.step_seconds

    @property
    def pflops(self) -> float:
        return self.sustained_flops / 1e15

    def sypd(self) -> float:
        """Simulated years per day for this dynamics configuration."""
        return sypd_from_step_time(self.step_seconds, self.cfg.dt_dynamics)

    def parallel_efficiency(self, baseline: "HommePerfModel") -> float:
        """Efficiency vs a smaller run of the same problem (Figure 7/8)."""
        ideal = baseline.sustained_flops * self.nproc / baseline.nproc
        return self.sustained_flops / ideal


class CAMPerfModel:
    """Whole-CAM wall time per simulated day (Figure 6).

    The whole model is dynamics + physics + serialized glue:

        t_day = IO + steps * floor + phys_work * F(b) + dyn_work * F(b)

    - **physics** runs on its own 1800 s timestep (48 steps/day at every
      resolution — the CAM convention), with a per-column-level cost far
      above the dycore's (radiation, microphysics, ...);
    - **dynamics** runs ``steps_per_day`` CFL-limited steps;
    - **floor** is the per-dynamics-step serial section (MPE control,
      communication latency) that caps strong scaling;
    - **IO** is the serialized daily history write, proportional to the
      global column count (why ne120's absolute SYPD is so much lower);
    - ``F(b)`` is the whole-model backend factor.  The paper reports
      whole-model gains of only 1.4-1.5x (OpenACC) and a further
      1.1-1.4x (Athread) despite 22x kernel speedups — the hundreds of
      modules without hot spots dilute the wins — so the factors here
      are aggregate: mpe 1.0, openacc 0.667, athread 0.5.

    The four cost constants are solved analytically from the paper's
    two headline anchors (ne30 athread at 5,400 processes = 21.5 SYPD;
    ne120 OpenACC at 28,800 = 3.4 SYPD) and then *fixed* — every other
    point of Figure 6 is a prediction.
    """

    #: MPE-scale cost per (column, level, physics step) [s].
    KP_MPE = 1.01e-3
    #: MPE-scale cost per (column, level, dynamics step) [s].
    KD_MPE = 2.98e-5
    #: Per-dynamics-step serial floor [s].
    STEP_FLOOR = 8.0e-3
    #: Serialized I/O seconds per global column per simulated day.
    IO_PER_COLUMN = 2.0e-5
    #: Physics steps per simulated day (1800 s physics timestep).
    PHYS_STEPS_PER_DAY = 48
    #: Whole-model backend factors (aggregate Amdahl outcome).
    BACKEND_FACTOR = {"mpe": 1.0, "openacc": 0.667, "athread": 0.5}

    def __init__(
        self,
        ne: int,
        nproc: int,
        nlev: int = C.NLEV_CAM,
        qsize: int = C.QSIZE_CAM,
        backend: str = "athread",
    ) -> None:
        if backend not in self.BACKEND_FACTOR:
            raise ConfigurationError(
                f"whole-CAM model supports {sorted(self.BACKEND_FACTOR)}, "
                f"got {backend!r}"
            )
        self.cfg = ModelConfig(ne=ne, nlev=nlev, qsize=qsize, physics=True)
        if nproc > self.cfg.nelem:
            raise ConfigurationError(
                f"{nproc} processes exceed {self.cfg.nelem} elements"
            )
        self.ne = ne
        self.nproc = nproc
        self.backend = backend

    @property
    def columns_per_rank(self) -> float:
        return self.cfg.columns / self.nproc

    @property
    def dyn_steps_per_day(self) -> float:
        return C.SECONDS_PER_DAY / self.cfg.dt_dynamics

    @property
    def work_seconds_mpe(self) -> float:
        """Per-day parallel work at MPE speed (physics + dynamics)."""
        cl = self.columns_per_rank * self.cfg.nlev
        phys = cl * self.PHYS_STEPS_PER_DAY * self.KP_MPE
        dyn = cl * self.dyn_steps_per_day * self.KD_MPE
        return phys + dyn

    @property
    def day_seconds(self) -> float:
        """Wall seconds per simulated day."""
        io = self.cfg.columns * self.IO_PER_COLUMN
        floor = self.dyn_steps_per_day * self.STEP_FLOOR
        work = self.work_seconds_mpe * self.BACKEND_FACTOR[self.backend]
        return io + floor + work

    def sypd(self) -> float:
        return C.SECONDS_PER_DAY / (self.day_seconds * C.DAYS_PER_YEAR)
