"""Paper-vs-measured comparison records.

Every experiment driver emits :class:`ExperimentRecord` rows; the
benchmark harness renders them and EXPERIMENTS.md archives them.  A
record carries the *shape criterion* it is judged by (ordering, ratio
band, efficiency band) rather than absolute agreement, per the
reproduction policy in DESIGN.md Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.tables import render_table


@dataclass
class ExperimentRecord:
    """One paper-vs-measured comparison."""

    experiment: str          # "table1", "figure7", ...
    quantity: str            # "euler_step openacc seconds", "SYPD ne30", ...
    paper_value: float
    measured_value: float
    criterion: str = "ratio"  # free-text description of the shape check
    tolerance: float = 0.5    # |measured/paper - 1| bound for "pass"

    @property
    def ratio(self) -> float:
        if self.paper_value == 0:
            return float("inf")
        return self.measured_value / self.paper_value

    @property
    def ratio_text(self) -> str:
        """Rendered ratio; a zero paper value is judged absolutely, so
        the ratio is meaningless — render a sentinel, never ``inf``."""
        if self.paper_value == 0:
            return "n/a (abs)"
        return f"{self.ratio:.2f}"

    @property
    def passed(self) -> bool:
        if self.paper_value == 0:
            # Absolute criterion: measured must be within tolerance of 0.
            return abs(self.measured_value) <= self.tolerance
        return abs(self.ratio - 1.0) <= self.tolerance


class ComparisonTable:
    """A collection of records with rendering and summary helpers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: list[ExperimentRecord] = []

    def add(
        self,
        quantity: str,
        paper: float,
        measured: float,
        criterion: str = "ratio",
        tolerance: float = 0.5,
    ) -> ExperimentRecord:
        rec = ExperimentRecord(self.name, quantity, paper, measured, criterion, tolerance)
        self.records.append(rec)
        return rec

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.records)

    def render(self) -> str:
        rows = [
            [r.quantity, r.paper_value, r.measured_value, r.ratio_text,
             "pass" if r.passed else "MISS"]
            for r in self.records
        ]
        return render_table(
            ["quantity", "paper", "measured", "ratio", "verdict"],
            rows,
            title=f"{self.name}: paper vs measured",
        )

    def markdown(self) -> str:
        """Markdown table for EXPERIMENTS.md."""
        lines = [
            f"### {self.name}",
            "",
            "| quantity | paper | measured | ratio | verdict |",
            "|---|---|---|---|---|",
        ]
        for r in self.records:
            lines.append(
                f"| {r.quantity} | {r.paper_value:.4g} | {r.measured_value:.4g} "
                f"| {r.ratio_text} | {'pass' if r.passed else 'MISS'} |"
            )
        return "\n".join(lines)
