"""The paper's three flop-counting methods (Section 8.1.1).

1. **Static**: "manually counting all double-precision arithmetic
   instructions in the assembly code" — here, the analytic workload
   model;
2. **PERF**: "using [the] hardware performance monitor ... to collect
   the retired double-precision arithmetic instructions on the CPE
   cluster" — here, the simulator's
   :class:`~repro.sunway.perf.PerfCounters`;
3. **PAPI**: "running the same MPE-only version ... on an Intel
   platform, and using PAPI" — which the paper found reads *higher*
   (x87/compiler differences); we model the documented inflation.

The paper adopts method 2; :func:`cross_check` verifies the three agree
the way the paper reports (1 == 2, 3 a few percent higher).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.base import KernelWorkload
from ..sunway.perf import PerfCounters

#: PAPI-on-Intel inflation over retired-DP counts (platform difference:
#: divide/sqrt expansions and compiler-generated spills count extra ops).
PAPI_INFLATION = 1.06


@dataclass(frozen=True)
class FlopCount:
    """One flop measurement: the method and the count."""

    method: str
    flops: float

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError("flop count cannot be negative")


def count_static(workloads: dict[str, KernelWorkload]) -> FlopCount:
    """Method 1: sum the statically analyzed DP operation counts."""
    return FlopCount("static", sum(w.flops for w in workloads.values()))


def count_perf(counters: PerfCounters) -> FlopCount:
    """Method 2: read the retired-DP counter of the CPE cluster."""
    return FlopCount("perf", float(counters.dp_flops))


def count_papi_intel(workloads: dict[str, KernelWorkload]) -> FlopCount:
    """Method 3: the PAPI measurement of the same code on Intel."""
    return FlopCount("papi", sum(w.flops for w in workloads.values()) * PAPI_INFLATION)


def cross_check(
    static: FlopCount, perf: FlopCount, papi: FlopCount, tol: float = 0.02
) -> dict[str, bool]:
    """The paper's consistency check between the three methods.

    "The result from the third method is higher, while the other two
    methods are almost identical with each other."
    """
    if static.flops == 0:
        raise ValueError("cannot cross-check a zero count")
    return {
        "static_matches_perf": abs(static.flops - perf.flops) / static.flops <= tol,
        "papi_reads_higher": papi.flops > static.flops,
        "adopted_method": "perf",
    }
