"""Exascale projection: the paper's Section 10 discussion, made runnable.

The paper closes by arguing that its redesign methodology transfers to
"the soon-arriving Exa-scale supercomputers".  This module projects the
calibrated CAM-SE models onto hypothetical successor machines: scale
the SW26010's compute, bandwidth, and scratchpad; scale the network;
and re-evaluate the same step-time model.  The projections make the
paper's qualitative warnings quantitative:

- compute grows faster than bandwidth, so the roofline ridge moves
  right and the traffic-minimizing redesign matters *more*;
- fixed-size (strong-scaled) climate problems hit the serial floor, so
  SYPD saturates even on a 10x machine — the "simulation speed wall"
  the climate community worries about.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sunway.spec import SW26010Spec, DEFAULT_SPEC
from .scaling import HommePerfModel

#: A plausible exascale successor recipe (vendor roadmap shape):
#: compute x12 per chip, bandwidth x4 (HBM), LDM x4, same network alpha,
#: link bandwidth x4.
EXA_COMPUTE_FACTOR = 12.0
EXA_BANDWIDTH_FACTOR = 4.0
EXA_LDM_FACTOR = 4.0


def exascale_spec(
    compute: float = EXA_COMPUTE_FACTOR,
    bandwidth: float = EXA_BANDWIDTH_FACTOR,
    ldm: float = EXA_LDM_FACTOR,
    base: SW26010Spec = DEFAULT_SPEC,
) -> SW26010Spec:
    """A scaled successor of the SW26010."""
    if compute <= 0 or bandwidth <= 0 or ldm <= 0:
        raise ValueError("scale factors must be positive")
    return replace(
        base,
        clock_hz=base.clock_hz * compute ** 0.25,       # modest clock bump
        flops_per_cycle=max(1, int(round(base.flops_per_cycle * compute ** 0.75))),
        memory_bandwidth=base.memory_bandwidth * bandwidth,
        ldm_bytes=int(base.ldm_bytes * ldm),
    )


@dataclass(frozen=True)
class ExascaleProjection:
    """Today-vs-successor comparison for one configuration."""

    ne: int
    nproc: int
    today_pflops: float
    exa_pflops: float
    today_sypd: float
    exa_sypd: float

    @property
    def pflops_gain(self) -> float:
        return self.exa_pflops / self.today_pflops

    @property
    def sypd_gain(self) -> float:
        return self.exa_sypd / self.today_sypd


def project(
    ne: int,
    nproc: int,
    compute: float = EXA_COMPUTE_FACTOR,
    bandwidth: float = EXA_BANDWIDTH_FACTOR,
) -> ExascaleProjection:
    """Project one HOMME configuration onto the successor machine.

    The projection reuses the calibrated step-time model with the chip
    roofline scaled; serial floors and network latency stay (they are
    the part hardware roadmaps do not fix).
    """
    today = HommePerfModel(ne, nproc)
    spec = exascale_spec(compute, bandwidth)
    exa = HommePerfModel(ne, nproc)
    # Rescale the kernel term by the successor roofline: the calibrated
    # mix is bandwidth-bound, so it accelerates by ~the bandwidth factor
    # with a compute-bound cap.
    kf = min(bandwidth, compute)
    exa._kernel_seconds = today._kernel_seconds / kf
    return ExascaleProjection(
        ne=ne,
        nproc=nproc,
        today_pflops=today.pflops,
        exa_pflops=exa.pflops,
        today_sypd=today.sypd(),
        exa_sypd=exa.sypd(),
    )


def speed_wall_analysis(ne: int = 1024, nproc: int = 131072) -> dict[str, float]:
    """How much of the step survives a 100x chip? (the paper's warning)

    Returns the limiting fractions: with infinitely fast chips, step
    time collapses to the serial floor + communication — the hard wall
    for time-to-solution.
    """
    m = HommePerfModel(ne, nproc)
    total = m.step_seconds
    irreducible = (m.step_seconds - m.compute_seconds * m.jitter_factor)
    return {
        "step_seconds": total,
        "compute_fraction": m.compute_seconds * m.jitter_factor / total,
        "irreducible_seconds": irreducible,
        "max_speedup_infinite_chip": total / max(irreducible, 1e-12),
    }
