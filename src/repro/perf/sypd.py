"""Simulated-years-per-day arithmetic (paper Section 8.1.2).

The paper measures the wall time per simulated day t_D (found stable
across runs) and reports SYPD = 86400 / (t_D * 365).
"""

from __future__ import annotations

from .. import constants as C


def sypd_from_day_time(t_day_seconds: float) -> float:
    """SYPD from the wall seconds per simulated day."""
    if t_day_seconds <= 0:
        raise ValueError("t_day must be positive")
    return C.SECONDS_PER_DAY / (t_day_seconds * C.DAYS_PER_YEAR)


def sypd_from_step_time(step_seconds: float, dt_seconds: float) -> float:
    """SYPD from per-step wall time and the model timestep."""
    if step_seconds <= 0 or dt_seconds <= 0:
        raise ValueError("times must be positive")
    steps_per_day = C.SECONDS_PER_DAY / dt_seconds
    return sypd_from_day_time(step_seconds * steps_per_day)


def step_time_for_sypd(sypd: float, dt_seconds: float) -> float:
    """Inverse: the per-step wall time that yields a target SYPD."""
    if sypd <= 0 or dt_seconds <= 0:
        raise ValueError("inputs must be positive")
    t_day = C.SECONDS_PER_DAY / (sypd * C.DAYS_PER_YEAR)
    return t_day / (C.SECONDS_PER_DAY / dt_seconds)
