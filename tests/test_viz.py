"""Tests for the ASCII map renderer."""

import numpy as np
import pytest

from repro.mesh import CubedSphereMesh
from repro.utils.viz import ascii_map, latlon_grid


@pytest.fixture(scope="module")
def mesh():
    return CubedSphereMesh(ne=4)


class TestLatlonGrid:
    def test_constant_field_constant_grid(self, mesh):
        g = latlon_grid(mesh, np.full(mesh.lat.shape, 5.0))
        assert np.allclose(g, 5.0)

    def test_zonal_gradient_preserved(self, mesh):
        g = latlon_grid(mesh, np.sin(mesh.lat), nlat=12)
        # South rows below north rows.
        assert g[0].mean() < g[-1].mean()

    def test_shape_validation(self, mesh):
        with pytest.raises(ValueError):
            latlon_grid(mesh, np.zeros((3, 4, 4)))

    def test_no_nans(self, mesh):
        g = latlon_grid(mesh, np.cos(mesh.lon), nlat=30, nlon=90)
        assert np.isfinite(g).all()


class TestAsciiMap:
    def test_renders_rows(self, mesh):
        out = ascii_map(mesh, np.sin(mesh.lat), nlat=10, nlon=40, title="T")
        lines = out.splitlines()
        assert len(lines) == 11  # title + rows
        assert all(len(ln) == 40 for ln in lines[1:])

    def test_extremes_use_ramp_ends(self, mesh):
        out = ascii_map(mesh, np.sin(mesh.lat), nlat=10, nlon=40)
        assert "@" in out and " " in out

    def test_marker_drawn(self, mesh):
        out = ascii_map(
            mesh, np.zeros(mesh.lat.shape), nlat=10, nlon=40,
            marker=(23.0, -75.0),
        )
        assert "X" in out

    def test_title_includes_range(self, mesh):
        out = ascii_map(mesh, np.sin(mesh.lat), title="field")
        assert "field" in out.splitlines()[0]
