"""Tests for the functional Algorithm-1/Algorithm-2 executions on the
simulated CPE (the mechanism behind the 10% traffic claim)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.functional_exec import (
    AthreadStyleExecution,
    MiniWorkload,
    OpenACCStyleExecution,
    _reference_update,
    traffic_comparison,
)
from repro.errors import LDMOverflowError
from repro.sunway.spec import SW26010Spec


class TestMiniWorkload:
    def test_random_shapes(self):
        wl = MiniWorkload.random(qsize=4, nlev=8, points=16)
        assert wl.qdp.shape == (4, 8, 16)
        assert wl.vstar.shape == (8, 16)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MiniWorkload(
                qdp=np.ones((2, 4, 8)), vstar=np.ones((4, 4)), dp=np.ones((4, 8))
            )


class TestNumericalEquivalence:
    def test_openacc_matches_reference(self):
        wl = MiniWorkload.random(qsize=3)
        out = OpenACCStyleExecution().run(wl)
        assert np.allclose(out, _reference_update(wl))

    def test_athread_matches_reference(self):
        wl = MiniWorkload.random(qsize=3)
        out = AthreadStyleExecution().run(wl)
        assert np.allclose(out, _reference_update(wl))

    def test_bit_identical_disciplines(self):
        """The redesign changes data movement, not results."""
        wl = MiniWorkload.random(qsize=6)
        a = OpenACCStyleExecution().run(wl)
        b = AthreadStyleExecution().run(wl)
        assert np.array_equal(a, b)

    def test_multipass_matches_reference(self):
        wl = MiniWorkload.random(qsize=4)
        out = AthreadStyleExecution(passes=3).run(wl)
        assert np.allclose(out, _reference_update(wl, passes=3))

    @given(q=st.integers(1, 8), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property(self, q, seed):
        wl = MiniWorkload.random(qsize=q, seed=seed)
        a = OpenACCStyleExecution().run(wl)
        b = AthreadStyleExecution().run(wl)
        assert np.array_equal(a, b)


class TestTraffic:
    def test_athread_moves_fewer_bytes(self):
        wl = MiniWorkload.random(qsize=8)
        res = traffic_comparison(wl)
        assert res["traffic_ratio"] < 0.75

    def test_paper_configuration_hits_10_percent(self):
        """Q=25 tracers x 5 loop nests: the paper's measured ~10%."""
        wl = MiniWorkload.random(qsize=25)
        res = traffic_comparison(wl, passes=5)
        assert res["traffic_ratio"] == pytest.approx(0.10, abs=0.03)
        assert res["bit_identical"]

    def test_ratio_improves_with_tracers(self):
        r4 = traffic_comparison(MiniWorkload.random(qsize=4), passes=3)
        r16 = traffic_comparison(MiniWorkload.random(qsize=16), passes=3)
        assert r16["traffic_ratio"] < r4["traffic_ratio"]

    def test_openacc_traffic_scales_with_passes(self):
        wl = MiniWorkload.random(qsize=4)
        a1 = OpenACCStyleExecution(passes=1)
        a1.run(wl)
        a3 = OpenACCStyleExecution(passes=3)
        a3.run(wl)
        assert a3.dma_bytes == pytest.approx(3 * a1.dma_bytes, rel=1e-9)

    def test_athread_traffic_independent_of_passes(self):
        wl = MiniWorkload.random(qsize=4)
        a1 = AthreadStyleExecution(passes=1)
        a1.run(wl)
        a3 = AthreadStyleExecution(passes=3)
        a3.run(wl)
        assert a3.dma_bytes == a1.dma_bytes


class TestHardwareConstraints:
    def test_ldm_returns_to_empty(self):
        wl = MiniWorkload.random(qsize=4)
        ex = AthreadStyleExecution()
        ex.run(wl)
        assert ex.cpe.ldm.used == 0

    def test_tiles_too_big_for_ldm_raise(self):
        wl = MiniWorkload.random(qsize=2, nlev=64, points=64)  # 32 KB/tile
        with pytest.raises(LDMOverflowError):
            AthreadStyleExecution().run(wl)

    def test_small_spec_rejects_standard_tiles(self):
        spec = SW26010Spec(ldm_bytes=2048)
        wl = MiniWorkload.random(qsize=2)
        with pytest.raises(LDMOverflowError):
            AthreadStyleExecution(spec).run(wl)

    def test_vector_unit_counted_flops(self):
        wl = MiniWorkload.random(qsize=2)
        ex = AthreadStyleExecution()
        ex.run(wl)
        assert ex.cpe.vector.flops > 0
