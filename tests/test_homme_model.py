"""Integration tests: shallow-water verification, prim_run stability,
and the distributed boundary exchange."""

import numpy as np
import pytest

from repro import constants as C
from repro.config import ModelConfig
from repro.errors import KernelError
from repro.homme.bndry import HaloExchanger
from repro.homme.shallow_water import ShallowWaterModel, williamson2_initial
from repro.homme.timestep import PrimitiveEquationModel, RSPLIT
from repro.mesh import CubedSphereMesh, SFCPartition
from repro.network import SimMPI


class TestShallowWater:
    @pytest.fixture(scope="class")
    def run12h(self):
        mesh = CubedSphereMesh(ne=6)
        model = ShallowWaterModel(mesh)
        ref = williamson2_initial(mesh)
        m0 = model.total_mass()
        model.run_hours(12)
        return model, ref, m0

    def test_williamson2_height_error_small(self, run12h):
        model, ref, _ = run12h
        # Steady state: L2 height error stays at discretization level.
        assert model.height_l2_error(ref) < 1e-3

    def test_mass_exactly_conserved(self, run12h):
        model, _, m0 = run12h
        assert abs(model.total_mass() - m0) / m0 < 1e-13

    def test_state_bounded(self, run12h):
        model, ref, _ = run12h
        assert np.isfinite(model.state.h).all()
        assert abs(model.state.h.max() - ref.h.max()) / ref.h.max() < 0.01

    def test_cfl_derived_dt(self):
        mesh = CubedSphereMesh(ne=4)
        model = ShallowWaterModel(mesh)
        c = np.sqrt(C.GRAVITY * model.state.h.max())
        dx = 2 * np.pi * mesh.radius / (4 * 4 * 3)
        assert model.dt <= 0.3 * dx / c


class TestPrimitiveEquationModel:
    def test_rest_state_stays_at_rest(self):
        cfg = ModelConfig(ne=4, nlev=8, qsize=1)
        model = PrimitiveEquationModel(cfg, dt=600.0)
        model.run_steps(5)
        d = model.diagnostics()
        assert d["max_wind"] < 1e-10
        assert d["finite"] == 1.0

    def test_mass_conservation_with_noise(self):
        cfg = ModelConfig(ne=4, nlev=8, qsize=1)
        model = PrimitiveEquationModel(cfg, dt=600.0)
        rng = np.random.default_rng(0)
        model.state.T = model.geom.dss(model.state.T + rng.standard_normal(model.state.T.shape))
        m0 = model.diagnostics()["mass"]
        model.run_steps(RSPLIT * 4)  # through several remap cycles
        d = model.diagnostics()
        assert d["finite"] == 1.0
        assert abs(d["mass"] - m0) / m0 < 1e-9

    def test_winds_develop_from_temperature_noise(self):
        cfg = ModelConfig(ne=4, nlev=8, qsize=1)
        model = PrimitiveEquationModel(cfg, dt=600.0)
        rng = np.random.default_rng(1)
        model.state.T = model.geom.dss(model.state.T + rng.standard_normal(model.state.T.shape))
        model.run_steps(20)
        d = model.diagnostics()
        assert 0 < d["max_wind"] < 50.0
        assert 9.5e4 < d["ps_min"] and d["ps_max"] < 1.1e5

    def test_remap_happens_every_rsplit(self):
        cfg = ModelConfig(ne=4, nlev=8, qsize=1)
        model = PrimitiveEquationModel(cfg, dt=600.0)
        rng = np.random.default_rng(2)
        model.state.T = model.geom.dss(model.state.T + rng.standard_normal(model.state.T.shape))
        model.run_steps(RSPLIT)
        # Right after a remap, dp3d is uniform per column.
        spread = model.state.dp3d.max(axis=1) - model.state.dp3d.min(axis=1)
        assert np.abs(spread).max() < 1e-9

    def test_forcing_hook_called(self):
        calls = []

        def forcing(state, geom, t, dt):
            calls.append(t)
            state.T += 0.0

        cfg = ModelConfig(ne=4, nlev=8, qsize=0)
        model = PrimitiveEquationModel(cfg, dt=600.0, forcing=forcing)
        model.run_steps(3)
        assert len(calls) == 3

    def test_mesh_mismatch_rejected(self):
        mesh = CubedSphereMesh(ne=6)
        with pytest.raises(KernelError):
            PrimitiveEquationModel(ModelConfig(ne=4, nlev=8), mesh=mesh)

    def test_run_days(self):
        cfg = ModelConfig(ne=4, nlev=8, qsize=0)
        model = PrimitiveEquationModel(cfg, dt=1800.0, hypervis=False)
        model.run_days(0.125)
        assert model.t == pytest.approx(0.125 * 86400)


class TestHaloExchanger:
    @pytest.fixture(scope="class")
    def setup(self):
        mesh = CubedSphereMesh(ne=4)
        part = SFCPartition(4, 8)
        return mesh, part, HaloExchanger(mesh, part)

    @pytest.fixture
    def make_mpi(self):
        """Communicator factory whose teardown verifies the mailbox
        drained — a leaked message (mismatched tag) fails the test."""
        comms = []

        def _make(nranks=8):
            mpi = SimMPI(nranks)
            comms.append(mpi)
            return mpi

        yield _make
        for mpi in comms:
            mpi.finalize()

    def test_matches_serial_dss_scalar(self, setup, make_mpi):
        mesh, part, hx = setup
        f = np.random.default_rng(0).standard_normal((mesh.nelem, 4, 4))
        outs, _ = hx.exchange(hx.scatter(f), make_mpi(), mode="classic")
        assert np.allclose(hx.gather(outs), mesh.dss(f), atol=1e-13)

    def test_matches_serial_dss_multifield(self, setup, make_mpi):
        mesh, part, hx = setup
        f = np.random.default_rng(1).standard_normal((mesh.nelem, 4, 4, 3))
        outs, _ = hx.exchange(hx.scatter(f), make_mpi(), mode="overlap")
        assert np.allclose(hx.gather(outs), mesh.dss(f), atol=1e-13)

    def test_classic_equals_overlap_numerically(self, setup, make_mpi):
        mesh, part, hx = setup
        f = np.random.default_rng(2).standard_normal((mesh.nelem, 4, 4))
        a, _ = hx.exchange(hx.scatter(f), make_mpi(), mode="classic")
        b, _ = hx.exchange(hx.scatter(f), make_mpi(), mode="overlap")
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_overlap_hides_communication(self, setup, make_mpi):
        mesh, part, hx = setup
        f = np.random.default_rng(3).standard_normal((mesh.nelem, 4, 4, 8))
        # Generous inner work so messages are fully hidden.
        inner = [5e-3] * 8
        bdry = [1e-3] * 8
        _, rep_c = hx.exchange(
            hx.scatter(f), make_mpi(), mode="classic",
            boundary_compute=bdry, inner_compute=inner,
        )
        _, rep_o = hx.exchange(
            hx.scatter(f), make_mpi(), mode="overlap",
            boundary_compute=bdry, inner_compute=inner,
        )
        assert rep_o.max_time < rep_c.max_time

    def test_classic_has_double_memcpy(self, setup, make_mpi):
        mesh, part, hx = setup
        f = np.random.default_rng(4).standard_normal((mesh.nelem, 4, 4))
        _, rep_c = hx.exchange(hx.scatter(f), make_mpi(), mode="classic")
        _, rep_o = hx.exchange(hx.scatter(f), make_mpi(), mode="overlap")
        assert rep_c.memcpy_seconds == pytest.approx(2 * rep_o.memcpy_seconds)

    def test_wrong_communicator_size(self, setup):
        mesh, part, hx = setup
        f = np.zeros((mesh.nelem, 4, 4))
        with pytest.raises(KernelError):
            hx.exchange(hx.scatter(f), SimMPI(4))

    def test_unknown_mode(self, setup):
        mesh, part, hx = setup
        f = np.zeros((mesh.nelem, 4, 4))
        with pytest.raises(KernelError):
            hx.exchange(hx.scatter(f), SimMPI(8), mode="magic")

    def test_scatter_gather_roundtrip(self, setup):
        mesh, part, hx = setup
        f = np.random.default_rng(5).standard_normal((mesh.nelem, 4, 4))
        assert np.array_equal(hx.gather(hx.scatter(f)), f)
