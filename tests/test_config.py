"""Tests for repro.config: resolution table, derived sizes, validation."""


import pytest

from repro.config import (
    ModelConfig,
    RunConfig,
    PAPER_MESH_TABLE,
    elements_for_ne,
    dt_dynamics_seconds,
)
from repro.errors import ConfigurationError


class TestElementsForNe:
    def test_paper_table2_counts(self):
        # Paper Table 2: ne -> total elements.
        expected = {
            64: 24_576,
            256: 393_216,
            512: 1_572_864,
            1024: 6_291_456,
            2048: 25_165_824,
            4096: 100_663_296,
        }
        for ne, count in expected.items():
            assert elements_for_ne(ne) == count

    def test_mesh_table_matches_names(self):
        for name, ne in PAPER_MESH_TABLE.items():
            assert name == f"ne{ne}"

    def test_rejects_tiny_ne(self):
        with pytest.raises(ConfigurationError):
            elements_for_ne(1)


class TestModelConfig:
    def test_ne30_is_100km_class(self):
        cfg = ModelConfig(ne=30)
        assert 90 <= cfg.resolution_km <= 120

    def test_ne120_is_25km_class(self):
        cfg = ModelConfig(ne=120)
        assert 22 <= cfg.resolution_km <= 30

    def test_ne4096_is_750m_class(self):
        cfg = ModelConfig(ne=4096)
        assert 0.6 <= cfg.resolution_km <= 0.9

    def test_nelem(self):
        assert ModelConfig(ne=30).nelem == 5400
        assert ModelConfig(ne=120).nelem == 86400

    def test_columns_ne30(self):
        # CAM-SE ne30np4 has 48,602 physics columns (paper Section 8.2).
        assert ModelConfig(ne=30).columns == 48_602

    def test_timestep_scales_inversely(self):
        assert dt_dynamics_seconds(30) == pytest.approx(300.0)
        assert dt_dynamics_seconds(120) == pytest.approx(75.0)
        assert dt_dynamics_seconds(240) == pytest.approx(37.5)

    def test_steps_per_day(self):
        cfg = ModelConfig(ne=30)
        assert cfg.steps_per_day == 288

    def test_dofs_positive_and_scales_with_tracers(self):
        a = ModelConfig(ne=4, nlev=8, qsize=0)
        b = ModelConfig(ne=4, nlev=8, qsize=4)
        assert b.dofs() == a.dofs() * 2  # 4 state vars + 4 tracers vs 4

    def test_elements_per_process(self):
        cfg = ModelConfig(ne=256)
        # Paper Table 1 context: 6144 processes over ne256 -> 64 elems each.
        assert cfg.elements_per_process(6144) == 64

    def test_too_many_processes_rejected(self):
        cfg = ModelConfig(ne=4)
        with pytest.raises(ConfigurationError):
            cfg.elements_per_process(cfg.nelem + 1)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(ne=1)
        with pytest.raises(ConfigurationError):
            ModelConfig(ne=4, nlev=0)
        with pytest.raises(ConfigurationError):
            ModelConfig(ne=4, qsize=-1)
        with pytest.raises(ConfigurationError):
            ModelConfig(ne=4, np=1)
        with pytest.raises(ConfigurationError):
            ModelConfig(ne=4, tracer_subcycles=0)

    def test_with_replaces(self):
        cfg = ModelConfig(ne=30).with_(qsize=1)
        assert cfg.qsize == 1
        assert cfg.ne == 30


class TestRunConfig:
    def test_paper_core_arithmetic(self):
        # Paper: 155,000 processes = 10,075,000 cores (65 per CG).
        run = RunConfig(ModelConfig(ne=4096), nproc=155_000)
        assert run.total_cores == 10_075_000

    def test_ne120_run_cores(self):
        # Paper abstract: 25-km resolution using 1,872,000 cores at
        # 28,800 processes (65 cores per CG: 28,800 * 65 = 1,872,000).
        run = RunConfig(ModelConfig(ne=120), nproc=28_800)
        assert run.total_cores == 1_872_000

    def test_nodes(self):
        run = RunConfig(ModelConfig(ne=30), nproc=216)
        assert run.nodes == 54

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            RunConfig(ModelConfig(ne=30), nproc=8, backend="cuda")

    def test_nproc_bounds(self):
        with pytest.raises(ConfigurationError):
            RunConfig(ModelConfig(ne=4), nproc=0)
        with pytest.raises(ConfigurationError):
            RunConfig(ModelConfig(ne=4), nproc=97)  # > 96 elements
