"""Tests for the experiment drivers (the cheap, model-based ones).

Figure 4 and Figure 9 run real simulations and are exercised with
reduced settings here; their full versions live in the benchmark
harness.
"""

import pytest

from repro.experiments.table1_kernels import PAPER_TABLE1, run_table1
from repro.experiments.figure5_speedups import run_figure5
from repro.experiments.figure6_sypd import run_figure6
from repro.experiments.figure7_strong import run_figure7
from repro.experiments.figure8_weak import run_figure8
from repro.experiments.table3_nggps import run_table3


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table1(verbose=False)

    def test_all_cells_pass(self, table):
        assert table.all_passed, [r.quantity for r in table.records if not r.passed]

    def test_covers_all_kernels_and_columns(self, table):
        assert len(table.records) == len(PAPER_TABLE1) * 3

    def test_markdown_renders(self, table):
        md = table.markdown()
        assert "euler_step" in md and "| pass |" in md


class TestFigure5Driver:
    def test_all_claims_pass(self):
        table = run_figure5(verbose=False)
        assert table.all_passed, [r.quantity for r in table.records if not r.passed]


class TestFigure6Driver:
    @pytest.fixture(scope="class")
    def table(self):
        return run_figure6(verbose=False)

    def test_all_anchors_pass(self, table):
        assert table.all_passed, [r.quantity for r in table.records if not r.passed]

    def test_headline_anchor_present(self, table):
        names = [r.quantity for r in table.records]
        assert "ne30 athread SYPD @5400" in names
        assert "ne120 openacc SYPD @28800" in names


class TestFigure7Driver:
    def test_all_shape_checks_pass(self):
        table = run_figure7(verbose=False)
        assert table.all_passed, [r.quantity for r in table.records if not r.passed]


class TestFigure8Driver:
    def test_all_shape_checks_pass(self):
        table = run_figure8(verbose=False)
        assert table.all_passed, [r.quantity for r in table.records if not r.passed]


class TestTable3Driver:
    def test_all_ratios_pass(self):
        table = run_table3(verbose=False)
        assert table.all_passed, [r.quantity for r in table.records if not r.passed]
