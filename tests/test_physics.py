"""Tests for the physics suite: HS94, Kessler, grey radiation, RJ physics."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ConfigurationError
from repro.homme.element import ElementGeometry, ElementState
from repro.homme.rhs import PTOP, compute_pressure
from repro.mesh import CubedSphereMesh
from repro.physics.held_suarez import (
    equilibrium_temperature,
    held_suarez_forcing,
    relaxation_rates,
)
from repro.physics.kessler import (
    kessler_step,
    saturation_mixing_ratio,
    saturation_vapor_pressure,
)
from repro.physics.pbl import drag_coefficient, implicit_diffusion
from repro.physics.radiation import (
    grey_lw_fluxes,
    radiative_heating,
    surface_temperature,
)
from repro.physics.simple_physics import SimplePhysics, large_scale_condensation
from repro.physics.suite import PhysicsSuite


@pytest.fixture(scope="module")
def domain():
    cfg = ModelConfig(ne=4, nlev=8, qsize=3)
    mesh = CubedSphereMesh(cfg.ne)
    geom = ElementGeometry(mesh)
    return cfg, mesh, geom


class TestHeldSuarez:
    def test_equilibrium_warmer_at_equator(self, domain):
        cfg, mesh, geom = domain
        p = np.full((geom.nelem, 1, 4, 4), 90000.0)
        teq = equilibrium_temperature(p, geom.lat)
        eq_t = teq[np.abs(geom.lat[:, None]) < 0.1]
        pole_t = teq[np.abs(geom.lat[:, None]) > 1.2]
        assert eq_t.mean() > pole_t.mean() + 20

    def test_stratosphere_floor(self, domain):
        cfg, mesh, geom = domain
        p = np.full((geom.nelem, 1, 4, 4), 500.0)  # very high up
        teq = equilibrium_temperature(p, geom.lat)
        assert np.all(teq >= 200.0)
        assert np.any(teq == 200.0)

    def test_friction_only_below_sigma_b(self, domain):
        cfg, mesh, geom = domain
        sigma = np.full((geom.nelem, 1, 4, 4), 0.5)
        _, kv = relaxation_rates(sigma, geom.lat)
        assert np.all(kv == 0.0)
        sigma_low = np.full((geom.nelem, 1, 4, 4), 1.0)
        _, kv_low = relaxation_rates(sigma_low, geom.lat)
        assert np.all(kv_low > 0.0)

    def test_forcing_relaxes_toward_equilibrium(self, domain):
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg, T0=300.0)
        p_mid, _ = compute_pressure(state.dp3d)
        teq = equilibrium_temperature(p_mid, geom.lat)
        d0 = np.abs(state.T - teq).mean()
        held_suarez_forcing(state, geom, 0.0, dt=6 * 3600.0)
        d1 = np.abs(state.T - teq).mean()
        assert d1 < d0

    def test_forcing_damps_surface_wind(self, domain):
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg)
        state.v[:, -1] = 1e-6
        held_suarez_forcing(state, geom, 0.0, dt=86400.0)
        assert np.all(np.abs(state.v[:, -1]) < 1e-6)

    def test_implicit_never_overshoots(self, domain):
        # Even an absurd dt cannot push T past T_eq.
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg, T0=400.0)
        p_mid, _ = compute_pressure(state.dp3d)
        teq = equilibrium_temperature(p_mid, geom.lat)
        held_suarez_forcing(state, geom, 0.0, dt=1e9)
        assert np.all(state.T >= teq - 1e-6)


class TestKessler:
    def test_saturation_pressure_monotone(self):
        T = np.linspace(230, 310, 50)
        es = saturation_vapor_pressure(T)
        assert np.all(np.diff(es) > 0)

    def test_saturation_pressure_at_freezing(self):
        assert saturation_vapor_pressure(np.array([273.15]))[0] == pytest.approx(
            610.78, rel=1e-6
        )

    def test_condensation_releases_heat(self):
        T = np.full(4, 290.0)
        p = np.full(4, 95000.0)
        qvs = saturation_mixing_ratio(T, p)
        qv = qvs * 1.2  # 20% supersaturated
        T2, qv2, qc2, qr2, _ = kessler_step(T, qv, np.zeros(4), np.zeros(4), p, dt=60.0)
        assert np.all(T2 > T)
        assert np.all(qv2 < qv)
        assert np.all(qc2 + qr2 > 0)

    def test_subsaturated_nothing_condenses(self):
        T = np.full(4, 290.0)
        p = np.full(4, 95000.0)
        qv = saturation_mixing_ratio(T, p) * 0.5
        T2, qv2, qc2, _, precip = kessler_step(T, qv, np.zeros(4), np.zeros(4), p, dt=60.0)
        assert np.allclose(T2, T)
        assert np.allclose(qv2, qv)
        assert np.all(qc2 == 0)

    def test_water_mass_plus_precip_conserved(self):
        rng = np.random.default_rng(0)
        T = 280 + 20 * rng.random(16)
        p = 9e4 + 1e4 * rng.random(16)
        qv = 0.02 * rng.random(16)
        qc = 0.002 * rng.random(16)
        qr = 0.001 * rng.random(16)
        T2, qv2, qc2, qr2, precip = kessler_step(T, qv, qc, qr, p, dt=120.0)
        before = qv + qc + qr
        after = qv2 + qc2 + qr2 + precip
        assert np.allclose(after, before, atol=1e-12)

    def test_autoconversion_threshold(self):
        # Saturated air so the cloud is not evaporated away first.
        T = np.full(2, 290.0)
        p = np.full(2, 95000.0)
        qv = saturation_mixing_ratio(T, p)
        qc = np.array([5e-4, 5e-3])  # below, above threshold
        _, _, qc2, qr2, precip = kessler_step(T, qv, qc, np.zeros(2), p, dt=60.0)
        assert precip[0] == 0.0  # below threshold: no rain formed
        assert precip[1] > 0.0


class TestRadiation:
    def test_fluxes_positive_and_bounded(self, domain):
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg, T0=280.0)
        p_mid, _ = compute_pressure(state.dp3d)
        ps = state.ps(PTOP)
        Ts = surface_temperature(geom.lat)
        F_up, F_dn = grey_lw_fluxes(state.T, p_mid, ps, Ts, geom.lat)
        assert np.all(F_up >= 0) and np.all(F_dn >= 0)
        assert np.all(F_dn[:, 0] == 0.0)  # no LW from space
        sb_max = 5.67e-8 * 305.0**4
        assert F_up.max() <= sb_max * 1.01

    def test_olr_reasonable(self, domain):
        # Outgoing LW at the top should be ~150-320 W/m^2 for Earth-like T.
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg, T0=270.0)
        p_mid, _ = compute_pressure(state.dp3d)
        ps = state.ps(PTOP)
        Ts = surface_temperature(geom.lat)
        F_up, _ = grey_lw_fluxes(state.T, p_mid, ps, Ts, geom.lat)
        olr = F_up[:, 0]
        assert 100 < olr.mean() < 400

    def test_heating_cools_isothermal_atmosphere(self, domain):
        # An isothermal atmosphere over a same-temperature surface loses
        # energy to space: net heating is negative somewhere aloft.
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg, T0=280.0)
        p_mid, _ = compute_pressure(state.dp3d)
        ps = state.ps(PTOP)
        h = radiative_heating(
            state.T, p_mid, state.dp3d, ps, np.full_like(ps, 280.0), geom.lat
        )
        assert h.mean() < 0

    def test_surface_temperature_gradient(self, domain):
        cfg, mesh, geom = domain
        Ts = surface_temperature(geom.lat)
        assert Ts.max() <= 302.0 + 1e-9
        assert Ts.min() >= 271.0 - 1e-9


class TestPBL:
    def test_drag_coefficient_caps(self):
        assert drag_coefficient(np.array([0.0]))[0] == pytest.approx(7e-4)
        assert drag_coefficient(np.array([100.0]))[0] == pytest.approx(2e-3)

    def test_implicit_diffusion_conserves_mean(self):
        rng = np.random.default_rng(1)
        x = rng.random((5, 12, 2, 2))
        K = np.full_like(x, 10.0)
        dz = np.full_like(x, 500.0)
        out = implicit_diffusion(x, K, dz, dt=600.0)
        assert np.allclose(out.mean(axis=1), x.mean(axis=1), rtol=1e-10)

    def test_implicit_diffusion_smooths(self):
        x = np.zeros((1, 16, 1, 1))
        x[0, 8] = 1.0
        K = np.full_like(x, 50.0)
        dz = np.full_like(x, 300.0)
        out = implicit_diffusion(x, K, dz, dt=3600.0)
        assert out.max() < 1.0
        assert out[0, 7] > 0 and out[0, 9] > 0


class TestSimplePhysics:
    def test_condensation_removes_supersaturation(self):
        T = np.full((2, 3), 300.0)
        p = np.full((2, 3), 95000.0)
        qvs = saturation_mixing_ratio(T, p)
        qv = qvs * 1.5
        T2, qv2, precip = large_scale_condensation(T, qv, p, dt=60.0)
        qvs2 = saturation_mixing_ratio(T2, p)
        # One Newton step gets within a few percent of saturation.
        assert np.all(qv2 <= qvs * 1.5)
        assert np.all(np.abs(qv2 / qvs2 - 1.0) < 0.1)
        assert np.all(precip > 0)

    def test_surface_fluxes_moisten_and_warm(self, domain):
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg, T0=290.0)
        u = 15.0 * np.cos(geom.lat)
        state.v[:] = geom.mesh.spherical_to_contravariant(u, np.zeros_like(u))[:, None]
        state.qdp[:, 0] = 1e-4 * state.dp3d
        phys = SimplePhysics(sst=302.15)
        q0 = state.qdp[:, 0, -1].mean()
        T0 = state.T[:, -1].mean()
        phys(state, geom, 0.0, dt=1800.0)
        assert state.qdp[:, 0, -1].mean() > q0
        assert state.T[:, -1].mean() > T0

    def test_drag_decays_surface_wind(self, domain):
        cfg, mesh, geom = domain
        state = ElementState.isothermal_rest(geom, cfg, T0=290.0)
        u = 30.0 * np.cos(geom.lat)
        state.v[:] = geom.mesh.spherical_to_contravariant(u, np.zeros_like(u))[:, None]
        state.qdp[:, 0] = 1e-3 * state.dp3d
        v_low0 = np.abs(state.v[:, -1]).max()
        SimplePhysics()(state, geom, 0.0, dt=1800.0)
        assert np.abs(state.v[:, -1]).max() < v_low0


class TestPhysicsSuite:
    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicsSuite(("magic",))

    def test_kessler_requires_tracers(self, domain):
        cfg, mesh, geom = domain
        suite = PhysicsSuite(("kessler",))
        state = ElementState.isothermal_rest(geom, cfg.with_(qsize=1))
        with pytest.raises(ConfigurationError):
            suite(state, geom, 0.0, 600.0)

    def test_process_order_applied(self, domain):
        cfg, mesh, geom = domain
        suite = PhysicsSuite(("radiation", "held_suarez"))
        state = ElementState.isothermal_rest(geom, cfg)
        T0 = state.T.copy()
        suite(state, geom, 0.0, 1800.0)
        assert not np.allclose(state.T, T0)

    def test_flops_per_column_scales_with_processes(self):
        a = PhysicsSuite(("held_suarez",)).flops_per_column_level()
        b = PhysicsSuite(("held_suarez", "kessler", "radiation")).flops_per_column_level()
        assert b > a
