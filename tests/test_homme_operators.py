"""Tests for spectral-element operators against analytic solutions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants as C
from repro.homme import operators as op
from repro.homme.element import ElementGeometry
from repro.mesh import CubedSphereMesh

R = C.EARTH_RADIUS


@pytest.fixture(scope="module")
def setup():
    mesh = CubedSphereMesh(ne=8)
    return mesh, ElementGeometry(mesh)


class TestGradient:
    def test_gradient_of_constant_is_zero(self, setup):
        mesh, geom = setup
        g = op.gradient_sphere(np.full((mesh.nelem, 4, 4), 7.0), geom)
        assert np.abs(g).max() < 1e-18

    def test_gradient_of_sin_lat(self, setup):
        # |grad sin(lat)| = cos(lat)/R.
        mesh, geom = setup
        g = op.gradient_sphere(np.sin(mesh.lat), geom)
        mag = np.sqrt(np.einsum("...kl,...k,...l->...", mesh.met, g, g))
        assert np.allclose(mag * R, np.abs(np.cos(mesh.lat)), atol=5e-4)

    def test_gradient_with_level_axis(self, setup):
        mesh, geom = setup
        f = np.sin(mesh.lat)
        f3 = np.repeat(f[:, None], 5, axis=1)
        g3 = op.gradient_sphere(f3, geom)
        g1 = op.gradient_sphere(f, geom)
        for lev in range(5):
            assert np.allclose(g3[:, lev], g1)


class TestDivergenceVorticity:
    def test_solid_body_divergence_free(self, setup):
        mesh, geom = setup
        u = 40.0 * np.cos(mesh.lat)
        vc = mesh.spherical_to_contravariant(u, np.zeros_like(u))
        div = mesh.dss(op.divergence_sphere(vc, geom))
        # Discretization error at ne=8 measured ~7e-4 (3rd-order at np=4).
        assert np.abs(div).max() * R / 40.0 < 2e-3

    def test_solid_body_vorticity(self, setup):
        # zeta = 2 U sin(lat) / R for u = U cos(lat).
        mesh, geom = setup
        U = 40.0
        vc = mesh.spherical_to_contravariant(
            U * np.cos(mesh.lat), np.zeros_like(mesh.lat)
        )
        zeta = mesh.dss(op.vorticity_sphere(vc, geom))
        assert np.allclose(zeta, 2 * U * np.sin(mesh.lat) / R, atol=2e-3 * 2 * U / R)

    def test_divergence_of_gradient_is_laplacian(self, setup):
        mesh, geom = setup
        f = np.sin(mesh.lat)
        lap = mesh.dss(op.laplace_sphere(f, geom))
        # sin(lat) is the l=1 spherical harmonic: lap = -2 f / R^2.
        # Second derivatives carry larger edge error (~1.3% at ne=8).
        assert np.allclose(lap, -2 * f / R**2, atol=6e-2 / R**2)

    def test_divergence_theorem(self, setup):
        # Integral of div(v) over the closed sphere is zero.
        mesh, geom = setup
        rng = np.random.default_rng(0)
        u = mesh.dss(rng.standard_normal(mesh.lat.shape))
        v = mesh.dss(rng.standard_normal(mesh.lat.shape))
        vc = mesh.spherical_to_contravariant(u, v)
        div = op.divergence_sphere(vc, geom)
        total = mesh.global_integral(div)
        scale = mesh.global_integral(np.abs(div))
        assert abs(total) / scale < 1e-10

    def test_curl_of_gradient_vanishes(self, setup):
        mesh, geom = setup
        f = np.sin(2 * mesh.lon) * np.cos(mesh.lat) ** 2
        g = op.gradient_sphere(f, geom)
        zeta = mesh.dss(op.vorticity_sphere(g, geom))
        scale = np.abs(g).max() / R
        assert np.abs(zeta).max() / scale < 1e-6


class TestKineticEnergyAndKCross:
    def test_ke_of_zonal_wind(self, setup):
        mesh, geom = setup
        U = 30.0
        u = U * np.cos(mesh.lat)
        vc = mesh.spherical_to_contravariant(u, np.zeros_like(u))
        ke = op.kinetic_energy(vc, geom)
        assert np.allclose(ke, 0.5 * u**2, rtol=1e-9)

    def test_k_cross_preserves_magnitude(self, setup):
        mesh, geom = setup
        rng = np.random.default_rng(1)
        vc = mesh.spherical_to_contravariant(
            rng.standard_normal(mesh.lat.shape), rng.standard_normal(mesh.lat.shape)
        )
        kx = op.k_cross(vc, geom)
        m1 = op.kinetic_energy(vc, geom)
        m2 = op.kinetic_energy(kx, geom)
        assert np.allclose(m1, m2, rtol=1e-9)

    def test_k_cross_is_rotation(self, setup):
        # k x (k x v) = -v.
        mesh, geom = setup
        rng = np.random.default_rng(2)
        vc = mesh.spherical_to_contravariant(
            rng.standard_normal(mesh.lat.shape), rng.standard_normal(mesh.lat.shape)
        )
        kkx = op.k_cross(op.k_cross(vc, geom), geom)
        assert np.allclose(kkx, -vc, rtol=1e-9, atol=1e-18)

    def test_k_cross_orthogonal(self, setup):
        # v . (k x v) = 0 in the metric inner product.
        mesh, geom = setup
        rng = np.random.default_rng(3)
        vc = mesh.spherical_to_contravariant(
            rng.standard_normal(mesh.lat.shape), rng.standard_normal(mesh.lat.shape)
        )
        kx = op.k_cross(vc, geom)
        dot = np.einsum("...kl,...k,...l->...", mesh.met, vc, kx)
        speed2 = 2 * op.kinetic_energy(vc, geom)
        assert np.abs(dot).max() / speed2.max() < 1e-12


class TestConvergence:
    def test_gradient_converges_with_resolution(self):
        # Y22-like smooth field (cos^2(lat) cos(2 lon) = x^2 - y^2 on the
        # sphere): measured max-norm error drops ~6x from ne=4 to ne=8.
        errs = []
        for ne in (4, 8):
            mesh = CubedSphereMesh(ne=ne)
            geom = ElementGeometry(mesh)
            f = np.cos(mesh.lat) ** 2 * np.cos(2 * mesh.lon)
            g = op.gradient_sphere(f, geom)
            mag2 = np.einsum("...kl,...k,...l->...", mesh.met, g, g)
            dfdphi = -2 * np.cos(mesh.lat) * np.sin(mesh.lat) * np.cos(2 * mesh.lon)
            dfdlam = -2 * np.cos(mesh.lat) ** 2 * np.sin(2 * mesh.lon)
            exact = (dfdphi**2 + (dfdlam / np.cos(mesh.lat)) ** 2) / R**2
            errs.append(np.abs(mag2 - exact).max() * R**2)
        assert errs[1] < errs[0] / 4


class TestDtypePreservation:
    """Property tests: every operator returns its input's dtype.

    The hot-path bugfix behind these: ``gradient_sphere`` allocated its
    output with ``np.empty(shape + (2,))`` — always float64 — so a
    float32 field silently upcast mid-chain, and several operators
    returned float64 because a matmul against the float64 derivative
    matrix promotes under NEP 50.  Hypothesis drives dtype, level shape
    and field values through the full operator surface.
    """

    SCALAR_OPS = [
        op.d_dalpha, op.d_dbeta, op.gradient_sphere, op.gradient_cov,
        op.laplace_sphere, op.laplace_sphere_wk,
    ]
    VECTOR_OPS = [
        op.divergence_sphere, op.vorticity_sphere, op.kinetic_energy,
        op.k_cross, op.vlaplace_sphere,
    ]

    @staticmethod
    def _geom():
        # Memoized: hypothesis re-invokes the test body many times.
        if not hasattr(TestDtypePreservation, "_cached_geom"):
            mesh = CubedSphereMesh(ne=2)
            TestDtypePreservation._cached_geom = ElementGeometry(mesh)
        return TestDtypePreservation._cached_geom

    @given(
        dtype=st.sampled_from([np.float32, np.float64]),
        extra=st.sampled_from([(), (1,), (3,), (2, 2)]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_scalar_operators_preserve_dtype(self, dtype, extra, seed):
        geom = self._geom()
        rng = np.random.default_rng(seed)
        shape = (geom.nelem,) + extra + (4, 4)
        s = rng.standard_normal(shape).astype(dtype)
        for fn in self.SCALAR_OPS:
            out = fn(s, geom)
            assert out.dtype == np.dtype(dtype), fn.__name__

    @given(
        dtype=st.sampled_from([np.float32, np.float64]),
        extra=st.sampled_from([(), (1,), (3,)]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_vector_operators_preserve_dtype(self, dtype, extra, seed):
        geom = self._geom()
        rng = np.random.default_rng(seed)
        shape = (geom.nelem,) + extra + (4, 4, 2)
        v = rng.standard_normal(shape).astype(dtype)
        for fn in self.VECTOR_OPS:
            out = fn(v, geom)
            assert out.dtype == np.dtype(dtype), fn.__name__

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_gradient_sphere_f32_matches_f64(self, seed):
        # Beyond carrying the dtype, the float32 result must be the
        # float64 computation to single precision.
        geom = self._geom()
        rng = np.random.default_rng(seed)
        s = rng.standard_normal((geom.nelem, 4, 4))
        g64 = op.gradient_sphere(s, geom)
        g32 = op.gradient_sphere(s.astype(np.float32), geom)
        scale = np.abs(g64).max() + 1e-30
        assert np.abs(g32 - g64).max() / scale < 1e-5
