"""Tests for CPE / CoreGroup / SW26010 composition and PERF counters."""

import numpy as np
import pytest

from repro import constants as C
from repro.sunway import CPE, CoreGroup, SW26010, PerfCounters
from repro.sunway.spec import SW26010Spec, DEFAULT_SPEC


class TestSpec:
    def test_published_chip_numbers(self):
        s = DEFAULT_SPEC
        assert s.cores_per_processor == 260
        assert s.cpes_per_cg == 64
        # "over 3 TFlops" peak per processor.
        assert s.processor_peak_flops > 2.9e12
        assert s.ldm_bytes == 64 * 1024

    def test_cg_bandwidth_split(self):
        assert DEFAULT_SPEC.cg_memory_bandwidth == pytest.approx(132e9 / 4)

    def test_reduced_spec_for_tests(self):
        s = SW26010Spec(cpe_rows=2, cpe_cols=2)
        assert s.cpes_per_cg == 4

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SW26010Spec(core_groups=0)
        with pytest.raises(ValueError):
            SW26010Spec(dma_peak_efficiency=0.0)

    def test_cycles_to_seconds(self):
        assert DEFAULT_SPEC.cycles_to_seconds(1.45e9) == pytest.approx(1.0)


class TestCPE:
    def test_owns_full_ldm(self):
        cpe = CPE(0, 0)
        assert cpe.ldm.capacity == 64 * 1024

    def test_coord(self):
        assert CPE(3, 5).coord == (3, 5)

    def test_off_mesh_rejected(self):
        with pytest.raises(ValueError):
            CPE(8, 0)

    def test_total_cycles_sums_components(self):
        cpe = CPE(0, 0)
        cpe.vector.add(np.ones(4), np.ones(4))
        cpe.dma.charge_get(1024)
        cpe.charge_scalar(100)
        assert cpe.total_cycles() == pytest.approx(
            cpe.vector.cycles() + cpe.dma.total_cycles + 100
        )

    def test_reset(self):
        cpe = CPE(0, 0)
        cpe.charge_scalar(10)
        cpe.ldm.alloc(128)
        cpe.reset()
        assert cpe.total_cycles() == 0
        assert cpe.ldm.used == 0


class TestCoreGroup:
    def test_has_64_cpes(self):
        assert CoreGroup().n_cpes == 64

    def test_cpe_lookup(self):
        cg = CoreGroup()
        assert cg.cpe(3, 4).coord == (3, 4)

    def test_collect_aggregates_flops(self):
        cg = CoreGroup()
        for cpe in cg.cpes:
            cpe.vector.add(np.ones(4), np.ones(4))
        perf = cg.collect()
        assert perf.dp_flops == 64 * 4

    def test_cycles_use_slowest_cpe(self):
        cg = CoreGroup()
        cg.cpe(0, 0).charge_scalar(1000)
        cg.cpe(7, 7).charge_scalar(10)
        assert cg.collect().cycles == pytest.approx(1000)

    def test_mpe_slower_than_intel_core(self):
        cg = CoreGroup()
        flops = 1e9
        mpe_s = cg.mpe_scalar_seconds(flops)
        intel_s = flops / (C.INTEL_CORE_PEAK_FLOPS * C.INTEL_KERNEL_EFFICIENCY)
        assert 2 < mpe_s / intel_s < 10

    def test_bandwidth_bound_seconds(self):
        cg = CoreGroup()
        t = cg.bandwidth_bound_seconds(33e9)
        assert t == pytest.approx(1.0)

    def test_reset(self):
        cg = CoreGroup()
        cg.charge_mpe(1.0)
        cg.reset()
        assert cg.collect().cycles == 0


class TestSW26010:
    def test_260_cores(self):
        assert SW26010().n_cores == 260

    def test_collect_parallel_cgs(self):
        node = SW26010()
        for cg in node.core_groups:
            cg.charge_mpe(1.0)
        perf = node.collect()
        # CGs run in parallel: time is one CG's, not four.
        assert perf.cycles == pytest.approx(1.0 * DEFAULT_SPEC.clock_hz)

    def test_memory_fits(self):
        node = SW26010()
        assert node.memory_fits(30 * 1024**3)
        assert not node.memory_fits(33 * 1024**3)


class TestPerfCounters:
    def test_merge(self):
        a = PerfCounters(dp_flops=100, dma_bytes_get=10, cycles=5.0)
        b = PerfCounters(dp_flops=50, dma_bytes_put=20, cycles=3.0, ldm_high_water=99)
        a.merge(b)
        assert a.dp_flops == 150
        assert a.dma_bytes == 30
        assert a.cycles == 8.0
        assert a.ldm_high_water == 99

    def test_flop_rate(self):
        p = PerfCounters(dp_flops=3_300_000)
        assert p.flop_rate(1e-9) == pytest.approx(3.3e15)

    def test_arithmetic_intensity(self):
        p = PerfCounters(dp_flops=800, dma_bytes_get=100)
        assert p.arithmetic_intensity() == pytest.approx(8.0)
        assert PerfCounters(dp_flops=5).arithmetic_intensity() == float("inf")

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            PerfCounters().add_flops(-1)

    def test_snapshot_keys(self):
        snap = PerfCounters().snapshot()
        assert "dp_flops" in snap and "cycles" in snap
