"""Tests for the Katrina experiment pieces: best track, vortex, tracker."""

import numpy as np
import pytest

from repro import constants as C
from repro.config import ModelConfig
from repro.homme.element import ElementGeometry, ElementState
from repro.homme.rhs import PTOP, compute_rhs
from repro.katrina.besttrack import (
    GENESIS,
    KATRINA_BEST_TRACK,
    PEAK,
    observed_msw_ms,
    observed_track,
)
from repro.katrina.experiment import KatrinaExperiment
from repro.katrina.track import VortexTracker
from repro.katrina.vortex import (
    VortexParameters,
    great_circle,
    plant_vortex,
    tangential_wind,
)
from repro.mesh import CubedSphereMesh


class TestBestTrack:
    def test_six_hourly_coverage(self):
        hours = [p.hours for p in KATRINA_BEST_TRACK]
        assert hours[0] == 0 and hours[-1] == 180
        assert all(b - a == 6 for a, b in zip(hours, hours[1:]))

    def test_genesis_near_bahamas(self):
        assert GENESIS.lat == pytest.approx(23.1)
        assert GENESIS.lon == pytest.approx(-75.1)
        assert GENESIS.max_wind_kt == 30

    def test_peak_is_category5(self):
        # 1800 UTC 28 August: 150 kt / 902 hPa.
        assert PEAK.max_wind_kt == 150
        assert PEAK.min_pressure_hpa == 902
        assert PEAK.hours == 120

    def test_pressure_wind_anticorrelation(self):
        w = np.array([p.max_wind_kt for p in KATRINA_BEST_TRACK])
        p_ = np.array([p.min_pressure_hpa for p in KATRINA_BEST_TRACK])
        assert np.corrcoef(w, p_)[0, 1] < -0.9

    def test_track_moves_west_then_north(self):
        lons = [p.lon for p in KATRINA_BEST_TRACK]
        lats = [p.lat for p in KATRINA_BEST_TRACK]
        assert min(lons) < -89.0   # deep into the Gulf
        assert lats[-1] > 38.0     # ends well inland to the north

    def test_helpers(self):
        assert len(observed_track()) == len(KATRINA_BEST_TRACK)
        assert max(observed_msw_ms()) == pytest.approx(150 * 0.514444)


class TestGreatCircle:
    def test_zero_distance(self):
        d, _ = great_circle(0.5, 1.0, np.array(0.5), np.array(1.0), 6.4e6)
        assert float(d) < 1.0

    def test_quarter_circumference(self):
        d, _ = great_circle(0.0, 0.0, np.array(np.pi / 2), np.array(0.0), 1.0)
        assert float(d) == pytest.approx(np.pi / 2)

    def test_bearing_north(self):
        _, b = great_circle(0.0, 0.0, np.array(0.1), np.array(0.0), 1.0)
        assert float(b) == pytest.approx(0.0, abs=1e-9)

    def test_bearing_east(self):
        _, b = great_circle(0.0, 0.0, np.array(0.0), np.array(0.1), 1.0)
        assert float(b) == pytest.approx(np.pi / 2, abs=1e-9)


class TestTangentialWind:
    def test_maximum_at_rm(self):
        p = VortexParameters()
        r = np.linspace(1e3, 6e5, 2000)
        v = tangential_wind(r, p)
        assert abs(r[np.argmax(v)] - p.rm) < 5e3
        assert v.max() == pytest.approx(p.vmax, rel=1e-3)

    def test_decays_far_out(self):
        p = VortexParameters()
        v_far = tangential_wind(np.array([10 * p.rm]), p)
        assert v_far[0] < 0.15 * p.vmax

    def test_zero_at_center(self):
        p = VortexParameters()
        assert tangential_wind(np.array([1.0]), p)[0] < 2e-3


class TestPlantVortex:
    @pytest.fixture(scope="class")
    def planted(self):
        cfg = ModelConfig(ne=8, nlev=8, qsize=1)
        mesh = CubedSphereMesh(8, radius=C.EARTH_RADIUS / 10.0)
        geom = ElementGeometry(mesh)
        state = ElementState.isothermal_rest(geom, cfg, T0=300.0)
        out = plant_vortex(state, geom)
        return geom, state, out

    def test_surface_pressure_depression(self, planted):
        geom, base, out = planted
        assert out.ps(PTOP).min() < base.ps(PTOP).min() - 500.0

    def test_wind_magnitude_near_vmax(self, planted):
        geom, base, out = planted
        from repro.homme import operators as op

        speed = np.sqrt(2 * op.kinetic_energy(out.v[:, -1], geom))
        p = VortexParameters()
        # Grid truncation loses some of the analytic peak.
        assert 0.5 * p.vmax < speed.max() <= 1.2 * p.vmax

    def test_warm_core_present(self, planted):
        geom, base, out = planted
        assert out.T.max() > base.T.max() + 0.5

    def test_moist_core(self, planted):
        geom, base, out = planted
        q = out.qdp[:, 0] / out.dp3d
        assert q.max() > 0.01  # near-saturated warm boundary layer

    def test_initial_state_nearer_balance_than_pressure_only(self, planted):
        """The gradient-wind construction beats an unbalanced vortex.

        At marginal grid resolution the core's discrete residual is
        O(signal), so the check is relative: the balanced (wind +
        pressure) state must have a smaller mean acceleration than the
        same pressure depression with no wind at all.
        """
        geom, base, out = planted
        dv_bal, _, _ = compute_rhs(out, geom)
        no_wind = out.copy()
        no_wind.v[:] = 0.0
        dv_unbal, _, _ = compute_rhs(no_wind, geom)
        a_bal = np.abs(dv_bal).mean() * geom.radius
        a_unbal = np.abs(dv_unbal).mean() * geom.radius
        assert a_bal < a_unbal

    def test_mass_changed_only_by_depression(self, planted):
        geom, base, out = planted
        # dp3d still positive everywhere.
        assert out.dp3d.min() > 0


class TestTracker:
    def test_finds_planted_center(self):
        cfg = ModelConfig(ne=8, nlev=8, qsize=1)
        mesh = CubedSphereMesh(8, radius=C.EARTH_RADIUS / 10.0)
        geom = ElementGeometry(mesh)
        state = plant_vortex(
            ElementState.isothermal_rest(geom, cfg, T0=300.0), geom
        )
        p = VortexParameters()
        tracker = VortexTracker(
            geom, p.center_lat_deg, p.center_lon_deg,
            search_radius_m=8 * p.rm, storm_radius_m=4 * p.rm,
        )
        fx = tracker.fix(state, 0.0)
        d, _ = great_circle(
            np.deg2rad(fx.lat), np.deg2rad(fx.lon % 360),
            np.array(np.deg2rad(p.center_lat_deg)),
            np.array(np.deg2rad(p.center_lon_deg % 360)),
            geom.radius,
        )
        # Within a grid cell of the planted center.
        assert float(d) < 1.2e5
        assert fx.msw_ms > 5.0
        assert fx.min_ps_hpa < 1002.0

    def test_track_error_metric(self):
        cfg = ModelConfig(ne=4, nlev=4, qsize=1)
        mesh = CubedSphereMesh(4, radius=C.EARTH_RADIUS / 10.0)
        geom = ElementGeometry(mesh)
        state = plant_vortex(ElementState.isothermal_rest(geom, cfg), geom)
        tracker = VortexTracker(geom, 23.1, -75.1, search_radius_m=1e6)
        tracker.fix(state, 0.0)
        err = tracker.track_error_km([(23.1, -75.1)], geom.radius)
        assert err >= 0.0

    def test_empty_comparison_rejected(self):
        cfg = ModelConfig(ne=4, nlev=4, qsize=1)
        mesh = CubedSphereMesh(4, radius=C.EARTH_RADIUS / 10.0)
        geom = ElementGeometry(mesh)
        tracker = VortexTracker(geom, 23.0, -75.0)
        with pytest.raises(ValueError):
            tracker.track_error_km([(23.0, -75.0)], geom.radius)


class TestExperimentSetup:
    def test_effective_resolutions_bracket_threshold(self):
        """Coarse above, fine below the ~50 km TC-resolving threshold
        the paper cites."""
        exp = KatrinaExperiment()
        coarse_res = C.ne_resolution_km(exp.coarse_ne) / exp.x
        fine_res = C.ne_resolution_km(exp.fine_ne) / exp.x
        assert coarse_res > 50.0
        assert fine_res < 50.0

    def test_member_construction(self):
        exp = KatrinaExperiment(coarse_ne=4, fine_ne=6, nlev=6, hours=1)
        model, tracker = exp._build_member(4)
        assert model.dt > 0
        assert model.state.qdp.shape[1] == 1
