"""Tests for structural connectivity, validated against geometric adjacency."""

from collections import defaultdict

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mesh import CubeConnectivity, CubedSphereMesh


def geometric_adjacency(mesh: CubedSphereMesh):
    """Edge/corner adjacency from shared global GLL ids (ground truth)."""
    gid2els = defaultdict(set)
    for k in range(mesh.nelem):
        for g in np.unique(mesh.gid[k]):
            gid2els[g].add(k)
    shared = defaultdict(lambda: defaultdict(int))
    for els in gid2els.values():
        for a in els:
            for b in els:
                if a != b:
                    shared[a][b] += 1
    edges = {k: {b for b, c in nb.items() if c >= 2} for k, nb in shared.items()}
    corners = {k: {b for b, c in nb.items() if c == 1} for k, nb in shared.items()}
    return edges, corners


@pytest.mark.parametrize("ne", [2, 3, 4, 5, 8])
def test_structural_matches_geometric(ne):
    mesh = CubedSphereMesh(ne=ne)
    conn = CubeConnectivity(ne)
    geo_edges, geo_corners = geometric_adjacency(mesh)
    for k in range(mesh.nelem):
        st_edges = set(int(x) for x in conn.edge_neighbors[k])
        st_corners = set(int(x) for x in conn.corner_neighbors[k] if x >= 0)
        assert st_edges == geo_edges[k], f"ne={ne} element {k} edges"
        assert st_corners == geo_corners[k], f"ne={ne} element {k} corners"


class TestStructuralProperties:
    def test_every_element_has_4_edge_neighbors(self):
        conn = CubeConnectivity(6)
        assert np.all(conn.edge_neighbors >= 0)
        assert np.all(conn.edge_neighbors < conn.nelem)

    def test_edge_adjacency_symmetric(self):
        conn = CubeConnectivity(5)
        for k in range(conn.nelem):
            for nbr in conn.edge_neighbors[k]:
                assert k in conn.edge_neighbors[nbr]

    def test_exactly_24_missing_corners(self):
        # 8 cube corners x 3 touching elements have no diagonal neighbor.
        conn = CubeConnectivity(7)
        assert int(np.sum(conn.corner_neighbors < 0)) == 24

    def test_no_self_neighbors(self):
        conn = CubeConnectivity(4)
        k = np.arange(conn.nelem)
        assert np.all(conn.edge_neighbors != k[:, None])

    def test_eid_locate_roundtrip(self):
        conn = CubeConnectivity(9)
        k = np.arange(conn.nelem)
        f, i, j = conn.locate(k)
        assert np.array_equal(conn.eid(f, i, j), k)

    def test_all_neighbors_count(self):
        conn = CubeConnectivity(6)
        counts = [len(conn.all_neighbors(k)) for k in range(conn.nelem)]
        # Interior elements: 8; cube-corner elements: 7.
        assert set(counts) == {7, 8}
        assert counts.count(7) == 24

    def test_large_ne_builds(self):
        conn = CubeConnectivity(64)
        assert conn.nelem == 24576  # paper Table 2 ne64
        assert np.all(conn.edge_neighbors >= 0)

    def test_invalid_ne(self):
        with pytest.raises(MeshError):
            CubeConnectivity(1)

    def test_neighbor_matrix_shape(self):
        conn = CubeConnectivity(4)
        m = conn.neighbor_matrix()
        assert m.shape == (96, 8)
