"""Tests for the history format and the serialized gather."""

import numpy as np
import pytest

from repro.errors import SimMPIError
from repro.io import (
    HistoryReader,
    HistoryWriter,
    gather_cost_seconds,
    gather_field,
)
from repro.mesh import SFCPartition
from repro.network import SimMPI


class TestHistoryFormat:
    def test_roundtrip_bit_exact(self, tmp_path):
        path = tmp_path / "h0.camh"
        w = HistoryWriter(path)
        data = np.random.default_rng(0).standard_normal((6, 4, 4))
        w.write("TS", 0.5, data)
        r = HistoryReader(path)
        rec = r.record("TS")
        assert rec.time == 0.5
        assert np.array_equal(rec.data, data)

    def test_multiple_records_ordered(self, tmp_path):
        path = tmp_path / "h1.camh"
        w = HistoryWriter(path)
        for day in range(5):
            w.write("PS", float(day), np.full((3, 3), day, dtype=float))
        r = HistoryReader(path)
        recs = r.records()
        assert len(recs) == 5
        assert [rec.time for rec in recs] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert r.record("PS", index=3).data[0, 0] == 3.0

    def test_mixed_names(self, tmp_path):
        path = tmp_path / "h2.camh"
        w = HistoryWriter(path)
        w.write("T", 0.0, np.ones(4))
        w.write("U", 0.0, np.zeros((2, 2)))
        r = HistoryReader(path)
        assert r.record("U").data.shape == (2, 2)
        with pytest.raises(KeyError):
            r.record("missing")

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError):
            HistoryReader(path)

    def test_scalar_record(self, tmp_path):
        path = tmp_path / "h3.camh"
        w = HistoryWriter(path)
        w.write("scalar", 1.0, np.array(42.0))
        rec = HistoryReader(path).record("scalar")
        assert rec.data == pytest.approx(42.0)


class TestGather:
    def test_functional_gather_reassembles(self):
        part = SFCPartition(4, 6)
        mpi = SimMPI(6)
        rng = np.random.default_rng(1)
        global_field = rng.standard_normal((96, 4, 4))
        locals_ = [global_field[part.rank_elements(r)] for r in range(6)]
        out = gather_field(mpi, part, locals_)
        assert np.array_equal(out, global_field)

    def test_gather_advances_root_clock(self):
        part = SFCPartition(4, 4)
        mpi = SimMPI(4)
        locals_ = [np.ones((len(part.rank_elements(r)), 4, 4)) for r in range(4)]
        gather_field(mpi, part, locals_)
        assert mpi.now(0) > 0.0

    def test_wrong_rank_count_rejected(self):
        part = SFCPartition(4, 4)
        with pytest.raises(SimMPIError):
            gather_field(SimMPI(4), part, [np.ones((1, 4, 4))])

    def test_cost_scales_with_bytes_and_ranks(self):
        c1 = gather_cost_seconds(1e9, 1000)
        c2 = gather_cost_seconds(2e9, 1000)
        c3 = gather_cost_seconds(1e9, 100000)
        assert c2 > c1
        assert c3 > c1

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            gather_cost_seconds(-1, 10)


class TestRestart:
    def test_round_trip_bit_exact(self, tmp_path):
        from repro.config import ModelConfig
        from repro.homme.element import ElementGeometry, ElementState
        from repro.io.restart import load_restart, save_restart
        from repro.mesh import CubedSphereMesh

        cfg = ModelConfig(ne=4, nlev=4, qsize=2)
        mesh = CubedSphereMesh(4)
        geom = ElementGeometry(mesh)
        state = ElementState.isothermal_rest(geom, cfg)
        rng = np.random.default_rng(3)
        state.T += rng.standard_normal(state.T.shape)
        state.v += rng.standard_normal(state.v.shape) * 1e-6
        path = tmp_path / "restart.camh"
        save_restart(path, state, cfg, t=1234.5)
        loaded, cfg2, t = load_restart(path)
        assert t == 1234.5
        assert cfg2 == cfg
        assert np.array_equal(loaded.T, state.T)
        assert np.array_equal(loaded.v, state.v)
        assert np.array_equal(loaded.dp3d, state.dp3d)
        assert np.array_equal(loaded.qdp, state.qdp)

    def test_restarted_run_continues_bitwise(self, tmp_path):
        """Run 4 steps straight vs 2 + restart + 2: identical states."""
        from repro.config import ModelConfig
        from repro.homme.element import ElementGeometry, ElementState
        from repro.homme.timestep import PrimitiveEquationModel
        from repro.io.restart import load_restart, save_restart
        from repro.mesh import CubedSphereMesh

        cfg = ModelConfig(ne=4, nlev=4, qsize=1)
        mesh = CubedSphereMesh(4)
        geom = ElementGeometry(mesh)
        init = ElementState.isothermal_rest(geom, cfg)
        rng = np.random.default_rng(4)
        init.T = geom.dss(init.T + rng.standard_normal(init.T.shape))
        init.qdp[:, 0] = 1e-3 * init.dp3d

        straight = PrimitiveEquationModel(cfg, mesh=mesh, init=init.copy(), dt=600.0)
        straight.run_steps(4)

        half = PrimitiveEquationModel(cfg, mesh=mesh, init=init.copy(), dt=600.0)
        half.run_steps(2)
        path = tmp_path / "mid.camh"
        save_restart(path, half.state, cfg, t=half.t)
        loaded, cfg2, t = load_restart(path)
        resumed = PrimitiveEquationModel(cfg2, mesh=mesh, init=loaded, dt=600.0)
        resumed.step_count = 2  # keep the remap phase aligned
        resumed.run_steps(2)

        assert np.array_equal(resumed.state.T, straight.state.T)
        assert np.array_equal(resumed.state.v, straight.state.v)
        assert np.array_equal(resumed.state.qdp, straight.state.qdp)
