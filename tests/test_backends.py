"""Tests for the execution backends: Table-1 shape, traffic claims,
scan and transpose schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import (
    ALL_BACKENDS,
    AthreadBackend,
    KernelWorkload,
    OpenACCBackend,
    table1_workloads,
    workload_for,
)
from repro.backends.scan import regcomm_scan, scan_speedup, serial_scan_cycles
from repro.backends.transpose import (
    strided_dma_transpose_cycles,
    transpose_distributed,
)
from repro.config import ModelConfig
from repro.errors import KernelError, LDMOverflowError
from repro.sunway.spec import SW26010Spec

#: Paper Table 1 (seconds at 6,144 processes): Intel, MPE, OpenACC.
PAPER_TABLE1 = {
    "compute_and_apply_rhs": (12.69, 92.13, 75.11),
    "euler_step": (15.88, 175.73, 10.18),
    "vertical_remap": (11.38, 39.99, 16.17),
    "hypervis_dp1": (4.95, 12.71, 3.13),
    "hypervis_dp2": (3.81, 9.05, 1.32),
    "biharmonic_dp3d": (9.35, 36.18, 4.43),
}


@pytest.fixture(scope="module")
def reports():
    wls = table1_workloads()
    return {
        name: {b: ALL_BACKENDS[b]().execute(wl) for b in ALL_BACKENDS}
        for name, wl in wls.items()
    }


class TestTable1Shape:
    @pytest.mark.parametrize("kernel", list(PAPER_TABLE1))
    def test_absolute_times_within_band(self, reports, kernel):
        """Every simulated cell lands within 25% of the paper's value."""
        pi, pm, pa = PAPER_TABLE1[kernel]
        r = reports[kernel]
        assert r["intel"].seconds == pytest.approx(pi, rel=0.25)
        assert r["mpe"].seconds == pytest.approx(pm, rel=0.25)
        assert r["openacc"].seconds == pytest.approx(pa, rel=0.25)

    def test_mpe_2_to_10x_slower_than_intel(self, reports):
        """Paper: 'the performance of using one MPE is around 2-10 times
        slower' than one Intel process."""
        for kernel, r in reports.items():
            ratio = r["mpe"].seconds / r["intel"].seconds
            assert 2.0 <= ratio <= 12.0, (kernel, ratio)

    def test_rhs_openacc_slower_than_intel(self, reports):
        """Paper: 'For the kernel compute_and_apply_rhs, with data
        dependency, the OpenACC version is even 6x slower than Intel.'"""
        r = reports["compute_and_apply_rhs"]
        ratio = r["openacc"].seconds / r["intel"].seconds
        assert 4.0 <= ratio <= 8.0

    def test_euler_openacc_only_modestly_faster(self, reports):
        """Paper: 'the OpenACC version is only 1.5x faster than the
        Intel single-core performance' for euler_step."""
        r = reports["euler_step"]
        ratio = r["intel"].seconds / r["openacc"].seconds
        assert 1.2 <= ratio <= 1.9

    def test_athread_7_to_46x_vs_intel(self, reports):
        """Paper: 'the performance of 64 CPEs is also multiplied by
        another 7x to 46x' compared with a single Intel core."""
        for kernel, r in reports.items():
            ratio = r["intel"].seconds / r["athread"].seconds
            assert 7.0 <= ratio <= 46.0, (kernel, ratio)

    def test_athread_up_to_50x_vs_openacc(self, reports):
        """Paper: 'the Athread optimization can further improve the
        performance by up to 50x' over OpenACC."""
        ratios = [
            r["openacc"].seconds / r["athread"].seconds for r in reports.values()
        ]
        assert max(ratios) == pytest.approx(50.0, rel=0.15)
        assert all(r > 1.0 for r in ratios)

    def test_athread_always_fastest(self, reports):
        for kernel, r in reports.items():
            others = [r[b].seconds for b in ("intel", "mpe", "openacc")]
            assert r["athread"].seconds < min(others), kernel


class TestTrafficClaims:
    def test_euler_dma_traffic_ratio_is_10x(self):
        """Paper Section 7.3: 'total data transfer size has been
        decreased to 10% compared with the OpenACC solution'."""
        wl = table1_workloads()["euler_step"]
        acc = OpenACCBackend().execute(wl)
        ath = AthreadBackend().execute(wl)
        assert ath.bytes_moved / acc.bytes_moved == pytest.approx(0.1, rel=0.01)

    def test_openacc_moves_more_bytes_everywhere(self):
        for name, wl in table1_workloads().items():
            acc = OpenACCBackend().execute(wl)
            ath = AthreadBackend().execute(wl)
            assert acc.bytes_moved > ath.bytes_moved, name

    def test_gld_fallback_flagged(self):
        wls = table1_workloads()
        acc = OpenACCBackend()
        assert acc.execute(wls["compute_and_apply_rhs"]).notes["gld_fallback"]
        assert not acc.execute(wls["euler_step"]).notes["gld_fallback"]


class TestWorkloads:
    def test_scale_with_elements(self):
        cfg = ModelConfig(ne=256, nlev=128, qsize=4)
        w1 = workload_for("euler_step", cfg, 32)
        w2 = workload_for("euler_step", cfg, 64)
        assert w2.flops == pytest.approx(2 * w1.flops)
        assert w2.unique_bytes == pytest.approx(2 * w1.unique_bytes)

    def test_scale_with_tracers(self):
        cfg1 = ModelConfig(ne=256, nlev=128, qsize=2)
        cfg2 = ModelConfig(ne=256, nlev=128, qsize=8)
        w1 = workload_for("euler_step", cfg1, 64)
        w2 = workload_for("euler_step", cfg2, 64)
        assert w2.flops == pytest.approx(4 * w1.flops)

    def test_unknown_kernel_rejected(self):
        cfg = ModelConfig(ne=4, nlev=8)
        with pytest.raises(Exception):
            workload_for("magic_kernel", cfg, 4)

    def test_invalid_workload_rejected(self):
        with pytest.raises(ValueError):
            KernelWorkload("x", flops=0, unique_bytes=1)
        with pytest.raises(ValueError):
            KernelWorkload("x", flops=1, unique_bytes=1, serial_fraction=1.0)
        with pytest.raises(ValueError):
            KernelWorkload("x", flops=1, unique_bytes=1, reread_factor_openacc=0.5)

    def test_ldm_tiles_fit_64k(self):
        for name, wl in table1_workloads().items():
            assert wl.ldm_tile_bytes <= 64 * 1024, name

    def test_athread_rejects_oversized_tile(self):
        wl = KernelWorkload("big", flops=1e9, unique_bytes=1e9, ldm_tile_bytes=128 * 1024)
        with pytest.raises(LDMOverflowError):
            AthreadBackend().execute(wl)

    def test_small_ldm_spec_rejects_standard_tile(self):
        spec = SW26010Spec(ldm_bytes=8 * 1024)
        wl = table1_workloads()["compute_and_apply_rhs"]
        with pytest.raises(LDMOverflowError):
            AthreadBackend(spec).execute(wl)


class TestRegcommScan:
    def test_matches_cumsum(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((128, 8))
        p, cycles = regcomm_scan(a)
        assert np.allclose(p, np.cumsum(a, axis=0), atol=1e-9)
        assert cycles > 0

    def test_initial_value(self):
        a = np.ones((64, 4))
        p, _ = regcomm_scan(a, p0=100.0)
        assert np.allclose(p[0], 101.0)
        assert np.allclose(p[-1], 164.0)

    def test_stage2_critical_path(self):
        a = np.ones((128, 8))
        _, cycles = regcomm_scan(a)
        # 7 hops x 11 cycles down the column.
        assert cycles == 7 * 11

    def test_levels_must_divide(self):
        with pytest.raises(KernelError):
            regcomm_scan(np.ones((100, 4)))

    def test_too_many_columns(self):
        with pytest.raises(KernelError):
            regcomm_scan(np.ones((128, 9)))

    def test_speedup_at_128_levels(self):
        # 128 levels over 8 rows: two local passes of 16 + 7 register
        # hops vs 128 serial levels -> ~2.9x on the critical path.
        assert scan_speedup(128) > 2.5
        assert serial_scan_cycles(128) > 0

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_scan_property(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(0.1, 2.0, size=(32, 8))
        p, _ = regcomm_scan(a)
        assert np.allclose(p, np.cumsum(a, axis=0), rtol=1e-12)


class TestShuffleTranspose:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_transpose_correct(self, n):
        rng = np.random.default_rng(n)
        m = rng.standard_normal((4 * n, 4 * n))
        out, cycles = transpose_distributed(m)
        assert np.array_equal(out, m.T)
        assert cycles > 0

    def test_non_square_rejected(self):
        with pytest.raises(KernelError):
            transpose_distributed(np.zeros((8, 12)))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(KernelError):
            transpose_distributed(np.zeros((12, 12)))  # 3 blocks

    def test_faster_than_strided_dma(self):
        """The point of Section 7.5: register transposition beats
        round-tripping through strided DMA."""
        m = np.random.default_rng(0).standard_normal((32, 32))
        _, reg_cycles = transpose_distributed(m)
        dma_cycles = strided_dma_transpose_cycles(32)
        assert dma_cycles > 5 * reg_cycles


class TestFusedHypervis:
    def test_fusion_saves_traffic_and_time(self):
        from repro.backends.workloads import fused_hypervis_workload
        from repro.config import ModelConfig

        cfg = ModelConfig(ne=256, nlev=128, qsize=4)
        wls = table1_workloads()
        fused = fused_hypervis_workload(cfg, 64)
        sep_bytes = (
            wls["hypervis_dp1"].unique_bytes + wls["hypervis_dp2"].unique_bytes
        )
        assert fused.unique_bytes < sep_bytes
        b = AthreadBackend()
        sep_t = (
            b.execute(wls["hypervis_dp1"]).seconds
            + b.execute(wls["hypervis_dp2"]).seconds
        )
        assert b.execute(fused).seconds < sep_t

    def test_fusion_preserves_flops(self):
        from repro.backends.workloads import fused_hypervis_workload
        from repro.config import ModelConfig

        cfg = ModelConfig(ne=256, nlev=128, qsize=4)
        wls = table1_workloads()
        fused = fused_hypervis_workload(cfg, 64)
        assert fused.flops == pytest.approx(
            wls["hypervis_dp1"].flops + wls["hypervis_dp2"].flops
        )

    def test_fused_tile_still_fits_ldm(self):
        from repro.backends.workloads import fused_hypervis_workload
        from repro.config import ModelConfig

        fused = fused_hypervis_workload(ModelConfig(ne=256, nlev=128, qsize=4), 64)
        assert fused.ldm_tile_bytes <= 64 * 1024
