"""Chaos tests for the self-healing parallel engine (DESIGN.md §12).

The property under test everywhere: any injected worker fault — crash,
hang, overdue result, corrupted result block — is recovered *locally*
(respawn + redistribute + re-execute, never whole-pool degrade), and
the trajectory stays **bitwise identical** to the serial run, in both
plain-parallel and pipelined dispatch.  Scenarios are seeded and
deterministic, mirroring the FaultInjector contract.
"""

import numpy as np
import pytest

from repro.homme.distributed import DistributedShallowWater
from repro.mesh.cubed_sphere import CubedSphereMesh
from repro.obs import MetricsRegistry, collect_parallel_engine
from repro.parallel import ChaosSpec, ParallelEngine, run_scenario, scenario_spec
from repro.parallel.engine import _ping_task
from repro.resilience import (
    BitFlip,
    Checkpointer,
    FaultInjector,
    ResilientRunner,
)


@pytest.fixture(scope="module")
def mesh2():
    return CubedSphereMesh(2, 4)


class TestChaosSpec:
    def test_seeded_is_deterministic(self):
        a = ChaosSpec.seeded(42, 2, 10, kills=1, stalls=1, corruptions=2)
        b = ChaosSpec.seeded(42, 2, 10, kills=1, stalls=1, corruptions=2)
        assert a == b

    def test_seeded_draws_distinct_task_ids(self):
        spec = ChaosSpec.seeded(0, 4, 12, kills=2, stalls=2, delays=2,
                                corruptions=2)
        tids = (spec.kill_tasks + spec.stall_tasks + spec.corrupt_tasks
                + tuple(t for t, _ in spec.delay_tasks))
        assert len(tids) == len(set(tids)) == 8
        assert all(4 <= t < 12 for t in tids)

    def test_overbooked_span_raises(self):
        with pytest.raises(ValueError, match="cannot schedule"):
            ChaosSpec.seeded(0, 0, 3, kills=2, corruptions=2)

    def test_unknown_scenario_raises(self):
        from repro.errors import KernelError

        with pytest.raises(KernelError, match="unknown chaos scenario"):
            scenario_spec("bogus", workers=2, nranks=4)


class TestScenarioRecovery:
    """Each scenario completes bitwise identical to serial with the
    expected recovery action and zero whole-pool degrades."""

    @pytest.mark.parametrize("name,expect", [
        ("kill-worker", "crashes"),
        ("corrupt-result", "corrupt_results"),
    ])
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_fast_scenarios_plain_and_pipelined(self, name, expect, pipeline):
        rep = run_scenario(name, workers=2, seed=0, pipeline=pipeline)
        assert rep["bitwise_identical"]
        assert rep["recovery"][expect] >= 1
        assert rep["recovery"]["pool_degrades"] == 0
        assert rep["pool_active_at_end"]

    def test_stall_heartbeat_recovers(self):
        rep = run_scenario("stall-heartbeat", workers=2, seed=0)
        assert rep["bitwise_identical"]
        assert rep["recovery"]["hangs"] >= 1
        assert rep["recovery"]["respawns"] >= 1
        assert rep["recovery"]["pool_degrades"] == 0

    def test_delay_result_past_timeout_recovers(self):
        rep = run_scenario("delay-result", workers=2, seed=0)
        assert rep["bitwise_identical"]
        assert rep["recovery"]["timeouts"] >= 1
        assert rep["recovery"]["respawns"] >= 1
        assert rep["recovery"]["pool_degrades"] == 0

    def test_mixed_faults_recover(self):
        rep = run_scenario("mixed", workers=2, seed=0)
        assert rep["bitwise_identical"]
        assert rep["recovery"]["crashes"] >= 1
        assert rep["recovery"]["corrupt_results"] >= 1
        assert rep["recovery"]["pool_degrades"] == 0

    def test_seeded_scenarios_are_reproducible(self):
        a = run_scenario("kill-worker", workers=2, seed=3)
        b = run_scenario("kill-worker", workers=2, seed=3)
        assert a["spec"] == b["spec"]
        assert a["bitwise_identical"] and b["bitwise_identical"]

    def test_fault_injector_narrates_engine_recovery(self):
        """The engine reports what it saw into the same FaultInjector
        that could be scheduling network faults — one event log for a
        whole faulty run."""
        fi = FaultInjector(seed=0)
        rep = run_scenario("kill-worker", workers=2, seed=0, faults=fi)
        assert rep["bitwise_identical"]
        assert rep["fault_events"].get("worker_crash", 0) >= 1


class TestKillOneOfThree:
    def test_kill_one_of_three_respawns_without_degrade(self):
        """Acceptance criterion: worker death no longer degrades
        unaffected payloads — >= 1 respawn in parallel.recovery.respawns
        and zero whole-pool degrades; every result still correct."""
        spec = ChaosSpec(kill_tasks=(4,))  # ping takes tids 0..2
        with ParallelEngine(workers=3, chaos=spec) as e:
            if not e.active:
                pytest.skip(f"pool unavailable: {e.fallback_reason}")
            outs = e.run(_ping_task, [
                ({"add": float(i)}, (np.arange(6.0),)) for i in range(9)
            ])
            for i, (out,) in enumerate(outs):
                assert np.array_equal(out, np.arange(6.0) + i)
            assert e.active
            assert e.recovery["respawns"] >= 1
            assert e.recovery["crashes"] >= 1
            assert e.recovery["redistributed_tasks"] >= 1
            assert e.recovery["pool_degrades"] == 0
            reg = collect_parallel_engine(MetricsRegistry("chaos"), e)
            assert reg.value("parallel.recovery.respawns") >= 1
            assert reg.value("parallel.recovery.pool_degrades") == 0
            assert sum(s.respawns for s in e.stats) >= 1


class TestResilientRunnerParallel:
    """Injected *state* faults roll back a parallel run via checkpoint
    restore while the engine keeps its pool — the integration of
    repro.resilience with repro.parallel."""

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_sdc_rollback_of_parallel_run_matches_serial(
            self, mesh2, tmp_path, pipeline):
        ref = DistributedShallowWater(mesh2, nranks=4)
        ref.run_steps(3)
        gref = ref.gather_state()

        fi = FaultInjector(
            seed=5,
            bitflips=[BitFlip(step=1, field_name="h", rank=1, word=7, bit=63)],
        )
        with DistributedShallowWater(
            mesh2, nranks=4, dt=ref.dt, workers=2, pipeline=pipeline,
            faults=fi, engine_kwargs={"faults": fi},
        ) as m:
            runner = ResilientRunner(
                m, Checkpointer(tmp_path, cadence=1), faults=fi)
            report = runner.run(3)
            got = m.gather_state()
            engine_active = m.engine.active

        assert report.rollbacks == 1
        assert report.resteps >= 1
        assert report.fault_summary.get("bitflip") == 1
        assert report.engine_recovery  # folded from the supervised engine
        assert np.array_equal(gref.h, got.h)
        assert np.array_equal(gref.v, got.v)
        assert engine_active  # rollback never cost the pool

    def test_worker_kill_and_sdc_in_one_run(self, mesh2, tmp_path):
        """Both recovery systems in one run: a chaos worker kill handled
        by the supervisor AND a state bit-flip handled by checkpoint
        rollback — one injector narrates both, final state bitwise."""
        ref = DistributedShallowWater(mesh2, nranks=4)
        ref.run_steps(3)
        gref = ref.gather_state()

        fi = FaultInjector(
            seed=9,
            bitflips=[BitFlip(step=2, field_name="h", rank=0, word=3, bit=63)],
        )
        spec, _ = scenario_spec("kill-worker", workers=2, nranks=4, seed=1)
        with DistributedShallowWater(
            mesh2, nranks=4, dt=ref.dt, workers=2,
            faults=fi, engine_kwargs={"chaos": spec, "faults": fi},
        ) as m:
            runner = ResilientRunner(
                m, Checkpointer(tmp_path, cadence=1), faults=fi)
            report = runner.run(3)
            got = m.gather_state()
            recovery = dict(m.engine.recovery)

        assert report.rollbacks == 1
        assert recovery["respawns"] >= 1
        assert recovery["pool_degrades"] == 0
        assert report.fault_summary.get("worker_crash", 0) >= 1
        assert report.fault_summary.get("bitflip") == 1
        assert np.array_equal(gref.h, got.h)
        assert np.array_equal(gref.v, got.v)
