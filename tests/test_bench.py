"""Tests for the ``repro.bench`` baseline harness: suite determinism,
report schema, regression gating, and the CLI."""

import json

import numpy as np
import pytest

from repro.bench import compare_reports, load_report, machine_calibration, run_suite
from repro.bench.__main__ import main
from repro.bench.harness import BenchResult, time_wall
from repro.bench.suite import SPEEDUP_FLOORS, render_report


@pytest.fixture(scope="module")
def report():
    return run_suite(quick=True, repeats=1)


class TestHarness:
    def test_time_wall_returns_positive_min(self):
        calls = []
        t = time_wall(lambda: calls.append(1), repeats=3, warmup=1)
        assert t > 0
        assert len(calls) == 4  # warmup + repeats

    def test_time_wall_setup_runs_before_each_repeat(self):
        order = []
        time_wall(lambda: order.append("f"), repeats=2, warmup=1,
                  setup=lambda: order.append("s"))
        assert order == ["s", "f", "s", "f", "s", "f"]

    def test_calibration_positive_and_repeatable_scale(self):
        c = machine_calibration(repeats=2)
        assert 0 < c < 5.0

    def test_result_round_trip(self):
        r = BenchResult("x.y", "wall", 0.25, repeats=3, meta={"ne": 8})
        assert BenchResult.from_json(r.to_json()) == r


class TestSuite:
    def test_report_schema(self, report):
        assert report["schema"] == "repro.bench/1"
        assert set(report) >= {"benchmarks", "derived", "calibration_s",
                               "repeats", "quick", "floors"}
        names = [b["name"] for b in report["benchmarks"]]
        assert "sw_rk_step.ne8.batched" in names
        assert "sw_rk_step.ne8.looped" in names
        assert "table1.compute_and_apply_rhs.athread" in names
        assert len(names) == len(set(names))

    def test_every_benchmark_well_formed(self, report):
        for b in report["benchmarks"]:
            assert b["clock"] in ("wall", "simulated")
            assert b["seconds"] > 0

    def test_derived_speedups_present_with_floors(self, report):
        # Every committed floor is either measured or explicitly skipped
        # with a logged reason (e.g. the parallel section on small boxes).
        skipped = report.get("skipped", {})
        expected = {
            name for name in SPEEDUP_FLOORS
            if not any(name.startswith(g) for g in skipped)
        }
        assert expected <= set(report["derived"])
        assert report["floors"] == SPEEDUP_FLOORS
        for reason in skipped.values():
            assert reason  # a skip always carries its reason

    def test_batched_beats_looped(self, report):
        # The tentpole claim, at test scale: even with repeats=1 the
        # batched path clears the committed floors.
        assert report["derived"]["sw_rk_step.ne8.speedup"] >= 3.0
        assert report["derived"]["prim_rhs.ne4.speedup"] >= 2.0

    def test_fused_entries_measured_and_gated(self, report):
        # The fused execution path is timed for all three wall groups,
        # wall-gated like batched (only looped is interpreter-noise
        # exempt), and produces its derived speedups.
        names = {b["name"]: b for b in report["benchmarks"]}
        for group in ("sw_rk_step.ne8", "prim_rhs.ne4", "euler_step.ne4"):
            assert names[f"{group}.fused"]["meta"]["gated"]
            assert not names[f"{group}.looped"]["meta"]["gated"]
            assert f"{group}.fused_speedup" in report["derived"]

    def test_simulated_entries_deterministic(self, report):
        again = run_suite(quick=True, repeats=1)
        sim = {b["name"]: b["seconds"] for b in report["benchmarks"]
               if b["clock"] == "simulated"}
        sim2 = {b["name"]: b["seconds"] for b in again["benchmarks"]
                if b["clock"] == "simulated"}
        assert sim == sim2

    def test_render_report(self, report):
        text = render_report(report)
        assert "sw_rk_step.ne8.batched" in text
        assert "speedup" in text

    def test_render_report_zero_and_fractional_floors(self):
        # Regression test for the floor-truthiness bug: a 0.0 floor (or
        # any fractional overhead floor) must still render its bound
        # instead of silently dropping it.
        rep = {
            "schema": "repro.bench/1", "repeats": 1, "calibration_s": 1e-3,
            "benchmarks": [],
            "derived": {"a.speedup": 1.2, "b.speedup": 0.8},
            "floors": {"a.speedup": 0.0, "b.speedup": 1.0 / 1.5},
        }
        text = render_report(rep)
        assert "floor 0.00x" in text
        assert "floor 0.67x" in text


class TestParallelSection:
    """The parallel-vs-serial distributed section is core-count gated:
    it must run (and emit its derived speedup) when the machine has
    enough cores, and skip with a logged reason when it does not."""

    def test_runs_with_enough_cores(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.available_cores", lambda: 4)
        rep = run_suite(quick=True, repeats=1)
        names = {b["name"]: b for b in rep["benchmarks"]}
        assert "dist_sw_step.ne8.serial" in names
        assert "dist_sw_step.ne8.parallel" in names
        par = names["dist_sw_step.ne8.parallel"]
        assert par["clock"] == "wall" and not par["meta"]["gated"]
        if par["meta"]["pool_active"]:
            # The speedup is measured (the >=1.3x floor is only policed
            # on real 4-core machines via the committed baseline).
            assert "dist_sw_step.ne8.parallel_speedup" in rep["derived"]
        else:
            assert "dist_sw_step.ne8.parallel_speedup" in rep["skipped"]

    def test_skipped_on_small_machines(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.available_cores", lambda: 1)
        rep = run_suite(quick=True, repeats=1)
        names = [b["name"] for b in rep["benchmarks"]]
        assert not any(n.startswith("dist_sw_step") for n in names)
        assert "machine has 1" in rep["skipped"]["dist_sw_step.ne8"]
        assert "dist_sw_step.ne8.parallel_speedup" not in rep["derived"]


class TestCompare:
    def test_self_comparison_passes(self, report):
        ok, lines = compare_reports(report, report)
        assert ok
        assert lines[-1] == "gate: PASS"

    def test_wall_regression_detected(self, report):
        slow = json.loads(json.dumps(report))
        for b in slow["benchmarks"]:
            if b["name"] == "sw_rk_step.ne8.batched":
                b["seconds"] *= 2.0
        ok, lines = compare_reports(slow, report)
        assert not ok
        assert any("FAIL sw_rk_step.ne8.batched" in line for line in lines)

    def test_looped_path_noise_does_not_gate(self, report):
        # The looped reference path is interpreter-noise-dominated;
        # even a 2x wall swing must not fail the gate (the speedup
        # floors are what police the batched/looped relationship).
        noisy = json.loads(json.dumps(report))
        for b in noisy["benchmarks"]:
            if b["name"].endswith(".looped"):
                b["seconds"] *= 2.0
        ok, lines = compare_reports(noisy, report)
        assert ok
        assert any(line.startswith("info sw_rk_step.ne8.looped")
                   and "not gated" in line for line in lines)

    def test_wall_regression_within_threshold_passes(self, report):
        mild = json.loads(json.dumps(report))
        for b in mild["benchmarks"]:
            if b["clock"] == "wall":
                b["seconds"] *= 1.10
        ok, _ = compare_reports(mild, report)
        assert ok

    def test_machine_speed_change_does_not_fail(self, report):
        # A uniformly 2x slower machine: every wall time and the
        # calibration double; the calibrated ratio stays 1.
        slow = json.loads(json.dumps(report))
        slow["calibration_s"] *= 2.0
        for b in slow["benchmarks"]:
            if b["clock"] == "wall":
                b["seconds"] *= 2.0
        ok, _ = compare_reports(slow, report)
        assert ok

    def test_simulated_drift_detected(self, report):
        drift = json.loads(json.dumps(report))
        for b in drift["benchmarks"]:
            if b["name"] == "table1.euler_step.athread":
                b["seconds"] *= 1.05
        ok, lines = compare_reports(drift, report)
        assert not ok
        assert any("FAIL table1.euler_step.athread" in line for line in lines)

    def test_speedup_floor_breach_detected(self, report):
        bad = json.loads(json.dumps(report))
        bad["derived"]["sw_rk_step.ne8.speedup"] = 2.0
        ok, lines = compare_reports(bad, report)
        assert not ok
        assert any("below floor" in line for line in lines)

    def test_added_and_removed_entries_do_not_gate(self, report):
        cur = json.loads(json.dumps(report))
        cur["benchmarks"].append(
            {"name": "new.bench", "clock": "wall", "seconds": 1.0})
        base = json.loads(json.dumps(report))
        base["benchmarks"].append(
            {"name": "old.bench", "clock": "wall", "seconds": 1.0})
        ok, lines = compare_reports(cur, base)
        assert ok
        assert any(line.startswith("new  new.bench") for line in lines)
        assert any(line.startswith("gone old.bench") for line in lines)

    def test_missing_baseline_entry_is_informational_both_ways(self, report):
        """A kernel not yet in BENCH_homme.json (or one the current run
        skipped) must never raise or fail the gate — in either
        direction, including derived entries with committed floors."""
        cur = json.loads(json.dumps(report))
        base = json.loads(json.dumps(report))
        # Current grows a gated wall entry + a floored derived entry the
        # baseline has never seen.
        cur["benchmarks"].append(
            {"name": "dist_new.kernel", "clock": "wall", "seconds": 0.5,
             "meta": {"gated": True}})
        cur["derived"]["dist_new.kernel.speedup"] = 9.0
        cur["floors"] = dict(cur.get("floors", {}), **{"dist_new.kernel.speedup": 1.5})
        # Baseline holds a derived entry the current run did not measure
        # (the skipped-parallel-section shape).
        base["derived"]["retired.kernel.speedup"] = 2.0
        base["floors"] = dict(base.get("floors", {}), **{"retired.kernel.speedup": 1.5})
        ok, lines = compare_reports(cur, base)
        assert ok
        assert any(line.startswith("new  dist_new.kernel") for line in lines)
        assert any("ok   dist_new.kernel.speedup" in line
                   and "(new, no baseline entry)" in line for line in lines)
        assert any(
            line.startswith("gone retired.kernel.speedup") for line in lines
        )

    def test_skip_reasons_surface_in_comparison(self, report):
        cur = json.loads(json.dumps(report))
        cur["skipped"] = {"dist_sw_step.ne8": "needs 4 cores, machine has 1"}
        ok, lines = compare_reports(cur, json.loads(json.dumps(report)))
        assert ok
        assert any(line.startswith("skip dist_sw_step.ne8") for line in lines)


class TestCommittedBaseline:
    def test_committed_baseline_loads_and_records_tentpole(self):
        report = load_report("BENCH_homme.json")
        assert report["derived"]["sw_rk_step.ne8.speedup"] >= 3.0
        assert not report["quick"]  # baselines come from full runs

    def test_load_rejects_non_bench_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError, match="not a repro.bench report"):
            load_report(str(p))


class TestCLI:
    def test_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["--help"])
        assert e.value.code == 0
        out = capsys.readouterr().out
        assert "--compare" in out and "--quick" in out

    def test_run_and_write(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        rc = main(["--repeats", "1", "--quick", "--out", str(out_path)])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro.bench/1"

    def test_compare_pass_and_fail_exit_codes(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        assert main(["--repeats", "1", "--quick", "--out", str(out_path)]) == 0
        # This is an exit-code test, not a timing test: two repeats=1
        # runs can genuinely differ by more than the gate, so give the
        # pass-case baseline deterministic wall headroom.
        report = json.loads(out_path.read_text())
        for b in report["benchmarks"]:
            if b["clock"] == "wall":
                b["seconds"] *= 10.0
        generous = tmp_path / "generous.json"
        generous.write_text(json.dumps(report))
        assert main(["--repeats", "1", "--quick",
                     "--compare", str(generous)]) == 0
        # A sabotaged baseline (simulated times shrunk) must fail.
        report = json.loads(out_path.read_text())
        for b in report["benchmarks"]:
            if b["clock"] == "simulated":
                b["seconds"] /= 2.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(report))
        assert main(["--repeats", "1", "--quick", "--compare", str(bad)]) == 1

    def test_compare_missing_baseline_is_usage_error(self, tmp_path, capsys):
        rc = main(["--repeats", "1", "--compare", str(tmp_path / "nope.json")])
        assert rc == 2


def test_numerics_unchanged_by_bench_import():
    # Importing/running the bench must not leak state into the numerics:
    # a fresh suite run leaves a fresh model bit-identical to one built
    # before any benchmarking ran.
    from repro.homme.shallow_water import ShallowWaterModel, williamson2_initial
    from repro.mesh.cubed_sphere import CubedSphereMesh

    mesh = CubedSphereMesh(4, 4)
    m1 = ShallowWaterModel(mesh, state=williamson2_initial(mesh))
    m1.step()
    run_suite(quick=True, repeats=1)
    m2 = ShallowWaterModel(mesh, state=williamson2_initial(mesh))
    m2.step()
    assert np.array_equal(m1.state.h, m2.state.h)
