"""Closing conservation checks on the weak-form operators and limiter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ModelConfig
from repro.homme import operators as op
from repro.homme.element import ElementGeometry, ElementState
from repro.homme.euler import limit_qdp
from repro.mesh import CubedSphereMesh


@pytest.fixture(scope="module")
def setup():
    mesh = CubedSphereMesh(ne=6)
    return mesh, ElementGeometry(mesh)


class TestWeakLaplacianConservation:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_integral_exactly_zero(self, setup, seed):
        """The partition-of-unity property: the assembled weak Laplacian
        integrates to zero for ANY field — the mechanism that keeps
        hyperviscosity mass-conserving."""
        mesh, geom = setup
        f = np.random.default_rng(seed).standard_normal((mesh.nelem, 4, 4))
        lw = mesh.dss(op.laplace_sphere_wk(f, geom))
        total = mesh.global_integral(lw)
        scale = mesh.global_integral(np.abs(lw))
        assert abs(total) / max(scale, 1e-30) < 1e-10

    def test_agrees_with_strong_form_when_smooth(self, setup):
        mesh, geom = setup
        f = np.sin(mesh.lat)
        lw = mesh.dss(op.laplace_sphere_wk(f, geom))
        ls = mesh.dss(op.laplace_sphere(f, geom))
        assert np.allclose(lw, ls, rtol=0.05, atol=np.abs(ls).max() * 0.05)

    def test_negative_semidefinite(self, setup):
        """integral of f * lap_wk(f) <= 0: diffusion dissipates variance."""
        mesh, geom = setup
        rng = np.random.default_rng(1)
        f = mesh.dss(rng.standard_normal((mesh.nelem, 4, 4)))
        lw = mesh.dss(op.laplace_sphere_wk(f, geom))
        assert mesh.global_integral(f * lw) < 0


class TestLimiterProperties:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_positivity_and_global_mass(self, setup, seed):
        mesh, geom = setup
        rng = np.random.default_rng(seed)
        qdp = rng.standard_normal((mesh.nelem, 3, 4, 4)) + 0.8
        w = geom.spheremp[:, None]
        m0 = np.sum(qdp * w, axis=(0, 2, 3))
        out = limit_qdp(qdp, geom)
        assert out.min() >= 0.0
        m1 = np.sum(out * w, axis=(0, 2, 3))
        # Global fixer restores per-level mass wherever it is positive.
        pos = m0 > 0
        assert np.allclose(m1[pos], m0[pos], rtol=1e-10)

    def test_nonnegative_field_unchanged(self, setup):
        mesh, geom = setup
        qdp = np.abs(np.random.default_rng(2).standard_normal((mesh.nelem, 2, 4, 4)))
        out = limit_qdp(qdp, geom)
        assert np.allclose(out, qdp, rtol=1e-12)


class TestGeometryEdgeCases:
    def test_subset_geometry_operators(self, setup):
        """Element-local operators give identical results on a subset
        view as on the full mesh (the distributed-dycore invariant)."""
        mesh, geom = setup
        sub = ElementGeometry(mesh, np.arange(10, 30))
        f = np.sin(mesh.lat) * np.cos(mesh.lon)
        full = op.laplace_sphere(f, geom)
        part = op.laplace_sphere(f[10:30], sub)
        assert np.array_equal(part, full[10:30])

    def test_subset_gradient_matches(self, setup):
        mesh, geom = setup
        sub = ElementGeometry(mesh, np.arange(0, 12))
        f = np.cos(mesh.lat) ** 2
        assert np.array_equal(
            op.gradient_sphere(f[:12], sub), op.gradient_sphere(f, geom)[:12]
        )

    def test_state_consistency_validator(self, setup):
        mesh, geom = setup
        cfg = ModelConfig(ne=6, nlev=4, qsize=1)
        state = ElementState.isothermal_rest(geom, cfg)
        state.check_consistent()
        bad = state.copy()
        bad.v = bad.v[:, :2]
        from repro.errors import KernelError

        with pytest.raises(KernelError):
            bad.check_consistent()
