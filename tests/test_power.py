"""Tests for the power/energy model."""

import pytest

from repro.perf.scaling import HommePerfModel
from repro.sunway.power import (
    machine_efficiency_check,
    node_power,
    run_energy,
)


class TestMachineConstants:
    def test_linpack_efficiency_matches_paper(self):
        chk = machine_efficiency_check()
        # Paper: "a power efficiency of 6.06 GFlops / watt".
        assert chk["linpack_gflops_per_watt"] == pytest.approx(6.06, rel=0.02)

    def test_chip_efficiency_near_10(self):
        chk = machine_efficiency_check()
        # Paper: "a power efficiency of 10 GFlops/W" per processor.
        assert chk["chip_gflops_per_watt"] == pytest.approx(10.0, rel=0.1)


class TestNodePower:
    def test_idle_below_full(self):
        assert node_power(0.0) < node_power(1.0)

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            node_power(1.5)


class TestRunEnergy:
    def test_node_rounding(self):
        # 6 core groups -> 2 nodes.
        rep = run_energy(6, 100.0, 1e12)
        assert rep.nodes == 2

    def test_gflops_per_watt_bounded_by_chip(self):
        m = HommePerfModel(1024, 131072)
        rep = run_energy(
            131072, m.step_seconds, m.flops_per_step, utilization=0.8
        )
        chk = machine_efficiency_check()
        assert 0 < rep.gflops_per_watt < chk["chip_gflops_per_watt"]

    def test_full_machine_run_megawatts(self):
        # The paper's full-machine run burns ~machine power.
        m = HommePerfModel(4096, 155_000)
        rep = run_energy(155_000, m.step_seconds * 1000, m.flops_per_step * 1000)
        assert 10.0 < rep.megawatts < 20.0
        assert rep.megawatt_hours > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            run_energy(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            run_energy(4, -1.0, 1.0)
