"""Tests for the Exascale projection (paper Section 10 made concrete)."""

import pytest

from repro.perf.exascale import (
    exascale_spec,
    project,
    speed_wall_analysis,
)
from repro.sunway.spec import DEFAULT_SPEC


class TestExascaleSpec:
    def test_compute_scales(self):
        s = exascale_spec()
        assert s.processor_peak_flops > 8 * DEFAULT_SPEC.processor_peak_flops

    def test_bandwidth_scales(self):
        s = exascale_spec()
        assert s.memory_bandwidth == pytest.approx(4 * DEFAULT_SPEC.memory_bandwidth)

    def test_ridge_moves_right(self):
        """Compute grows faster than bandwidth: traffic minimization
        matters MORE on the successor — the paper's core warning."""
        s = exascale_spec()
        ridge_today = DEFAULT_SPEC.cg_peak_flops / DEFAULT_SPEC.cg_memory_bandwidth
        ridge_exa = s.cg_peak_flops / s.cg_memory_bandwidth
        assert ridge_exa > 1.5 * ridge_today

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            exascale_spec(compute=0.0)


class TestProjection:
    def test_successor_faster(self):
        p = project(256, 8192)
        assert p.exa_pflops > p.today_pflops
        assert p.exa_sypd > p.today_sypd

    def test_gain_below_hardware_factor(self):
        """Amdahl: the serial floor caps the realized gain well below
        the x4 chip-level speedup."""
        p = project(256, 8192)
        assert p.sypd_gain < 4.0
        assert p.sypd_gain > 1.2

    def test_strong_scaled_config_gains_least(self):
        """At 3 elements/rank the serial floor dominates: the successor
        machine buys almost nothing — the simulation speed wall."""
        granular = project(256, 131072)
        chunky = project(1024, 8192)
        assert granular.sypd_gain < chunky.sypd_gain


class TestSpeedWall:
    def test_irreducible_fraction_positive(self):
        res = speed_wall_analysis()
        assert res["irreducible_seconds"] > 0
        assert 0 < res["compute_fraction"] < 1

    def test_infinite_chip_speedup_finite(self):
        res = speed_wall_analysis()
        assert res["max_speedup_infinite_chip"] < 50.0
